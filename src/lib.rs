//! # xorslp_ec
//!
//! A from-scratch Rust reproduction of *"Accelerating XOR-based Erasure
//! Coding using Program Optimization Techniques"* (Uezato, SC '21):
//! Reed–Solomon erasure coding where encoding and decoding are straight-
//! line XOR programs, optimized with grammar compression (XorRePair),
//! deforestation (XOR fusion), and pebble-game scheduling, then executed
//! blockwise with SIMD kernels.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`codec`] | `ec-core` | the RS(n,p) codec, the [`ErasureCoder`] registry and [`LrcCodec`] — start here |
//! | [`gf`] | `gf256` | GF(2^8) field and matrix algebra |
//! | [`bits`] | `bitmatrix` | F2 matrices, companion expansion |
//! | [`slp`] | `slp` | SLP IR, semantics, metrics, LRU cache model |
//! | [`opt`] | `slp-optimizer` | RePair/XorRePair, fusion, schedulers |
//! | [`runtime`] | `xor-runtime` | XOR kernels, arenas, blocked executor, [`ExecPool`] |
//! | [`baseline`] | `gf-baseline` | ISA-L-style table-driven codec |
//! | [`stream`] | `ec-stream` | streaming archives: shard format, scrub & repair |
//! | [`store`] | `ec-store` | networked object store: shard nodes, placement, degraded reads, online repair |
//! | [`wire`] | `ec-wire` | shared CRC-32 framing primitives |
//! | [`tune`] | `ec-tune` | per-machine kernel/blocksize/stripe autotuner + profile cache |
//!
//! ## Quick start
//!
//! ```
//! use xorslp_ec::RsCodec;
//!
//! let codec = RsCodec::new(10, 4).unwrap();
//! let data: Vec<u8> = (0..=255).cycle().take(64 * 1024).collect();
//!
//! // encode into 10 data + 4 parity shards
//! let shards = codec.encode(&data).unwrap();
//!
//! // any 4 shards may vanish
//! let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
//! for lost in [2, 4, 5, 6] {
//!     received[lost] = None;
//! }
//!
//! // …and the data comes back
//! assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
//! ```
//!
//! ## Delta updates
//!
//! Parity is linear in the data, so a single-shard write never needs a
//! full re-encode: [`RsCodec::update_parity`] runs the cached *column*
//! program of the changed shard over `old ⊕ new` and accumulates the
//! result into the parity shards, and
//! [`RsCodec::encode_parity_partial`] re-encodes only a chosen subset of
//! parity rows (partial repair).
//!
//! ```
//! use xorslp_ec::RsCodec;
//!
//! let codec = RsCodec::new(4, 2).unwrap();
//! let data: Vec<Vec<u8>> = (0..4u8).map(|k| vec![k; 64]).collect();
//! let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
//! let mut parity = vec![vec![0u8; 64]; 2];
//! {
//!     let mut prefs: Vec<&mut [u8]> =
//!         parity.iter_mut().map(Vec::as_mut_slice).collect();
//!     codec.encode_parity(&refs, &mut prefs).unwrap();
//!
//!     // Overwrite shard 1 and pay one column's XORs, not four.
//!     let new_shard = vec![0xA5u8; 64];
//!     codec.update_parity(1, &data[1], &new_shard, &mut prefs).unwrap();
//! }
//! ```
//!
//! ## Streaming archives
//!
//! Files of any size stream through the codec in bounded memory:
//! [`Archive`] writes `n + p` self-describing shard files (per-chunk
//! CRC-32, CRC-protected header — see `docs/FORMAT.md`), survives the
//! loss of any `p` of them, and its `verify` / `scrub` / `repair` verbs
//! detect and fix truncated or bit-flipped shards in place. The
//! `xorslp-archive` binary wires the same verbs for the command line.
//!
//! ## Pluggable codecs
//!
//! Archives and clusters talk to the codec through the object-safe
//! [`ErasureCoder`] trait. A [`CodecSpec`] names a family + geometry
//! (`rs`, `evenodd`, `rdp`, `lrc:<r>`), [`codec_for`] resolves it into
//! a boxed codec, and every self-describing artifact records the spec's
//! wire id so `Archive::open` / the store manifest resolve the *right*
//! codec back out — unknown or mismatched codecs are typed errors. The
//! locally-repairable [`LrcCodec`] repairs a single lost shard from its
//! locality group (`r` reads instead of `n`); see "Choosing a codec" in
//! the README.

pub use array_codes::{ArrayCodec, ArrayCodecError};
pub use ec_core::{
    codec_for, codec_for_with, codec_names, CodecId, CodecSpec, Compression, EcError,
    ErasureCoder, Kernel, LrcCodec, MatrixKind, OptConfig, RsCodec, RsConfig, Scheduling,
};
pub use ec_store::{Cluster, NodeHandle, ScrubScheduler, StoreError};
pub use ec_stream::{
    Archive, ArchiveMeta, ShardState, StreamDecoder, StreamEncoder, StreamError,
};
pub use ec_tune::{engine_defaults, EngineDefaults, Profile, TuneOptions};
pub use ec_wire::{crc32, Crc32};
pub use xor_runtime::{
    cpu_backend, plan_stripes, ComputeBackend, CpuBackend, ExecPool, PoolChoice, StripePlan,
};

/// The erasure codec (re-export of `ec-core`).
pub mod codec {
    pub use ec_core::*;
}

/// GF(2^8) field and matrices (re-export of `gf256`).
pub mod gf {
    pub use gf256::*;
}

/// F2 bit-matrices and the companion map (re-export of `bitmatrix`).
pub mod bits {
    pub use bitmatrix::*;
}

/// Straight-line program IR, semantics and cost models (re-export of
/// `slp`).
pub mod slp {
    pub use slp::*;
}

/// SLP optimization passes (re-export of `slp-optimizer`).
pub mod opt {
    pub use slp_optimizer::*;
}

/// Kernels, arenas and the blocked executor (re-export of `xor-runtime`).
pub mod runtime {
    pub use xor_runtime::*;
}

/// The ISA-L-style table-driven baseline codec (re-export of
/// `gf-baseline`).
pub mod baseline {
    pub use gf_baseline::*;
}

/// EVENODD and RDP two-parity array codes on the SLP pipeline (re-export
/// of `array-codes`).
pub mod arrays {
    pub use array_codes::*;
}

/// Streaming erasure-coded archives: chunked encoder/decoder, the
/// self-describing shard-file format, and the scrub & repair [`Archive`]
/// API (re-export of `ec-stream`).
pub mod stream {
    pub use ec_stream::*;
}

/// The networked erasure-coded object store: shard nodes, rendezvous
/// placement, degraded reads, delta overwrites, online repair and
/// background scrub (re-export of `ec-store`).
pub mod store {
    pub use ec_store::*;
}

/// Shared byte-level primitives (CRC-32) of the archive format and the
/// store wire protocol (re-export of `ec-wire`).
pub mod wire {
    pub use ec_wire::*;
}

/// The per-machine kernel/blocksize/stripe autotuner and its CRC-
/// protected profile cache (re-export of `ec-tune`); see
/// `docs/TUNING.md`.
pub mod tune {
    pub use ec_tune::*;
}
