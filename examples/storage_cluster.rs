//! A real erasure-coded storage cluster over real sockets: 14
//! in-process shard nodes on loopback, object placement, node failures,
//! degraded reads and online repair — the HDFS-style scenario that
//! motivates the paper's introduction, served by the `ec-store`
//! subsystem instead of an in-memory toy.
//!
//! ```text
//! cargo run --release --example storage_cluster
//! ```

use std::time::{Duration, Instant};
use xorslp_ec::store::{Cluster, NodeHandle};
use xorslp_ec::RsConfig;

const N: usize = 10;
const P: usize = 4;

fn main() {
    let root = std::env::temp_dir().join(format!("xorslp_cluster_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Spawn 14 shard nodes: each one a directory-backed blob store
    // serving the CRC-framed TCP protocol on an ephemeral loopback port.
    let mut nodes: Vec<Option<NodeHandle>> = (0..N + P)
        .map(|i| {
            Some(
                NodeHandle::spawn(&root.join(format!("node{i}")), "127.0.0.1:0", 2)
                    .expect("spawn node"),
            )
        })
        .collect();
    let mut addrs: Vec<String> = nodes
        .iter()
        .map(|n| n.as_ref().unwrap().addr().to_string())
        .collect();
    // Zero GC grace so the final scrub collects superseded generations
    // immediately (fine here: no writer is ever mid-put when we scrub).
    let mut cluster = Cluster::new(addrs.clone(), RsConfig::new(N, P))
        .expect("cluster client")
        .with_gc_grace(Duration::ZERO);
    println!("cluster: {} loopback nodes, RS({N}, {P})\n", N + P);

    // Store fifty 256 KiB objects.
    let objects: Vec<(String, Vec<u8>)> = (0..50)
        .map(|k| {
            let name = format!("obj-{k:03}");
            let data: Vec<u8> =
                (0..256 * 1024u32).map(|i| ((i * 31 + k * 7) % 251) as u8).collect();
            (name, data)
        })
        .collect();
    let total: usize = objects.iter().map(|(_, d)| d.len()).sum();
    let t = Instant::now();
    for (name, data) in &objects {
        cluster.put(name, data).expect("put");
    }
    let dt = t.elapsed();
    println!(
        "stored {} objects, {:.1} MiB in {:.0} ms ({:.0} MB/s through encode + sockets + disk)",
        objects.len(),
        total as f64 / (1024.0 * 1024.0),
        dt.as_secs_f64() * 1e3,
        total as f64 / dt.as_secs_f64() / 1e6,
    );

    // A rack goes down: nodes 2, 5, 11 and 13 die (p = 4 failures, the
    // worst this geometry survives).
    let dead = [2usize, 5, 11, 13];
    for &i in &dead {
        nodes[i].take().expect("alive").shutdown();
    }
    println!("\nnodes 2, 5, 11, 13 failed (listener closed, connections reset)");

    // Reads still work: degraded reads reconstruct through the cached
    // decode programs from whichever 10 shards answer.
    let t = Instant::now();
    let mut degraded_reads = 0;
    for (name, data) in &objects {
        let (got, report) = cluster.get_with_report(name).expect("degraded read");
        assert_eq!(&got, data);
        degraded_reads += report.degraded() as usize;
    }
    let dt = t.elapsed();
    println!(
        "read all objects degraded ({degraded_reads} needed reconstruction): \
         {:.0} ms ({:.0} MB/s)",
        dt.as_secs_f64() * 1e3,
        total as f64 / dt.as_secs_f64() / 1e6,
    );

    // Online repair: rebuild each dead node's shards onto a fresh
    // replacement from the survivors (row-subset programs re-encode
    // lost parity; the decode-program LRU covers lost data).
    let t = Instant::now();
    let mut rebuilt_bytes = 0;
    for &i in &dead {
        let replacement_dir = root.join(format!("replacement{i}"));
        let node = NodeHandle::spawn(&replacement_dir, "127.0.0.1:0", 2).expect("spawn");
        let new_addr = node.addr().to_string();
        let report = cluster
            .repair_node(&addrs[i], &new_addr)
            .expect("repair");
        assert!(report.failed.is_empty());
        rebuilt_bytes += report.bytes_rebuilt;
        addrs.push(new_addr);
        nodes.push(Some(node));
    }
    let dt = t.elapsed();
    println!(
        "\nrepaired {:.1} MiB onto 4 replacement nodes in {:.0} ms",
        rebuilt_bytes as f64 / (1024.0 * 1024.0),
        dt.as_secs_f64() * 1e3,
    );

    // Delta overwrite: touch one shard's worth of one object and ship
    // old⊕new through the cached column programs instead of re-putting
    // the world (writes need the placement nodes up, so this runs on
    // the repaired cluster).
    let (name, data) = &objects[7];
    let mut v2 = data.clone();
    for b in &mut v2[..1024] {
        *b ^= 0xA5;
    }
    let report = cluster.overwrite(name, &v2).expect("delta overwrite");
    println!(
        "\ndelta overwrite of {name}: {} of {N} data shards changed, {} shards \
         shipped, {} XORs vs {} for a full re-encode",
        report.changed.len(),
        report.shards_written,
        report.xor_count,
        report.full_xor_count,
    );

    // Scrub proves the cluster fully healthy: every shard passes its
    // manifest CRC and data ↔ parity re-encode consistently, chunk-wise.
    // The GC pass at the end collects the generation the delta overwrite
    // superseded (its old shard keys stayed behind for snapshot readers).
    let scrub = cluster.scrub().expect("scrub");
    assert!(scrub.clean(), "scrub found damage: {scrub:?}");
    println!(
        "scrub clean: {} objects verified end-to-end on {} nodes; \
         gc collected {} superseded generations ({} bytes)",
        scrub.objects.len(),
        cluster.nodes().len(),
        scrub.generations_collected,
        scrub.bytes_reclaimed,
    );

    // And every object reads back healthy (no reconstruction needed).
    for (name, data) in &objects {
        let expected = if name == &objects[7].0 { &v2 } else { data };
        let (got, report) = cluster.get_with_report(name).expect("healthy read");
        assert_eq!(&got, expected);
        assert!(!report.degraded());
    }
    println!("\nall objects verified after repair ✓");

    drop(cluster);
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&root);
}
