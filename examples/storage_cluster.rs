//! A miniature erasure-coded storage cluster: object placement, node
//! failures, and online repair — the HDFS-style scenario that motivates
//! the paper's introduction.
//!
//! ```text
//! cargo run --release --example storage_cluster
//! ```

use std::collections::HashMap;
use std::time::Instant;
use xorslp_ec::{RsCodec, RsConfig};

/// One storage node: a shard store keyed by object name.
#[derive(Default)]
struct Node {
    shards: HashMap<String, Vec<u8>>,
    alive: bool,
}

struct Cluster {
    codec: RsCodec,
    nodes: Vec<Node>,
    /// Original object sizes (needed to strip padding on read).
    sizes: HashMap<String, usize>,
}

impl Cluster {
    fn new(n: usize, p: usize) -> Cluster {
        let codec = RsCodec::with_config(RsConfig::new(n, p)).expect("valid params");
        let nodes = (0..n + p)
            .map(|_| Node {
                shards: HashMap::new(),
                alive: true,
            })
            .collect();
        Cluster {
            codec,
            nodes,
            sizes: HashMap::new(),
        }
    }

    fn put(&mut self, name: &str, data: &[u8]) {
        let shards = self.codec.encode(data).expect("encode");
        for (node, shard) in self.nodes.iter_mut().zip(shards) {
            node.shards.insert(name.to_string(), shard);
        }
        self.sizes.insert(name.to_string(), data.len());
    }

    fn get(&self, name: &str) -> Option<Vec<u8>> {
        let shards: Vec<Option<Vec<u8>>> = self
            .nodes
            .iter()
            .map(|n| {
                if n.alive {
                    n.shards.get(name).cloned()
                } else {
                    None
                }
            })
            .collect();
        self.codec.decode(&shards, *self.sizes.get(name)?).ok()
    }

    fn kill(&mut self, idx: usize) {
        self.nodes[idx].alive = false;
        self.nodes[idx].shards.clear();
    }

    /// Re-create the shards of every object on freshly replaced nodes.
    fn repair(&mut self) -> usize {
        let dead: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].alive)
            .collect();
        if dead.is_empty() {
            return 0;
        }
        let names: Vec<String> = self.sizes.keys().cloned().collect();
        let mut repaired_bytes = 0;
        for name in names {
            let mut shards: Vec<Option<Vec<u8>>> = self
                .nodes
                .iter()
                .map(|n| if n.alive { n.shards.get(&name).cloned() } else { None })
                .collect();
            self.codec.reconstruct(&mut shards).expect("repair");
            for &i in &dead {
                let shard = shards[i].take().expect("reconstructed");
                repaired_bytes += shard.len();
                self.nodes[i].shards.insert(name.clone(), shard);
            }
        }
        for &i in &dead {
            self.nodes[i].alive = true;
        }
        repaired_bytes
    }
}

fn main() {
    let mut cluster = Cluster::new(10, 4);
    println!("cluster: 14 nodes, RS(10,4)\n");

    // Store a hundred 256 KiB objects.
    let objects: Vec<(String, Vec<u8>)> = (0..100)
        .map(|k| {
            let name = format!("obj-{k:03}");
            let data: Vec<u8> = (0..256 * 1024u32)
                .map(|i| ((i * 31 + k * 7) % 251) as u8)
                .collect();
            (name, data)
        })
        .collect();
    let t = Instant::now();
    let total: usize = objects.iter().map(|(_, d)| d.len()).sum();
    for (name, data) in &objects {
        cluster.put(name, data);
    }
    let dt = t.elapsed();
    println!(
        "stored {} objects, {:.1} MiB in {:.0} ms ({:.2} GB/s encode)",
        objects.len(),
        total as f64 / (1024.0 * 1024.0),
        dt.as_secs_f64() * 1e3,
        total as f64 / dt.as_secs_f64() / 1e9,
    );

    // A rack goes down: nodes 2, 5, 11 and 13 die.
    for idx in [2, 5, 11, 13] {
        cluster.kill(idx);
    }
    println!("\nnodes 2, 5, 11, 13 failed (two data, two parity)");

    // Reads still work (degraded reads).
    let t = Instant::now();
    for (name, data) in &objects {
        let got = cluster.get(name).expect("degraded read");
        assert_eq!(&got, data);
    }
    let dt = t.elapsed();
    println!(
        "degraded read of all objects: {:.0} ms ({:.2} GB/s decode)",
        dt.as_secs_f64() * 1e3,
        total as f64 / dt.as_secs_f64() / 1e9,
    );

    // Repair onto replacement nodes.
    let t = Instant::now();
    let repaired = cluster.repair();
    let dt = t.elapsed();
    println!(
        "repaired {:.1} MiB onto replacement nodes in {:.0} ms",
        repaired as f64 / (1024.0 * 1024.0),
        dt.as_secs_f64() * 1e3,
    );

    // Everything is intact again.
    for (name, data) in &objects {
        assert_eq!(&cluster.get(name).expect("healthy read"), data);
    }
    println!("\nall objects verified after repair ✓");
}
