//! Quickstart: encode, lose shards, decode.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xorslp_ec::{RsCodec, RsConfig};

fn main() {
    // RS(10, 4): the HDFS codec — 10 data shards, 4 parity shards,
    // any 4 losses are survivable, 1.4× storage overhead. Execution is
    // striped across the machine-sized worker pool by default
    // (`parallelism(0)`); pass 1 for serial or k for a dedicated pool.
    let codec =
        RsCodec::with_config(RsConfig::new(10, 4).parallelism(0)).expect("valid parameters");

    let data: Vec<u8> = (0..1_000_000u32).map(|i| (i * 2_654_435_761) as u8).collect();
    println!("original data: {} bytes", data.len());

    let shards = codec.encode(&data).expect("encode");
    println!(
        "encoded into {} shards of {} bytes ({} data + {} parity)",
        shards.len(),
        shards[0].len(),
        codec.data_shards(),
        codec.parity_shards()
    );

    // Simulate losing four nodes — including data shards.
    let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    for lost in [0, 5, 10, 13] {
        received[lost] = None;
        println!("shard {lost} lost");
    }

    let restored = codec.decode(&received, data.len()).expect("decode");
    assert_eq!(restored, data);
    println!("restored {} bytes — bit-exact ✓", restored.len());

    // Under the hood: the encoder is an optimized straight-line XOR
    // program. Compare it with the naive one.
    let opt = codec.encode_slp();
    println!(
        "\noptimized encode program: {} XORs, {} memory accesses, {} buffers",
        opt.xor_count(),
        opt.mem_accesses(),
        opt.nvar()
    );
}
