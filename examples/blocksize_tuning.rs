//! Mini version of the paper's §7.4 experiment: how the blocking
//! parameter `B` and the XOR kernel affect encoding throughput on *your*
//! machine. Useful for picking `RsConfig::blocksize`.
//!
//! ```text
//! cargo run --release --example blocksize_tuning
//! ```

use std::time::Instant;
use xorslp_ec::{Kernel, RsCodec, RsConfig};

fn throughput(codec: &RsCodec, data: &[u8], reps: usize) -> f64 {
    let shards = codec.encode(data).expect("warmup encode");
    let shard_len = shards[0].len();
    let n = codec.data_shards();
    let data_refs: Vec<&[u8]> = shards[..n].iter().map(|s| s.as_slice()).collect();
    let mut parity: Vec<Vec<u8>> = vec![vec![0u8; shard_len]; codec.parity_shards()];

    let t = Instant::now();
    for _ in 0..reps {
        let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        codec.encode_parity(&data_refs, &mut refs).expect("encode");
    }
    data.len() as f64 * reps as f64 / t.elapsed().as_secs_f64() / 1e9
}

fn main() {
    let data: Vec<u8> = (0..10_000_000u32).map(|i| (i * 193) as u8).collect();
    let reps = 20;

    println!("RS(10,4) encode, {} MB data, {} repetitions each\n", data.len() / 1_000_000, reps);
    println!("{:>9} | {:>10} | {:>10}", "B (bytes)", "xor1 GB/s", "xor32 GB/s");
    println!("{}", "-".repeat(37));
    for blocksize in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let mut row = format!("{blocksize:>9}");
        for kernel in [Kernel::Scalar, Kernel::Auto] {
            let codec = RsCodec::with_config(
                RsConfig::new(10, 4).blocksize(blocksize).kernel(kernel),
            )
            .expect("codec");
            row.push_str(&format!(" | {:>10.2}", throughput(&codec, &data, reps)));
        }
        println!("{row}");
    }
    println!("\n(the paper picks B = 1K on its Intel box, B = 2K on AMD — §7.4)");
}
