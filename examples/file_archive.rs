//! Archive a file into shard files on disk, destroy some, restore the
//! original — erasure coding as a cold-storage tool.
//!
//! ```text
//! cargo run --release --example file_archive [path-to-file]
//! ```
//!
//! Without an argument, a demo file is generated.

use std::fs;
use std::path::{Path, PathBuf};
use xorslp_ec::RsCodec;

const N: usize = 6;
const P: usize = 3;

fn archive(codec: &RsCodec, input: &Path, dir: &Path) -> std::io::Result<usize> {
    let data = fs::read(input)?;
    let shards = codec.encode(&data).expect("encode");
    fs::create_dir_all(dir)?;
    for (i, shard) in shards.iter().enumerate() {
        fs::write(dir.join(format!("shard-{i:02}.ec")), shard)?;
    }
    fs::write(dir.join("size.txt"), data.len().to_string())?;
    Ok(data.len())
}

fn restore(codec: &RsCodec, dir: &Path, output: &Path) -> std::io::Result<()> {
    let size: usize = fs::read_to_string(dir.join("size.txt"))?
        .trim()
        .parse()
        .expect("size file");
    let shards: Vec<Option<Vec<u8>>> = (0..N + P)
        .map(|i| fs::read(dir.join(format!("shard-{i:02}.ec"))).ok())
        .collect();
    let present = shards.iter().filter(|s| s.is_some()).count();
    println!("{present}/{} shard files readable", N + P);
    let data = codec
        .decode(&shards, size)
        .expect("enough shards survive");
    fs::write(output, data)
}

fn main() -> std::io::Result<()> {
    let work = std::env::temp_dir().join("xorslp_ec_archive_demo");
    let _ = fs::remove_dir_all(&work);
    fs::create_dir_all(&work)?;

    // Input: argument or generated demo payload.
    let input: PathBuf = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => {
            let p = work.join("demo.bin");
            let payload: Vec<u8> = (0..2_000_003u32).map(|i| (i * 57 + 13) as u8).collect();
            fs::write(&p, payload)?;
            p
        }
    };

    let codec = RsCodec::new(N, P).expect("codec");
    let dir = work.join("shards");
    let size = archive(&codec, &input, &dir)?;
    println!(
        "archived {} ({} bytes) into {} shard files under {}",
        input.display(),
        size,
        N + P,
        dir.display()
    );

    // Disaster strikes: delete P shard files, including data shards.
    for i in [0, 4, 7] {
        fs::remove_file(dir.join(format!("shard-{i:02}.ec")))?;
        println!("deleted shard-{i:02}.ec");
    }

    let restored = work.join("restored.bin");
    restore(&codec, &dir, &restored)?;

    let a = fs::read(&input)?;
    let b = fs::read(&restored)?;
    assert_eq!(a, b, "restored file differs!");
    println!("restored file is bit-identical ✓ ({})", restored.display());
    Ok(())
}
