//! Archive a file into self-describing shard files, destroy and corrupt
//! some, then scrub, repair and restore — erasure coding as a
//! cold-storage tool, on the streaming [`Archive`] API.
//!
//! ```text
//! cargo run --release --example file_archive [path-to-file]
//! ```
//!
//! Without an argument, a demo file is generated. Everything below runs
//! in bounded memory (`O(chunk × (n + p))`), so the input can be far
//! larger than RAM.

use std::fs;
use std::path::PathBuf;
use xorslp_ec::stream::{shard_file_name, Archive};

const N: usize = 6;
const P: usize = 3;
const CHUNK: usize = 256 * 1024;

fn main() -> std::io::Result<()> {
    let work = std::env::temp_dir().join("xorslp_ec_archive_demo");
    let _ = fs::remove_dir_all(&work);
    fs::create_dir_all(&work)?;

    // Input: argument or generated demo payload.
    let input: PathBuf = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => {
            let p = work.join("demo.bin");
            let payload: Vec<u8> = (0..2_000_003u32).map(|i| (i * 57 + 13) as u8).collect();
            fs::write(&p, payload)?;
            p
        }
    };

    // ---- create ----------------------------------------------------------
    let dir = work.join("shards");
    let archive = Archive::create(&input, &dir, N, P, CHUNK).expect("create");
    let meta = *archive.meta();
    println!(
        "archived {} ({} bytes) as RS({N}, {P}): {} chunks of {} bytes, {} shard files under {}",
        input.display(),
        meta.original_len,
        meta.chunk_count,
        meta.chunk_size,
        meta.total_shards(),
        dir.display()
    );
    drop(archive); // everything below reopens from the shard files alone

    // ---- disaster strikes ------------------------------------------------
    // Delete two shard files outright…
    for i in [0, 7] {
        fs::remove_file(dir.join(shard_file_name(i)))?;
        println!("deleted   {}", shard_file_name(i));
    }
    // …and flip bytes inside a third (silent bit rot). Offsets are
    // clamped to the file so tiny inputs (whose shard files are nearly
    // all header) still demo scrub → repair instead of panicking.
    let victim = dir.join(shard_file_name(4));
    let mut bytes = fs::read(&victim)?;
    let len = bytes.len();
    let mut flipped = 0;
    for off in [xorslp_ec::stream::HEADER_LEN, len / 2, len.saturating_sub(9)] {
        if off < len {
            bytes[off] ^= 0x11;
            flipped += 1;
        }
    }
    fs::write(&victim, bytes)?;
    println!("corrupted {} ({flipped} bytes flipped)", shard_file_name(4));

    // ---- scrub: the damage is pinpointed, not just detected --------------
    let archive = Archive::open(&dir).expect("open from surviving shards");
    let report = archive.scrub().expect("scrub");
    println!("\nscrub report:");
    for (i, state) in report.verify.shards.iter().enumerate() {
        println!("  shard {i:3}: {state}");
    }
    assert!(!report.clean());

    // ---- repair: rebuilt from the survivors, chunk by chunk --------------
    let rep = archive.repair().expect("repair");
    println!(
        "\nrepaired shard files {:?} ({} chunks reconstructed)",
        rep.repaired, rep.chunks_rebuilt
    );
    assert!(archive.verify().expect("verify").all_ok());
    println!("verify: all {} shards ok", meta.total_shards());

    // ---- extract ---------------------------------------------------------
    let restored = work.join("restored.bin");
    archive.extract(&restored).expect("extract");
    assert!(files_identical(&input, &restored)?, "restored file differs!");
    println!("restored file is bit-identical ✓ ({})", restored.display());
    Ok(())
}

/// Streaming comparison — the input may be larger than RAM, and the
/// whole demo keeps that bound.
fn files_identical(a: &std::path::Path, b: &std::path::Path) -> std::io::Result<bool> {
    let mut ra = std::io::BufReader::new(fs::File::open(a)?);
    let mut rb = std::io::BufReader::new(fs::File::open(b)?);
    let (mut ba, mut bb) = ([0u8; 8192], [0u8; 8192]);
    loop {
        let na = read_full(&mut ra, &mut ba)?;
        let nb = read_full(&mut rb, &mut bb)?;
        if na != nb || ba[..na] != bb[..nb] {
            return Ok(false);
        }
        if na == 0 {
            return Ok(true);
        }
    }
}

/// Fill `buf` as far as the reader allows (loop over short reads).
fn read_full(r: &mut impl std::io::Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        match r.read(&mut buf[n..])? {
            0 => break,
            got => n += got,
        }
    }
    Ok(n)
}
