//! A guided tour of the optimization pipeline (§4–§6 of the paper),
//! showing each pass transforming the RS(10,4) encoding program and the
//! effect on all four cost measures.
//!
//! ```text
//! cargo run --release --example slp_pipeline
//! ```

use xorslp_ec::bits::BitMatrix;
use xorslp_ec::gf::{encoding_matrix, MatrixKind};
use xorslp_ec::opt::{fuse, schedule_dfs, xor_repair, StageMetrics};
use xorslp_ec::slp::binary_slp_from_bitmatrix;

fn show(stage: &str, m: &StageMetrics) {
    println!("{stage:<22} #⊕ = {:>5}   #M = {:>5}   NVar = {:>4}   CCap = {:>4}",
        m.xors, m.mem, m.nvar, m.ccap);
}

fn main() {
    // Build the paper's P_enc: the parity block of the RS(10,4) coding
    // matrix, expanded over F2, read off as a straight-line program.
    let matrix = encoding_matrix(MatrixKind::IsalPower, 10, 4);
    let parity_rows: Vec<usize> = (10..14).collect();
    let bits = BitMatrix::expand_gf_matrix(&matrix.select_rows(&parity_rows));
    let base = binary_slp_from_bitmatrix(&bits);

    println!("stage                  cost measures (paper §7.5 first table)");
    println!("{}", "-".repeat(72));
    show("P_enc (Base)", &StageMetrics::of(&base));

    // §4: compression by XorRePair — fewer XORs, but many new temporaries.
    let (compressed, stats) = xor_repair(&base);
    show("Co(P_enc)", &StageMetrics::of(&compressed));
    println!(
        "{:>22} ({} pairings, {} cancellation rebuilds)",
        "", stats.pairs, stats.rebuilds_applied
    );

    // §5: XOR fusion — intermediate arrays deforested away.
    let fused = fuse(&compressed);
    show("Fu(Co(P_enc))", &StageMetrics::of(&fused));

    // §6: pebble-game scheduling — buffers reused, locality restored.
    let scheduled = schedule_dfs(&fused);
    show("Dfs(Fu(Co(P_enc)))", &StageMetrics::of(&scheduled));

    // All four programs compute the same outputs.
    assert_eq!(base.eval(), compressed.eval());
    assert_eq!(base.eval(), fused.eval());
    assert_eq!(base.eval(), scheduled.eval());
    println!("{}", "-".repeat(72));
    println!("⟦Base⟧ = ⟦Co⟧ = ⟦Fu(Co)⟧ = ⟦Dfs(Fu(Co))⟧  ✓ (set semantics)");

    // Show the first lines of the final program, in the paper's notation.
    println!("\nfirst 10 instructions of the scheduled program:");
    for line in scheduled.to_string().lines().take(10) {
        println!("    {line}");
    }
    println!("    …");
}
