//! Minimal, API-compatible stand-in for the `proptest` crate, vendored
//! because this build environment cannot reach crates.io.
//!
//! Supported surface (exactly what this workspace's tests use):
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   inner attribute;
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for integer ranges (`a..b`, `a..=b`) and tuples of strategies;
//! * [`any::<T>()`](strategy::any) for the primitive integers and `bool`;
//! * [`collection::vec`], [`collection::hash_set`],
//!   [`collection::btree_set`] with `usize`/range size specifications;
//! * [`sample::subsequence`];
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`test_runner::ProptestConfig`] (`with_cases`, `Default`).
//!
//! Semantics differ from real proptest in two deliberate ways: the RNG is
//! **deterministic** (seeded from the test's module path and case index,
//! so failures reproduce across runs), and there is **no shrinking** — a
//! failing case panics through the ordinary `assert!` machinery.

pub mod test_runner {
    /// Per-run configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the shim trades depth for
            // tier-1 wall-clock. Tests that need more ask via with_cases.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 RNG, seeded per (test, case).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    // All arithmetic goes through i128 so signed ranges wider than half
    // the type (e.g. `-100i8..100`) and the full 64-bit ranges are exact.
    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + draw_below(rng, span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + draw_below(rng, span) as i128) as $t
                }
            }
        )*};
    }

    /// Uniform draw from `[0, span)` where `span` may be up to 2^64 (the
    /// full range of a 64-bit type).
    fn draw_below(rng: &mut TestRng, span: u128) -> u64 {
        if span > u64::MAX as u128 {
            rng.next_u64()
        } else {
            rng.below(span as u64)
        }
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — every value of `T` is fair game.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeSet, HashSet};
    use std::hash::Hash;

    /// Inclusive size bounds for a generated collection; built from a
    /// plain `usize`, `a..b` or `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = HashSet::new();
            // Bounded retries: the element domain may be barely larger
            // than the target (or the caller may overshoot); mirroring
            // real proptest's behaviour of giving up quietly would mask
            // bugs, so keep trying hard before settling.
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 * (target + 1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `HashSet` of `size` distinct elements drawn from `element`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 * (target + 1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeSet` of `size` distinct elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Subsequence<T> {
        items: Vec<T>,
        size: usize,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            // Partial Fisher–Yates over the index set, then restore
            // source order: a subsequence, not a permutation.
            let n = self.items.len();
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..self.size {
                let j = i + rng.below((n - i) as u64) as usize;
                idx.swap(i, j);
            }
            let mut chosen = idx[..self.size].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }

    /// A random subsequence of exactly `size` of `items`, in source order.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: usize) -> Subsequence<T> {
        assert!(size <= items.len(), "subsequence longer than source");
        Subsequence { items, size }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The `proptest!` block macro: each contained `fn name(pat in strategy,
/// ...) { body }` becomes a `#[test]`-able function that samples its
/// strategies `cases` times and runs the body per sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}
