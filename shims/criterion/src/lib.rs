//! Minimal, API-compatible stand-in for the `criterion` benchmark
//! harness, vendored because this build environment cannot reach
//! crates.io.
//!
//! It honours the subset of the API this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, the `Criterion` builder
//! (`sample_size`, `measurement_time`, `warm_up_time`),
//! `benchmark_group` with `throughput`/`bench_function`/
//! `bench_with_input`/`finish`, [`BenchmarkId`], and [`Bencher::iter`] —
//! and reports the **median** wall-clock per iteration (plus throughput
//! when configured) as one plain-text line per benchmark. No HTML
//! reports, no statistical regression analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state: configuration plus a report sink.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let (sample_size, warm_up, measure) =
            (self.sample_size, self.warm_up_time, self.measurement_time);
        run_one(&id.label, None, sample_size, warm_up, measure, f);
        self
    }
}

/// Identifies one benchmark within a group: `new("function", "param")`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Work-per-iteration hint used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped override; must not leak into later groups.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.throughput,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Handed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Iterations to run in the timed region this sample.
    iters: u64,
    /// Wall-clock of the timed region, reported back to the runner.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run single iterations until the warm-up budget is spent,
    // learning the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut iter_cost = Duration::from_nanos(1);
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        iter_cost = b.elapsed.max(Duration::from_nanos(1));
        warm_iters += 1;
    }

    // Split the measurement budget into `sample_size` samples, each
    // running enough iterations to fill its slice of the budget.
    let per_sample = measure / sample_size as u32;
    let iters_per_sample =
        (per_sample.as_nanos() / iter_cost.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

    let mut per_iter: Vec<Duration> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut b);
            Duration::from_nanos((b.elapsed.as_nanos() / iters_per_sample as u128) as u64)
        })
        .collect();
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let gib = n as f64 / (1u64 << 30) as f64;
            format!("  {:>8.3} GiB/s", gib / median.as_secs_f64())
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.0} elem/s", n as f64 / median.as_secs_f64())
        }
        None => String::new(),
    };
    println!(
        "{label:<40} median {median:>12?}  ({sample_size} samples x {iters_per_sample} iters){rate}"
    );
}

/// `criterion_group!(name, target...)` or the long form with `config =`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
