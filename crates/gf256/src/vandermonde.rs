//! Coding-matrix constructions.
//!
//! The paper (§7.1) pins down its RS(n,p) encoding matrix precisely: take the
//! `(n+p) × n` Vandermonde matrix at evaluation points `α^1 .. α^{n+p}`,
//! split it into the top square block `V_n` and the bottom parity block `M`,
//! and reduce to the systematic ("standard") form
//!
//! ```text
//!   V = [ I_n ; M · V_n^{-1} ]
//! ```
//!
//! which it states equals ISA-L's encoding matrix in binary representation.
//! We also provide ISA-L's `gf_gen_rs_matrix`-style power matrix and a
//! systematic Cauchy construction for comparison and for tests.

use crate::field::Gf;
use crate::matrix::GfMatrix;

/// Which coding-matrix construction a codec uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MatrixKind {
    /// The paper's reduced Vandermonde (§7.1); systematic and MDS.
    #[default]
    ReducedVandermonde,
    /// Systematic Cauchy matrix; MDS for any shape.
    Cauchy,
    /// ISA-L's `gf_gen_rs_matrix` power construction: parity row `r` is
    /// `[α^{r·0}, α^{r·1}, …]`. Not MDS for arbitrary shapes, but verified
    /// MDS by exhaustive submatrix inversion for the paper's whole
    /// RS(8..10, 2..4) grid — and it reproduces the paper's SLP sizes
    /// *exactly* (`#⊕(P_enc) = 755`, `#⊕(P_dec{2,4,5,6}) = 1368` for
    /// RS(10,4)), so it is what the paper's artifact actually used despite
    /// the reduced-Vandermonde description in §7.1.
    IsalPower,
}

/// Plain Vandermonde matrix: `V[i][j] = points[i]^j`, shape
/// `points.len() × cols`.
pub fn vandermonde(points: &[Gf], cols: usize) -> GfMatrix {
    GfMatrix::from_fn(points.len(), cols, |i, j| points[i].pow(j as u32))
}

/// The paper's RS(n,p) encoding matrix: systematic `(n+p) × n`, bottom block
/// derived from a Vandermonde at points `α^1 .. α^{n+p}`.
///
/// Any `n` rows of the result form an invertible matrix (MDS property),
/// because row operations performed by the reduction preserve the
/// invertibility of every square row-submatrix of the source Vandermonde.
///
/// # Panics
/// Panics if `n + p > 255` (distinct non-zero evaluation points run out) or
/// if `n == 0 || p == 0`.
pub fn paper_encoding_matrix(n: usize, p: usize) -> GfMatrix {
    assert!(n > 0 && p > 0, "RS(n,p) needs n ≥ 1 and p ≥ 1");
    assert!(
        n + p <= 255,
        "RS(n,p) over GF(2^8) supports at most n+p = 255 with this construction"
    );
    let points: Vec<Gf> = (1..=n + p).map(Gf::alpha_pow).collect();
    let full = vandermonde(&points, n);
    let top: Vec<usize> = (0..n).collect();
    let bottom: Vec<usize> = (n..n + p).collect();
    let vn = full.select_rows(&top);
    let m = full.select_rows(&bottom);
    let vn_inv = vn
        .invert()
        .expect("square Vandermonde block at distinct points is invertible");
    let parity = &m * &vn_inv;
    GfMatrix::identity(n).vstack(&parity)
}

/// Systematic Cauchy matrix `[I; C]` with `C[i][j] = 1 / (x_i + y_j)`,
/// `x_i = α^{n+i}`, `y_j = α^j` — the `gf_gen_cauchy1_matrix` construction.
///
/// # Panics
/// Panics if `n + p > 255` or if `n == 0 || p == 0`.
pub fn cauchy_matrix(n: usize, p: usize) -> GfMatrix {
    assert!(n > 0 && p > 0, "RS(n,p) needs n ≥ 1 and p ≥ 1");
    assert!(n + p <= 255, "Cauchy construction limit exceeded");
    let parity = GfMatrix::from_fn(p, n, |i, j| {
        let x = Gf::alpha_pow(n + i);
        let y = Gf::alpha_pow(j);
        (x + y).inv()
    });
    GfMatrix::identity(n).vstack(&parity)
}

/// ISA-L's `gf_gen_rs_matrix`: parity row `r` is `[g^0, g^1, …, g^{n-1}]`
/// with `g = α^r`. Not MDS for arbitrary `(n, p)` — callers must verify the
/// shapes they use (the codec crate checks invertibility and the paper's
/// grid is exhaustively verified in tests).
pub fn isal_power_matrix(n: usize, p: usize) -> GfMatrix {
    assert!(n > 0 && p > 0, "RS(n,p) needs n ≥ 1 and p ≥ 1");
    let parity = GfMatrix::from_fn(p, n, |i, j| Gf::alpha_pow(i * j));
    GfMatrix::identity(n).vstack(&parity)
}

/// Build the encoding matrix of the requested kind.
pub fn encoding_matrix(kind: MatrixKind, n: usize, p: usize) -> GfMatrix {
    match kind {
        MatrixKind::ReducedVandermonde => paper_encoding_matrix(n, p),
        MatrixKind::Cauchy => cauchy_matrix(n, p),
        MatrixKind::IsalPower => isal_power_matrix(n, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_n_subsets_invertible(m: &GfMatrix, n: usize) -> bool {
        // Exhaustively check every n-row submatrix is invertible (MDS).
        // Only called with small shapes in tests.
        let rows = m.rows();
        let mut idx: Vec<usize> = (0..n).collect();
        loop {
            if m.select_rows(&idx).invert().is_none() {
                return false;
            }
            // next combination
            let mut i = n;
            loop {
                if i == 0 {
                    return true;
                }
                i -= 1;
                if idx[i] != i + rows - n {
                    idx[i] += 1;
                    for j in i + 1..n {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    #[test]
    fn paper_matrix_is_systematic() {
        for (n, p) in [(4, 2), (6, 3), (10, 4)] {
            let v = paper_encoding_matrix(n, p);
            assert_eq!(v.rows(), n + p);
            assert_eq!(v.cols(), n);
            assert!(v.top_is_identity(n));
        }
    }

    #[test]
    fn paper_matrix_is_mds_small() {
        for (n, p) in [(4, 2), (5, 3), (6, 4)] {
            let v = paper_encoding_matrix(n, p);
            assert!(all_n_subsets_invertible(&v, n), "RS({n},{p}) not MDS");
        }
    }

    #[test]
    fn cauchy_matrix_is_mds_small() {
        for (n, p) in [(4, 2), (5, 3), (6, 4)] {
            let v = cauchy_matrix(n, p);
            assert!(v.top_is_identity(n));
            assert!(all_n_subsets_invertible(&v, n), "Cauchy({n},{p}) not MDS");
        }
    }

    #[test]
    fn isal_power_matrix_shape() {
        let v = isal_power_matrix(10, 4);
        assert!(v.top_is_identity(10));
        // first parity row is all ones
        assert!(v.row(10).iter().all(|&x| x == Gf::ONE));
    }

    #[test]
    fn vandermonde_values() {
        let pts = [Gf(1), Gf(2), Gf(4)];
        let v = vandermonde(&pts, 3);
        assert_eq!(v[(1, 2)], Gf(4)); // 2^2
        assert_eq!(v[(2, 2)], Gf(4) * Gf(4));
        assert_eq!(v[(0, 0)], Gf::ONE);
    }

    #[test]
    fn rs_10_4_known_shape() {
        // The exact matrix the paper's P_enc is generated from.
        let v = paper_encoding_matrix(10, 4);
        assert!(v.top_is_identity(10));
        // Parity block must be fully dense (no zero entries) for this
        // construction — a zero would contradict the MDS property of
        // single-row + identity-subset selections.
        for r in 10..14 {
            assert!(v.row(r).iter().all(|x| !x.is_zero()));
        }
    }
}
