//! Arithmetic over the finite field GF(2^8) and dense matrix algebra on top
//! of it, as needed by Reed–Solomon erasure coding.
//!
//! The field is constructed from the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`), the polynomial used by Intel's
//! ISA-L and by the paper this workspace reproduces (Uezato, SC'21, §7.1).
//! The generator `α = 0x02` is primitive for this polynomial, so
//! `α^0 .. α^254` enumerate all non-zero elements.
//!
//! All lookup tables are built at *compile time* by `const fn`s, so the crate
//! has no runtime initialization and no interior mutability.
//!
//! # Quick example
//!
//! ```
//! use gf256::{Gf, GfMatrix};
//!
//! let a = Gf(0x53);
//! let b = Gf(0xCA);
//! assert_eq!(a * b * b.inv(), a);          // field inverse
//! assert_eq!(a + a, Gf(0));                // characteristic 2
//!
//! let v = gf256::paper_encoding_matrix(4, 2); // systematic RS(4,2) matrix
//! assert!(v.top_is_identity(4));
//! ```

mod field;
mod matrix;
mod tables;
mod vandermonde;

pub use field::{Gf, GF_ORDER, GF_PRIMITIVE_POLY};
pub use matrix::GfMatrix;
pub use vandermonde::{
    cauchy_matrix, encoding_matrix, isal_power_matrix, paper_encoding_matrix, vandermonde,
    MatrixKind,
};

#[cfg(test)]
mod proptests;
