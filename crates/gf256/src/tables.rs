//! Compile-time lookup tables for GF(2^8) with primitive polynomial `0x11D`.
//!
//! Three tables are produced by const evaluation:
//!
//! * `EXP[i] = α^i` for `i ∈ [0, 510)` — doubled so that
//!   `EXP[log a + log b]` never needs a modular reduction;
//! * `LOG[x] = log_α x` for `x ∈ [1, 256)` (`LOG[0]` is a sentinel);
//! * `MUL[a][b] = a ×_GF b`, the full 64 KiB product table used by the
//!   table-driven baseline codec and by matrix code.

/// The irreducible (and primitive) polynomial `x^8 + x^4 + x^3 + x^2 + 1`.
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Carry-less "Russian peasant" multiplication modulo [`PRIMITIVE_POLY`].
///
/// Only used at compile time to seed the tables and in tests as an
/// independent oracle for the table contents.
pub const fn mul_slow(mut a: u8, mut b: u8) -> u8 {
    let mut acc: u8 = 0;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let carry = a & 0x80 != 0;
        a <<= 1;
        if carry {
            a ^= (PRIMITIVE_POLY & 0xFF) as u8;
        }
        b >>= 1;
    }
    acc
}

const fn build_exp() -> [u8; 510] {
    let mut exp = [0u8; 510];
    let mut x: u8 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x;
        exp[i + 255] = x;
        x = mul_slow(x, 2);
        i += 1;
    }
    exp
}

const fn build_log(exp: &[u8; 510]) -> [u8; 256] {
    // LOG[0] is never consulted by correct code; keep it 0.
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    log
}

const fn build_mul(exp: &[u8; 510], log: &[u8; 256]) -> [[u8; 256]; 256] {
    let mut mul = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let la = log[a] as usize;
        let mut b = 1usize;
        while b < 256 {
            mul[a][b] = exp[la + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    mul
}

/// `EXP[i] = α^i` (doubled range, see module docs).
pub const EXP: [u8; 510] = build_exp();

/// `LOG[x] = log_α x` for non-zero `x`.
pub const LOG: [u8; 256] = build_log(&EXP);

/// Full 256×256 product table (64 KiB; deliberately a `const` so it
/// lives in rodata with zero runtime initialization).
#[allow(clippy::large_const_arrays)]
pub const MUL: [[u8; 256]; 256] = build_mul(&EXP, &LOG);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_is_primitive() {
        // α = 2 generates all 255 non-zero elements, i.e. the EXP table has
        // no repeats in its first period.
        let mut seen = [false; 256];
        for &e in EXP.iter().take(255) {
            assert!(e != 0, "α^i must be non-zero");
            assert!(!seen[e as usize], "α repeats before period 255");
            seen[e as usize] = true;
        }
        assert_eq!(EXP[0], 1);
        // the period closes: α^255 = α^0.
        assert_eq!(mul_slow(EXP[254], 2), 1);
    }

    #[test]
    fn exp_log_roundtrip() {
        for x in 1..=255u8 {
            assert_eq!(EXP[LOG[x as usize] as usize], x);
        }
        for i in 0..255usize {
            assert_eq!(LOG[EXP[i] as usize] as usize, i);
        }
    }

    #[test]
    fn mul_table_matches_slow_multiplication() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(MUL[a as usize][b as usize], mul_slow(a, b));
            }
        }
    }

    #[test]
    fn doubled_exp_avoids_modular_reduction() {
        for i in 0..255usize {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn known_products() {
        // Hand-checked values for poly 0x11D.
        assert_eq!(mul_slow(2, 0x80), 0x1D);
        assert_eq!(mul_slow(0xFF, 0xFF), 0xE2);
        assert_eq!(mul_slow(0x53, 0xCA), 0x8F);
    }
}
