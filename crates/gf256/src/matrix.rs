//! Dense matrices over GF(2^8) with the operations erasure coding needs:
//! multiplication, row-subset extraction, and Gauss–Jordan inversion.

use crate::field::Gf;
use std::fmt;
use std::ops::{Index, IndexMut, Mul};

/// A dense row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct GfMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf>,
}

impl GfMatrix {
    /// All-zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        GfMatrix {
            rows,
            cols,
            data: vec![Gf::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = GfMatrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf::ONE;
        }
        m
    }

    /// Build from a row-major byte slice.
    ///
    /// # Panics
    /// Panics when `bytes.len() != rows * cols`.
    pub fn from_bytes(rows: usize, cols: usize, bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            rows * cols,
            "byte slice does not match matrix shape"
        );
        GfMatrix {
            rows,
            cols,
            data: bytes.iter().copied().map(Gf).collect(),
        }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Gf) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        GfMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Gf] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow a row.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Gf] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.data.iter().map(|g| g.0).collect()
    }

    /// New matrix consisting of the given rows of `self`, in the given order.
    ///
    /// This is the decode-side "gather the surviving rows" operation.
    pub fn select_rows(&self, indices: &[usize]) -> GfMatrix {
        let mut m = GfMatrix::zero(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "row index {src} out of bounds");
            m.row_mut(dst).copy_from_slice(self.row(src));
        }
        m
    }

    /// New matrix consisting of the given columns of `self`, in the given
    /// order.
    ///
    /// This is the delta-update "one data shard's parity contribution"
    /// operation: column `i` of the parity block scales the `i`-th data
    /// shard's change into every parity shard.
    pub fn select_cols(&self, indices: &[usize]) -> GfMatrix {
        let mut m = GfMatrix::zero(self.rows, indices.len());
        for i in 0..self.rows {
            for (dst, &src) in indices.iter().enumerate() {
                assert!(src < self.cols, "column index {src} out of bounds");
                m[(i, dst)] = self[(i, src)];
            }
        }
        m
    }

    /// Vertical concatenation: `self` on top of `other`.
    ///
    /// # Panics
    /// Panics when column counts differ.
    pub fn vstack(&self, other: &GfMatrix) -> GfMatrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        GfMatrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    /// Panics when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Gf]) -> Vec<Gf> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .fold(Gf::ZERO, |acc, (&a, &b)| acc + a * b)
            })
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> GfMatrix {
        GfMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// True iff the first `n` rows form the `n × n` identity (systematic
    /// coding matrices have this shape).
    pub fn top_is_identity(&self, n: usize) -> bool {
        if self.rows < n || self.cols != n {
            return false;
        }
        (0..n).all(|i| {
            self.row(i)
                .iter()
                .enumerate()
                .all(|(j, &x)| x == if i == j { Gf::ONE } else { Gf::ZERO })
        })
    }

    /// Rank via Gaussian elimination (non-destructive).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        for col in 0..m.cols {
            let Some(pivot) = (rank..m.rows).find(|&r| !m[(r, col)].is_zero()) else {
                continue;
            };
            m.swap_rows(rank, pivot);
            let inv = m[(rank, col)].inv();
            for x in m.row_mut(rank) {
                *x *= inv;
            }
            for r in 0..m.rows {
                if r != rank && !m[(r, col)].is_zero() {
                    let factor = m[(r, col)];
                    for c in 0..m.cols {
                        let v = m[(rank, c)];
                        m[(r, c)] += factor * v;
                    }
                }
            }
            rank += 1;
            if rank == m.rows {
                break;
            }
        }
        rank
    }

    /// Greedily select a maximal linearly independent subset of the rows
    /// named by `candidates`, scanning them **in the given order** and
    /// keeping every row that increases the rank. Returns the kept row
    /// indices, in candidate order (at most `cols` of them).
    ///
    /// The greedy scan over a linear matroid always finds a basis of the
    /// candidates' span, so *which* basis comes back is steered purely by
    /// the candidate ordering — that is what lets a locally-repairable
    /// code put its cheap local-group rows first and only fall back to
    /// global rows when the pattern demands them.
    pub fn select_independent_rows(&self, candidates: &[usize]) -> Vec<usize> {
        // Incremental elimination: `basis` holds already-kept rows in
        // reduced form, `pivots[k]` the leading column of `basis[k]`.
        let mut basis: Vec<Vec<Gf>> = Vec::new();
        let mut pivots: Vec<usize> = Vec::new();
        let mut chosen = Vec::new();
        for &r in candidates {
            if basis.len() == self.cols {
                break;
            }
            assert!(r < self.rows, "row index {r} out of bounds");
            let mut v: Vec<Gf> = self.row(r).to_vec();
            for (b, &pc) in basis.iter().zip(&pivots) {
                let f = v[pc];
                if !f.is_zero() {
                    for (x, &bx) in v.iter_mut().zip(b) {
                        *x += f * bx;
                    }
                }
            }
            if let Some(pc) = v.iter().position(|x| !x.is_zero()) {
                let scale = v[pc].inv();
                for x in v.iter_mut() {
                    *x *= scale;
                }
                basis.push(v);
                pivots.push(pc);
                chosen.push(r);
            }
        }
        chosen
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (top, bottom) = self.data.split_at_mut(b * self.cols);
        top[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut bottom[..self.cols]);
    }

    /// Inverse by Gauss–Jordan elimination, or `None` if singular.
    pub fn invert(&self) -> Option<GfMatrix> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = GfMatrix::identity(n);

        for col in 0..n {
            let pivot = (col..n).find(|&r| !a[(r, col)].is_zero())?;
            a.swap_rows(col, pivot);
            inv.swap_rows(col, pivot);

            let scale = a[(col, col)].inv();
            for x in a.row_mut(col) {
                *x *= scale;
            }
            for x in inv.row_mut(col) {
                *x *= scale;
            }

            for r in 0..n {
                if r == col || a[(r, col)].is_zero() {
                    continue;
                }
                let factor = a[(r, col)];
                for c in 0..n {
                    let v = a[(col, c)];
                    a[(r, c)] += factor * v;
                    let w = inv[(col, c)];
                    inv[(r, c)] += factor * w;
                }
            }
        }
        Some(inv)
    }
}

impl Index<(usize, usize)> for GfMatrix {
    type Output = Gf;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Gf {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for GfMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Gf {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Mul for &GfMatrix {
    type Output = GfMatrix;

    fn mul(self, rhs: &GfMatrix) -> GfMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = GfMatrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = a * rhs[(k, j)];
                    out[(i, j)] += prod;
                }
            }
        }
        out
    }
}

impl fmt::Debug for GfMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "GfMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = GfMatrix::from_fn(3, 3, |i, j| Gf((i * 7 + j * 13 + 1) as u8));
        let id = GfMatrix::identity(3);
        assert_eq!(&m * &id, m);
        assert_eq!(&id * &m, m);
    }

    #[test]
    fn invert_identity() {
        let id = GfMatrix::identity(5);
        assert_eq!(id.invert().unwrap(), id);
    }

    #[test]
    fn invert_roundtrip_small() {
        // A Vandermonde block is invertible; check M * M^-1 = I.
        let m = GfMatrix::from_fn(4, 4, |i, j| Gf::alpha_pow(i + 1).pow(j as u32));
        let inv = m.invert().expect("vandermonde square block is invertible");
        assert_eq!(&m * &inv, GfMatrix::identity(4));
        assert_eq!(&inv * &m, GfMatrix::identity(4));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let mut m = GfMatrix::identity(3);
        // duplicate a row -> singular
        let r0: Vec<Gf> = m.row(0).to_vec();
        m.row_mut(2).copy_from_slice(&r0);
        assert!(m.invert().is_none());
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rank_of_full_rank_matrix() {
        let m = GfMatrix::from_fn(4, 6, |i, j| Gf::alpha_pow(i + 2).pow(j as u32));
        assert_eq!(m.rank(), 4);
    }

    #[test]
    fn select_rows_and_vstack() {
        let m = GfMatrix::from_fn(4, 2, |i, j| Gf((10 * i + j) as u8));
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.row(0), m.row(3));
        assert_eq!(s.row(1), m.row(1));
        let v = m.vstack(&s);
        assert_eq!(v.rows(), 6);
        assert_eq!(v.row(4), m.row(3));
    }

    #[test]
    fn select_cols_matches_transpose_select_rows() {
        let m = GfMatrix::from_fn(3, 5, |i, j| Gf((7 * i + 3 * j + 1) as u8));
        let s = m.select_cols(&[4, 0, 2]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 3);
        let via_t = m.transpose().select_rows(&[4, 0, 2]).transpose();
        assert_eq!(s, via_t);
    }

    #[test]
    #[should_panic(expected = "column index")]
    fn select_cols_out_of_bounds_panics() {
        let m = GfMatrix::zero(2, 3);
        let _ = m.select_cols(&[3]);
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let m = GfMatrix::from_fn(3, 4, |i, j| Gf((i + 2 * j + 1) as u8));
        let v = [Gf(9), Gf(8), Gf(7), Gf(6)];
        let col = GfMatrix::from_fn(4, 1, |i, _| v[i]);
        let prod = &m * &col;
        let mv = m.mul_vec(&v);
        for i in 0..3 {
            assert_eq!(prod[(i, 0)], mv[i]);
        }
    }

    #[test]
    fn transpose_involution() {
        let m = GfMatrix::from_fn(3, 5, |i, j| Gf((i * 5 + j) as u8));
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn product_shape_mismatch_panics() {
        let a = GfMatrix::zero(2, 3);
        let b = GfMatrix::zero(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn select_independent_rows_prefers_candidate_order() {
        // Rows: e0, e1, e0+e1 (dependent), e2 — greedy must keep the
        // first two, skip the dependent row, and finish with e2.
        let mut m = GfMatrix::zero(4, 3);
        m[(0, 0)] = Gf(1);
        m[(1, 1)] = Gf(1);
        m[(2, 0)] = Gf(1);
        m[(2, 1)] = Gf(1);
        m[(3, 2)] = Gf(1);
        assert_eq!(m.select_independent_rows(&[0, 1, 2, 3]), vec![0, 1, 3]);
        // A different order keeps the combined row instead of e1.
        assert_eq!(m.select_independent_rows(&[2, 0, 1, 3]), vec![2, 0, 3]);
        // Selection stops once the column count is reached.
        let id = GfMatrix::identity(3);
        assert_eq!(id.select_independent_rows(&[2, 1, 0]), vec![2, 1, 0]);
    }

    #[test]
    fn select_independent_rows_selected_set_is_invertible() {
        let m = GfMatrix::from_fn(6, 4, |i, j| Gf::alpha_pow(i * j));
        let chosen = m.select_independent_rows(&[5, 4, 3, 2, 1, 0]);
        assert_eq!(chosen.len(), 4);
        assert!(m.select_rows(&chosen).invert().is_some());
    }

    #[test]
    fn select_independent_rows_rank_deficient() {
        // All-equal rows: only one survives.
        let m = GfMatrix::from_fn(3, 3, |_, j| Gf(j as u8 + 1));
        assert_eq!(m.select_independent_rows(&[0, 1, 2]), vec![0]);
    }
}
