//! Property-based tests: field axioms and matrix-algebra invariants.

use crate::{Gf, GfMatrix};
use proptest::prelude::*;

fn gf() -> impl Strategy<Value = Gf> {
    any::<u8>().prop_map(Gf)
}

fn gf_nonzero() -> impl Strategy<Value = Gf> {
    (1..=255u8).prop_map(Gf)
}

proptest! {
    #[test]
    fn add_commutative(a in gf(), b in gf()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in gf(), b in gf()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributivity(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn division_inverts_multiplication(a in gf(), b in gf_nonzero()) {
        prop_assert_eq!((a * b) / b, a);
    }

    #[test]
    fn pow_is_homomorphic(a in gf_nonzero(), e in 0u32..2000, f in 0u32..2000) {
        prop_assert_eq!(a.pow(e) * a.pow(f), a.pow(e + f));
    }

    #[test]
    fn mul_bytes_matches_operator(a in any::<u8>(), b in any::<u8>()) {
        prop_assert_eq!(Gf::mul_bytes(a, b), (Gf(a) * Gf(b)).0);
    }
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = GfMatrix> {
    proptest::collection::vec(any::<u8>(), rows * cols)
        .prop_map(move |bytes| GfMatrix::from_bytes(rows, cols, &bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_mul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn matrix_mul_vec_agrees(a in matrix(4, 4), v in proptest::collection::vec(any::<u8>(), 4)) {
        let vg: Vec<Gf> = v.iter().copied().map(Gf).collect();
        let col = GfMatrix::from_fn(4, 1, |i, _| vg[i]);
        let prod = &a * &col;
        let mv = a.mul_vec(&vg);
        for i in 0..4 {
            prop_assert_eq!(prod[(i, 0)], mv[i]);
        }
    }

    #[test]
    fn inverse_roundtrip_when_invertible(a in matrix(4, 4)) {
        if let Some(inv) = a.invert() {
            prop_assert_eq!(&a * &inv, GfMatrix::identity(4));
            prop_assert_eq!(&inv * &a, GfMatrix::identity(4));
            prop_assert_eq!(a.rank(), 4);
        } else {
            prop_assert!(a.rank() < 4);
        }
    }

    #[test]
    fn transpose_of_product(a in matrix(3, 4), b in matrix(4, 2)) {
        prop_assert_eq!((&a * &b).transpose(), &b.transpose() * &a.transpose());
    }

    #[test]
    fn decode_simulation_recovers_data(
        data in proptest::collection::vec(any::<u8>(), 6),
        // choose 3 of 9 rows to drop, as row-index seeds
        drop in proptest::collection::hash_set(0usize..9, 3),
    ) {
        // RS(6,3): encode a symbol vector, drop 3 rows, invert, recover.
        let v = crate::paper_encoding_matrix(6, 3);
        let d: Vec<Gf> = data.iter().copied().map(Gf).collect();
        let code = v.mul_vec(&d);
        let survivors: Vec<usize> = (0..9).filter(|i| !drop.contains(i)).collect();
        let m = v.select_rows(&survivors);
        let minv = m.invert().expect("MDS submatrix must be invertible");
        let gathered: Vec<Gf> = survivors.iter().map(|&i| code[i]).collect();
        let recovered = minv.mul_vec(&gathered);
        prop_assert_eq!(recovered, d);
    }
}
