//! The field element type [`Gf`] and its operator implementations.

use crate::tables::{EXP, LOG, MUL, PRIMITIVE_POLY};
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Number of elements of the field.
pub const GF_ORDER: usize = 256;

/// The primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` defining the field.
pub const GF_PRIMITIVE_POLY: u16 = PRIMITIVE_POLY;

/// An element of GF(2^8) = F_2[x]/(x^8+x^4+x^3+x^2+1).
///
/// The wrapped byte is the coefficient vector of the residue polynomial:
/// bit `i` is the coefficient of `x^i`. Addition is XOR; multiplication is
/// polynomial multiplication modulo the primitive polynomial, served from a
/// compile-time table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Gf(pub u8);

impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);
    /// The canonical primitive element `α = x`.
    pub const ALPHA: Gf = Gf(2);

    /// `α^i` (exponent taken modulo 255).
    #[inline]
    pub fn alpha_pow(i: usize) -> Gf {
        Gf(EXP[i % 255])
    }

    /// Discrete logarithm with respect to `α`.
    ///
    /// # Panics
    /// Panics on `Gf(0)`, which has no logarithm.
    #[inline]
    pub fn log(self) -> u8 {
        assert!(self.0 != 0, "log of zero is undefined in GF(2^8)");
        LOG[self.0 as usize]
    }

    /// `self^e` by log/exp; `0^0 = 1` by convention.
    pub fn pow(self, e: u32) -> Gf {
        if e == 0 {
            return Gf::ONE;
        }
        if self.0 == 0 {
            return Gf::ZERO;
        }
        let l = LOG[self.0 as usize] as u32;
        Gf(EXP[((l as u64 * e as u64) % 255) as usize])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on `Gf(0)`.
    #[inline]
    pub fn inv(self) -> Gf {
        assert!(self.0 != 0, "zero has no inverse in GF(2^8)");
        Gf(EXP[255 - LOG[self.0 as usize] as usize])
    }

    /// True iff this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Raw table-driven product of two bytes; usable in hot loops without
    /// constructing `Gf` values.
    #[inline(always)]
    pub fn mul_bytes(a: u8, b: u8) -> u8 {
        MUL[a as usize][b as usize]
    }

    /// Row of the product table for a fixed left operand: `row[b] = a × b`.
    ///
    /// The baseline codec indexes this row per data byte, mirroring how
    /// table-driven RS implementations (e.g. Jerasure, ISA-L's reference
    /// path) perform coefficient multiplication.
    #[inline]
    pub fn mul_row(a: u8) -> &'static [u8; 256] {
        &MUL[a as usize]
    }

    /// Iterator over all 256 field elements.
    pub fn all() -> impl Iterator<Item = Gf> {
        (0..=255u8).map(Gf)
    }
}

impl fmt::Debug for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf(0x{:02X})", self.0)
    }
}

impl fmt::Display for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02X}", self.0)
    }
}

impl From<u8> for Gf {
    #[inline]
    fn from(b: u8) -> Self {
        Gf(b)
    }
}

impl From<Gf> for u8 {
    #[inline]
    fn from(g: Gf) -> Self {
        g.0
    }
}

impl Add for Gf {
    type Output = Gf;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // addition in GF(2^8) *is* XOR
    fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // addition in GF(2^8) *is* XOR
    fn add_assign(&mut self, rhs: Gf) {
        self.0 ^= rhs.0;
    }
}

// In characteristic 2, subtraction coincides with addition.
impl Sub for Gf {
    type Output = Gf;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // char 2: subtraction = addition
    fn sub(self, rhs: Gf) -> Gf {
        self + rhs
    }
}

impl SubAssign for Gf {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // char 2: subtraction = addition
    fn sub_assign(&mut self, rhs: Gf) {
        *self += rhs;
    }
}

impl Neg for Gf {
    type Output = Gf;
    #[inline]
    fn neg(self) -> Gf {
        self
    }
}

impl Mul for Gf {
    type Output = Gf;
    #[inline]
    fn mul(self, rhs: Gf) -> Gf {
        Gf(MUL[self.0 as usize][rhs.0 as usize])
    }
}

impl MulAssign for Gf {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf) {
        *self = *self * rhs;
    }
}

impl Div for Gf {
    type Output = Gf;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division = multiply by inverse
    fn div(self, rhs: Gf) -> Gf {
        self * rhs.inv()
    }
}

impl DivAssign for Gf {
    #[inline]
    fn div_assign(&mut self, rhs: Gf) {
        *self = *self / rhs;
    }
}

impl Sum for Gf {
    fn sum<I: Iterator<Item = Gf>>(iter: I) -> Gf {
        iter.fold(Gf::ZERO, |a, b| a + b)
    }
}

impl Product for Gf {
    fn product<I: Iterator<Item = Gf>>(iter: I) -> Gf {
        iter.fold(Gf::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_structure() {
        for a in Gf::all() {
            assert_eq!(a + Gf::ZERO, a);
            assert_eq!(a + a, Gf::ZERO); // every element is its own negative
            assert_eq!(-a, a);
            assert_eq!(a - a, Gf::ZERO);
        }
    }

    #[test]
    fn multiplicative_identity_and_inverse() {
        for a in Gf::all() {
            assert_eq!(a * Gf::ONE, a);
            if !a.is_zero() {
                assert_eq!(a * a.inv(), Gf::ONE);
                assert_eq!(a / a, Gf::ONE);
            }
        }
    }

    #[test]
    fn pow_agrees_with_repeated_multiplication() {
        for a in [Gf(0), Gf(1), Gf(2), Gf(3), Gf(0x1D), Gf(0xFF)] {
            let mut acc = Gf::ONE;
            for e in 0..600u32 {
                assert_eq!(a.pow(e), acc, "a={a:?} e={e}");
                acc *= a;
            }
        }
    }

    #[test]
    fn alpha_pow_wraps() {
        assert_eq!(Gf::alpha_pow(0), Gf::ONE);
        assert_eq!(Gf::alpha_pow(255), Gf::ONE);
        assert_eq!(Gf::alpha_pow(256), Gf::ALPHA);
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn inv_of_zero_panics() {
        let _ = Gf::ZERO.inv();
    }

    #[test]
    #[should_panic(expected = "log of zero")]
    fn log_of_zero_panics() {
        let _ = Gf::ZERO.log();
    }

    #[test]
    fn sum_and_product_adaptors() {
        let xs = [Gf(1), Gf(2), Gf(3)];
        assert_eq!(xs.iter().copied().sum::<Gf>(), Gf(1 ^ 2 ^ 3));
        assert_eq!(xs.iter().copied().product::<Gf>(), Gf(2) * Gf(3));
    }
}
