//! EVENODD and RDP — the classical two-parity *array codes* the paper's
//! §7.6 comparison table quotes (the `·E` and `·R` entries from Zhou &
//! Tian's study) — implemented as parity bit-matrices and executed through
//! the same SLP optimization pipeline as the Reed–Solomon codec.
//!
//! This demonstrates a point the paper makes implicitly: once a code is
//! expressed as XOR programs, *any* XOR-based erasure code rides the same
//! compressor/fuser/scheduler and SIMD runtime — the codes below need no
//! GF(2^8) arithmetic at all.
//!
//! * **EVENODD** (Blaum–Brady–Bruck–Menon 1995): `p` prime, up to `p`
//!   data disks of `p−1` symbols; parity disk `P` holds row parities,
//!   disk `Q` holds diagonal parities adjusted by the common term `S`
//!   (the "missing diagonal").
//! * **RDP** (Corbett et al., FAST '04): `p` prime, up to `p−1` data
//!   disks of `p−1` symbols; row parity at column `p−1`, and diagonal
//!   parity over data *and* row parity.
//!
//! Both tolerate any two disk erasures. Decoding here is deliberately
//! generic rather than code-specific: surviving symbols form an F2 linear
//! system over the data symbols; we select an invertible square
//! subsystem, invert it over F2 ([`bitmatrix::BitMatrix::invert`]), and
//! compile the resulting recovery rows into an optimized SLP, exactly as
//! the RS decoder does over GF(2^8).

mod codec;
mod evenodd;
mod rdp;

pub use codec::{ArrayCodec, ArrayCodecError};
pub use evenodd::evenodd_parity_bitmatrix;
pub use rdp::rdp_parity_bitmatrix;

/// Smallest prime `≥ n` (array-code parameter helper).
pub fn next_prime(n: usize) -> usize {
    fn is_prime(x: usize) -> bool {
        if x < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= x {
            if x.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    }
    (n.max(2)..).find(|&x| is_prime(x)).expect("primes are unbounded")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_prime_values() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(3), 3);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(10), 11);
        assert_eq!(next_prime(12), 13);
    }
}
