//! The RDP (Row-Diagonal Parity) code (Corbett et al., FAST '04).
//!
//! Parameters: a prime `p` and `k ≤ p − 1` data disks of `p − 1` symbols.
//! The conceptual array is `(p−1) × (p+1)`: columns `0..p−1` are data
//! (zero-padded past `k`), column `p−1` is the row-parity disk `R`, and
//! the diagonal-parity disk stores
//!
//! ```text
//! R[i] = ⊕_{j<p−1} a[i][j]
//! D[d] = ⊕ { a[i][j] : (i + j) mod p = d, j ≤ p−1 }      d ∈ 0..p−1
//! ```
//!
//! where the diagonal sums *include the row-parity column* and diagonal
//! `p − 1` is never stored (the "missing diagonal").

use bitmatrix::BitMatrix;
use std::collections::BTreeSet;

fn toggle(set: &mut BTreeSet<usize>, col: usize) {
    if !set.remove(&col) {
        set.insert(col);
    }
}

/// Build the `2(p−1) × k(p−1)` parity bit-matrix of RDP(k, p): rows
/// `0..p−1` define the row-parity disk, rows `p−1..2(p−1)` the diagonal
/// disk, both expressed over the data symbols only (row-parity terms in
/// the diagonals are expanded through their definitions).
///
/// # Panics
/// Panics unless `p` is prime and `1 ≤ k ≤ p − 1`.
pub fn rdp_parity_bitmatrix(k: usize, p: usize) -> BitMatrix {
    assert!(p >= 2 && (2..p).all(|d| !p.is_multiple_of(d)), "p = {p} must be prime");
    assert!(k >= 1 && k < p, "RDP needs 1 ≤ k ≤ p−1 (got k = {k})");
    let w = p - 1;
    let col = |i: usize, j: usize| {
        debug_assert!(i < w && j < k);
        j * w + i
    };

    let mut m = BitMatrix::zero(2 * w, k * w);

    // Row parity.
    for i in 0..w {
        for j in 0..k {
            m.set(i, col(i, j), true);
        }
    }

    // Diagonal parity d ∈ 0..p−1 (diagonal p−1 missing).
    for d in 0..w {
        let mut set: BTreeSet<usize> = BTreeSet::new();
        // data columns j ∈ 0..k on diagonal d: row i = (d − j) mod p
        for j in 0..k {
            let i = (d + p - j) % p;
            if i != p - 1 {
                toggle(&mut set, col(i, j));
            }
        }
        // the row-parity column j = p−1: its cell on diagonal d is row
        // i = (d + 1) mod p; expand R[i] into data symbols.
        let i = (d + 1) % p;
        if i != p - 1 {
            for j in 0..k {
                toggle(&mut set, col(i, j));
            }
        }
        for c in set {
            m.set(w + d, c, true);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook RDP computed directly on a concrete array.
    fn naive_rdp(k: usize, p: usize, a: &[Vec<u8>]) -> (Vec<u8>, Vec<u8>) {
        let w = p - 1;
        let data = |i: usize, j: usize| -> u8 {
            if i >= w || j >= k {
                0
            } else {
                a[j][i]
            }
        };
        let r: Vec<u8> = (0..w)
            .map(|i| (0..w.max(k)).fold(0, |acc, j| acc ^ data(i, j)))
            .collect();
        // cell(i, j) for the full (p−1) × p array incl. row parity at p−1
        let cell = |i: usize, j: usize| -> u8 {
            if i >= w {
                0
            } else if j == p - 1 {
                r[i]
            } else {
                data(i, j)
            }
        };
        let d: Vec<u8> = (0..w)
            .map(|dd| (0..p).fold(0, |acc, j| acc ^ cell((dd + p - j) % p, j)))
            .collect();
        (r, d)
    }

    fn apply_bitmatrix(m: &BitMatrix, w: usize, a: &[Vec<u8>]) -> Vec<u8> {
        (0..m.rows())
            .map(|r| m.ones_in_row(r).fold(0u8, |acc, c| acc ^ a[c / w][c % w]))
            .collect()
    }

    #[test]
    fn bitmatrix_matches_textbook_definition() {
        for (k, p) in [(2usize, 3usize), (4, 5), (3, 5), (6, 7), (4, 7)] {
            let w = p - 1;
            let a: Vec<Vec<u8>> = (0..k)
                .map(|j| (0..w).map(|i| ((i * 29 + j * 17 + 5) % 249) as u8).collect())
                .collect();
            let (r, d) = naive_rdp(k, p, &a);
            let m = rdp_parity_bitmatrix(k, p);
            let got = apply_bitmatrix(&m, w, &a);
            assert_eq!(&got[..w], &r[..], "row parity, k={k} p={p}");
            assert_eq!(&got[w..], &d[..], "diag parity, k={k} p={p}");
        }
    }

    #[test]
    fn any_two_disk_erasures_are_decodable() {
        for (k, p) in [(2usize, 3usize), (4, 5), (6, 7)] {
            let w = p - 1;
            let parity = rdp_parity_bitmatrix(k, p);
            let mut gen = BitMatrix::zero((k + 2) * w, k * w);
            for t in 0..k * w {
                gen.set(t, t, true);
            }
            for r in 0..2 * w {
                for c in parity.ones_in_row(r).collect::<Vec<_>>() {
                    gen.set(k * w + r, c, true);
                }
            }
            for d1 in 0..k + 2 {
                for d2 in d1 + 1..k + 2 {
                    let rows: Vec<usize> = (0..(k + 2) * w)
                        .filter(|&r| r / w != d1 && r / w != d2)
                        .collect();
                    let surv = BitMatrix::from_fn(rows.len(), k * w, |i, j| gen.get(rows[i], j));
                    assert_eq!(
                        surv.rank(),
                        k * w,
                        "RDP({k},{p}) not 2-erasure decodable for disks {d1},{d2}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "1 ≤ k ≤ p−1")]
    fn k_equal_p_rejected() {
        let _ = rdp_parity_bitmatrix(5, 5);
    }
}
