//! A generic two-parity array codec over the SLP pipeline.

use crate::{evenodd_parity_bitmatrix, next_prime, rdp_parity_bitmatrix};
use bitmatrix::BitMatrix;
use slp::{binary_slp_from_bitmatrix, Slp};
use slp_optimizer::{optimize, OptConfig};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use xor_runtime::{cpu_backend, ComputeBackend, ExecProgram, Kernel};

/// Errors of the array codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArrayCodecError {
    /// Wrong shard count/length.
    Shards(String),
    /// More than two disks lost.
    TooManyErasures { missing: usize },
    /// Surviving symbols do not determine the data (would indicate a bug
    /// in the code construction).
    Unsolvable { lost: Vec<usize> },
    /// A repair-plan source disk required by
    /// [`ArrayCodec::reconstruct_subset`] was not provided.
    MissingSource { shard: usize },
}

impl fmt::Display for ArrayCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayCodecError::Shards(m) => write!(f, "bad shards: {m}"),
            ArrayCodecError::TooManyErasures { missing } => {
                write!(f, "{missing} disks missing but only 2 tolerated")
            }
            ArrayCodecError::Unsolvable { lost } => {
                write!(f, "surviving symbols do not determine the data (lost {lost:?})")
            }
            ArrayCodecError::MissingSource { shard } => {
                write!(f, "repair-plan source disk {shard} was not provided")
            }
        }
    }
}

impl std::error::Error for ArrayCodecError {}

/// Which array code a codec implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    EvenOdd,
    Rdp,
}

/// A two-parity array codec (`k` data disks + 2 parity disks), encoded and
/// decoded by optimized straight-line XOR programs.
///
/// Shards are striped into `w = p − 1` packets (the code's symbol count),
/// so shard lengths must be multiples of `w`; the convenience
/// [`ArrayCodec::encode`] pads as needed.
///
/// Execution goes through a [`ComputeBackend`] — the same parallel
/// engine the RS pipeline uses, since both share the SLP execution path.
/// The engine knobs default to the machine's tuned `ec-tune` profile,
/// refined by the `XORSLP_KERNEL`/`XORSLP_BLOCKSIZE`/
/// `XORSLP_PARALLELISM` environment overrides; override per codec with
/// [`ArrayCodec::with_parallelism`] or [`ArrayCodec::set_backend`].
pub struct ArrayCodec {
    kind: Kind,
    k: usize,
    p: usize,
    w: usize,
    /// Full generator: data symbols (identity) then the 2w parity symbols.
    generator: BitMatrix,
    enc_prog: ExecProgram,
    enc_slp: Slp,
    blocksize: usize,
    kernel: Kernel,
    opt: OptConfig,
    backend: Arc<dyn ComputeBackend>,
    dec_cache: Mutex<HashMap<Vec<usize>, Arc<DecEntry>>>,
    /// Per-disk delta-update programs (domain is `0..k`, so a plain map
    /// is already bounded).
    upd_cache: Mutex<HashMap<usize, Arc<UpdEntry>>>,
    /// Single-parity-row re-encode programs (domain is `{0, 1}`).
    row_cache: Mutex<HashMap<usize, Arc<UpdEntry>>>,
}

struct DecEntry {
    prog: Option<ExecProgram>,
    /// (disk, symbol) feeding each program input, in order.
    inputs: Vec<(usize, usize)>,
    lost_data: Vec<usize>,
}

/// One disk's column-block program: maps the disk's `w` delta symbols to
/// the `2w` parity-symbol deltas.
struct UpdEntry {
    slp: Slp,
    prog: ExecProgram,
}

impl ArrayCodec {
    /// EVENODD with `k` data disks; `p` is the smallest prime ≥ max(k, 3).
    pub fn evenodd(k: usize) -> ArrayCodec {
        let p = next_prime(k.max(3));
        ArrayCodec::build(Kind::EvenOdd, k, p)
    }

    /// RDP with `k` data disks; `p` is the smallest prime ≥ max(k+1, 3).
    pub fn rdp(k: usize) -> ArrayCodec {
        let p = next_prime((k + 1).max(3));
        ArrayCodec::build(Kind::Rdp, k, p)
    }

    fn build(kind: Kind, k: usize, p: usize) -> ArrayCodec {
        assert!(k >= 1, "need at least one data disk");
        let w = p - 1;
        let parity = match kind {
            Kind::EvenOdd => evenodd_parity_bitmatrix(k, p),
            Kind::Rdp => rdp_parity_bitmatrix(k, p),
        };
        // Generator: identity for the k·w data symbols, then parity rows.
        let mut generator = BitMatrix::zero((k + 2) * w, k * w);
        for t in 0..k * w {
            generator.set(t, t, true);
        }
        for r in 0..2 * w {
            for c in parity.ones_in_row(r).collect::<Vec<_>>() {
                generator.set(k * w + r, c, true);
            }
        }
        let opt = OptConfig::FULL_DFS;
        // Same engine-knob precedence as RsConfig::new: tuned profile
        // below, env overrides on top, builder calls above everything.
        let tuned = ec_tune::engine_defaults();
        let blocksize = xor_runtime::env_blocksize().unwrap_or(tuned.blocksize);
        let kernel = Kernel::from_env().unwrap_or(tuned.kernel);
        let enc_slp = optimize(&binary_slp_from_bitmatrix(&parity), opt);
        let enc_prog = ExecProgram::compile(&enc_slp, blocksize, kernel);
        ArrayCodec {
            kind,
            k,
            p,
            w,
            generator,
            enc_prog,
            enc_slp,
            blocksize,
            kernel,
            opt,
            backend: cpu_backend(
                xor_runtime::env_parallelism().unwrap_or(tuned.parallelism),
            ),
            dec_cache: Mutex::new(HashMap::new()),
            upd_cache: Mutex::new(HashMap::new()),
            row_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Builder-style parallelism override: `0` = auto (share the global
    /// machine-sized pool), `k ≥ 1` = a dedicated `k`-worker pool.
    pub fn with_parallelism(mut self, parallelism: usize) -> ArrayCodec {
        self.backend = cpu_backend(parallelism);
        self
    }

    /// Swap the execution substrate (the accelerator seam); the default
    /// is the CPU backend.
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.backend = backend;
    }

    /// Number of data disks.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Number of parity disks (always 2 for these codes).
    pub fn parity_shards(&self) -> usize {
        2
    }

    /// Total disks (`k + 2`).
    pub fn total_shards(&self) -> usize {
        self.k + 2
    }

    /// Symbols (packets) per disk, `w = p − 1`.
    pub fn symbols_per_shard(&self) -> usize {
        self.w
    }

    /// The prime parameter.
    pub fn prime(&self) -> usize {
        self.p
    }

    /// The optimized encoding SLP (for metrics).
    pub fn encode_slp(&self) -> &Slp {
        &self.enc_slp
    }

    /// Whether this codec is EVENODD (as opposed to RDP).
    pub fn is_evenodd(&self) -> bool {
        self.kind == Kind::EvenOdd
    }

    /// Human-readable code name.
    pub fn name(&self) -> String {
        match self.kind {
            Kind::EvenOdd => format!("EVENODD(k={}, p={})", self.k, self.p),
            Kind::Rdp => format!("RDP(k={}, p={})", self.k, self.p),
        }
    }

    fn packets<'a>(&self, shard: &'a [u8]) -> Vec<&'a [u8]> {
        let pl = shard.len() / self.w;
        shard.chunks_exact(pl.max(1)).take(self.w).collect()
    }

    /// The shard length [`ArrayCodec::encode`] produces for `data_len`
    /// bytes: the smallest `w`-aligned length whose `k` shards cover the
    /// data.
    pub fn shard_len(&self, data_len: usize) -> usize {
        data_len.div_ceil(self.k).div_ceil(self.w) * self.w
    }

    /// Split `data` into the `k` padded data shards [`ArrayCodec::encode`]
    /// would produce, without computing parity (the authoritative
    /// data→shard layout, mirroring `RsCodec::split_data`).
    pub fn split_data(&self, data: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = self.shard_len(data.len());
        (0..self.k)
            .map(|j| {
                let mut shard = vec![0u8; shard_len];
                let lo = (j * shard_len).min(data.len());
                let hi = ((j + 1) * shard_len).min(data.len());
                shard[..hi - lo].copy_from_slice(&data[lo..hi]);
                shard
            })
            .collect()
    }

    /// Encode a byte buffer into `k + 2` shards (zero-padded so the shard
    /// length is a multiple of `w`).
    pub fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, ArrayCodecError> {
        let mut shards = vec![Vec::new(); self.k + 2];
        self.encode_into(data, &mut shards)?;
        Ok(shards)
    }

    /// [`ArrayCodec::encode`] into caller-owned shard buffers: each of
    /// the `k + 2` vectors is resized to [`ArrayCodec::shard_len`] and
    /// filled (data split + zero padding, then parity), retaining buffer
    /// capacity across calls like `RsCodec::encode_into`.
    pub fn encode_into(
        &self,
        data: &[u8],
        shards: &mut [Vec<u8>],
    ) -> Result<(), ArrayCodecError> {
        if shards.len() != self.k + 2 {
            return Err(ArrayCodecError::Shards(format!(
                "expected {} shards, got {}",
                self.k + 2,
                shards.len()
            )));
        }
        let shard_len = self.shard_len(data.len());
        for (j, shard) in shards.iter_mut().take(self.k).enumerate() {
            shard.clear();
            shard.resize(shard_len, 0);
            let lo = (j * shard_len).min(data.len());
            let hi = ((j + 1) * shard_len).min(data.len());
            shard[..hi - lo].copy_from_slice(&data[lo..hi]);
        }
        for shard in shards.iter_mut().skip(self.k) {
            shard.resize(shard_len, 0);
        }
        if shard_len > 0 {
            let (d, q) = shards.split_at_mut(self.k);
            let inputs: Vec<&[u8]> = d.iter().flat_map(|s| self.packets(s)).collect();
            let pl = shard_len / self.w;
            let mut outputs: Vec<&mut [u8]> = q
                .iter_mut()
                .flat_map(|s| s.chunks_exact_mut(pl))
                .collect();
            self.backend
                .run(&self.enc_prog, &inputs, &mut outputs)
                .expect("encode program shapes are fixed at construction");
        }
        Ok(())
    }

    /// Validate `k` data refs + parity refs sharing one `w`-aligned
    /// length; returns that length.
    fn parity_prologue(
        &self,
        data: &[&[u8]],
        parity: &[&mut [u8]],
        parity_expected: usize,
    ) -> Result<usize, ArrayCodecError> {
        if data.len() != self.k {
            return Err(ArrayCodecError::Shards(format!(
                "expected {} data shards, got {}",
                self.k,
                data.len()
            )));
        }
        if parity.len() != parity_expected {
            return Err(ArrayCodecError::Shards(format!(
                "expected {parity_expected} parity shards, got {}",
                parity.len()
            )));
        }
        let len = data.first().map_or(0, |s| s.len());
        if data.iter().any(|s| s.len() != len)
            || parity.iter().any(|s| s.len() != len)
        {
            return Err(ArrayCodecError::Shards(
                "data and parity shard lengths differ".into(),
            ));
        }
        if !len.is_multiple_of(self.w) {
            return Err(ArrayCodecError::Shards(format!(
                "shard length {len} is not a multiple of w = {}",
                self.w
            )));
        }
        Ok(len)
    }

    /// Compute both parity shards from complete data shards, in place.
    pub fn encode_parity(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
    ) -> Result<(), ArrayCodecError> {
        let len = self.parity_prologue(data, parity, 2)?;
        if len == 0 {
            return Ok(());
        }
        let pl = len / self.w;
        let inputs: Vec<&[u8]> = data.iter().flat_map(|s| self.packets(s)).collect();
        let mut outputs: Vec<&mut [u8]> = parity
            .iter_mut()
            .flat_map(|s| s.chunks_exact_mut(pl))
            .collect();
        self.backend
            .run(&self.enc_prog, &inputs, &mut outputs)
            .expect("encode program shapes are fixed at construction");
        Ok(())
    }

    /// Build (or fetch) the re-encode program for a single parity disk:
    /// that disk's `w` rows of the parity bit-matrix over all data
    /// symbols.
    fn row_entry(&self, row: usize) -> Arc<UpdEntry> {
        if let Some(e) = self.row_cache.lock().expect("cache lock").get(&row) {
            return e.clone();
        }
        let (k, w) = (self.k, self.w);
        let block = self.generator.row_range(k * w + row * w, w);
        let slp = optimize(&binary_slp_from_bitmatrix(&block), self.opt);
        let prog = ExecProgram::compile(&slp, self.blocksize, self.kernel);
        let entry = Arc::new(UpdEntry { slp, prog });
        self.row_cache
            .lock()
            .expect("cache lock")
            .insert(row, entry.clone());
        entry
    }

    /// Re-encode a subset of the parity disks from complete data
    /// (`rows` ⊆ `{0, 1}`, strictly increasing; `parity[t]` receives
    /// parity disk `rows[t]`). Mirrors `RsCodec::encode_parity_partial`:
    /// repairing one lost parity disk costs that disk's rows only.
    pub fn encode_parity_partial(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        rows: &[usize],
    ) -> Result<(), ArrayCodecError> {
        if rows.is_empty() || !rows.windows(2).all(|p| p[0] < p[1]) {
            return Err(ArrayCodecError::Shards(
                "parity rows must be non-empty and strictly increasing".into(),
            ));
        }
        if *rows.last().expect("non-empty") >= 2 {
            return Err(ArrayCodecError::Shards(
                "parity row index out of range (2 parity disks)".into(),
            ));
        }
        if rows.len() == 2 {
            return self.encode_parity(data, parity);
        }
        let len = self.parity_prologue(data, parity, 1)?;
        if len == 0 {
            return Ok(());
        }
        let pl = len / self.w;
        let entry = self.row_entry(rows[0]);
        let inputs: Vec<&[u8]> = data.iter().flat_map(|s| self.packets(s)).collect();
        let mut outputs: Vec<&mut [u8]> = parity
            .iter_mut()
            .flat_map(|s| s.chunks_exact_mut(pl))
            .collect();
        self.backend
            .run(&entry.prog, &inputs, &mut outputs)
            .expect("row program shapes are fixed at construction");
        Ok(())
    }

    /// Build (or fetch) the delta-update program for one data disk: the
    /// disk's column block of the parity bit-matrix, run through the same
    /// SLP pipeline as the full encode.
    fn update_entry(&self, disk: usize) -> Arc<UpdEntry> {
        if let Some(e) = self.upd_cache.lock().expect("cache lock").get(&disk) {
            return e.clone();
        }
        let (k, w) = (self.k, self.w);
        // Parity rows of the generator, restricted to this disk's symbols.
        let block = self
            .generator
            .row_range(k * w, 2 * w)
            .col_range(disk * w, w);
        let slp = optimize(&binary_slp_from_bitmatrix(&block), self.opt);
        let prog = ExecProgram::compile(&slp, self.blocksize, self.kernel);
        let entry = Arc::new(UpdEntry { slp, prog });
        self.upd_cache
            .lock()
            .expect("cache lock")
            .insert(disk, entry.clone());
        entry
    }

    /// Delta parity update: after data disk `disk` changes from `old` to
    /// `new`, bring both parity disks up to date in place without
    /// touching the other `k − 1` data disks (same identity as
    /// `RsCodec::update_parity`, over the array code's `w`-symbol
    /// striping).
    ///
    /// `old`, `new` and both parity shards must share one length, a
    /// multiple of `w`. Zero-length shards are a no-op.
    pub fn update_parity(
        &self,
        disk: usize,
        old: &[u8],
        new: &[u8],
        parity: &mut [&mut [u8]],
    ) -> Result<(), ArrayCodecError> {
        if disk >= self.k {
            return Err(ArrayCodecError::Shards(format!(
                "data disk index {disk} out of range (data disks: {})",
                self.k
            )));
        }
        if parity.len() != 2 {
            return Err(ArrayCodecError::Shards(format!(
                "expected 2 parity shards, got {}",
                parity.len()
            )));
        }
        let len = old.len();
        if new.len() != len || parity.iter().any(|s| s.len() != len) {
            return Err(ArrayCodecError::Shards(
                "old, new and parity shard lengths differ".into(),
            ));
        }
        if !len.is_multiple_of(self.w) {
            return Err(ArrayCodecError::Shards(format!(
                "shard length {len} is not a multiple of w = {}",
                self.w
            )));
        }
        if len == 0 {
            return Ok(());
        }
        // Same delta discipline as `RsCodec::update_parity`, over the
        // array code's w-symbol striping (shared runtime helper).
        self.backend
            .run_delta(&self.update_entry(disk).prog, self.w, old, new, parity)
            .expect("update program shapes are fixed at construction");
        Ok(())
    }

    /// The optimized SLP of one disk's delta-update program (for
    /// metrics: a single-disk write pays this XOR count, against
    /// [`ArrayCodec::encode_slp`] for the full stripe).
    pub fn update_slp(&self, disk: usize) -> Result<Slp, ArrayCodecError> {
        if disk >= self.k {
            return Err(ArrayCodecError::Shards(format!(
                "data disk index {disk} out of range (data disks: {})",
                self.k
            )));
        }
        Ok(self.update_entry(disk).slp.clone())
    }

    /// Build (or fetch) the decode program for a set of lost disks.
    ///
    /// Returns a shared handle so execution happens *after* the cache
    /// lock is released — concurrent decodes of different (or the same)
    /// patterns never serialize on program execution.
    fn decode_entry(&self, lost: &[usize]) -> Result<Arc<DecEntry>, ArrayCodecError> {
        let mut key: Vec<usize> = lost.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(e) = self.dec_cache.lock().expect("cache lock").get(&key) {
            return Ok(e.clone());
        }

        let (k, w) = (self.k, self.w);
        let lost_data: Vec<usize> = key.iter().copied().filter(|&d| d < k).collect();
        let entry = if lost_data.is_empty() {
            DecEntry { prog: None, inputs: Vec::new(), lost_data }
        } else {
            // Surviving symbol rows of the generator.
            let surv_rows: Vec<usize> = (0..(k + 2) * w)
                .filter(|&r| !key.contains(&(r / w)))
                .collect();
            let m = BitMatrix::from_fn(surv_rows.len(), k * w, |i, j| {
                self.generator.get(surv_rows[i], j)
            });
            let chosen = m.select_independent_rows();
            if chosen.len() < k * w {
                return Err(ArrayCodecError::Unsolvable { lost: key.clone() });
            }
            let square = BitMatrix::from_fn(k * w, k * w, |i, j| m.get(chosen[i], j));
            let inv = square
                .invert()
                .expect("independent row selection yields an invertible square");
            // Recovery rows for the lost data symbols.
            let lost_syms: Vec<usize> = lost_data
                .iter()
                .flat_map(|&d| (0..w).map(move |i| d * w + i))
                .collect();
            let rec = BitMatrix::from_fn(lost_syms.len(), k * w, |i, j| {
                inv.get(lost_syms[i], j)
            });
            let slp = optimize(&binary_slp_from_bitmatrix(&rec), self.opt);
            let prog = ExecProgram::compile(&slp, self.blocksize, self.kernel);
            let inputs: Vec<(usize, usize)> = chosen
                .iter()
                .map(|&i| {
                    let r = surv_rows[i];
                    (r / w, r % w)
                })
                .collect();
            DecEntry { prog: Some(prog), inputs, lost_data }
        };
        let entry = Arc::new(entry);
        self.dec_cache
            .lock()
            .expect("cache lock")
            .insert(key, entry.clone());
        Ok(entry)
    }

    /// Recover the original buffer from surviving shards (at most two
    /// disks may be `None`).
    pub fn decode(
        &self,
        shards: &[Option<Vec<u8>>],
        data_len: usize,
    ) -> Result<Vec<u8>, ArrayCodecError> {
        let total = self.k + 2;
        if shards.len() != total {
            return Err(ArrayCodecError::Shards(format!("expected {total} shards")));
        }
        let missing: Vec<usize> = (0..total).filter(|&d| shards[d].is_none()).collect();
        if missing.len() > 2 {
            return Err(ArrayCodecError::TooManyErasures { missing: missing.len() });
        }
        let Some(shard_len) = shards.iter().flatten().map(Vec::len).next() else {
            return Err(ArrayCodecError::Shards("no shards present".into()));
        };
        if shards.iter().flatten().any(|s| s.len() != shard_len)
            || shard_len % self.w != 0
        {
            return Err(ArrayCodecError::Shards(
                "inconsistent or misaligned shard lengths".into(),
            ));
        }
        let pl = shard_len / self.w;

        let entry = self.decode_entry(&missing)?;
        let mut rebuilt: Vec<Vec<u8>> = Vec::new();
        if let Some(prog) = &entry.prog {
            if pl > 0 {
                let inputs: Vec<&[u8]> = entry
                    .inputs
                    .iter()
                    .map(|&(d, s)| {
                        let shard = shards[d].as_deref().expect("survivor present");
                        &shard[s * pl..(s + 1) * pl]
                    })
                    .collect();
                rebuilt = vec![vec![0u8; shard_len]; entry.lost_data.len()];
                let mut outputs: Vec<&mut [u8]> = rebuilt
                    .iter_mut()
                    .flat_map(|s| s.chunks_exact_mut(pl))
                    .collect();
                self.backend
                    .run(prog, &inputs, &mut outputs)
                    .expect("decode program shapes are fixed at construction");
            } else {
                rebuilt = vec![Vec::new(); entry.lost_data.len()];
            }
        }

        let mut out = Vec::with_capacity(self.k * shard_len);
        let mut it = rebuilt.into_iter();
        for (d, shard) in shards.iter().take(self.k).enumerate() {
            match shard {
                Some(s) => out.extend_from_slice(s),
                None => {
                    debug_assert!(entry.lost_data.contains(&d));
                    out.extend_from_slice(&it.next().expect("rebuilt per lost disk"));
                }
            }
        }
        out.truncate(data_len);
        Ok(out)
    }

    /// The surviving disks a repair of `lost` must read: the disks the
    /// decode program's inputs come from, plus — for lost parity disks —
    /// every surviving data disk their generator rows touch (both array
    /// codes' parity rows touch all data disks).
    pub fn repair_sources(&self, lost: &[usize]) -> Result<Vec<usize>, ArrayCodecError> {
        let mut lost: Vec<usize> = lost.to_vec();
        lost.sort_unstable();
        lost.dedup();
        if lost.len() > 2 {
            return Err(ArrayCodecError::TooManyErasures { missing: lost.len() });
        }
        let entry = self.decode_entry(&lost)?;
        let mut sources: Vec<usize> = entry.inputs.iter().map(|&(d, _)| d).collect();
        let (k, w) = (self.k, self.w);
        for &d in lost.iter().filter(|&&d| d >= k) {
            for r in 0..w {
                for c in self.generator.ones_in_row(k * w + (d - k) * w + r) {
                    let disk = c / w;
                    if !lost.contains(&disk) {
                        sources.push(disk);
                    }
                }
            }
        }
        sources.sort_unstable();
        sources.dedup();
        Ok(sources)
    }

    /// Rebuild every missing disk in place (at most two may be `None`).
    pub fn reconstruct(
        &self,
        shards: &mut [Option<Vec<u8>>],
    ) -> Result<(), ArrayCodecError> {
        let total = self.k + 2;
        if shards.len() != total {
            return Err(ArrayCodecError::Shards(format!("expected {total} shards")));
        }
        let missing: Vec<usize> = (0..total).filter(|&d| shards[d].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > 2 {
            return Err(ArrayCodecError::TooManyErasures { missing: missing.len() });
        }
        self.reconstruct_subset(shards, &missing)
    }

    /// Rebuild exactly the disks in `targets`, reading only the disks
    /// the repair plan names; other `None` entries are treated as
    /// unavailable and left untouched. Mirrors
    /// `RsCodec::reconstruct_subset`.
    pub fn reconstruct_subset(
        &self,
        shards: &mut [Option<Vec<u8>>],
        targets: &[usize],
    ) -> Result<(), ArrayCodecError> {
        let total = self.k + 2;
        if shards.len() != total {
            return Err(ArrayCodecError::Shards(format!("expected {total} shards")));
        }
        let mut targets: Vec<usize> = targets.to_vec();
        targets.sort_unstable();
        targets.dedup();
        if targets.is_empty() {
            return Ok(());
        }
        if targets.len() > 2 {
            return Err(ArrayCodecError::TooManyErasures { missing: targets.len() });
        }
        let entry = self.decode_entry(&targets)?;
        if let Some(&(absent, _)) =
            entry.inputs.iter().find(|&&(d, _)| shards[d].is_none())
        {
            return Err(ArrayCodecError::MissingSource { shard: absent });
        }
        let Some(shard_len) = shards.iter().flatten().map(Vec::len).next() else {
            return Err(ArrayCodecError::Shards("no shards present".into()));
        };
        if shards.iter().flatten().any(|s| s.len() != shard_len)
            || shard_len % self.w != 0
        {
            return Err(ArrayCodecError::Shards(
                "inconsistent or misaligned shard lengths".into(),
            ));
        }
        let pl = shard_len / self.w;

        // Phase 1: rebuild lost data disks from the program's inputs.
        if let Some(prog) = &entry.prog {
            if pl > 0 {
                let mut rebuilt: Vec<Vec<u8>> =
                    vec![vec![0u8; shard_len]; entry.lost_data.len()];
                {
                    let inputs: Vec<&[u8]> = entry
                        .inputs
                        .iter()
                        .map(|&(d, s)| {
                            let shard = shards[d].as_deref().expect("source present");
                            &shard[s * pl..(s + 1) * pl]
                        })
                        .collect();
                    let mut outputs: Vec<&mut [u8]> = rebuilt
                        .iter_mut()
                        .flat_map(|s| s.chunks_exact_mut(pl))
                        .collect();
                    self.backend
                        .run(prog, &inputs, &mut outputs)
                        .expect("decode program shapes are fixed at construction");
                }
                for (&d, shard) in entry.lost_data.iter().zip(rebuilt) {
                    shards[d] = Some(shard);
                }
            } else {
                for &d in &entry.lost_data {
                    shards[d] = Some(Vec::new());
                }
            }
        }

        // Phase 2: re-encode target parity disks; both codes' parity rows
        // touch every data disk, so all data must be present by now.
        let target_rows: Vec<usize> =
            targets.iter().filter(|&&d| d >= self.k).map(|&d| d - self.k).collect();
        if !target_rows.is_empty() {
            if let Some(absent) = (0..self.k).find(|&d| shards[d].is_none()) {
                return Err(ArrayCodecError::MissingSource { shard: absent });
            }
            let data_refs: Vec<&[u8]> = shards[..self.k]
                .iter()
                .map(|s| s.as_deref().expect("data complete"))
                .collect();
            let mut rebuilt: Vec<Vec<u8>> =
                vec![vec![0u8; shard_len]; target_rows.len()];
            {
                let mut refs: Vec<&mut [u8]> =
                    rebuilt.iter_mut().map(Vec::as_mut_slice).collect();
                self.encode_parity_partial(&data_refs, &mut refs, &target_rows)?;
            }
            for (&r, shard) in target_rows.iter().zip(rebuilt) {
                shards[self.k + r] = Some(shard);
            }
        }
        Ok(())
    }

    /// Verify that both parity disks are consistent with the data disks.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, ArrayCodecError> {
        let total = self.k + 2;
        if shards.len() != total {
            return Err(ArrayCodecError::Shards(format!("expected {total} shards")));
        }
        let data_refs: Vec<&[u8]> = shards[..self.k].iter().map(Vec::as_slice).collect();
        let mut expected: Vec<Vec<u8>> = vec![vec![0u8; shards[0].len()]; 2];
        {
            let mut refs: Vec<&mut [u8]> =
                expected.iter_mut().map(Vec::as_mut_slice).collect();
            self.encode_parity(&data_refs, &mut refs)?;
        }
        Ok(expected.iter().zip(&shards[self.k..]).all(|(e, a)| e == a))
    }

    /// Number of decode programs currently cached.
    pub fn decode_cache_len(&self) -> usize {
        self.dec_cache.lock().expect("cache lock").len()
    }

    /// Number of partial (delta-update + parity-row) programs cached.
    pub fn partial_cache_len(&self) -> usize {
        self.upd_cache.lock().expect("cache lock").len()
            + self.row_cache.lock().expect("cache lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 151 + 17) as u8).collect()
    }

    #[test]
    fn evenodd_roundtrip_every_double_erasure() {
        let codec = ArrayCodec::evenodd(5); // p = 5, w = 4
        assert_eq!(codec.prime(), 5);
        let data = sample(5 * 4 * 9 + 3);
        let shards = codec.encode(&data).unwrap();
        let total = codec.total_shards();
        for d1 in 0..total {
            for d2 in d1..total {
                let mut rx: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
                rx[d1] = None;
                rx[d2] = None;
                assert_eq!(
                    codec.decode(&rx, data.len()).unwrap(),
                    data,
                    "EVENODD lost {d1},{d2}"
                );
            }
        }
    }

    #[test]
    fn rdp_roundtrip_every_double_erasure() {
        let codec = ArrayCodec::rdp(4); // p = 5, w = 4
        assert_eq!(codec.prime(), 5);
        let data = sample(4 * 4 * 11);
        let shards = codec.encode(&data).unwrap();
        let total = codec.total_shards();
        for d1 in 0..total {
            for d2 in d1..total {
                let mut rx: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
                rx[d1] = None;
                rx[d2] = None;
                assert_eq!(
                    codec.decode(&rx, data.len()).unwrap(),
                    data,
                    "RDP lost {d1},{d2}"
                );
            }
        }
    }

    #[test]
    fn padded_lengths_roundtrip() {
        for len in [0usize, 1, 7, 40, 41] {
            let codec = ArrayCodec::evenodd(3);
            let data = sample(len);
            let shards = codec.encode(&data).unwrap();
            let rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            assert_eq!(codec.decode(&rx, len).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn three_erasures_rejected() {
        let codec = ArrayCodec::rdp(4);
        let data = sample(64);
        let shards = codec.encode(&data).unwrap();
        let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        rx[0] = None;
        rx[1] = None;
        rx[2] = None;
        assert!(matches!(
            codec.decode(&rx, data.len()),
            Err(ArrayCodecError::TooManyErasures { missing: 3 })
        ));
    }

    #[test]
    fn encode_slp_is_pure_xor_and_optimized() {
        let codec = ArrayCodec::evenodd(8); // p = 11, w = 10
        let slp = codec.encode_slp();
        // fused, scheduled program: far fewer instructions than raw rows
        assert!(slp.instrs.len() < 2 * 10 * 8);
        assert!(slp.xor_count() > 0);
    }

    #[test]
    fn parallel_and_serial_codecs_agree() {
        let data = sample(5 * 4 * 1024 + 7);
        let serial = ArrayCodec::evenodd(5).with_parallelism(1);
        let parallel = ArrayCodec::evenodd(5).with_parallelism(4);
        let s1 = serial.encode(&data).unwrap();
        let s2 = parallel.encode(&data).unwrap();
        assert_eq!(s1, s2);
        let mut rx: Vec<Option<Vec<u8>>> = s2.into_iter().map(Some).collect();
        rx[0] = None;
        rx[6] = None; // diagonal parity
        assert_eq!(parallel.decode(&rx, data.len()).unwrap(), data);
        assert_eq!(serial.decode(&rx, data.len()).unwrap(), data);
    }

    fn parity_of(codec: &ArrayCodec, shards: &[Vec<u8>]) -> Vec<Vec<u8>> {
        shards[codec.data_shards()..].to_vec()
    }

    #[test]
    fn delta_update_matches_full_reencode() {
        for codec in [ArrayCodec::evenodd(5), ArrayCodec::rdp(4)] {
            let k = codec.data_shards();
            let w = codec.symbols_per_shard();
            let data = sample(k * w * 6);
            let shards = codec.encode(&data).unwrap();
            let shard_len = shards[0].len();
            for disk in 0..k {
                let mut new_bytes = data.clone();
                // Mutate only this disk's byte range.
                for b in new_bytes[disk * shard_len..(disk + 1) * shard_len].iter_mut() {
                    *b = b.wrapping_mul(113).wrapping_add(29);
                }
                let expected = codec.encode(&new_bytes).unwrap();

                let mut parity = parity_of(&codec, &shards);
                {
                    let mut prefs: Vec<&mut [u8]> =
                        parity.iter_mut().map(Vec::as_mut_slice).collect();
                    codec
                        .update_parity(
                            disk,
                            &shards[disk],
                            &expected[disk],
                            &mut prefs,
                        )
                        .unwrap();
                }
                assert_eq!(
                    parity,
                    parity_of(&codec, &expected),
                    "{} disk {disk}",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn delta_update_program_is_cheaper_than_full_encode() {
        let codec = ArrayCodec::rdp(8);
        let full = codec.encode_slp().xor_count();
        for disk in 0..codec.data_shards() {
            let upd = codec.update_slp(disk).unwrap().xor_count();
            assert!(upd < full, "disk {disk}: {upd} XORs vs full {full}");
        }
    }

    #[test]
    fn delta_update_validates_inputs() {
        let codec = ArrayCodec::evenodd(3); // p = 3, w = 2
        let w = codec.symbols_per_shard();
        let good = vec![0u8; 4 * w];
        let mut parity = vec![vec![0u8; 4 * w]; 2];
        {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            assert!(codec.update_parity(5, &good, &good, &mut prefs).is_err());
            let short = vec![0u8; 2 * w];
            assert!(codec.update_parity(0, &good, &short, &mut prefs).is_err());
            let odd = vec![0u8; 4 * w + 1];
            let mut odd_parity = vec![vec![0u8; 4 * w + 1]; 2];
            let mut oprefs: Vec<&mut [u8]> =
                odd_parity.iter_mut().map(Vec::as_mut_slice).collect();
            assert!(codec.update_parity(0, &odd, &odd, &mut oprefs).is_err());
            // zero length is a no-op
            let empty: Vec<u8> = Vec::new();
            let mut zero = [Vec::new(), Vec::new()];
            let mut zrefs: Vec<&mut [u8]> =
                zero.iter_mut().map(Vec::as_mut_slice).collect();
            codec.update_parity(0, &empty, &empty, &mut zrefs).unwrap();
        }
        assert!(codec.update_slp(99).is_err());
    }

    #[test]
    fn larger_parameters_roundtrip() {
        let codec = ArrayCodec::rdp(8); // p = 11, w = 10
        let data = sample(8 * 10 * 5 + 9);
        let shards = codec.encode(&data).unwrap();
        let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        rx[3] = None;
        rx[9] = None; // diagonal parity disk
        assert_eq!(codec.decode(&rx, data.len()).unwrap(), data);
    }
}
