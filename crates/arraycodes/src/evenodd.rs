//! The EVENODD code (Blaum, Brady, Bruck, Menon 1995).
//!
//! Parameters: a prime `p` and `k ≤ p` data disks, each holding `p − 1`
//! symbols. Conceptually the data is a `(p−1) × p` array `a[i][j]`
//! (columns `k..p` all-zero when `k < p`) with an *imaginary* all-zero row
//! `i = p−1`. Two parity disks:
//!
//! ```text
//! P[i] = ⊕_j a[i][j]                           (row parity)
//! S    = ⊕_{j=1}^{p−1} a[p−1−j][j]             (the "missing" diagonal)
//! Q[i] = S ⊕ ⊕_j a[(i − j) mod p][j]           (adjusted diagonal parity)
//! ```

use bitmatrix::BitMatrix;
use std::collections::BTreeSet;

/// Toggle-set helper: XOR semantics for building parity rows.
fn toggle(set: &mut BTreeSet<usize>, col: usize) {
    if !set.remove(&col) {
        set.insert(col);
    }
}

/// Build the `2(p−1) × k(p−1)` parity bit-matrix of EVENODD(k, p): rows
/// `0..p−1` define the `P` disk, rows `p−1..2(p−1)` the `Q` disk. Input
/// column `j·(p−1) + i` is symbol `i` of data disk `j`.
///
/// # Panics
/// Panics unless `p` is prime and `1 ≤ k ≤ p`.
pub fn evenodd_parity_bitmatrix(k: usize, p: usize) -> BitMatrix {
    assert!(p >= 2 && (2..p).all(|d| !p.is_multiple_of(d)), "p = {p} must be prime");
    assert!(k >= 1 && k <= p, "EVENODD needs 1 ≤ k ≤ p (got k = {k})");
    let w = p - 1;
    let col = |i: usize, j: usize| {
        debug_assert!(i < w && j < k);
        j * w + i
    };

    let mut m = BitMatrix::zero(2 * w, k * w);

    // P rows: straight row parity.
    for i in 0..w {
        for j in 0..k {
            m.set(i, col(i, j), true);
        }
    }

    // The common term S: the diagonal through the imaginary a[p−1][0].
    let mut s: BTreeSet<usize> = BTreeSet::new();
    for j in 1..k {
        let row = p - 1 - j; // < p−1 for j ≥ 1, so always a real symbol
        toggle(&mut s, col(row, j));
    }

    // Q rows: S ⊕ diagonal i, skipping imaginary (row p−1) cells.
    for i in 0..w {
        let mut set = s.clone();
        for j in 0..k {
            let row = (i + p - j) % p;
            if row != p - 1 {
                toggle(&mut set, col(row, j));
            }
        }
        for c in set {
            m.set(w + i, c, true);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct, index-by-index transcription of the textbook definition,
    /// evaluated on a concrete array (the oracle for the bit-matrix).
    fn naive_evenodd(k: usize, p: usize, a: &[Vec<u8>]) -> (Vec<u8>, Vec<u8>) {
        let w = p - 1;
        // a[j][i]: disk j, symbol i; imaginary row returns 0.
        let at = |i: usize, j: usize| -> u8 {
            if i == p - 1 || j >= k {
                0
            } else {
                a[j][i]
            }
        };
        let p_disk: Vec<u8> = (0..w)
            .map(|i| (0..p).fold(0, |acc, j| acc ^ at(i, j)))
            .collect();
        let s = (1..p).fold(0, |acc, j| acc ^ at(p - 1 - j, j));
        let q_disk: Vec<u8> = (0..w)
            .map(|i| (0..p).fold(s, |acc, j| acc ^ at((i + p - j) % p, j)))
            .collect();
        (p_disk, q_disk)
    }

    fn apply_bitmatrix(m: &BitMatrix, w: usize, a: &[Vec<u8>]) -> Vec<u8> {
        (0..m.rows())
            .map(|r| {
                m.ones_in_row(r)
                    .fold(0u8, |acc, c| acc ^ a[c / w][c % w])
            })
            .collect::<Vec<u8>>()
    }

    #[test]
    fn bitmatrix_matches_textbook_definition() {
        for (k, p) in [(3usize, 3usize), (3, 5), (5, 5), (4, 7), (7, 7)] {
            let w = p - 1;
            let a: Vec<Vec<u8>> = (0..k)
                .map(|j| (0..w).map(|i| ((i * 37 + j * 11 + 3) % 251) as u8).collect())
                .collect();
            let (p_disk, q_disk) = naive_evenodd(k, p, &a);
            let m = evenodd_parity_bitmatrix(k, p);
            let got = apply_bitmatrix(&m, w, &a);
            assert_eq!(&got[..w], &p_disk[..], "P disk, k={k} p={p}");
            assert_eq!(&got[w..], &q_disk[..], "Q disk, k={k} p={p}");
        }
    }

    #[test]
    fn any_two_disk_erasures_are_decodable() {
        // The defining MDS-like property: for every pair of lost disks,
        // the surviving symbol equations have full rank k(p−1).
        for (k, p) in [(3usize, 3usize), (5, 5), (4, 5), (6, 7)] {
            let w = p - 1;
            let parity = evenodd_parity_bitmatrix(k, p);
            let gen = {
                let mut g = BitMatrix::zero((k + 2) * w, k * w);
                for t in 0..k * w {
                    g.set(t, t, true);
                }
                for r in 0..2 * w {
                    for c in parity.ones_in_row(r).collect::<Vec<_>>() {
                        g.set(k * w + r, c, true);
                    }
                }
                g
            };
            for d1 in 0..k + 2 {
                for d2 in d1 + 1..k + 2 {
                    let rows: Vec<usize> = (0..(k + 2) * w)
                        .filter(|&r| r / w != d1 && r / w != d2)
                        .collect();
                    let surv = BitMatrix::from_fn(rows.len(), k * w, |i, j| gen.get(rows[i], j));
                    assert_eq!(
                        surv.rank(),
                        k * w,
                        "EVENODD({k},{p}) not 2-erasure decodable for disks {d1},{d2}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn composite_p_rejected() {
        let _ = evenodd_parity_bitmatrix(3, 4);
    }

    #[test]
    fn single_disk_degenerates_to_mirroring_plus_diag() {
        // k = 1: P[i] = a[i][0], and Q[i] = a[i][0] (S is empty).
        let m = evenodd_parity_bitmatrix(1, 3);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 2);
        for i in 0..2 {
            assert_eq!(m.ones_in_row(i).collect::<Vec<_>>(), vec![i]);
        }
    }
}
