//! Steady-state streaming encode performs **zero allocations per chunk**
//! after warm-up.
//!
//! The whole chain is engineered for this: `StreamEncoder` stages input
//! in fixed buffers, `RsCodec::encode_into` reuses the caller's shard
//! vectors and thread-local packet-ref scratch (`with_ref_scratch`), the
//! single-stripe plan runs inline on the caller's persistent arena, and
//! the executor's pointer tables live in thread-local scratch. This test
//! pins the property with a counting global allocator (which is why it
//! lives alone in its own integration-test binary).

use ec_core::{RsCodec, RsConfig};
use ec_stream::StreamEncoder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates straight to `System`; only adds counters.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING: Counting = Counting;

/// A sink that swallows frames without buffering (writing into a growing
/// `Vec` would itself allocate and mask the property under test).
struct NullSink(u64);

impl Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Seek for NullSink {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        match pos {
            SeekFrom::Start(o) => self.0 = o,
            SeekFrom::Current(d) => self.0 = self.0.checked_add_signed(d).unwrap(),
            SeekFrom::End(_) => unimplemented!("not needed by the encoder"),
        }
        Ok(self.0)
    }
}

#[test]
fn steady_state_chunk_encode_is_allocation_free() {
    const CHUNK: usize = 64 * 1024;
    // parallelism = 1: a single-stripe plan runs inline on this thread's
    // persistent arena (the pooled path hands stripes to workers, whose
    // arenas persist too, but each task submission boxes a closure).
    let codec = RsCodec::with_config(RsConfig::new(6, 3).parallelism(1)).unwrap();
    let input: Vec<u8> = (0..CHUNK).map(|i| (i * 31 + 7) as u8).collect();

    let sinks: Vec<NullSink> = (0..codec.total_shards()).map(|_| NullSink(0)).collect();
    let mut enc = StreamEncoder::new(&codec, CHUNK, sinks).unwrap();

    // Warm-up: grows the shard buffers, the ref/pointer scratch and the
    // caller arena to the steady-state working set.
    for _ in 0..3 {
        enc.write_all(&input).unwrap();
    }

    // The counter is process-global, so a stray allocation on another
    // thread (the libtest harness) can pollute a window. An allocation
    // *in the encode path* would repeat in every window identically, so
    // requiring one clean window out of a few keeps the property exact
    // while ignoring ambient noise.
    let mut chunks = 3u64;
    let mut windows = Vec::new();
    for _ in 0..5 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for _ in 0..16 {
            enc.write_all(&input).unwrap();
        }
        chunks += 16;
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        windows.push(after - before);
        if after == before {
            break;
        }
    }
    assert!(
        windows.contains(&0),
        "steady-state streaming encode must not allocate \
         (every 16-chunk window allocated: {windows:?})"
    );

    // The stream still finalizes to a consistent archive description.
    let (meta, _sinks) = enc.finalize().unwrap();
    assert_eq!(meta.chunk_count, chunks);
    assert_eq!(meta.original_len, chunks * CHUNK as u64);
}

