//! Peak-memory bound of the streaming archive: creating and extracting a
//! multi-chunk file holds `O(chunk × (n + p))` live bytes, never
//! `O(file)`.
//!
//! Pinned with a live-byte-tracking global allocator (own test binary so
//! no other test's allocations pollute the measurement): the input file
//! is 16 MiB, the per-phase allocation high-water mark must stay under a
//! few multiples of `chunk × (n + p)` ≈ 1.5 MiB.

use ec_stream::Archive;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fs;
use std::io::Write;
use std::sync::atomic::{AtomicI64, Ordering};

static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

fn track(delta: i64) {
    let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

struct Tracking;

// SAFETY: delegates straight to `System`; only adds counters.
unsafe impl GlobalAlloc for Tracking {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track(layout.size() as i64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        track(-(layout.size() as i64));
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        track(new_size as i64 - layout.size() as i64);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static TRACKING: Tracking = Tracking;

/// Run `f` and return its allocation high-water mark relative to the
/// live bytes at entry.
fn peak_delta(f: impl FnOnce()) -> i64 {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    f();
    PEAK.load(Ordering::Relaxed) - base
}

#[test]
fn create_and_extract_memory_is_bounded_by_chunk_not_file() {
    const FILE_LEN: usize = 16 << 20; // 16 MiB
    const CHUNK: usize = 256 << 10; // 256 KiB
    const N: usize = 4;
    const P: usize = 2;
    // The working set is ~chunk (staging) + chunk×(n+p)/n (slices) plus
    // codec programs and I/O buffers; 4× chunk×(n+p) is generous slack
    // while still 10× below the file size.
    const BOUND: i64 = (4 * CHUNK * (N + P)) as i64;

    let dir = std::env::temp_dir().join(format!("xorslp_peak_mem_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let input = dir.join("input.bin");

    // Generate the input streamingly — materializing it would defeat the
    // measurement.
    {
        let mut w = std::io::BufWriter::new(fs::File::create(&input).unwrap());
        let block: Vec<u8> = (0..4096usize).map(|i| (i * 89 + 31) as u8).collect();
        for i in 0..FILE_LEN / block.len() {
            w.write_all(&block).unwrap();
            w.write_all(&[(i * 7) as u8]).unwrap(); // keep chunks distinct
        }
        w.flush().unwrap();
    }

    let shards = dir.join("shards");
    let create_peak = peak_delta(|| {
        Archive::create(&input, &shards, N, P, CHUNK).unwrap();
    });
    assert!(
        create_peak < BOUND,
        "create peaked at {create_peak} bytes (bound {BOUND}, file {FILE_LEN})"
    );

    let restored = dir.join("restored.bin");
    let extract_peak = peak_delta(|| {
        let archive = Archive::open(&shards).unwrap();
        archive.extract(&restored).unwrap();
    });
    assert!(
        extract_peak < BOUND,
        "extract peaked at {extract_peak} bytes (bound {BOUND}, file {FILE_LEN})"
    );

    // And the roundtrip is still byte-identical.
    assert_eq!(fs::read(&input).unwrap(), fs::read(&restored).unwrap());
    fs::remove_dir_all(&dir).unwrap();
}
