//! [`StreamEncoder`]: pump any byte stream through the codec in
//! fixed-size chunks, writing `n + p` framed shard files.
//!
//! Memory is bounded by `O(chunk × (n + p))` — one staging buffer of
//! `chunk_size` bytes plus `n + p` shard-slice buffers of
//! `chunk_size / n` bytes each — never by the stream length. Chunk
//! encodes go through [`ec_core::ErasureCoder::encode_into`], so the
//! steady-state loop reuses every buffer and (with `parallelism = 1`)
//! allocates nothing per chunk; pooled codecs pipeline each chunk's XOR
//! program across the striped execution engine.

use ec_wire::crc32;
use ec_wire::merkle::{leaf_hash, Hash, MerkleTree};
use crate::error::StreamError;
use crate::format::{ArchiveMeta, HashTrailer, ShardHeader, HEADER_LEN};
use ec_core::ErasureCoder;
use std::io::{Read, Seek, SeekFrom, Write};

/// A chunked streaming encoder over `n + p` seekable sinks.
///
/// The sinks need [`Seek`] because the self-describing header (chunk
/// count, original length) is only known once the input ends: `new`
/// reserves the header region, [`StreamEncoder::finalize`] seeks back and
/// writes the real header. Until then the region holds zeros — an
/// unfinalized (crashed) shard never parses as a valid archive.
///
/// Any registered codec drives the encoder through the
/// [`ErasureCoder`] boundary — the archive's self-describing header
/// records which one ([`ArchiveMeta::codec_spec`]).
///
/// ```
/// use ec_core::{codec_for, CodecSpec};
/// use ec_stream::StreamEncoder;
/// use std::io::Cursor;
///
/// let codec = codec_for(&CodecSpec::rs(4, 2)).unwrap();
/// let sinks: Vec<Cursor<Vec<u8>>> = (0..6).map(|_| Cursor::new(Vec::new())).collect();
/// let mut enc = StreamEncoder::new(&*codec, 4096, sinks).unwrap();
/// enc.write_all(&vec![7u8; 10_000]).unwrap();
/// let (meta, _sinks) = enc.finalize().unwrap();
/// assert_eq!(meta.chunk_count, 3);
/// assert_eq!(meta.original_len, 10_000);
/// ```
pub struct StreamEncoder<'c, W: Write + Seek> {
    codec: &'c dyn ErasureCoder,
    chunk_size: usize,
    sinks: Vec<W>,
    /// Staging buffer for one chunk of input; `fill` bytes are pending.
    buf: Vec<u8>,
    fill: usize,
    /// Reusable per-shard slice buffers (`encode_into` targets).
    shard_bufs: Vec<Vec<u8>>,
    /// `leaves[i]` accumulates shard `i`'s per-chunk SHA-256 leaf hashes
    /// for the version-3 hash trailer (32 bytes per shard per chunk —
    /// the only state that grows with the stream, and only
    /// logarithmically relative to the data).
    leaves: Vec<Vec<Hash>>,
    chunks_written: u64,
    total_in: u64,
}

impl<'c, W: Write + Seek> StreamEncoder<'c, W> {
    /// Start an encode: validates the geometry and reserves the header
    /// region of every sink.
    pub fn new(
        codec: &'c dyn ErasureCoder,
        chunk_size: usize,
        mut sinks: Vec<W>,
    ) -> Result<StreamEncoder<'c, W>, StreamError> {
        if sinks.len() != codec.total_shards() {
            return Err(StreamError::Format(format!(
                "need one sink per shard: {} shards, {} sinks",
                codec.total_shards(),
                sinks.len()
            )));
        }
        if chunk_size == 0 || chunk_size > crate::format::MAX_CHUNK_SIZE as usize {
            return Err(StreamError::Format(format!(
                "chunk size {chunk_size} out of range (1..={})",
                crate::format::MAX_CHUNK_SIZE
            )));
        }
        for sink in &mut sinks {
            sink.write_all(&[0u8; HEADER_LEN])?;
        }
        Ok(StreamEncoder {
            codec,
            chunk_size,
            sinks,
            buf: vec![0u8; chunk_size],
            fill: 0,
            shard_bufs: vec![Vec::new(); codec.total_shards()],
            leaves: vec![Vec::new(); codec.total_shards()],
            chunks_written: 0,
            total_in: 0,
        })
    }

    /// Append bytes to the stream, encoding and writing out every chunk
    /// that fills up.
    pub fn write_all(&mut self, mut data: &[u8]) -> Result<(), StreamError> {
        while !data.is_empty() {
            let take = (self.chunk_size - self.fill).min(data.len());
            self.buf[self.fill..self.fill + take].copy_from_slice(&data[..take]);
            self.fill += take;
            data = &data[take..];
            if self.fill == self.chunk_size {
                self.flush_chunk()?;
            }
        }
        Ok(())
    }

    /// Drain a reader to the end of the stream, chunk by chunk, reading
    /// directly into the staging buffer. Returns the bytes consumed.
    pub fn pump(&mut self, r: &mut impl Read) -> Result<u64, StreamError> {
        let mut total = 0u64;
        loop {
            if self.fill == self.chunk_size {
                self.flush_chunk()?;
            }
            match r.read(&mut self.buf[self.fill..self.chunk_size]) {
                Ok(0) => return Ok(total),
                Ok(got) => {
                    self.fill += got;
                    total += got as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Encode the staged chunk and append one frame (slice ‖ CRC-32) to
    /// every sink.
    fn flush_chunk(&mut self) -> Result<(), StreamError> {
        if self.fill == 0 {
            return Ok(());
        }
        self.codec.encode_into(&self.buf[..self.fill], &mut self.shard_bufs)?;
        for ((shard, sink), leaves) in
            self.shard_bufs.iter().zip(&mut self.sinks).zip(&mut self.leaves)
        {
            sink.write_all(shard)?;
            sink.write_all(&crc32(shard).to_le_bytes())?;
            leaves.push(leaf_hash(shard));
        }
        self.total_in += self.fill as u64;
        self.chunks_written += 1;
        self.fill = 0;
        Ok(())
    }

    /// Flush the (possibly short) tail chunk, append the hash trailer to
    /// every sink, then seek back and write the real header. Returns the
    /// archive metadata and the sinks.
    pub fn finalize(mut self) -> Result<(ArchiveMeta, Vec<W>), StreamError> {
        self.flush_chunk()?;
        let meta = ArchiveMeta::with_spec(
            &self.codec.spec(),
            self.chunk_size as u32,
            self.total_in,
        );
        debug_assert_eq!(meta.chunk_count, self.chunks_written);
        // Every trailer carries the full root vector; only the leaf
        // section differs per shard.
        let all_leaves = std::mem::take(&mut self.leaves);
        let shard_roots: Vec<Hash> = all_leaves
            .iter()
            .map(|ls| MerkleTree::from_leaves(ls.clone()).root())
            .collect();
        for ((i, sink), leaves) in self.sinks.iter_mut().enumerate().zip(all_leaves) {
            sink.write_all(&HashTrailer::new(leaves, shard_roots.clone()).to_bytes())?;
            sink.seek(SeekFrom::Start(0))?;
            ShardHeader { meta, shard_index: i as u16 }.write_to(sink)?;
            sink.flush()?;
        }
        Ok((meta, self.sinks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FRAME_TRAILER_LEN;
    use ec_core::{codec_for, CodecSpec};
    use std::io::Cursor;

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + i / 5 + 3) as u8).collect()
    }

    fn rs(n: usize, p: usize) -> Box<dyn ErasureCoder> {
        codec_for(&CodecSpec::rs(n, p)).unwrap()
    }

    fn encode_all(
        codec: &dyn ErasureCoder,
        chunk: usize,
        data: &[u8],
    ) -> (ArchiveMeta, Vec<Vec<u8>>) {
        let sinks: Vec<Cursor<Vec<u8>>> =
            (0..codec.total_shards()).map(|_| Cursor::new(Vec::new())).collect();
        let mut enc = StreamEncoder::new(codec, chunk, sinks).unwrap();
        enc.write_all(data).unwrap();
        let (meta, sinks) = enc.finalize().unwrap();
        (meta, sinks.into_iter().map(Cursor::into_inner).collect())
    }

    #[test]
    fn frames_match_oneshot_encode_per_chunk() {
        let codec = rs(3, 2);
        let chunk = 96;
        let data = sample(3 * chunk + 41); // three full chunks + tail
        let (meta, files) = encode_all(&*codec, chunk, &data);
        assert_eq!(meta.chunk_count, 4);
        assert_eq!(files[0].len() as u64, meta.shard_file_len());
        let mut offset = HEADER_LEN;
        for c in 0..meta.chunk_count {
            let lo = (c as usize) * chunk;
            let hi = (lo + chunk).min(data.len());
            let expect = codec.encode(&data[lo..hi]).unwrap();
            let slen = meta.slice_len(c);
            assert_eq!(slen, expect[0].len(), "chunk {c}");
            for (i, file) in files.iter().enumerate() {
                let slice = &file[offset..offset + slen];
                assert_eq!(slice, &expect[i][..], "chunk {c} shard {i}");
                let crc =
                    u32::from_le_bytes(file[offset + slen..offset + slen + 4].try_into().unwrap());
                assert_eq!(crc, crc32(slice), "chunk {c} shard {i} crc");
            }
            offset += slen + FRAME_TRAILER_LEN;
        }
        // The hash trailer starts right after the last frame, and each
        // shard's stored leaves are the leaf hashes of its frames.
        assert_eq!(meta.hash_trailer_offset(), Some(offset as u64));
        for (i, file) in files.iter().enumerate() {
            let t = HashTrailer::from_bytes(&file[offset..], &meta).unwrap();
            assert!(t.self_consistent(i), "shard {i}");
            let mut off = HEADER_LEN;
            for c in 0..meta.chunk_count {
                let slen = meta.slice_len(c);
                assert_eq!(
                    t.leaves[c as usize],
                    ec_wire::merkle::leaf_hash(&file[off..off + slen]),
                    "shard {i} chunk {c}"
                );
                off += slen + FRAME_TRAILER_LEN;
            }
        }
        // All shards agree on the root vector and object root.
        let t0 = HashTrailer::from_bytes(&files[0][offset..], &meta).unwrap();
        for file in &files[1..] {
            let t = HashTrailer::from_bytes(&file[offset..], &meta).unwrap();
            assert_eq!(t.shard_roots, t0.shard_roots);
            assert_eq!(t.object_root, t0.object_root);
        }
    }

    #[test]
    fn write_all_and_pump_agree() {
        let codec = rs(4, 2);
        let data = sample(10_000);
        let (m1, f1) = encode_all(&*codec, 777, &data);
        let sinks: Vec<Cursor<Vec<u8>>> =
            (0..6).map(|_| Cursor::new(Vec::new())).collect();
        let mut enc = StreamEncoder::new(&*codec, 777, sinks).unwrap();
        // Pump through a reader that returns ragged short reads.
        struct Ragged<'a>(&'a [u8], usize);
        impl Read for Ragged<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = self.1.min(self.0.len()).min(buf.len());
                buf[..take].copy_from_slice(&self.0[..take]);
                self.0 = &self.0[take..];
                self.1 = self.1 % 97 + 13; // vary the read sizes
                Ok(take)
            }
        }
        assert_eq!(enc.pump(&mut Ragged(&data, 1)).unwrap(), data.len() as u64);
        let (m2, sinks) = enc.finalize().unwrap();
        let f2: Vec<Vec<u8>> = sinks.into_iter().map(Cursor::into_inner).collect();
        assert_eq!(m1, m2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn empty_stream_produces_header_and_trailer_only_shards() {
        let codec = rs(4, 2);
        let (meta, files) = encode_all(&*codec, 1024, &[]);
        assert_eq!(meta.chunk_count, 0);
        assert_eq!(meta.original_len, 0);
        let expect = HEADER_LEN as u64 + HashTrailer::wire_len(&meta).unwrap();
        for (i, f) in files.iter().enumerate() {
            assert_eq!(f.len() as u64, expect, "shard {i}");
            let h = ShardHeader::from_bytes(f[..HEADER_LEN].try_into().unwrap()).unwrap();
            assert_eq!(h.shard_index, i as u16);
            // Zero-leaf trees: every shard root is the empty-tree root.
            let t = HashTrailer::from_bytes(&f[HEADER_LEN..], &meta).unwrap();
            assert!(t.leaves.is_empty());
            assert!(t.shard_roots.iter().all(|r| *r == ec_wire::merkle::empty_root()));
            assert!(t.self_consistent(i));
        }
    }

    #[test]
    fn geometry_is_validated() {
        let codec = rs(4, 2);
        let five: Vec<Cursor<Vec<u8>>> = (0..5).map(|_| Cursor::new(Vec::new())).collect();
        assert!(matches!(
            StreamEncoder::new(&*codec, 1024, five),
            Err(StreamError::Format(_))
        ));
        let six: Vec<Cursor<Vec<u8>>> = (0..6).map(|_| Cursor::new(Vec::new())).collect();
        assert!(matches!(
            StreamEncoder::new(&*codec, 0, six),
            Err(StreamError::Format(_))
        ));
    }
}
