//! Property tests: the streaming path is byte-equivalent to the one-shot
//! codec across chunk sizes, data lengths, erasure patterns — and every
//! registered codec family.

use crate::{StreamDecoder, StreamEncoder, HEADER_LEN};
use ec_core::{codec_for, CodecSpec, ErasureCoder};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::OnceLock;

/// One codec per registered family, geometry small enough that the
/// proptest stays fast; compiled once.
fn codecs() -> &'static [Box<dyn ErasureCoder>] {
    static CODECS: OnceLock<Vec<Box<dyn ErasureCoder>>> = OnceLock::new();
    CODECS.get_or_init(|| {
        [
            CodecSpec::rs(3, 2),
            CodecSpec::parse("evenodd", 3, 2).unwrap(),
            CodecSpec::parse("rdp", 3, 2).unwrap(),
            CodecSpec::lrc(4, 3, 2),
        ]
        .iter()
        .map(|s| codec_for(s).unwrap())
        .collect()
    })
}

/// Chunk sizes crossing every boundary: smaller than a packet row, not a
/// multiple of `8 × n`, exactly aligned, and larger than most inputs
/// (tail-smaller-than-chunk).
const CHUNKS: [usize; 6] = [1, 7, 24, 333, 1024, 4096];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_roundtrip_equals_oneshot(
        codec_sel in 0usize..4,
        data in proptest::collection::vec(any::<u8>(), 0..3000),
        chunk_sel in 0usize..CHUNKS.len(),
        lost_seed in proptest::collection::hash_set(0usize..7, 0..=2),
    ) {
        let codec = &*codecs()[codec_sel];
        let t = codec.total_shards();
        let chunk = CHUNKS[chunk_sel];

        // Keep only losses the codec can tolerate: a pattern is
        // decodable iff it has a repair plan (LRC is not MDS, so some
        // ≤ p sets are out).
        let lost: Vec<usize> = {
            let mut l: Vec<usize> = lost_seed.iter().map(|&i| i % t).collect();
            l.sort_unstable();
            l.dedup();
            if codec.repair_sources(&l).is_ok() { l } else { Vec::new() }
        };

        let sinks: Vec<Cursor<Vec<u8>>> = (0..t).map(|_| Cursor::new(Vec::new())).collect();
        let mut enc = StreamEncoder::new(codec, chunk, sinks).unwrap();
        enc.write_all(&data).unwrap();
        let (meta, sinks) = enc.finalize().unwrap();
        let files: Vec<Vec<u8>> = sinks.into_iter().map(Cursor::into_inner).collect();

        prop_assert_eq!(meta.codec_spec().unwrap(), codec.spec());
        prop_assert_eq!(meta.original_len, data.len() as u64);
        prop_assert_eq!(meta.chunk_count, (data.len() as u64).div_ceil(chunk as u64));
        for f in &files {
            prop_assert_eq!(f.len() as u64, meta.shard_file_len());
        }

        // Chunk-by-chunk: the frames are exactly the one-shot encode of
        // that chunk's data (so streaming ≡ one-shot, not merely
        // "roundtrips somehow").
        let mut offset = HEADER_LEN;
        for c in 0..meta.chunk_count {
            let lo = c as usize * chunk;
            let hi = (lo + chunk).min(data.len());
            let expect = codec.encode(&data[lo..hi]).unwrap();
            let slen = meta.slice_len(c);
            for (i, f) in files.iter().enumerate() {
                prop_assert_eq!(
                    &f[offset..offset + slen],
                    &expect[i][..],
                    "chunk {} shard {}",
                    c,
                    i
                );
            }
            offset += slen + 4;
        }

        // Streaming decode restores the data around the lost streams.
        let sources: Vec<Option<Cursor<Vec<u8>>>> = files
            .iter()
            .enumerate()
            .map(|(i, f)| {
                (!lost.contains(&i)).then(|| {
                    let mut cur = Cursor::new(f.clone());
                    cur.set_position(HEADER_LEN as u64);
                    cur
                })
            })
            .collect();
        let mut dec = StreamDecoder::new(codec, meta, sources).unwrap();
        let mut out = Vec::new();
        dec.pump(&mut out).unwrap();
        prop_assert_eq!(out, data);
    }
}
