//! Property tests: the streaming path is byte-equivalent to the one-shot
//! codec across chunk sizes, data lengths and erasure patterns.

use crate::{StreamDecoder, StreamEncoder, HEADER_LEN};
use ec_core::RsCodec;
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::OnceLock;

fn codec() -> &'static RsCodec {
    static CODEC: OnceLock<RsCodec> = OnceLock::new();
    CODEC.get_or_init(|| RsCodec::new(3, 2).unwrap())
}

/// Chunk sizes crossing every boundary: smaller than a packet row, not a
/// multiple of `8 × n`, exactly aligned, and larger than most inputs
/// (tail-smaller-than-chunk).
const CHUNKS: [usize; 6] = [1, 7, 24, 333, 1024, 4096];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_roundtrip_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..3000),
        chunk_sel in 0usize..CHUNKS.len(),
        lost_seed in proptest::collection::hash_set(0usize..5, 0..=2),
    ) {
        let codec = codec();
        let chunk = CHUNKS[chunk_sel];

        let sinks: Vec<Cursor<Vec<u8>>> = (0..5).map(|_| Cursor::new(Vec::new())).collect();
        let mut enc = StreamEncoder::new(codec, chunk, sinks).unwrap();
        enc.write_all(&data).unwrap();
        let (meta, sinks) = enc.finalize().unwrap();
        let files: Vec<Vec<u8>> = sinks.into_iter().map(Cursor::into_inner).collect();

        prop_assert_eq!(meta.original_len, data.len() as u64);
        prop_assert_eq!(meta.chunk_count, (data.len() as u64).div_ceil(chunk as u64));
        for f in &files {
            prop_assert_eq!(f.len() as u64, meta.shard_file_len());
        }

        // Chunk-by-chunk: the frames are exactly the one-shot encode of
        // that chunk's data (so streaming ≡ one-shot, not merely
        // "roundtrips somehow").
        let mut offset = HEADER_LEN;
        for c in 0..meta.chunk_count {
            let lo = c as usize * chunk;
            let hi = (lo + chunk).min(data.len());
            let expect = codec.encode(&data[lo..hi]).unwrap();
            let slen = meta.slice_len(c);
            for (i, f) in files.iter().enumerate() {
                prop_assert_eq!(
                    &f[offset..offset + slen],
                    &expect[i][..],
                    "chunk {} shard {}",
                    c,
                    i
                );
            }
            offset += slen + 4;
        }

        // Streaming decode restores the data, with up to p = 2 lost
        // shard streams.
        let sources: Vec<Option<Cursor<Vec<u8>>>> = files
            .iter()
            .enumerate()
            .map(|(i, f)| {
                (!lost_seed.contains(&i)).then(|| {
                    let mut cur = Cursor::new(f.clone());
                    cur.set_position(HEADER_LEN as u64);
                    cur
                })
            })
            .collect();
        let mut dec = StreamDecoder::new(codec, meta, sources).unwrap();
        let mut out = Vec::new();
        dec.pump(&mut out).unwrap();
        prop_assert_eq!(out, data);
    }
}
