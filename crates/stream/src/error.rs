//! Error type of the streaming archive subsystem.

use ec_core::EcError;
use std::fmt;

/// Everything that can go wrong while writing, reading or repairing an
/// archive.
#[derive(Debug)]
pub enum StreamError {
    /// An underlying I/O failure (file missing, disk full, …).
    Io(std::io::Error),
    /// A codec-level failure bubbled up from `ec-core`.
    Codec(EcError),
    /// The shard bytes do not form a valid archive (bad magic, version,
    /// header checksum, inconsistent parameters, …).
    Format(String),
    /// Chunk `chunk` has more missing/corrupt slices than the parity
    /// count can repair (damage is counted per chunk: chunk-local
    /// corruption can exceed the archive-wide damaged-file count).
    TooDamaged {
        chunk: u64,
        missing: usize,
        parity: usize,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "i/o error: {e}"),
            StreamError::Codec(e) => write!(f, "codec error: {e}"),
            StreamError::Format(msg) => write!(f, "invalid archive format: {msg}"),
            StreamError::TooDamaged { chunk, missing, parity } => write!(
                f,
                "chunk {chunk}: {missing} shards damaged but only {parity} parity shards available"
            ),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<EcError> for StreamError {
    fn from(e: EcError) -> Self {
        StreamError::Codec(e)
    }
}
