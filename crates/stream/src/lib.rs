//! `ec-stream` — bounded-memory streaming erasure-coded archives on top
//! of the `ec-core` codec.
//!
//! The codec pipeline (expand → SLP → optimize → compile, executed by
//! the striped `xor-runtime` engine) works on in-memory shards; this
//! crate is the I/O subsystem that takes it to files of any size:
//!
//! * [`StreamEncoder`] / [`StreamDecoder`] pump any `Read`/`Write`
//!   through any registered [`ec_core::ErasureCoder`] in fixed-size
//!   chunks — memory is `O(chunk × (n + p))`, never `O(file)`, and
//!   steady-state chunk encodes are allocation-free (via
//!   [`ec_core::ErasureCoder::encode_into`]);
//! * the self-describing shard-file format (`docs/FORMAT.md`): magic,
//!   version, codec identity and parameters, chunk geometry, original
//!   length, a CRC-32 per chunk payload and a CRC-32 over the header —
//!   shards are recoverable with no side-channel files, and `open`
//!   resolves the recorded codec back through the registry;
//! * the version-3 integrity layer: every shard file ends in a
//!   [`HashTrailer`] — per-chunk SHA-256 leaf hashes, every shard's
//!   Merkle root, and the object root — so verify/extract/repair can
//!   catch and localize CRC-preserving tampering, elect the true roots
//!   by majority when trailers disagree, and prove a repaired shard's
//!   bytes before publishing them (v1/v2 archives still read, CRC-only);
//! * [`Archive`]: `create` / `extract` / `verify` / `scrub` / `repair`
//!   over a directory of shard files. `verify` pinpoints missing,
//!   truncated and bit-flipped shards from the checksums; `repair`
//!   rebuilds them chunk by chunk through `reconstruct`, which re-encodes
//!   lost parity via the partial row-subset programs (a single bad
//!   parity shard costs one row program, not a full re-encode);
//! * the `xorslp-archive` CLI wiring those verbs.
//!
//! ```
//! use ec_stream::Archive;
//! use std::fs;
//!
//! let dir = std::env::temp_dir().join(format!("ec_stream_doctest_{}", std::process::id()));
//! let _ = fs::remove_dir_all(&dir);
//! fs::create_dir_all(&dir).unwrap();
//! let input = dir.join("input.bin");
//! fs::write(&input, (0..100_000u32).map(|i| (i * 7) as u8).collect::<Vec<_>>()).unwrap();
//!
//! // 4 data + 2 parity shards, 16 KiB chunks.
//! let archive = Archive::create(&input, &dir.join("shards"), 4, 2, 16 * 1024).unwrap();
//!
//! // Lose two shard files — any two.
//! fs::remove_file(archive.shard_path(1)).unwrap();
//! fs::remove_file(archive.shard_path(4)).unwrap();
//!
//! // Self-describing: reopen from the surviving files alone and repair.
//! let archive = Archive::open(&dir.join("shards")).unwrap();
//! assert_eq!(archive.verify().unwrap().damaged(), vec![1, 4]);
//! archive.repair().unwrap();
//! assert!(archive.verify().unwrap().all_ok());
//!
//! let restored = dir.join("restored.bin");
//! archive.extract(&restored).unwrap();
//! assert_eq!(fs::read(&input).unwrap(), fs::read(&restored).unwrap());
//! # fs::remove_dir_all(&dir).unwrap();
//! ```

mod archive;
mod decode;
mod encode;
mod error;
mod format;

pub use archive::{
    shard_file_name, Archive, RepairReport, ScrubReport, ShardState, VerifyReport,
};
// CRC-32 now lives in `ec-wire` (shared with the `ec-store` protocol);
// re-exported here so existing `ec_stream::crc32` callers keep working.
pub use ec_wire::{crc32, Crc32};
pub use decode::{ExtractReport, StreamDecoder};
pub use encode::StreamEncoder;
pub use error::StreamError;
pub use format::{
    ArchiveMeta, HashTrailer, ShardHeader, FORMAT_VERSION, HEADER_LEN, MAGIC, MIN_FORMAT_VERSION,
};

#[cfg(test)]
mod proptests;
