//! [`StreamDecoder`]: rebuild the original byte stream from whatever
//! shard streams survive, chunk by chunk, in bounded memory.

use ec_wire::crc32;
use ec_wire::merkle::{leaf_hash, Hash};
use crate::error::StreamError;
use crate::format::{ArchiveMeta, FRAME_TRAILER_LEN};
use ec_core::ErasureCoder;
use std::io::{Read, Write};

/// Chunk-wise frame reader over a set of shard sources, shared by
/// extraction, scrub and repair.
///
/// Each call to [`ChunkScanner::read_chunk`] reads one frame from every
/// live source into the reusable `slices` buffers and records per-shard
/// integrity in `good`. A source that fails to produce a full frame
/// (truncation, I/O error) is dropped for good — its framing is lost —
/// while a CRC mismatch only poisons the current chunk.
pub(crate) struct ChunkScanner<R: Read> {
    meta: ArchiveMeta,
    sources: Vec<Option<R>>,
    /// Per-shard trusted leaf hashes (from an elected hash trailer).
    /// When present for a shard, each frame must *also* hash to its
    /// leaf — catching CRC-preserving tampering the checksum walk
    /// cannot.
    trusted: Vec<Option<Vec<Hash>>>,
    /// Per-shard payload of the chunk last read (valid iff `good`).
    pub slices: Vec<Vec<u8>>,
    /// Per-shard integrity of the chunk last read.
    pub good: Vec<bool>,
}

impl<R: Read> ChunkScanner<R> {
    /// `sources[i]` must be positioned at shard `i`'s first frame (just
    /// past the header), or `None` when the shard is unavailable.
    pub fn new(meta: ArchiveMeta, sources: Vec<Option<R>>) -> ChunkScanner<R> {
        let t = meta.total_shards();
        assert_eq!(sources.len(), t, "one source slot per shard");
        ChunkScanner {
            meta,
            sources,
            trusted: vec![None; t],
            slices: vec![Vec::new(); t],
            good: vec![false; t],
        }
    }

    /// Arm per-frame hash verification for shard `i` with its trusted
    /// leaf vector (one hash per chunk, authenticated against the
    /// elected root before being handed here).
    pub fn set_trusted_leaves(&mut self, i: usize, leaves: Vec<Hash>) {
        self.trusted[i] = Some(leaves);
    }

    /// True iff every live source is hash-verified (has trusted leaves)
    /// and at least one source is live — i.e. everything this scanner
    /// will read is covered by the Merkle layer, not just CRC-32.
    pub fn fully_trusted(&self) -> bool {
        let mut any = false;
        for (src, t) in self.sources.iter().zip(&self.trusted) {
            if src.is_some() {
                any = true;
                if t.is_none() {
                    return false;
                }
            }
        }
        any
    }

    /// Read chunk `chunk`'s frame from every live source. Chunks must be
    /// requested in order (`0, 1, 2, …`) — sources are plain readers and
    /// are never rewound.
    pub fn read_chunk(&mut self, chunk: u64) {
        let slen = self.meta.slice_len(chunk);
        let mut trailer = [0u8; FRAME_TRAILER_LEN];
        for i in 0..self.sources.len() {
            self.good[i] = false;
            let Some(src) = &mut self.sources[i] else { continue };
            self.slices[i].resize(slen, 0);
            let ok = src.read_exact(&mut self.slices[i]).is_ok()
                && src.read_exact(&mut trailer).is_ok();
            if !ok {
                // Short read: this source's framing is gone; drop it.
                self.sources[i] = None;
                continue;
            }
            self.good[i] = u32::from_le_bytes(trailer) == crc32(&self.slices[i]);
            if self.good[i] {
                if let Some(leaves) = &self.trusted[i] {
                    self.good[i] =
                        leaves.get(chunk as usize) == Some(&leaf_hash(&self.slices[i]));
                }
            }
        }
    }

    /// Number of shards whose current-chunk frame passed its CRC.
    pub fn good_count(&self) -> usize {
        self.good.iter().filter(|&&g| g).count()
    }

    /// Number of sources still live (not dropped for truncation); the
    /// next [`ChunkScanner::read_chunk`] reads one frame from each.
    pub fn live_count(&self) -> usize {
        self.sources.iter().filter(|s| s.is_some()).count()
    }
}

/// Refill a reusable `Option<Vec<u8>>` shard set from a scanner's chunk:
/// good slices are copied into slots (reusing slot/spare capacity), bad
/// slots become `None` with their buffer parked in `spare`. Keeps the
/// degraded (erasure-decoding) path free of per-chunk slice
/// allocations across a long archive walk.
pub(crate) fn refill_shards(
    shards: &mut [Option<Vec<u8>>],
    spare: &mut Vec<Vec<u8>>,
    slices: &[Vec<u8>],
    good: &[bool],
) {
    for ((slot, slice), &g) in shards.iter_mut().zip(slices).zip(good) {
        if g {
            let mut v = slot.take().or_else(|| spare.pop()).unwrap_or_default();
            v.clear();
            v.extend_from_slice(slice);
            *slot = Some(v);
        } else if let Some(v) = slot.take() {
            spare.push(v);
        }
    }
}

/// Statistics of one extraction pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtractReport {
    /// Chunks processed (the archive's chunk count).
    pub chunks: u64,
    /// Chunks that needed erasure decoding (some data slice was missing
    /// or failed its CRC).
    pub chunks_repaired: u64,
    /// Original-data bytes written out.
    pub bytes_written: u64,
    /// True iff every frame that fed the output was verified against
    /// the archive's Merkle leaves (v3 archives with an elected root
    /// vector); false means CRC-only — bit-rot evidence, not tamper
    /// evidence.
    pub hash_verified: bool,
}

/// A chunked streaming decoder over `n + p` shard sources.
///
/// The dual of [`crate::StreamEncoder`]: reads one frame per shard per
/// chunk, verifies each payload against its CRC-32, and writes the
/// original bytes out. Intact chunks cost a CRC scan and a copy; a chunk
/// with missing or corrupt data slices is erasure-decoded from any `n`
/// surviving slices. Memory stays `O(chunk × (n + p))`.
pub struct StreamDecoder<'c, R: Read> {
    codec: &'c dyn ErasureCoder,
    scanner: ChunkScanner<R>,
    /// Reusable shard set + parked buffers for the degraded path.
    shards: Vec<Option<Vec<u8>>>,
    spare: Vec<Vec<u8>>,
}

impl<'c, R: Read> StreamDecoder<'c, R> {
    /// `sources[i]` must be positioned at shard `i`'s first frame (just
    /// past the header), or `None` for a lost shard. The codec's full
    /// spec — family, geometry, group size — must match the metadata's;
    /// a shape-compatible but different codec would decode garbage, so
    /// the comparison is exact.
    pub fn new(
        codec: &'c dyn ErasureCoder,
        meta: ArchiveMeta,
        sources: Vec<Option<R>>,
    ) -> Result<StreamDecoder<'c, R>, StreamError> {
        let archive_spec = meta.codec_spec().map_err(StreamError::Codec)?;
        if codec.spec() != archive_spec {
            return Err(StreamError::Format(format!(
                "codec {}({}, {}) does not match archive {}({}, {})",
                codec.spec().name(),
                codec.data_shards(),
                codec.parity_shards(),
                archive_spec.name(),
                meta.data_shards,
                meta.parity_shards
            )));
        }
        if sources.len() != meta.total_shards() {
            return Err(StreamError::Format(format!(
                "need one source slot per shard: {} shards, {} sources",
                meta.total_shards(),
                sources.len()
            )));
        }
        let t = meta.total_shards();
        Ok(StreamDecoder {
            codec,
            scanner: ChunkScanner::new(meta, sources),
            shards: vec![None; t],
            spare: Vec::new(),
        })
    }

    /// Arm per-frame Merkle verification for shard `i` (see
    /// [`ChunkScanner::set_trusted_leaves`]). Frames that fail their
    /// leaf hash are treated exactly like CRC failures: the chunk is
    /// erasure-decoded around them.
    pub fn set_trusted_leaves(&mut self, i: usize, leaves: Vec<Hash>) {
        self.scanner.set_trusted_leaves(i, leaves);
    }

    /// Decode the whole stream into `out`.
    ///
    /// Fails with [`StreamError::TooDamaged`] if any chunk has more than
    /// `p` missing/corrupt slices.
    pub fn pump(&mut self, out: &mut impl Write) -> Result<ExtractReport, StreamError> {
        let meta = self.scanner.meta;
        let n = meta.data_shards as usize;
        let p = meta.parity_shards as usize;
        let mut report = ExtractReport {
            chunks: meta.chunk_count,
            // Decided up front, while every source that will serve
            // frames is still live.
            hash_verified: self.scanner.fully_trusted(),
            ..Default::default()
        };
        for c in 0..meta.chunk_count {
            self.scanner.read_chunk(c);
            let data_len = meta.chunk_data_len(c);
            if self.scanner.good[..n].iter().all(|&g| g) {
                // Fast path: every data slice intact — stitch and go.
                let mut remaining = data_len;
                for slice in &self.scanner.slices[..n] {
                    let take = remaining.min(slice.len());
                    out.write_all(&slice[..take])?;
                    remaining -= take;
                }
            } else {
                let missing = meta.total_shards() - self.scanner.good_count();
                if missing > p {
                    return Err(StreamError::TooDamaged {
                        chunk: c,
                        missing,
                        parity: p,
                    });
                }
                refill_shards(
                    &mut self.shards,
                    &mut self.spare,
                    &self.scanner.slices,
                    &self.scanner.good,
                );
                out.write_all(&self.codec.decode(&self.shards, data_len)?)?;
                report.chunks_repaired += 1;
            }
            report.bytes_written += data_len as u64;
        }
        out.flush()?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::StreamEncoder;
    use crate::format::HEADER_LEN;
    use ec_core::{codec_for, CodecSpec};
    use std::io::Cursor;

    fn rs(n: usize, p: usize) -> Box<dyn ErasureCoder> {
        codec_for(&CodecSpec::rs(n, p)).unwrap()
    }

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 89 + 17 + i / 11) as u8).collect()
    }

    fn encode(codec: &dyn ErasureCoder, chunk: usize, data: &[u8]) -> (ArchiveMeta, Vec<Vec<u8>>) {
        let sinks: Vec<Cursor<Vec<u8>>> =
            (0..codec.total_shards()).map(|_| Cursor::new(Vec::new())).collect();
        let mut enc = StreamEncoder::new(codec, chunk, sinks).unwrap();
        enc.write_all(data).unwrap();
        let (meta, sinks) = enc.finalize().unwrap();
        (meta, sinks.into_iter().map(Cursor::into_inner).collect())
    }

    fn sources(files: &[Vec<u8>], drop: &[usize]) -> Vec<Option<Cursor<Vec<u8>>>> {
        files
            .iter()
            .enumerate()
            .map(|(i, f)| {
                (!drop.contains(&i)).then(|| {
                    let mut c = Cursor::new(f.clone());
                    c.set_position(HEADER_LEN as u64);
                    c
                })
            })
            .collect()
    }

    #[test]
    fn roundtrip_with_losses_and_flips() {
        let codec = rs(4, 2);
        let data = sample(4 * 512 * 3 + 200);
        let (meta, mut files) = encode(&*codec, 4 * 512, &data);

        // Clean roundtrip.
        let mut dec = StreamDecoder::new(&*codec, meta, sources(&files, &[])).unwrap();
        let mut out = Vec::new();
        let rep = dec.pump(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(rep.chunks_repaired, 0);
        assert_eq!(rep.bytes_written, data.len() as u64);

        // Two lost shard streams (p = 2).
        let mut dec = StreamDecoder::new(&*codec, meta, sources(&files, &[0, 5])).unwrap();
        let mut out = Vec::new();
        let rep = dec.pump(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(rep.chunks_repaired, meta.chunk_count);

        // One lost stream plus a bit flip in another: still within p,
        // only the flipped chunk pays the decode.
        files[2][HEADER_LEN + 10] ^= 0x80; // chunk 0 payload of shard 2
        let mut dec = StreamDecoder::new(&*codec, meta, sources(&files, &[4])).unwrap();
        let mut out = Vec::new();
        let rep = dec.pump(&mut out).unwrap();
        assert_eq!(out, data);
        assert!(rep.chunks_repaired >= 1);
    }

    #[test]
    fn too_much_damage_is_typed() {
        let codec = rs(4, 2);
        let data = sample(4096);
        let (meta, files) = encode(&*codec, 1024, &data);
        let mut dec =
            StreamDecoder::new(&*codec, meta, sources(&files, &[0, 1, 2])).unwrap();
        match dec.pump(&mut Vec::new()) {
            Err(StreamError::TooDamaged { chunk: 0, missing: 3, parity: 2 }) => {}
            other => panic!("expected TooDamaged, got {other:?}"),
        }
    }

    #[test]
    fn truncated_source_is_dropped_midstream() {
        let codec = rs(3, 2);
        let data = sample(3 * 800);
        let (meta, mut files) = encode(&*codec, 600, &data);
        assert_eq!(meta.chunk_count, 4);
        // Cut shard 1 off after two chunks: its first chunks still serve,
        // later chunks decode without it.
        let keep = HEADER_LEN + 2 * (meta.slice_len(0) + FRAME_TRAILER_LEN);
        files[1].truncate(keep);
        let mut dec = StreamDecoder::new(&*codec, meta, sources(&files, &[])).unwrap();
        let mut out = Vec::new();
        let rep = dec.pump(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(rep.chunks_repaired, 2);
    }

    #[test]
    fn mismatched_codec_rejected() {
        let codec = rs(5, 2);
        let meta = ArchiveMeta::new(4, 2, 1024, 100);
        let srcs: Vec<Option<Cursor<Vec<u8>>>> = (0..6).map(|_| None).collect();
        assert!(matches!(
            StreamDecoder::new(&*codec, meta, srcs),
            Err(StreamError::Format(_))
        ));
        // Same (n, p) but a different family: shape-compatible, still a
        // typed refusal — decoding with the wrong matrix yields garbage.
        let codec = rs(10, 4);
        let meta = ArchiveMeta::with_spec(&CodecSpec::lrc(10, 4, 5), 1024, 100);
        let srcs: Vec<Option<Cursor<Vec<u8>>>> = (0..14).map(|_| None).collect();
        assert!(matches!(
            StreamDecoder::new(&*codec, meta, srcs),
            Err(StreamError::Format(_))
        ));
    }

    #[test]
    fn lrc_stream_roundtrips_with_losses() {
        let codec = codec_for(&CodecSpec::lrc(4, 3, 2)).unwrap();
        let data = sample(4 * 300 + 77);
        let (meta, files) = encode(&*codec, 600, &data);
        assert_eq!(meta.codec_spec().unwrap(), CodecSpec::lrc(4, 3, 2));
        // Lose one shard per group plus a global: recoverable for this
        // LRC, exercised through the trait object end-to-end.
        let mut dec = StreamDecoder::new(&*codec, meta, sources(&files, &[0, 3, 6])).unwrap();
        let mut out = Vec::new();
        dec.pump(&mut out).unwrap();
        assert_eq!(out, data);
    }
}
