//! [`Archive`]: erasure-coded cold storage on a directory of shard
//! files, with verify / scrub / repair maintenance verbs.
//!
//! An archive of any registered codec (n, p) is `n + p` files
//! `shard-000.ecs …` in one directory, each in the self-describing
//! format of [`crate::format`]. Opening needs no side-channel metadata:
//! the parameters — including which codec family encoded the shards —
//! are read back from the shard headers themselves (majority vote
//! across the surviving files, each header CRC-protected).

use crate::decode::{refill_shards, ChunkScanner, ExtractReport, StreamDecoder};
use crate::encode::StreamEncoder;
use crate::error::StreamError;
use crate::format::{ArchiveMeta, HashTrailer, ShardHeader};
use ec_wire::crc32;
use ec_wire::merkle::{leaf_hash, Hash, MerkleTree};
use ec_core::{codec_for, codec_for_with, CodecSpec, EcError, ErasureCoder, RsConfig};
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of shard `index` within an archive directory.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:03}.ecs")
}

/// Parse a shard file name back to its index.
fn parse_shard_file_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("shard-")?.strip_suffix(".ecs")?;
    if digits.len() != 3 {
        return None;
    }
    digits.parse().ok()
}

/// Integrity state of one shard file, as diagnosed by
/// [`Archive::verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// Header, length and every chunk CRC check out.
    Ok,
    /// The file is absent (or unopenable).
    Missing,
    /// The header does not parse, or describes a different archive /
    /// shard index.
    BadHeader,
    /// The file length does not match the header's geometry (truncation,
    /// or trailing garbage).
    WrongLength { expected: u64, actual: u64 },
    /// One or more chunk payloads fail their CRC-32 — or, on a v3
    /// archive with an elected root vector, their trusted SHA-256 leaf
    /// (CRC-preserving tampering lands here, attributed to exact
    /// chunks).
    Corrupt { chunks: Vec<u64> },
    /// v3 only: the shard's hash trailer is unreadable, inconsistent
    /// with itself, or disagrees with the root vector a majority of
    /// shards voted for. The payload may read clean, but nothing can
    /// vouch for it — repair rewrites the file and re-proves its root.
    BadHashes,
}

impl ShardState {
    /// True iff the shard needs no repair.
    pub fn is_ok(&self) -> bool {
        matches!(self, ShardState::Ok)
    }
}

impl std::fmt::Display for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardState::Ok => write!(f, "ok"),
            ShardState::Missing => write!(f, "missing"),
            ShardState::BadHeader => write!(f, "bad header"),
            ShardState::WrongLength { expected, actual } => {
                write!(f, "wrong length ({actual} bytes, expected {expected})")
            }
            ShardState::Corrupt { chunks } => {
                write!(f, "corrupt ({} bad chunks: {chunks:?})", chunks.len())
            }
            ShardState::BadHashes => write!(f, "bad hash trailer"),
        }
    }
}

/// Per-shard diagnosis of an archive.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// `shards[i]` is the state of shard file `i`.
    pub shards: Vec<ShardState>,
    /// True iff the walk verified frames against an elected Merkle root
    /// vector (v3), not just CRC-32. False for pre-v3 archives and for
    /// a v3 archive whose trailers could not elect a majority.
    pub hash_checked: bool,
}

impl VerifyReport {
    /// True iff every shard file is intact.
    pub fn all_ok(&self) -> bool {
        self.shards.iter().all(ShardState::is_ok)
    }

    /// Indices of the shard files needing repair.
    pub fn damaged(&self) -> Vec<usize> {
        (0..self.shards.len()).filter(|&i| !self.shards[i].is_ok()).collect()
    }
}

/// Result of a deep scrub: the per-shard verify diagnosis plus chunks
/// whose shards all pass their CRCs but disagree with the code (parity
/// inconsistent with data — e.g. a shard rewritten wholesale with its
/// CRC "fixed" to match).
#[derive(Clone, Debug)]
pub struct ScrubReport {
    pub verify: VerifyReport,
    pub inconsistent_chunks: Vec<u64>,
}

impl ScrubReport {
    /// True iff the archive is fully healthy.
    pub fn clean(&self) -> bool {
        self.verify.all_ok() && self.inconsistent_chunks.is_empty()
    }
}

/// Result of a repair pass.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Shard files that were rewritten.
    pub repaired: Vec<usize>,
    /// Chunks that needed reconstruction (vs straight re-framing of
    /// surviving bytes).
    pub chunks_rebuilt: u64,
    /// Frame bytes read from shard files during the rebuild walk. A
    /// locality-aware codec repairs a single loss from its group, so
    /// this drops below the read-everything cost of an MDS repair.
    pub bytes_read: u64,
}

/// The elected hash truth of a v3 archive: the majority root vector,
/// the object root it implies, and — per shard — the trusted leaf
/// hashes of every shard whose trailer matched the election.
struct HashContext {
    trusted: Vec<Option<Vec<Hash>>>,
    shard_roots: Vec<Hash>,
    object_root: Hash,
}

/// A streaming erasure-coded archive rooted at a directory.
pub struct Archive {
    dir: PathBuf,
    meta: ArchiveMeta,
    codec: Box<dyn ErasureCoder>,
}

impl Archive {
    /// Archive `input` into `dir` as RS(`data_shards`, `parity_shards`)
    /// with the paper's default codec configuration.
    pub fn create(
        input: &Path,
        dir: &Path,
        data_shards: usize,
        parity_shards: usize,
        chunk_size: usize,
    ) -> Result<Archive, StreamError> {
        Archive::create_with_config(input, dir, RsConfig::new(data_shards, parity_shards), chunk_size)
    }

    /// [`Archive::create`] under an arbitrary registered codec (the
    /// spec is recorded in every shard header and resolved back on
    /// `open`).
    pub fn create_with_spec(
        input: &Path,
        dir: &Path,
        spec: &CodecSpec,
        chunk_size: usize,
    ) -> Result<Archive, StreamError> {
        Archive::create_inner(input, dir, codec_for(spec)?, chunk_size)
    }

    /// [`Archive::create`] with an explicit engine configuration
    /// (kernel, parallelism, blocksize — none of it affects the bytes
    /// on disk).
    pub fn create_with_config(
        input: &Path,
        dir: &Path,
        cfg: RsConfig,
        chunk_size: usize,
    ) -> Result<Archive, StreamError> {
        let spec = CodecSpec::rs(cfg.data_shards, cfg.parity_shards);
        Archive::create_inner(input, dir, codec_for_with(&spec, cfg)?, chunk_size)
    }

    fn create_inner(
        input: &Path,
        dir: &Path,
        codec: Box<dyn ErasureCoder>,
        chunk_size: usize,
    ) -> Result<Archive, StreamError> {
        // Open the input before touching any existing shard file: a
        // mistyped path must not truncate a previous archive in `dir`.
        let mut reader = BufReader::new(File::open(input)?);
        fs::create_dir_all(dir)?;
        // Claim the directory's whole shard namespace: indices 0..n+p
        // are overwritten below, and stale files a previous, larger
        // archive left beyond them would make `open` see two archives.
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(idx) = entry.file_name().to_str().and_then(parse_shard_file_name) {
                if idx >= codec.total_shards() {
                    fs::remove_file(entry.path())?;
                }
            }
        }
        let sinks = (0..codec.total_shards())
            .map(|i| Ok(BufWriter::new(File::create(dir.join(shard_file_name(i)))?)))
            .collect::<Result<Vec<_>, std::io::Error>>()?;
        let mut enc = StreamEncoder::new(&*codec, chunk_size, sinks)?;
        enc.pump(&mut reader)?;
        let (meta, _sinks) = enc.finalize()?;
        Ok(Archive { dir: dir.to_path_buf(), meta, codec })
    }

    /// Open an existing archive from its shard files alone: headers are
    /// collected from every readable `shard-*.ecs` in `dir` and the
    /// strict-majority metadata wins (headers are CRC-protected, so a
    /// minority is damage, not ambiguity). A *tie* between two distinct
    /// metadata values is an error, not a coin flip: it means the
    /// directory holds shards of two different archives, and repairing
    /// under the wrong one would overwrite good data.
    pub fn open(dir: &Path) -> Result<Archive, StreamError> {
        let mut votes: HashMap<ArchiveMeta, usize> = HashMap::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if parse_shard_file_name(name).is_none() {
                continue;
            }
            let Ok(file) = File::open(entry.path()) else { continue };
            if let Ok(h) = ShardHeader::read_from(&mut BufReader::new(file)) {
                *votes.entry(h.meta).or_insert(0) += 1;
            }
        }
        let best = votes.values().copied().max().ok_or_else(|| {
            StreamError::Format(format!("no readable shard headers in {}", dir.display()))
        })?;
        let mut leaders = votes.into_iter().filter(|&(_, c)| c == best).map(|(m, _)| m);
        let meta = leaders.next().expect("max came from the map");
        if leaders.next().is_some() {
            return Err(StreamError::Format(format!(
                "ambiguous archive: {best} shard headers each describe two different \
                 archives in {} (mixed generations?)",
                dir.display()
            )));
        }
        let codec = codec_for(&meta.codec_spec()?)?;
        Ok(Archive { dir: dir.to_path_buf(), meta, codec })
    }

    /// The archive-wide metadata (codec params, chunk geometry, length).
    pub fn meta(&self) -> &ArchiveMeta {
        &self.meta
    }

    /// The codec this archive handle encodes/decodes with (resolved
    /// from the shard headers' recorded spec on `open`).
    pub fn codec(&self) -> &dyn ErasureCoder {
        &*self.codec
    }

    /// Path of shard file `index`.
    pub fn shard_path(&self, index: usize) -> PathBuf {
        self.dir.join(shard_file_name(index))
    }

    /// Open shard `index` for reading as a trusted source: the header
    /// must parse and match this archive's metadata and the shard's
    /// index. Returns the reader positioned at the first frame.
    fn open_source(&self, index: usize) -> Option<BufReader<File>> {
        let mut r = BufReader::new(File::open(self.shard_path(index)).ok()?);
        let h = ShardHeader::read_from(&mut r).ok()?;
        (h.meta == self.meta && h.shard_index as usize == index).then_some(r)
    }

    /// Read and parse shard `index`'s hash trailer, keeping it only if
    /// it is self-consistent (its leaves build its own recorded root and
    /// its object root matches its root vector).
    fn read_trailer(&self, index: usize) -> Option<HashTrailer> {
        let offset = self.meta.hash_trailer_offset()?;
        let len = HashTrailer::wire_len(&self.meta)? as usize;
        let mut f = File::open(self.shard_path(index)).ok()?;
        f.seek(SeekFrom::Start(offset)).ok()?;
        let mut b = vec![0u8; len];
        f.read_exact(&mut b).ok()?;
        HashTrailer::from_bytes(&b, &self.meta)
            .ok()
            .filter(|t| t.self_consistent(index))
    }

    /// Elect the authoritative hash context of a v3 archive: every
    /// self-consistent trailer votes for its root vector, the plurality
    /// wins (a tie is no election — like `open`'s header vote, two
    /// equally supported truths cannot be told apart). Shards whose
    /// trailer matched the winner contribute *trusted leaves*: per-chunk
    /// hashes authenticated, via the shard root and SHA-256 collision
    /// resistance, by the election itself.
    fn hash_context(&self) -> Option<HashContext> {
        if !self.meta.hash_trailer {
            return None;
        }
        let t = self.meta.total_shards();
        let trailers: Vec<Option<HashTrailer>> = (0..t).map(|i| self.read_trailer(i)).collect();
        let mut votes: HashMap<Vec<Hash>, usize> = HashMap::new();
        for tr in trailers.iter().flatten() {
            *votes.entry(tr.shard_roots.clone()).or_insert(0) += 1;
        }
        let best = votes.values().copied().max()?;
        let mut leaders = votes.into_iter().filter(|&(_, c)| c == best).map(|(r, _)| r);
        let shard_roots = leaders.next().expect("max came from the map");
        if leaders.next().is_some() {
            return None;
        }
        let object_root = HashTrailer::object_root_of(&shard_roots);
        let trusted = trailers
            .into_iter()
            .map(|tr| tr.filter(|tr| tr.shard_roots == shard_roots).map(|tr| tr.leaves))
            .collect();
        Some(HashContext { trusted, shard_roots, object_root })
    }

    /// The elected per-shard Merkle roots and object root of a v3
    /// archive (`None` for pre-v3 archives or when no majority exists).
    pub fn elected_roots(&self) -> Option<(Vec<Hash>, Hash)> {
        self.hash_context().map(|c| (c.shard_roots, c.object_root))
    }

    /// Extract the archived data to `output`, decoding around any
    /// missing or corrupt shards (up to `p` per chunk).
    ///
    /// The data is written to a temporary file next to `output` and
    /// renamed into place only when extraction succeeds end to end — a
    /// failure (e.g. unrecoverable damage in a late chunk) neither
    /// clobbers a pre-existing file at `output` nor leaves a silent
    /// partial one.
    pub fn extract(&self, output: &Path) -> Result<ExtractReport, StreamError> {
        let sources = (0..self.meta.total_shards()).map(|i| self.open_source(i)).collect();
        let mut dec = StreamDecoder::new(&*self.codec, self.meta, sources)?;
        // Arm Merkle verification where the election vouches for a
        // shard's leaves: frames that pass CRC but fail their leaf hash
        // are decoded around, exactly like bit-rot. Sources without
        // trusted leaves still serve (CRC-only) — the report's
        // `hash_verified` says which regime ran.
        if let Some(ctx) = self.hash_context() {
            for (i, leaves) in ctx.trusted.into_iter().enumerate() {
                if let Some(leaves) = leaves {
                    dec.set_trusted_leaves(i, leaves);
                }
            }
        }
        let mut tmp = output.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let result = (|| {
            let mut out = BufWriter::new(File::create(&tmp)?);
            let report = dec.pump(&mut out)?;
            out.into_inner().map_err(std::io::IntoInnerError::into_error)?;
            fs::rename(&tmp, output)?;
            Ok(report)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Diagnose every shard file: header, length, per-chunk CRCs. Reads
    /// each file once, sequentially; no parity math.
    pub fn verify(&self) -> Result<VerifyReport, StreamError> {
        Ok(self.scan(false)?.0)
    }

    /// Deep scan: [`Archive::verify`] plus a parity-consistency check of
    /// every chunk whose `n + p` frames all pass their CRCs. Catches
    /// damage a checksum scan cannot — a slice rewritten together with
    /// its CRC — at the cost of re-encoding the stripe chunk by chunk.
    /// Still one sequential read per shard file: the CRC walk and the
    /// consistency re-encode share the same pass.
    pub fn scrub(&self) -> Result<ScrubReport, StreamError> {
        let (verify, inconsistent_chunks) = self.scan(true)?;
        Ok(ScrubReport { verify, inconsistent_chunks })
    }

    /// The single-pass diagnosis behind `verify` and `scrub`: header and
    /// length checks up front (O(1) per file), then one chunk-wise CRC
    /// walk over the structurally sound files, optionally re-encoding
    /// each fully intact chunk to check parity consistency.
    fn scan(&self, consistency: bool) -> Result<(VerifyReport, Vec<u64>), StreamError> {
        let t = self.meta.total_shards();
        let expected = self.meta.shard_file_len();
        // `None` state = structurally sound so far; the CRC/hash walk
        // decides between `Ok` and `Corrupt`.
        let mut states: Vec<Option<ShardState>> = Vec::with_capacity(t);
        let mut readers: Vec<Option<BufReader<File>>> = Vec::with_capacity(t);
        for i in 0..t {
            let (state, reader) = match File::open(self.shard_path(i)) {
                Err(_) => (Some(ShardState::Missing), None),
                Ok(file) => {
                    let actual = file.metadata().map(|m| m.len());
                    let mut r = BufReader::new(file);
                    match (ShardHeader::read_from(&mut r), actual) {
                        (Ok(h), _) if h.meta != self.meta || h.shard_index as usize != i => {
                            (Some(ShardState::BadHeader), None)
                        }
                        (Err(_), _) => (Some(ShardState::BadHeader), None),
                        (Ok(_), Ok(actual)) if actual == expected => (None, Some(r)),
                        (Ok(_), Ok(actual)) => {
                            (Some(ShardState::WrongLength { expected, actual }), None)
                        }
                        (Ok(_), Err(_)) => (Some(ShardState::Missing), None),
                    }
                }
            };
            states.push(state);
            readers.push(reader);
        }
        // Elect the Merkle truth before the walk so frame hashes are
        // checked in the same pass as the CRCs. A structurally sound
        // shard whose trailer failed the election is `BadHashes`: its
        // payload may read clean, but nothing vouches for it.
        let ctx = self.hash_context();
        let mut hash_bad = vec![false; t];
        if let Some(ctx) = &ctx {
            for i in 0..t {
                if states[i].is_none() && ctx.trusted[i].is_none() {
                    hash_bad[i] = true;
                }
            }
        }
        let present: Vec<bool> = readers.iter().map(Option::is_some).collect();
        let hash_checked = ctx.is_some();
        let mut bad_chunks: Vec<Vec<u64>> = vec![Vec::new(); t];
        let mut inconsistent = Vec::new();
        if !present.iter().any(|&p| p) {
            // Nothing to walk (every file already diagnosed) — and a
            // hostile header claiming astronomical chunk counts must not
            // spin the empty loop.
            let shards = states.into_iter().map(|s| s.expect("all diagnosed")).collect();
            return Ok((VerifyReport { shards, hash_checked }, inconsistent));
        }
        let mut scanner = ChunkScanner::new(self.meta, readers);
        if let Some(ctx) = ctx {
            for (i, leaves) in ctx.trusted.into_iter().enumerate() {
                if let Some(leaves) = leaves {
                    scanner.set_trusted_leaves(i, leaves);
                }
            }
        }
        for c in 0..self.meta.chunk_count {
            scanner.read_chunk(c);
            for i in 0..t {
                if present[i] && !scanner.good[i] {
                    bad_chunks[i].push(c);
                }
            }
            if consistency
                && scanner.good.iter().all(|&g| g)
                && !self.codec.verify(&scanner.slices)?
            {
                inconsistent.push(c);
            }
        }
        let shards = states
            .into_iter()
            .zip(bad_chunks)
            .zip(hash_bad)
            .map(|((state, bad), hash_bad)| match state {
                Some(s) => s,
                None if hash_bad => ShardState::BadHashes,
                None if bad.is_empty() => ShardState::Ok,
                None => ShardState::Corrupt { chunks: bad },
            })
            .collect();
        Ok((VerifyReport { shards, hash_checked }, inconsistent))
    }

    /// Rewrite every damaged shard file from the survivors.
    ///
    /// Damage is re-diagnosed ([`Archive::verify`]), then the archive is
    /// walked chunk by chunk: slices that fail their CRC are
    /// reconstructed (missing parity rows via the partial row-subset
    /// programs — a single bad parity shard costs one row program per
    /// chunk, not a full re-encode) and every damaged file is rewritten
    /// whole, re-framing its surviving good chunks as-is. Replacement
    /// files are written next to the originals and renamed into place
    /// only after the full pass succeeds.
    ///
    /// Repair reads the archive twice by design: the damaged-file set
    /// must be known *before* the rebuild walk (replacement writers are
    /// created up front), and CRC-level damage is only discoverable by
    /// reading everything — a diagnose pass cannot be folded into the
    /// rebuild pass without buffering whole shard files.
    ///
    /// When the codec has a cheaper repair plan than "read any `n`
    /// survivors" — an LRC repairing a single loss from its locality
    /// group — only the plan's shard files are opened; the walk falls
    /// back to a full-source pass if a plan source turns out damaged
    /// at the chunk level.
    pub fn repair(&self) -> Result<RepairReport, StreamError> {
        let damaged = self.verify()?.damaged();
        if damaged.is_empty() {
            return Ok(RepairReport::default());
        }
        // A repair plan reads only a subset of shards, so on a v3
        // archive it needs the elected root vector to fill in the
        // unread shards' roots (and to prove the rebuild). No election
        // ⇒ full pass, which can recompute every root from scratch.
        let plan_viable = !self.meta.hash_trailer || self.hash_context().is_some();
        if plan_viable {
            if let Ok(plan) = self.codec.repair_sources(&damaged) {
                if plan.len() + damaged.len() < self.meta.total_shards() {
                    match self.repair_pass(&damaged, Some(&plan)) {
                        Err(StreamError::Codec(EcError::MissingSource { .. })) => {}
                        other => return other,
                    }
                }
            }
        }
        self.repair_pass(&damaged, None)
    }

    fn repair_pass(
        &self,
        damaged: &[usize],
        plan: Option<&[usize]>,
    ) -> Result<RepairReport, StreamError> {
        let damaged = damaged.to_vec();
        let t = self.meta.total_shards();
        let p = self.meta.parity_shards as usize;
        let ctx = self.hash_context();
        // No election on a v3 archive ⇒ the trailer must be rebuilt
        // from every shard's actual bytes, so every shard's leaves are
        // tracked (full pass only; `repair` gates plans on the
        // election).
        let track_all = self.meta.hash_trailer && ctx.is_none();

        // Every file with a trusted header feeds the scan — including
        // damaged ones, whose surviving chunks still count as sources
        // and must be re-framed into the replacement file. A repair
        // plan only prunes *healthy* files it does not need to read.
        // Exception: under an election, a damaged shard *without*
        // trusted leaves (bad trailer) is not a source at all — its
        // frames may be CRC-forged and nothing can vouch for them, so
        // it is rebuilt wholesale from shards that can be verified.
        let sources = (0..t)
            .map(|i| {
                let wanted = plan
                    .map(|plan| plan.contains(&i) || damaged.contains(&i))
                    .unwrap_or(true);
                let vouched = match &ctx {
                    Some(ctx) => ctx.trusted[i].is_some() || !damaged.contains(&i),
                    None => true,
                };
                (wanted && vouched).then(|| self.open_source(i)).flatten()
            })
            .collect();
        let mut scanner = ChunkScanner::new(self.meta, sources);
        if let Some(ctx) = &ctx {
            for (i, leaves) in ctx.trusted.iter().enumerate() {
                if let Some(leaves) = leaves {
                    scanner.set_trusted_leaves(i, leaves.clone());
                }
            }
        }

        let tmp_path = |i: usize| self.dir.join(format!("{}.tmp", shard_file_name(i)));
        let mut writers = damaged
            .iter()
            .map(|&i| {
                let mut w = BufWriter::new(File::create(tmp_path(i))?);
                ShardHeader { meta: self.meta, shard_index: i as u16 }.write_to(&mut w)?;
                Ok((i, w))
            })
            .collect::<Result<Vec<_>, std::io::Error>>()
            .inspect_err(|_| self.discard_tmps(&damaged, tmp_path))?;

        let mut chunks_rebuilt = 0u64;
        let mut bytes_read = 0u64;
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; t];
        let mut spare: Vec<Vec<u8>> = Vec::new();
        let mut new_leaves: Vec<Vec<Hash>> = vec![Vec::new(); t];
        for c in 0..self.meta.chunk_count {
            let live = scanner.live_count() as u64;
            scanner.read_chunk(c);
            bytes_read += live * (self.meta.slice_len(c) + crate::format::FRAME_TRAILER_LEN) as u64;
            let result = (|| -> Result<(), StreamError> {
                if plan.is_some() {
                    // Plan mode: rebuild exactly the damaged shards'
                    // bad slices from the plan's sources. A corrupt
                    // chunk inside a plan source surfaces as a typed
                    // `MissingSource`, which the caller answers with a
                    // full-source pass.
                    let targets: Vec<usize> =
                        damaged.iter().copied().filter(|&i| !scanner.good[i]).collect();
                    if !targets.is_empty() {
                        refill_shards(&mut shards, &mut spare, &scanner.slices, &scanner.good);
                        self.codec.reconstruct_subset(&mut shards, &targets)?;
                        chunks_rebuilt += 1;
                    }
                } else {
                    let missing = t - scanner.good_count();
                    if missing > 0 {
                        if missing > p {
                            return Err(StreamError::TooDamaged { chunk: c, missing, parity: p });
                        }
                        refill_shards(&mut shards, &mut spare, &scanner.slices, &scanner.good);
                        self.codec.reconstruct(&mut shards)?;
                        chunks_rebuilt += 1;
                    }
                }
                let slice_of = |i: usize| -> &[u8] {
                    if scanner.good[i] {
                        &scanner.slices[i]
                    } else {
                        shards[i].as_deref().expect("reconstructed above")
                    }
                };
                for &mut (i, ref mut w) in &mut writers {
                    let slice = slice_of(i);
                    w.write_all(slice)?;
                    w.write_all(&crc32(slice).to_le_bytes())?;
                }
                if self.meta.hash_trailer {
                    for (i, leaves) in new_leaves.iter_mut().enumerate().take(t) {
                        if track_all || damaged.contains(&i) {
                            leaves.push(leaf_hash(slice_of(i)));
                        }
                    }
                }
                Ok(())
            })();
            if let Err(e) = result {
                drop(writers);
                self.discard_tmps(&damaged, tmp_path);
                return Err(e);
            }
        }

        // v3: finish each replacement file with its hash trailer — and
        // prove the restoration first. Under an election the rebuilt
        // shard's root must equal the elected root: reconstruction from
        // verified sources is byte-exact, so a mismatch means the walk
        // was fed something unprovable and the file must not publish.
        if self.meta.hash_trailer {
            let shard_roots: Vec<Hash> = match &ctx {
                Some(ctx) => ctx.shard_roots.clone(),
                None => new_leaves
                    .iter()
                    .map(|ls| MerkleTree::from_leaves(ls.clone()).root())
                    .collect(),
            };
            let mut failure: Option<StreamError> = None;
            for &mut (i, ref mut w) in &mut writers {
                let trailer = HashTrailer::new(new_leaves[i].clone(), shard_roots.clone());
                if trailer.own_root() != shard_roots[i] {
                    failure = Some(StreamError::Format(format!(
                        "restored shard {i} hashes to a different Merkle root than \
                         the elected vector — refusing to publish it"
                    )));
                    break;
                }
                if let Err(e) = w.write_all(&trailer.to_bytes()) {
                    failure = Some(e.into());
                    break;
                }
            }
            if let Some(e) = failure {
                drop(writers);
                self.discard_tmps(&damaged, tmp_path);
                return Err(e);
            }
        }

        for (i, w) in writers {
            let into = |e: std::io::Error| {
                self.discard_tmps(&damaged, tmp_path);
                StreamError::Io(e)
            };
            w.into_inner().map_err(|e| into(e.into_error()))?;
            fs::rename(tmp_path(i), self.shard_path(i)).map_err(into)?;
        }
        Ok(RepairReport { repaired: damaged, chunks_rebuilt, bytes_read })
    }

    fn discard_tmps(&self, damaged: &[usize], tmp_path: impl Fn(usize) -> PathBuf) {
        for &i in damaged {
            let _ = fs::remove_file(tmp_path(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FORMAT_VERSION;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ec_stream_archive_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_input(dir: &Path, len: usize) -> PathBuf {
        let input = dir.join("input.bin");
        let data: Vec<u8> = (0..len).map(|i| (i * 37 + i / 9) as u8).collect();
        fs::write(&input, data).unwrap();
        input
    }

    #[test]
    fn codec_survives_the_directory_roundtrip() {
        let dir = tmp_dir("codec_roundtrip");
        let input = write_input(&dir, 50_000);
        let spec = CodecSpec::lrc(4, 3, 2);
        let shards = dir.join("shards");
        let a = Archive::create_with_spec(&input, &shards, &spec, 4096).unwrap();
        assert_eq!(a.codec().spec(), spec);

        // `open` resolves the codec from the headers alone.
        let a = Archive::open(&shards).unwrap();
        assert_eq!(a.codec().spec(), spec);
        assert_eq!(a.meta().codec_spec().unwrap(), spec);

        let restored = dir.join("restored.bin");
        a.extract(&restored).unwrap();
        assert_eq!(fs::read(&input).unwrap(), fs::read(&restored).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lrc_single_loss_repair_reads_only_the_group() {
        let dir = tmp_dir("lrc_repair");
        let input = write_input(&dir, 120_000);
        // LRC(8, r=4): groups {0..4} + local 8, {4..8} + local 9, two
        // globals 10, 11. Twelve shard files.
        let spec = CodecSpec::lrc(8, 4, 4);
        let shards = dir.join("shards");
        let a = Archive::create_with_spec(&input, &shards, &spec, 8192).unwrap();

        // Lose one data shard; the plan is its group (4 surviving
        // shards), and the walk must read only those plus nothing else.
        fs::remove_file(a.shard_path(2)).unwrap();
        let plan = a.codec().repair_sources(&[2]).unwrap();
        assert_eq!(plan, vec![0, 1, 3, 8]);
        let report = a.repair().unwrap();
        assert_eq!(report.repaired, vec![2]);
        assert!(a.verify().unwrap().all_ok());

        // Byte accounting: the group-local pass reads 4 source files'
        // frames; an MDS repair of the same loss reads at least n = 8.
        let frames: u64 = (0..a.meta().chunk_count)
            .map(|c| (a.meta().slice_len(c) + crate::format::FRAME_TRAILER_LEN) as u64)
            .sum();
        assert_eq!(report.bytes_read, 4 * frames);

        // The restriction is correctness-neutral: extraction matches.
        let restored = dir.join("restored.bin");
        a.extract(&restored).unwrap();
        assert_eq!(fs::read(&input).unwrap(), fs::read(&restored).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_repair_falls_back_when_a_source_is_corrupt() {
        let dir = tmp_dir("lrc_fallback");
        let input = write_input(&dir, 60_000);
        let spec = CodecSpec::lrc(8, 4, 4);
        let shards = dir.join("shards");
        let a = Archive::create_with_spec(&input, &shards, &spec, 4096).unwrap();

        // Lose shard 2, and flip a byte inside plan-source shard 0's
        // first frame (CRC-level damage the verify pass flags, so shard
        // 0 joins the damaged set and the plan widens; either way the
        // repair must converge to a clean archive).
        fs::remove_file(a.shard_path(2)).unwrap();
        let p0 = a.shard_path(0);
        let mut bytes = fs::read(&p0).unwrap();
        let off = crate::format::HEADER_LEN + 5;
        bytes[off] ^= 0x10;
        fs::write(&p0, bytes).unwrap();

        let report = a.repair().unwrap();
        assert_eq!(report.repaired, vec![0, 2]);
        assert!(a.verify().unwrap().all_ok());
        let restored = dir.join("restored.bin");
        a.extract(&restored).unwrap();
        assert_eq!(fs::read(&input).unwrap(), fs::read(&restored).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Rewrite a freshly created (v3) archive as what an older writer
    /// produced: strip every hash trailer, stamp `version` into each
    /// header (zeroing the codec fields for v1), refresh the CRCs.
    fn downgrade(shards: &Path, total: usize, version: u32) {
        for i in 0..total {
            let path = shards.join(shard_file_name(i));
            let mut bytes = fs::read(&path).unwrap();
            let h = ShardHeader::from_bytes(bytes[..crate::format::HEADER_LEN].try_into().unwrap())
                .unwrap();
            let mut plain = h.meta;
            plain.hash_trailer = false;
            bytes.truncate(plain.shard_file_len() as usize);
            bytes[8..12].copy_from_slice(&version.to_le_bytes());
            if version == 1 {
                bytes[18..20].copy_from_slice(&[0, 0]);
                bytes[40..42].copy_from_slice(&[0, 0]);
            }
            let crc = crc32(&bytes[..crate::format::HEADER_LEN - 4]);
            bytes[60..64].copy_from_slice(&crc.to_le_bytes());
            fs::write(&path, bytes).unwrap();
        }
    }

    #[test]
    fn v1_archive_opens_as_rs() {
        let dir = tmp_dir("v1_compat");
        let input = write_input(&dir, 30_000);
        let shards = dir.join("shards");
        let a = Archive::create(&input, &shards, 4, 2, 4096).unwrap();
        drop(a);
        downgrade(&shards, 6, 1);

        let a = Archive::open(&shards).unwrap();
        assert_eq!(a.codec().spec(), CodecSpec::rs(4, 2));
        assert!(!a.meta().hash_trailer);
        let report = a.verify().unwrap();
        assert!(report.all_ok());
        // Pre-v3: nothing to hash-check, and the report says so.
        assert!(!report.hash_checked);
        assert!(a.elected_roots().is_none());
        let restored = dir.join("restored.bin");
        let rep = a.extract(&restored).unwrap();
        assert!(!rep.hash_verified);
        assert_eq!(fs::read(&input).unwrap(), fs::read(&restored).unwrap());

        // And a repaired (rewritten) shard comes back as version 2 —
        // not silently upgraded to 3, since its siblings carry no
        // trailer — while the survivors stay v1. Mixed generations
        // agree on the same metadata, so open still votes unanimously.
        fs::remove_file(a.shard_path(3)).unwrap();
        let a = Archive::open(&shards).unwrap();
        a.repair().unwrap();
        assert!(a.verify().unwrap().all_ok());
        let rewritten = fs::read(a.shard_path(3)).unwrap();
        assert_eq!(u32::from_le_bytes(rewritten[8..12].try_into().unwrap()), 2);
        const { assert!(FORMAT_VERSION > 2) };
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_archive_roundtrips_without_hashes() {
        let dir = tmp_dir("v2_compat");
        let input = write_input(&dir, 25_000);
        let shards = dir.join("shards");
        let spec = CodecSpec::lrc(4, 3, 2);
        let a = Archive::create_with_spec(&input, &shards, &spec, 4096).unwrap();
        drop(a);
        downgrade(&shards, 7, 2);

        // The codec identity survives (v2 carried it); the hash layer
        // reports itself absent rather than failing.
        let a = Archive::open(&shards).unwrap();
        assert_eq!(a.codec().spec(), spec);
        assert!(!a.meta().hash_trailer);
        let report = a.verify().unwrap();
        assert!(report.all_ok() && !report.hash_checked);
        let restored = dir.join("restored.bin");
        let rep = a.extract(&restored).unwrap();
        assert!(!rep.hash_verified);
        assert_eq!(fs::read(&input).unwrap(), fs::read(&restored).unwrap());
        // Repair keeps writing v2: no trailer appears on the rewrite.
        fs::remove_file(a.shard_path(1)).unwrap();
        let a = Archive::open(&shards).unwrap();
        a.repair().unwrap();
        assert!(a.verify().unwrap().all_ok());
        let rewritten = fs::read(a.shard_path(1)).unwrap();
        assert_eq!(u32::from_le_bytes(rewritten[8..12].try_into().unwrap()), 2);
        assert_eq!(rewritten.len() as u64, a.meta().shard_file_len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_forged_tamper_is_caught_and_localized() {
        use ec_wire::crc_preserving_flip;
        let dir = tmp_dir("crc_forged");
        let input = write_input(&dir, 40_000);
        let shards = dir.join("shards");
        let a = Archive::create(&input, &shards, 4, 2, 4096).unwrap();
        let (roots_before, object_before) = a.elected_roots().unwrap();

        // Forge chunk 2 of shard 1: a 5-byte XOR of the generator
        // polynomial that leaves the frame's CRC-32 — and any CRC over
        // the whole file — unchanged. A checksum walk calls this clean.
        let path = a.shard_path(1);
        let mut bytes = fs::read(&path).unwrap();
        let off = crate::format::HEADER_LEN
            + 2 * (a.meta().slice_len(0) + crate::format::FRAME_TRAILER_LEN)
            + 7;
        let before = crc32(&bytes);
        crc_preserving_flip(&mut bytes, off);
        assert_eq!(crc32(&bytes), before, "the forgery must be CRC-invisible");
        fs::write(&path, bytes).unwrap();

        // The Merkle walk attributes it to the exact shard and chunk.
        let report = a.verify().unwrap();
        assert!(report.hash_checked);
        assert_eq!(report.shards[1], ShardState::Corrupt { chunks: vec![2] });
        assert!(!a.scrub().unwrap().clean());

        // Extraction decodes around the forged frame.
        let restored = dir.join("restored.bin");
        let rep = a.extract(&restored).unwrap();
        assert!(rep.hash_verified);
        assert!(rep.chunks_repaired >= 1);
        assert_eq!(fs::read(&input).unwrap(), fs::read(&restored).unwrap());

        // Repair heals it, and the healed archive proves the same roots
        // it was created with.
        let report = a.repair().unwrap();
        assert_eq!(report.repaired, vec![1]);
        assert!(a.verify().unwrap().all_ok());
        assert_eq!(a.elected_roots().unwrap(), (roots_before, object_before));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_trailer_is_attributed_and_healed() {
        let dir = tmp_dir("bad_trailer");
        let input = write_input(&dir, 20_000);
        let shards = dir.join("shards");
        let a = Archive::create(&input, &shards, 3, 2, 2048).unwrap();
        let roots_before = a.elected_roots().unwrap();

        // Scribble over shard 4's trailer (payload untouched). The
        // remaining four trailers still elect the root vector; shard 4
        // can no longer prove its bytes, so it is flagged and rebuilt.
        let path = a.shard_path(4);
        let mut bytes = fs::read(&path).unwrap();
        let off = a.meta().hash_trailer_offset().unwrap() as usize;
        for b in &mut bytes[off + 10..off + 20] {
            *b ^= 0xFF;
        }
        fs::write(&path, bytes).unwrap();

        let report = a.verify().unwrap();
        assert!(report.hash_checked);
        assert_eq!(report.shards[4], ShardState::BadHashes);
        assert_eq!(report.damaged(), vec![4]);

        let report = a.repair().unwrap();
        assert_eq!(report.repaired, vec![4]);
        assert!(a.verify().unwrap().all_ok());
        assert_eq!(a.elected_roots().unwrap(), roots_before);
        let restored = dir.join("restored.bin");
        assert!(a.extract(&restored).unwrap().hash_verified);
        assert_eq!(fs::read(&input).unwrap(), fs::read(&restored).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }
}
