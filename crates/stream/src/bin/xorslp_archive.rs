//! `xorslp-archive` — streaming erasure-coded archives from the command
//! line.
//!
//! ```text
//! xorslp-archive create  <input> <dir> [-n N] [-p P] [--chunk BYTES] [--codec NAME]
//! xorslp-archive info    <dir>
//! xorslp-archive verify  <dir>
//! xorslp-archive scrub   <dir>
//! xorslp-archive repair  <dir>
//! xorslp-archive extract <dir> <output>
//! xorslp-archive tune    [--force]
//! ```
//!
//! `verify` and `scrub` exit 1 when damage is found (repairable with
//! `repair`), 2 on hard errors — script-friendly for cron-style
//! integrity sweeps.

use ec_core::CodecSpec;
use ec_stream::{Archive, ShardState, StreamError};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
xorslp-archive — streaming erasure-coded archives (XOR-SLP codecs)

USAGE:
    xorslp-archive create  <input> <dir> [-n N] [-p P] [--chunk BYTES] [--codec NAME]
    xorslp-archive info    <dir>
    xorslp-archive verify  <dir>
    xorslp-archive scrub   <dir>
    xorslp-archive repair  <dir>
    xorslp-archive extract <dir> <output>
    xorslp-archive tune    [--force]

VERBS:
    create    split <input> into N data + P parity shard files under <dir>
              (defaults: -n 6 -p 3 --chunk 1048576 --codec rs;
               codecs: rs, evenodd, rdp, lrc, lrc:<r>)
    info      print the archive's self-described parameters
    verify    check headers, lengths and per-chunk CRCs; exit 1 on damage
    scrub     verify + full parity-consistency scan; exit 1 on damage
    repair    rebuild damaged shard files from the survivors
    extract   restore the original file from the surviving shards
    tune      micro-benchmark kernel x blocksize x stripes on this CPU,
              cache the winner, and print the chosen configuration
              (--force re-measures even with a valid cache)
";

/// Command-line mistakes and archive failures are different error
/// channels: a missing argument must print usage, not "invalid archive
/// format".
enum CliError {
    Usage(String),
    Stream(StreamError),
}

impl From<StreamError> for CliError {
    fn from(e: StreamError) -> Self {
        CliError::Stream(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Stream(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(verb) = args.first() else {
        print!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match verb.as_str() {
        "create" => create(&args[1..]),
        "info" => info(&args[1..]),
        "verify" => verify(&args[1..], false),
        "scrub" => verify(&args[1..], true),
        "repair" => repair(&args[1..]),
        "extract" => extract(&args[1..]),
        "tune" => tune(&args[1..]),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => {
            eprintln!("unknown verb `{other}`\n\n{USAGE}");
            Ok(ExitCode::from(2))
        }
    }
}

fn tune(args: &[String]) -> Result<ExitCode, CliError> {
    let mut force = false;
    for a in args {
        match a.as_str() {
            "--force" => force = true,
            other => {
                return Err(CliError::Usage(format!("unknown tune option `{other}`")));
            }
        }
    }
    print!("{}", ec_tune::cli_tune(force));
    Ok(ExitCode::SUCCESS)
}

fn parse_num(args: &[String], i: &mut usize, flag: &str) -> Result<usize, CliError> {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a numeric argument")))
}

fn create(args: &[String]) -> Result<ExitCode, CliError> {
    let mut positional: Vec<&String> = Vec::new();
    let (mut n, mut p, mut chunk) = (6usize, 3usize, 1 << 20);
    let mut codec_name = String::from("rs");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-n" => n = parse_num(args, &mut i, "-n")?,
            "-p" => p = parse_num(args, &mut i, "-p")?,
            "--chunk" => chunk = parse_num(args, &mut i, "--chunk")?,
            "--codec" => {
                i += 1;
                codec_name = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--codec needs a name".into()))?
                    .clone();
            }
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let [input, dir] = positional[..] else {
        return Err(CliError::Usage("create needs <input> and <dir>".into()));
    };
    let spec = CodecSpec::parse(&codec_name, n, p)
        .map_err(|e| CliError::Usage(format!("--codec: {e}")))?;
    let archive = Archive::create_with_spec(Path::new(input), Path::new(dir), &spec, chunk)?;
    let m = archive.meta();
    println!(
        "archived {input} ({} bytes) as {}({n}, {p}) × {} chunks of {} bytes under {dir}",
        m.original_len,
        spec.name(),
        m.chunk_count,
        m.chunk_size
    );
    println!(
        "{} shard files of {} bytes each (overhead {:.1}%)",
        m.total_shards(),
        m.shard_file_len(),
        overhead_pct(m.original_len, m.total_shards() as u64 * m.shard_file_len()),
    );
    Ok(ExitCode::SUCCESS)
}

fn overhead_pct(original: u64, stored: u64) -> f64 {
    if original == 0 {
        return 0.0;
    }
    (stored as f64 / original as f64 - 1.0) * 100.0
}

fn open(args: &[String], verb: &str) -> Result<(Archive, PathBuf), CliError> {
    let [dir] = args else {
        return Err(CliError::Usage(format!("{verb} needs <dir>")));
    };
    Ok((Archive::open(Path::new(dir))?, PathBuf::from(dir)))
}

fn info(args: &[String]) -> Result<ExitCode, CliError> {
    let (archive, dir) = open(args, "info")?;
    let m = archive.meta();
    let codec = m
        .codec_spec()
        .map(|s| s.name())
        .unwrap_or_else(|e| format!("<invalid: {e}>"));
    println!("archive:       {}", dir.display());
    println!("code:          {codec}({}, {})", m.data_shards, m.parity_shards);
    println!("original size: {} bytes", m.original_len);
    println!("chunk size:    {} bytes", m.chunk_size);
    println!("chunks:        {}", m.chunk_count);
    println!("shard file:    {} bytes each", m.shard_file_len());
    if m.hash_trailer {
        match archive.elected_roots() {
            Some((shard_roots, object_root)) => {
                println!("object root:   {}", ec_wire::hash_hex(&object_root));
                for (i, r) in shard_roots.iter().enumerate() {
                    println!("  shard {i:3} root: {}", ec_wire::hash_hex(r));
                }
            }
            None => println!("object root:   <no quorum among hash trailers>"),
        }
    } else {
        println!("integrity:     CRC-only (pre-v3 shards, no hash trailer)");
    }
    Ok(ExitCode::SUCCESS)
}

fn print_states(states: &[ShardState]) {
    for (i, s) in states.iter().enumerate() {
        println!("  shard {i:3}: {s}");
    }
}

fn verify(args: &[String], deep: bool) -> Result<ExitCode, CliError> {
    let (archive, _) = open(args, if deep { "scrub" } else { "verify" })?;
    if deep {
        let report = archive.scrub()?;
        print_states(&report.verify.shards);
        if !report.inconsistent_chunks.is_empty() {
            println!(
                "  parity inconsistent in {} chunks: {:?}",
                report.inconsistent_chunks.len(),
                report.inconsistent_chunks
            );
        }
        if report.clean() {
            println!("scrub clean");
            return Ok(ExitCode::SUCCESS);
        }
        if report.verify.all_ok() {
            // Every CRC passes yet data and parity disagree: the
            // checksums cannot say *which* shard lies, so `repair` (which
            // trusts CRC-clean slices) cannot fix this.
            println!(
                "parity inconsistency with all checksums passing — not auto-repairable; \
                 restore the affected chunks from a trusted copy"
            );
            return Ok(ExitCode::from(1));
        }
    } else {
        let report = archive.verify()?;
        print_states(&report.shards);
        if report.all_ok() {
            println!("all shards ok");
            return Ok(ExitCode::SUCCESS);
        }
    }
    println!("damage found — run `xorslp-archive repair`");
    Ok(ExitCode::from(1))
}

fn repair(args: &[String]) -> Result<ExitCode, CliError> {
    let (archive, _) = open(args, "repair")?;
    let report = archive.repair()?;
    if report.repaired.is_empty() {
        println!("nothing to repair");
    } else {
        println!(
            "rewrote {} shard files {:?} ({} chunks reconstructed)",
            report.repaired.len(),
            report.repaired,
            report.chunks_rebuilt
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn extract(args: &[String]) -> Result<ExitCode, CliError> {
    let [dir, output] = args else {
        return Err(CliError::Usage("extract needs <dir> and <output>".into()));
    };
    let archive = Archive::open(Path::new(dir))?;
    let report = archive.extract(Path::new(output))?;
    println!(
        "extracted {} bytes to {output} ({} chunks, {} erasure-decoded, {})",
        report.bytes_written,
        report.chunks,
        report.chunks_repaired,
        if report.hash_verified {
            "hash-verified"
        } else {
            "CRC-only"
        }
    );
    Ok(ExitCode::SUCCESS)
}
