//! The self-describing shard-file format (see `docs/FORMAT.md` for the
//! normative byte-level spec).
//!
//! A shard file is a fixed 64-byte header followed by one *frame* per
//! chunk: the shard's slice of that chunk's encoding, then the CRC-32 of
//! the slice. Every geometric fact about the file — frame offsets, slice
//! lengths, the total file length — is derivable from the header alone,
//! so shards are recoverable without side-channel files and truncation is
//! detectable from the length.
//!
//! Version 3 appends a [`HashTrailer`] after the last frame: this
//! shard's per-chunk SHA-256 leaf hashes, the Merkle roots of **all**
//! `n + p` shards, and the object root over those roots. CRC-32 catches
//! bit-rot; the trailer catches what CRC-32 cannot — a slice rewritten
//! together with its checksum — and, because every shard carries every
//! root, a majority of surviving trailers can prove which shard was
//! tampered with and what a repaired shard's bytes must hash to.

use ec_wire::crc32;
use ec_wire::merkle::{Hash, MerkleTree};
use ec_wire::SHA256_LEN;
use crate::error::StreamError;
use ec_core::{CodecId, CodecSpec, EcError};
use std::io::{Read, Write};

/// The 8-byte magic at offset 0: `xorslp_ec` shard, format generation 1.
pub const MAGIC: [u8; 8] = *b"XSLPECS1";

/// The header format version this implementation writes for new
/// archives. Version 1 (no codec identity; the fields at offsets 18 and
/// 40 were reserved-zero) and version 2 (codec identity, no hash
/// trailer) are still read; a v1/v2 archive round-trips at its own
/// version — repair never silently upgrades a file's format.
pub const FORMAT_VERSION: u32 = 3;

/// The oldest header version this implementation still reads.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Total header length in bytes (fixed for version 1; trailing reserved
/// space leaves room for additive extensions without a size change).
pub const HEADER_LEN: usize = 64;

/// Per-frame trailer: the CRC-32 of the frame's payload.
pub const FRAME_TRAILER_LEN: usize = 4;

/// Implementation cap on `chunk_size` (1 GiB). The wire field is u32,
/// but a reader sizes per-chunk buffers from it, so an uncapped hostile
/// header could demand multi-GiB allocations from a 64-byte file.
pub const MAX_CHUNK_SIZE: u32 = 1 << 30;

/// Shard-slice alignment of the default RS codec (`w = 8` packets);
/// the fallback when a header's codec spec is not yet validated.
const PACKET_ALIGN: u64 = 8;

/// The archive-wide parameters shared by every shard header (everything
/// except the shard index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArchiveMeta {
    /// Data shards `n` of the code.
    pub data_shards: u16,
    /// Parity shards `p`.
    pub parity_shards: u16,
    /// Wire identifier of the codec family ([`CodecId::wire`]). Version
    /// 1 headers carried no codec field; they normalize to RS (`1`) on
    /// read, so mixed v1/v2 RS shard sets still agree on their metadata.
    pub codec_id: u16,
    /// LRC locality-group size `r`; `0` for every other family.
    pub group_size: u16,
    /// Original-data bytes consumed per full chunk.
    pub chunk_size: u32,
    /// Number of chunks (`ceil(original_len / chunk_size)`).
    pub chunk_count: u64,
    /// Exact byte length of the archived data.
    pub original_len: u64,
    /// Whether each shard file ends in a [`HashTrailer`] (version 3).
    /// Not a wire field of its own — it is carried by the header's
    /// version number — but it changes the file length, so it must take
    /// part in header voting: a v2 and a v3 shard set are different
    /// archives even when every other parameter agrees.
    pub hash_trailer: bool,
}

/// The format-level slice length: the smallest `align`-multiple length
/// whose `n` shards cover `data_len` bytes (identical to the codec's
/// `shard_len`, restated here because the format spec owns it). `align`
/// comes from [`CodecSpec::shard_alignment`]: 8 for the GF(2^8) codecs,
/// `w = prime − 1` for the array codes.
pub fn slice_len_for(data_len: u64, data_shards: u16, align: u64) -> u64 {
    data_len.div_ceil(data_shards as u64).div_ceil(align) * align
}

impl ArchiveMeta {
    /// Derive the metadata for `original_len` bytes archived as the
    /// default RS(n, p) in `chunk_size`-byte chunks.
    pub fn new(
        data_shards: u16,
        parity_shards: u16,
        chunk_size: u32,
        original_len: u64,
    ) -> ArchiveMeta {
        ArchiveMeta::with_spec(
            &CodecSpec::rs(data_shards as usize, parity_shards as usize),
            chunk_size,
            original_len,
        )
    }

    /// Derive the metadata for `original_len` bytes archived under an
    /// arbitrary codec spec in `chunk_size`-byte chunks.
    pub fn with_spec(spec: &CodecSpec, chunk_size: u32, original_len: u64) -> ArchiveMeta {
        let chunk_count = if chunk_size == 0 {
            0
        } else {
            original_len.div_ceil(chunk_size as u64)
        };
        ArchiveMeta {
            data_shards: spec.data_shards as u16,
            parity_shards: spec.parity_shards as u16,
            codec_id: spec.id.wire(),
            group_size: spec.group_size as u16,
            chunk_size,
            chunk_count,
            original_len,
            hash_trailer: true,
        }
    }

    /// The codec spec these shards were encoded under, validated: an
    /// unknown wire id or a geometry the family cannot realize is a
    /// typed [`EcError`], never a silent misdecode.
    pub fn codec_spec(&self) -> Result<CodecSpec, EcError> {
        CodecSpec::from_wire(
            self.codec_id,
            self.group_size,
            self.data_shards as usize,
            self.parity_shards as usize,
        )
    }

    /// Slice alignment implied by the codec spec (8 until the spec
    /// validates, which every read/write path enforces first).
    fn shard_align(&self) -> u64 {
        self.codec_spec()
            .and_then(|s| s.shard_alignment())
            .map(|a| a as u64)
            .unwrap_or(PACKET_ALIGN)
    }

    /// Total shards `n + p`.
    pub fn total_shards(&self) -> usize {
        self.data_shards as usize + self.parity_shards as usize
    }

    /// Original-data bytes covered by chunk `chunk` (the final chunk may
    /// be short).
    ///
    /// # Panics
    /// Panics if `chunk >= chunk_count`.
    pub fn chunk_data_len(&self, chunk: u64) -> usize {
        assert!(chunk < self.chunk_count, "chunk index out of range");
        let start = chunk * self.chunk_size as u64;
        (self.original_len - start).min(self.chunk_size as u64) as usize
    }

    /// Per-shard payload bytes of chunk `chunk`'s frame.
    pub fn slice_len(&self, chunk: u64) -> usize {
        slice_len_for(
            self.chunk_data_len(chunk) as u64,
            self.data_shards,
            self.shard_align(),
        ) as usize
    }

    /// The byte length every intact shard file must have.
    ///
    /// # Panics
    /// Panics on arithmetic overflow — unreachable for any metadata that
    /// passed validation (`validate` computes this with checked math).
    pub fn shard_file_len(&self) -> u64 {
        self.checked_shard_file_len().expect("validated metadata cannot overflow")
    }

    fn checked_shard_file_len(&self) -> Option<u64> {
        let mut len = HEADER_LEN as u64;
        if self.chunk_count > 0 {
            let full = slice_len_for(self.chunk_size as u64, self.data_shards, self.shard_align())
                + FRAME_TRAILER_LEN as u64;
            len = len.checked_add(self.chunk_count.checked_sub(1)?.checked_mul(full)?)?;
            len = len
                .checked_add(self.slice_len(self.chunk_count - 1) as u64)?
                .checked_add(FRAME_TRAILER_LEN as u64)?;
        }
        if self.hash_trailer {
            len = len.checked_add(HashTrailer::wire_len(self)?)?;
        }
        Some(len)
    }

    /// Byte offset of the hash trailer within an intact shard file
    /// (`None` for pre-v3 archives, which have no trailer).
    pub fn hash_trailer_offset(&self) -> Option<u64> {
        self.hash_trailer
            .then(|| self.shard_file_len() - HashTrailer::wire_len(self).expect("validated"))
    }

    /// Internal consistency checks shared by the reader and the writer.
    /// Beyond field ranges, this bounds the *magnitude* of what a header
    /// may demand: a CRC-valid but hostile 64-byte file must not be able
    /// to request multi-GiB buffers or overflow geometry arithmetic.
    fn validate(&self) -> Result<(), String> {
        if self.data_shards == 0 || self.parity_shards == 0 {
            return Err("need at least one data and one parity shard".into());
        }
        if self.total_shards() > 255 {
            return Err(format!(
                "n + p = {} exceeds the GF(2^8) limit of 255",
                self.total_shards()
            ));
        }
        if let Err(e) = self.codec_spec() {
            return Err(e.to_string());
        }
        if self.chunk_size == 0 {
            return Err("chunk size must be positive".into());
        }
        if self.chunk_size > MAX_CHUNK_SIZE {
            return Err(format!(
                "chunk size {} exceeds the implementation cap of {MAX_CHUNK_SIZE}",
                self.chunk_size
            ));
        }
        let expect = self.original_len.div_ceil(self.chunk_size as u64);
        if self.chunk_count != expect {
            return Err(format!(
                "chunk count {} inconsistent with length {} at chunk size {} (expected {})",
                self.chunk_count, self.original_len, self.chunk_size, expect
            ));
        }
        if self.checked_shard_file_len().is_none() {
            return Err(format!(
                "geometry overflows: {} chunks of {} bytes",
                self.chunk_count, self.chunk_size
            ));
        }
        Ok(())
    }
}

/// The version-3 hash trailer at the end of every shard file:
///
/// ```text
/// [chunk_count × 32] this shard's per-chunk SHA-256 leaf hashes
/// [(n + p)    × 32] Merkle root of every shard in the archive
/// [            32 ] object root (Merkle root over the shard roots)
/// [             4 ] CRC-32 of all trailer bytes above
/// ```
///
/// Leaves hash the shard's *frame payloads* (`leaf_hash(slice)`, see
/// [`ec_wire::merkle`]); a shard's root is the Merkle root of its
/// leaves. Every shard carries the full root vector so that a majority
/// of surviving trailers elects the authoritative roots even when a
/// shard's payload and trailer were tampered with together, and so a
/// repair can prove a rebuilt shard's bytes correct from any single
/// trusted survivor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashTrailer {
    /// `leaf_hash` of each of this shard's chunk slices, in chunk order.
    pub leaves: Vec<Hash>,
    /// `shard_roots[i]` is the Merkle root of shard `i`'s leaves.
    pub shard_roots: Vec<Hash>,
    /// Merkle root over `shard_roots` (as pre-hashed leaves).
    pub object_root: Hash,
}

impl HashTrailer {
    /// Serialized trailer length for `meta`'s geometry, with overflow
    /// checked (a hostile header must not wrap the file-length math).
    pub fn wire_len(meta: &ArchiveMeta) -> Option<u64> {
        let hashes = meta
            .chunk_count
            .checked_add(meta.total_shards() as u64)?
            .checked_add(1)?;
        hashes.checked_mul(SHA256_LEN as u64)?.checked_add(4)
    }

    /// The object root implied by a shard-root vector: the Merkle root
    /// over the roots, treated as pre-hashed leaves. Shared with the
    /// object store's manifest ([`ec_wire::merkle::root_over_roots`]),
    /// so the two surfaces commit to identical bytes identically.
    pub fn object_root_of(shard_roots: &[Hash]) -> Hash {
        ec_wire::merkle::root_over_roots(shard_roots)
    }

    /// Build the trailer for one shard from its own leaves and the
    /// archive-wide root vector.
    pub fn new(leaves: Vec<Hash>, shard_roots: Vec<Hash>) -> HashTrailer {
        let object_root = HashTrailer::object_root_of(&shard_roots);
        HashTrailer { leaves, shard_roots, object_root }
    }

    /// This shard's Merkle root, recomputed from its stored leaves.
    pub fn own_root(&self) -> Hash {
        MerkleTree::from_leaves(self.leaves.clone()).root()
    }

    /// Structural + semantic self-consistency: the stored leaves build
    /// `shard_roots[shard_index]`, and the stored object root is the
    /// root over the stored shard roots. A trailer that passes this and
    /// matches the elected root vector transitively authenticates every
    /// leaf (SHA-256 collision resistance).
    pub fn self_consistent(&self, shard_index: usize) -> bool {
        self.shard_roots.get(shard_index) == Some(&self.own_root())
            && self.object_root == HashTrailer::object_root_of(&self.shard_roots)
    }

    /// Serialize to the wire form described in the type docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(
            (self.leaves.len() + self.shard_roots.len() + 1) * SHA256_LEN + 4,
        );
        for h in self.leaves.iter().chain(&self.shard_roots) {
            b.extend_from_slice(h);
        }
        b.extend_from_slice(&self.object_root);
        let crc = crc32(&b);
        b.extend_from_slice(&crc.to_le_bytes());
        b
    }

    /// Parse a trailer cut to exactly [`HashTrailer::wire_len`] bytes.
    pub fn from_bytes(b: &[u8], meta: &ArchiveMeta) -> Result<HashTrailer, StreamError> {
        let expect = HashTrailer::wire_len(meta)
            .ok_or_else(|| StreamError::Format("trailer length overflows".into()))?;
        if b.len() as u64 != expect {
            return Err(StreamError::Format(format!(
                "hash trailer is {} bytes, geometry demands {expect}",
                b.len()
            )));
        }
        let (body, crc) = b.split_at(b.len() - 4);
        if u32::from_le_bytes(crc.try_into().expect("4 bytes")) != crc32(body) {
            return Err(StreamError::Format("hash trailer checksum mismatch".into()));
        }
        let mut hashes = body.chunks_exact(SHA256_LEN);
        let mut take = |n: usize| -> Vec<Hash> {
            hashes.by_ref().take(n).map(|h| h.try_into().expect("32 bytes")).collect()
        };
        let leaves = take(meta.chunk_count as usize);
        let shard_roots = take(meta.total_shards());
        let object_root = take(1)[0];
        Ok(HashTrailer { leaves, shard_roots, object_root })
    }
}

/// One shard file's header: the archive metadata plus this shard's index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardHeader {
    pub meta: ArchiveMeta,
    /// Index of this shard within the stripe (`0..n` data, `n..n+p`
    /// parity).
    pub shard_index: u16,
}

impl ShardHeader {
    /// Serialize to the fixed 64-byte wire form (little-endian fields,
    /// trailing CRC-32 over the first 60 bytes).
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let m = &self.meta;
        let mut b = [0u8; HEADER_LEN];
        b[0..8].copy_from_slice(&MAGIC);
        // The version is a property of the archive on disk, not of this
        // build: a trailerless (v2) archive keeps writing v2 headers
        // under repair, so mixed-generation shard sets stay unanimous.
        let version: u32 = if m.hash_trailer { 3 } else { 2 };
        b[8..12].copy_from_slice(&version.to_le_bytes());
        b[12..14].copy_from_slice(&m.data_shards.to_le_bytes());
        b[14..16].copy_from_slice(&m.parity_shards.to_le_bytes());
        b[16..18].copy_from_slice(&self.shard_index.to_le_bytes());
        b[18..20].copy_from_slice(&m.codec_id.to_le_bytes());
        b[20..24].copy_from_slice(&m.chunk_size.to_le_bytes());
        b[24..32].copy_from_slice(&m.chunk_count.to_le_bytes());
        b[32..40].copy_from_slice(&m.original_len.to_le_bytes());
        b[40..42].copy_from_slice(&m.group_size.to_le_bytes());
        // b[42..60] reserved, zero
        let crc = crc32(&b[..HEADER_LEN - 4]);
        b[60..64].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Parse and validate the wire form.
    pub fn from_bytes(b: &[u8; HEADER_LEN]) -> Result<ShardHeader, StreamError> {
        let le16 = |o: usize| u16::from_le_bytes([b[o], b[o + 1]]);
        let le32 = |o: usize| u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]]);
        let le64 = |o: usize| {
            u64::from_le_bytes([
                b[o],
                b[o + 1],
                b[o + 2],
                b[o + 3],
                b[o + 4],
                b[o + 5],
                b[o + 6],
                b[o + 7],
            ])
        };
        if b[0..8] != MAGIC {
            return Err(StreamError::Format("bad magic (not a shard file)".into()));
        }
        let version = le32(8);
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StreamError::Format(format!(
                "unsupported format version {version} (this build reads \
                 {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
            )));
        }
        if le32(60) != crc32(&b[..HEADER_LEN - 4]) {
            return Err(StreamError::Format("header checksum mismatch".into()));
        }
        // Version 1 predates the codec fields: both offsets were
        // reserved-zero, and the codec was implicitly RS.
        let (codec_id, group_size) = if version == 1 {
            (CodecId::Rs.wire(), 0)
        } else {
            (le16(18), le16(40))
        };
        let meta = ArchiveMeta {
            data_shards: le16(12),
            parity_shards: le16(14),
            codec_id,
            group_size,
            chunk_size: le32(20),
            chunk_count: le64(24),
            original_len: le64(32),
            hash_trailer: version >= 3,
        };
        // Typed rejection first: an unknown wire id or an unrealizable
        // family geometry is an `EcError`, not a generic format string.
        meta.codec_spec().map_err(StreamError::Codec)?;
        meta.validate().map_err(StreamError::Format)?;
        let shard_index = le16(16);
        if shard_index as usize >= meta.total_shards() {
            return Err(StreamError::Format(format!(
                "shard index {} out of range for {} total shards",
                shard_index,
                meta.total_shards()
            )));
        }
        Ok(ShardHeader { meta, shard_index })
    }

    /// Read and parse a header from the start of a stream.
    pub fn read_from(r: &mut impl Read) -> Result<ShardHeader, StreamError> {
        let mut b = [0u8; HEADER_LEN];
        r.read_exact(&mut b)?;
        ShardHeader::from_bytes(&b)
    }

    /// Write the wire form.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ArchiveMeta {
        ArchiveMeta::new(10, 4, 1 << 20, 3 * (1 << 20) + 12345)
    }

    #[test]
    fn header_roundtrips() {
        let h = ShardHeader { meta: meta(), shard_index: 13 };
        let b = h.to_bytes();
        assert_eq!(ShardHeader::from_bytes(&b).unwrap(), h);
    }

    #[test]
    fn any_header_bit_flip_is_detected() {
        let h = ShardHeader { meta: meta(), shard_index: 2 };
        let clean = h.to_bytes();
        for byte in 0..HEADER_LEN {
            let mut b = clean;
            b[byte] ^= 0x40;
            assert!(
                ShardHeader::from_bytes(&b).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn inconsistent_chunk_count_rejected() {
        let mut m = meta();
        m.chunk_count += 1;
        let b = ShardHeader { meta: m, shard_index: 0 }.to_bytes();
        assert!(matches!(
            ShardHeader::from_bytes(&b),
            Err(StreamError::Format(_))
        ));
    }

    #[test]
    fn geometry_is_derivable() {
        // 4 chunks: 3 full, one 12345-byte tail.
        let m = meta();
        assert_eq!(m.chunk_count, 4);
        assert_eq!(m.chunk_data_len(0), 1 << 20);
        assert_eq!(m.chunk_data_len(3), 12345);
        // slice lengths: packet-aligned per-shard splits.
        assert_eq!(m.slice_len(0), slice_len_for(1 << 20, 10, 8) as usize);
        assert_eq!(m.slice_len(3), slice_len_for(12345, 10, 8) as usize);
        assert_eq!(slice_len_for(12345, 10, 8), 1240); // ceil(1234.5)→1235, →8-align 1240
        // v3: frames plus the hash trailer (4 leaves + 14 roots + object
        // root, CRC'd).
        let trailer = 32 * (4 + 14 + 1) + 4;
        assert_eq!(HashTrailer::wire_len(&m), Some(trailer));
        let frames_end = HEADER_LEN as u64
            + 3 * (slice_len_for(1 << 20, 10, 8) + 4)
            + (1240 + 4);
        assert_eq!(m.shard_file_len(), frames_end + trailer);
        assert_eq!(m.hash_trailer_offset(), Some(frames_end));
        // The same geometry without the trailer (a v2 archive) ends at
        // the last frame.
        let mut v2 = m;
        v2.hash_trailer = false;
        assert_eq!(v2.shard_file_len(), frames_end);
        assert_eq!(v2.hash_trailer_offset(), None);
    }

    #[test]
    fn hash_trailer_roundtrips_and_rejects_flips() {
        use ec_wire::merkle::leaf_hash;
        let m = ArchiveMeta::new(2, 1, 100, 250); // 3 chunks, 3 shards
        let leaves: Vec<Hash> = (0..3u8).map(|i| leaf_hash(&[i])).collect();
        let own = MerkleTree::from_leaves(leaves.clone()).root();
        let others: Vec<Hash> = (0..3u8).map(|i| leaf_hash(&[i, i])).collect();
        let roots = vec![own, others[1], others[2]];
        let t = HashTrailer::new(leaves, roots);
        assert!(t.self_consistent(0));
        assert!(!t.self_consistent(1));
        let b = t.to_bytes();
        assert_eq!(b.len() as u64, HashTrailer::wire_len(&m).unwrap());
        assert_eq!(HashTrailer::from_bytes(&b, &m).unwrap(), t);
        // Any flipped byte is caught by the trailer CRC.
        for at in [0usize, 33, 95, 100] {
            let mut bad = b.clone();
            bad[at] ^= 0x20;
            assert!(HashTrailer::from_bytes(&bad, &m).is_err(), "flip at {at}");
        }
        // Wrong geometry (length) is a typed refusal, not a misparse.
        assert!(HashTrailer::from_bytes(&b[..b.len() - 1], &m).is_err());
    }

    #[test]
    fn codec_spec_travels_in_the_header() {
        let spec = CodecSpec::lrc(10, 4, 5);
        let m = ArchiveMeta::with_spec(&spec, 1 << 16, 123_456);
        let h = ShardHeader { meta: m, shard_index: 11 };
        let parsed = ShardHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.meta.codec_spec().unwrap(), spec);
        assert_eq!(parsed.meta.codec_spec().unwrap().name(), "lrc:5");
    }

    #[test]
    fn array_codec_slices_use_the_codec_alignment() {
        // EVENODD(4): prime 5, w = 4 — slices align to 4, not 8.
        let spec = CodecSpec::parse("evenodd", 4, 2).unwrap();
        let m = ArchiveMeta::with_spec(&spec, 100, 250);
        assert_eq!(spec.shard_alignment().unwrap(), 4);
        assert_eq!(m.slice_len(0), 28); // ceil(100/4) = 25 → 4-align 28
        assert_eq!(m.slice_len(2), 16); // tail 50 → ceil(50/4)=13 → 16
        let h = ShardHeader { meta: m, shard_index: 0 };
        assert_eq!(ShardHeader::from_bytes(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn v1_headers_read_as_rs() {
        // Fabricate what a version-1 writer produced: version 1, zeros
        // in the (then reserved) codec fields, a fresh CRC.
        let h = ShardHeader { meta: meta(), shard_index: 3 };
        let mut b = h.to_bytes();
        b[8..12].copy_from_slice(&1u32.to_le_bytes());
        b[18..20].copy_from_slice(&[0, 0]);
        let crc = crc32(&b[..HEADER_LEN - 4]);
        b[60..64].copy_from_slice(&crc.to_le_bytes());
        let parsed = ShardHeader::from_bytes(&b).unwrap();
        // Normalizes to the v2 RS meta (same fields, no hash trailer) —
        // mixed v1/v2 shard sets vote for identical metadata.
        let mut expect = h;
        expect.meta.hash_trailer = false;
        assert_eq!(parsed, expect);
        assert_eq!(parsed.meta.codec_spec().unwrap(), CodecSpec::rs(10, 4));
        // And a v2 meta writes version 2 back out, byte-identical modulo
        // the version round-trip.
        let again = ShardHeader::from_bytes(&parsed.to_bytes()).unwrap();
        assert_eq!(again, parsed);
        assert_eq!(u32::from_le_bytes(parsed.to_bytes()[8..12].try_into().unwrap()), 2);
    }

    #[test]
    fn unknown_codec_id_is_a_typed_error() {
        let h = ShardHeader { meta: meta(), shard_index: 0 };
        let mut b = h.to_bytes();
        b[18..20].copy_from_slice(&999u16.to_le_bytes());
        let crc = crc32(&b[..HEADER_LEN - 4]);
        b[60..64].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ShardHeader::from_bytes(&b),
            Err(StreamError::Codec(EcError::UnknownCodec(_)))
        ));
        // A known id with a geometry the family cannot realize (rdp
        // wants exactly two parities) is typed too, never garbage.
        let mut b = h.to_bytes();
        b[18..20].copy_from_slice(&3u16.to_le_bytes());
        let crc = crc32(&b[..HEADER_LEN - 4]);
        b[60..64].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ShardHeader::from_bytes(&b),
            Err(StreamError::Codec(EcError::InvalidParams(_)))
        ));
    }

    #[test]
    fn empty_archive_geometry() {
        let m = ArchiveMeta::new(4, 2, 4096, 0);
        assert_eq!(m.chunk_count, 0);
        // Header plus a zero-leaf trailer: 6 shard roots + object root.
        assert_eq!(
            m.shard_file_len(),
            HEADER_LEN as u64 + HashTrailer::wire_len(&m).unwrap()
        );
        assert_eq!(HashTrailer::wire_len(&m), Some(32 * 7 + 4));
        let h = ShardHeader { meta: m, shard_index: 5 };
        assert_eq!(ShardHeader::from_bytes(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn hostile_magnitudes_rejected() {
        // Internally consistent but absurd geometry: chunk_count and
        // original_len at u64::MAX with chunk_size 1 (file-length
        // arithmetic would overflow; scans would spin for 2^64 chunks).
        let hostile = ArchiveMeta {
            data_shards: 1,
            parity_shards: 1,
            codec_id: CodecId::Rs.wire(),
            group_size: 0,
            chunk_size: 1,
            chunk_count: u64::MAX,
            original_len: u64::MAX,
            hash_trailer: true,
        };
        assert!(hostile.validate().is_err());
        // A chunk size beyond the implementation cap (would demand
        // multi-GiB slice buffers from a 64-byte file).
        let huge_chunk = ArchiveMeta::new(1, 1, u32::MAX, 100);
        assert!(huge_chunk.validate().is_err());
        let at_cap = ArchiveMeta::new(1, 1, MAX_CHUNK_SIZE, 100);
        assert!(at_cap.validate().is_ok());
        // And the wire path rejects them too: the serialized header has
        // a *valid* CRC, so only the magnitude check can stop it.
        let b = ShardHeader { meta: hostile, shard_index: 0 }.to_bytes();
        assert!(matches!(ShardHeader::from_bytes(&b), Err(StreamError::Format(_))));
    }

    #[test]
    fn bad_magic_and_version() {
        let h = ShardHeader { meta: meta(), shard_index: 0 };
        let mut b = h.to_bytes();
        b[0] = b'Y';
        assert!(ShardHeader::from_bytes(&b).is_err());
        let mut b = h.to_bytes();
        b[8] = 9; // version 9; refresh the CRC so only the version is bad
        let crc = crc32(&b[..HEADER_LEN - 4]);
        b[60..64].copy_from_slice(&crc.to_le_bytes());
        let err = ShardHeader::from_bytes(&b).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
