//! `gf-baseline` — a table-driven GF(2^8) Reed–Solomon codec in the style
//! of Intel's ISA-L, used as the comparison baseline of the paper's §7.6.
//!
//! Where the main library (`ec-core`) converts the coding matrix to XOR
//! programs, this crate multiplies bytes directly in the field:
//!
//! * the **scalar** path indexes the 64 KiB product table per byte (the
//!   classical Jerasure/ISA-L reference approach);
//! * the **AVX2** path is ISA-L's split-nibble algorithm: for each
//!   coefficient `c`, two 16-entry tables hold `c · x` for the low and
//!   high nibble of `x`, and `_mm256_shuffle_epi8` evaluates 32 products
//!   per instruction (`gf_vect_dot_prod` in ISA-L's assembly).
//!
//! The byte layout differs from `ec-core`: this codec is *byte-oriented*
//! (symbol `t` of a shard is byte `t`), whereas XOR-based EC stripes each
//! shard into 8 packets. Both are valid RS codes over the same matrix;
//! their parity bytes are a fixed bit-permutation apart. Throughput
//! comparisons (Table 7.6) are unaffected.

mod codec;
mod mul;

pub use codec::{BaselineError, GfRsCodec};
pub use mul::{dot_product, mul_slice, mul_slice_acc, DotTables, GfBackend, NibbleTables};
