//! The table-driven RS codec: byte-oriented encode/decode via GF
//! dot products, structured like ISA-L's `ec_encode_data`.

use crate::mul::{dot_product, DotTables, GfBackend};
use gf256::{encoding_matrix, Gf, GfMatrix, MatrixKind};
use std::fmt;

/// Errors of the baseline codec (kept separate from `ec-core`'s so the
/// crates stay independent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// Invalid parameters.
    InvalidParams(String),
    /// Bad shard counts or lengths.
    Shards(String),
    /// Too many erasures for the parity count.
    TooManyErasures { missing: usize, parity: usize },
    /// Non-invertible survivor submatrix.
    SingularPattern { lost: Vec<usize> },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            BaselineError::Shards(m) => write!(f, "bad shards: {m}"),
            BaselineError::TooManyErasures { missing, parity } => {
                write!(f, "{missing} missing > {parity} parity")
            }
            BaselineError::SingularPattern { lost } => {
                write!(f, "singular erasure pattern {lost:?}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// A byte-oriented systematic RS(n, p) codec over GF(2^8) product tables.
pub struct GfRsCodec {
    n: usize,
    p: usize,
    backend: GfBackend,
    matrix: GfMatrix,
    /// Precomputed nibble tables for the parity rows (ISA-L's
    /// `ec_init_tables`).
    enc_tables: DotTables,
}

impl GfRsCodec {
    /// Codec with the default (ISA-L power) matrix and auto backend.
    pub fn new(n: usize, p: usize) -> Result<GfRsCodec, BaselineError> {
        GfRsCodec::with_options(n, p, MatrixKind::IsalPower, GfBackend::Auto)
    }

    /// Codec with explicit matrix kind and multiplication backend.
    pub fn with_options(
        n: usize,
        p: usize,
        kind: MatrixKind,
        backend: GfBackend,
    ) -> Result<GfRsCodec, BaselineError> {
        if n == 0 || p == 0 {
            return Err(BaselineError::InvalidParams(
                "need at least one data and one parity shard".into(),
            ));
        }
        if n + p > 255 {
            return Err(BaselineError::InvalidParams("n + p exceeds 255".into()));
        }
        let matrix = encoding_matrix(kind, n, p);
        let coeffs = (n..n + p).flat_map(|r| matrix.row(r).to_vec());
        let enc_tables = DotTables::new(p, n, coeffs);
        Ok(GfRsCodec {
            n,
            p,
            backend: backend.resolve(),
            matrix,
            enc_tables,
        })
    }

    /// Number of data shards.
    pub fn data_shards(&self) -> usize {
        self.n
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.p
    }

    /// The coding matrix.
    pub fn encode_matrix(&self) -> &GfMatrix {
        &self.matrix
    }

    /// Dot-product `outputs[r] = Σ_i rows[r][i] · inputs[i]` over byte
    /// slices — the core of both encode and decode, using the fused
    /// source-major kernel (ISA-L's `gf_vect_dot_prod` shape).
    fn dot_products(
        &self,
        rows: &[&[Gf]],
        inputs: &[&[u8]],
        outputs: &mut [&mut [u8]],
    ) {
        let coeffs = rows.iter().flat_map(|r| r.iter().copied());
        let tables = DotTables::new(rows.len(), inputs.len(), coeffs);
        dot_product(self.backend, &tables, inputs, outputs);
    }

    /// Compute all parity shards (zero-copy).
    pub fn encode_parity(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
    ) -> Result<(), BaselineError> {
        if data.len() != self.n || parity.len() != self.p {
            return Err(BaselineError::Shards(format!(
                "expected {} data and {} parity shards",
                self.n, self.p
            )));
        }
        let len = data[0].len();
        if data.iter().any(|s| s.len() != len) || parity.iter().any(|s| s.len() != len) {
            return Err(BaselineError::Shards("shard lengths differ".into()));
        }
        dot_product(self.backend, &self.enc_tables, data, parity);
        Ok(())
    }

    /// Encode a buffer into `n + p` shards (padding the tail).
    pub fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, BaselineError> {
        let shard_len = data.len().div_ceil(self.n);
        let mut shards = vec![vec![0u8; shard_len]; self.n + self.p];
        for (i, shard) in shards.iter_mut().take(self.n).enumerate() {
            let lo = (i * shard_len).min(data.len());
            let hi = ((i + 1) * shard_len).min(data.len());
            shard[..hi - lo].copy_from_slice(&data[lo..hi]);
        }
        if shard_len > 0 {
            let (d, q) = shards.split_at_mut(self.n);
            let data_refs: Vec<&[u8]> = d.iter().map(Vec::as_slice).collect();
            let mut parity_refs: Vec<&mut [u8]> = q.iter_mut().map(Vec::as_mut_slice).collect();
            self.encode_parity(&data_refs, &mut parity_refs)?;
        }
        Ok(shards)
    }

    /// Recover the original buffer from any `n` surviving shards.
    pub fn decode(
        &self,
        shards: &[Option<Vec<u8>>],
        data_len: usize,
    ) -> Result<Vec<u8>, BaselineError> {
        let total = self.n + self.p;
        if shards.len() != total {
            return Err(BaselineError::Shards(format!("expected {total} shards")));
        }
        let missing: Vec<usize> = (0..total).filter(|&i| shards[i].is_none()).collect();
        if missing.len() > self.p {
            return Err(BaselineError::TooManyErasures {
                missing: missing.len(),
                parity: self.p,
            });
        }
        let Some(len) = shards.iter().flatten().map(Vec::len).next() else {
            return Err(BaselineError::Shards("no shards present".into()));
        };
        if shards.iter().flatten().any(|s| s.len() != len) {
            return Err(BaselineError::Shards("shard lengths differ".into()));
        }

        let lost_data: Vec<usize> = missing.iter().copied().filter(|&i| i < self.n).collect();
        let mut rebuilt: Vec<Vec<u8>> = Vec::new();
        if !lost_data.is_empty() && len > 0 {
            let survivors: Vec<usize> =
                (0..total).filter(|i| !missing.contains(i)).take(self.n).collect();
            let sub = self.matrix.select_rows(&survivors);
            let inv = sub
                .invert()
                .ok_or_else(|| BaselineError::SingularPattern { lost: missing.clone() })?;
            let rec = inv.select_rows(&lost_data);
            let inputs: Vec<&[u8]> = survivors
                .iter()
                .map(|&i| shards[i].as_deref().expect("survivor present"))
                .collect();
            rebuilt = vec![vec![0u8; len]; lost_data.len()];
            let rows: Vec<&[Gf]> = (0..lost_data.len()).map(|r| rec.row(r)).collect();
            let mut outs: Vec<&mut [u8]> = rebuilt.iter_mut().map(Vec::as_mut_slice).collect();
            self.dot_products(&rows, &inputs, &mut outs);
        } else if !lost_data.is_empty() {
            rebuilt = vec![vec![0u8; len]; lost_data.len()];
        }

        let mut out = Vec::with_capacity(self.n * len);
        let mut it = rebuilt.into_iter();
        for shard in &shards[..self.n] {
            match shard {
                Some(s) => out.extend_from_slice(s),
                None => out.extend_from_slice(&it.next().expect("rebuilt")),
            }
        }
        out.truncate(data_len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 89 + 7) as u8).collect()
    }

    #[test]
    fn parity_matches_symbolwise_field_arithmetic() {
        // Oracle: parity byte t = Σ_i V[r][i] · data_i[t].
        let codec = GfRsCodec::new(4, 3).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| sample(50 + i)).map(|mut v| { v.truncate(50); v }).collect();
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut parity = vec![vec![0u8; 50]; 3];
        {
            let mut p: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec.encode_parity(&refs, &mut p).unwrap();
        }
        let m = codec.encode_matrix();
        for r in 0..3 {
            for t in 0..50 {
                let expect: Gf = (0..4)
                    .map(|i| m[(4 + r, i)] * Gf(data[i][t]))
                    .fold(Gf::ZERO, |a, b| a + b);
                assert_eq!(parity[r][t], expect.0, "r={r} t={t}");
            }
        }
    }

    #[test]
    fn roundtrip_every_double_erasure() {
        let codec = GfRsCodec::new(4, 2).unwrap();
        let data = sample(4 * 33 + 5);
        let shards = codec.encode(&data).unwrap();
        for a in 0..6 {
            for b in a + 1..6 {
                let mut rx: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
                rx[a] = None;
                rx[b] = None;
                assert_eq!(codec.decode(&rx, data.len()).unwrap(), data, "{a},{b}");
            }
        }
    }

    #[test]
    fn rs_10_4_roundtrip_under_max_loss() {
        let codec = GfRsCodec::new(10, 4).unwrap();
        let data = sample(10 * 97);
        let shards = codec.encode(&data).unwrap();
        let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for i in [2, 4, 5, 6] {
            rx[i] = None;
        }
        assert_eq!(codec.decode(&rx, data.len()).unwrap(), data);
    }

    #[test]
    fn backends_produce_identical_parity() {
        let data = sample(8 * 200);
        let t = GfRsCodec::with_options(8, 4, MatrixKind::IsalPower, GfBackend::Table).unwrap();
        let expect = t.encode(&data).unwrap();
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            let a =
                GfRsCodec::with_options(8, 4, MatrixKind::IsalPower, GfBackend::Avx2).unwrap();
            assert_eq!(a.encode(&data).unwrap(), expect);
        }
        let c = GfRsCodec::with_options(8, 4, MatrixKind::Cauchy, GfBackend::Table).unwrap();
        assert_ne!(c.encode(&data).unwrap(), expect, "different matrix, different code");
    }

    #[test]
    fn error_paths() {
        assert!(GfRsCodec::new(0, 1).is_err());
        let codec = GfRsCodec::new(2, 1).unwrap();
        let data = sample(10);
        let shards = codec.encode(&data).unwrap();
        let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        rx[0] = None;
        rx[1] = None;
        assert!(matches!(
            codec.decode(&rx, data.len()),
            Err(BaselineError::TooManyErasures { .. })
        ));
    }
}
