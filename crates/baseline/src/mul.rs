//! Constant-by-buffer GF(2^8) multiplication kernels.

use gf256::Gf;

/// Which multiplication backend to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GfBackend {
    /// 64 KiB-product-table lookups, one byte at a time.
    Table,
    /// ISA-L's split-nibble `vpshufb` algorithm (32 bytes/instruction).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// Pick the fastest available at runtime.
    #[default]
    Auto,
}

impl GfBackend {
    /// Resolve [`GfBackend::Auto`] for this CPU.
    pub fn resolve(self) -> GfBackend {
        match self {
            GfBackend::Auto => {
                #[cfg(target_arch = "x86_64")]
                {
                    if std::arch::is_x86_feature_detected!("avx2") {
                        return GfBackend::Avx2;
                    }
                }
                GfBackend::Table
            }
            b => b,
        }
    }

    /// Display name for benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            GfBackend::Table => "table",
            #[cfg(target_arch = "x86_64")]
            GfBackend::Avx2 => "avx2-shuffle",
            GfBackend::Auto => "auto",
        }
    }
}

/// The two 16-entry nibble tables for one coefficient: `lo[x] = c·x`,
/// `hi[x] = c·(x << 4)`, so `c·b = lo[b & 15] ^ hi[b >> 4]`.
#[derive(Clone, Copy, Debug)]
pub struct NibbleTables {
    /// Products of the coefficient with the 16 low-nibble values.
    pub lo: [u8; 16],
    /// Products of the coefficient with the 16 high-nibble values.
    pub hi: [u8; 16],
}

impl NibbleTables {
    /// Build the tables for coefficient `c`.
    pub fn new(c: Gf) -> NibbleTables {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 0..16u8 {
            lo[x as usize] = (c * Gf(x)).0;
            hi[x as usize] = (c * Gf(x << 4)).0;
        }
        NibbleTables { lo, hi }
    }

    /// Scalar product of one byte through the tables.
    #[inline]
    #[allow(clippy::should_implement_trait)] // not the ring product: a table lookup
    pub fn mul(self, b: u8) -> u8 {
        self.lo[(b & 0x0F) as usize] ^ self.hi[(b >> 4) as usize]
    }
}

/// `dst = c · src`, element-wise.
pub fn mul_slice(backend: GfBackend, c: Gf, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    match backend.resolve() {
        GfBackend::Table => {
            let row = Gf::mul_row(c.0);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = row[s as usize];
            }
        }
        #[cfg(target_arch = "x86_64")]
        GfBackend::Avx2 => unsafe { mul_avx2(c, src, dst, false) },
        GfBackend::Auto => unreachable!("resolved above"),
    }
}

/// `dst ^= c · src`, element-wise (the dot-product accumulation step).
pub fn mul_slice_acc(backend: GfBackend, c: Gf, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    match backend.resolve() {
        GfBackend::Table => {
            let row = Gf::mul_row(c.0);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= row[s as usize];
            }
        }
        #[cfg(target_arch = "x86_64")]
        GfBackend::Avx2 => unsafe { mul_avx2(c, src, dst, true) },
        GfBackend::Auto => unreachable!("resolved above"),
    }
}

/// AVX2 split-nibble multiply: `dst (^)= c·src`.
///
/// # Safety
/// Requires AVX2 (checked by `resolve`). Slices already bound-checked.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_avx2(c: Gf, src: &[u8], dst: &mut [u8], accumulate: bool) {
    use std::arch::x86_64::*;
    let t = NibbleTables::new(c);
    let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr() as *const __m128i));
    let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr() as *const __m128i));
    let mask = _mm256_set1_epi8(0x0F);

    let len = src.len();
    let mut off = 0;
    while off + 32 <= len {
        let v = _mm256_loadu_si256(src.as_ptr().add(off) as *const __m256i);
        let lo = _mm256_and_si256(v, mask);
        let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), mask);
        let mut prod = _mm256_xor_si256(
            _mm256_shuffle_epi8(tlo, lo),
            _mm256_shuffle_epi8(thi, hi),
        );
        if accumulate {
            let old = _mm256_loadu_si256(dst.as_ptr().add(off) as *const __m256i);
            prod = _mm256_xor_si256(prod, old);
        }
        _mm256_storeu_si256(dst.as_mut_ptr().add(off) as *mut __m256i, prod);
        off += 32;
    }
    // scalar tail
    for i in off..len {
        let p = t.mul(src[i]);
        if accumulate {
            dst[i] ^= p;
        } else {
            dst[i] = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<GfBackend> {
        let mut bs = vec![GfBackend::Table];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            bs.push(GfBackend::Avx2);
        }
        bs
    }

    #[test]
    fn nibble_tables_reproduce_full_multiplication() {
        for c in [0u8, 1, 2, 0x1D, 0x53, 0xFF] {
            let t = NibbleTables::new(Gf(c));
            for b in 0..=255u8 {
                assert_eq!(t.mul(b), (Gf(c) * Gf(b)).0, "c={c} b={b}");
            }
        }
    }

    #[test]
    fn backends_agree_on_mul_slice() {
        let src: Vec<u8> = (0..1000).map(|i| (i * 7 % 256) as u8).collect();
        for c in [0u8, 1, 2, 0x80, 0xC3] {
            let mut expect = vec![0u8; src.len()];
            for (d, &s) in expect.iter_mut().zip(&src) {
                *d = (Gf(c) * Gf(s)).0;
            }
            for b in backends() {
                let mut dst = vec![0u8; src.len()];
                mul_slice(b, Gf(c), &src, &mut dst);
                assert_eq!(dst, expect, "backend {b:?} c={c}");
            }
        }
    }

    #[test]
    fn accumulate_is_xor_of_products() {
        let src: Vec<u8> = (0..77).map(|i| (i * 13) as u8).collect();
        for b in backends() {
            let mut dst: Vec<u8> = (0..77).map(|i| (i * 3) as u8).collect();
            let base = dst.clone();
            mul_slice_acc(b, Gf(0x35), &src, &mut dst);
            for i in 0..77 {
                assert_eq!(dst[i], base[i] ^ (Gf(0x35) * Gf(src[i])).0);
            }
        }
    }

    #[test]
    fn multiply_by_one_is_identity_and_zero_clears() {
        let src: Vec<u8> = (0..64u8).collect();
        for b in backends() {
            let mut dst = vec![0xAA; 64];
            mul_slice(b, Gf(1), &src, &mut dst);
            assert_eq!(dst, src);
            mul_slice(b, Gf(0), &src, &mut dst);
            assert!(dst.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn odd_lengths_hit_the_tail_path() {
        for len in [1usize, 31, 33, 63, 65] {
            let src: Vec<u8> = (0..len).map(|i| (i * 11 % 256) as u8).collect();
            let mut expect = vec![0u8; len];
            for (d, &s) in expect.iter_mut().zip(&src) {
                *d = (Gf(7) * Gf(s)).0;
            }
            for b in backends() {
                let mut dst = vec![0u8; len];
                mul_slice(b, Gf(7), &src, &mut dst);
                assert_eq!(dst, expect, "backend {b:?} len {len}");
            }
        }
    }
}

/// Precomputed nibble tables for a whole coefficient matrix — the setup
/// ISA-L performs in `ec_init_tables`.
pub struct DotTables {
    rows: usize,
    cols: usize,
    tables: Vec<NibbleTables>,
}

impl DotTables {
    /// Build tables for `rows × cols` coefficients given row-major.
    pub fn new(rows: usize, cols: usize, coeffs: impl IntoIterator<Item = Gf>) -> DotTables {
        let tables: Vec<NibbleTables> = coeffs.into_iter().map(NibbleTables::new).collect();
        assert_eq!(tables.len(), rows * cols, "coefficient count mismatch");
        DotTables { rows, cols, tables }
    }

    /// Number of output rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of input columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn at(&self, r: usize, i: usize) -> NibbleTables {
        self.tables[r * self.cols + i]
    }
}

/// Fused dot product `outputs[r] = Σ_i coeffs[r][i] · inputs[i]`, reading
/// each input byte once per position — the shape of ISA-L's
/// `gf_vect_dot_prod` kernels.
///
/// # Panics
/// Panics on shape or length mismatches.
pub fn dot_product(
    backend: GfBackend,
    tables: &DotTables,
    inputs: &[&[u8]],
    outputs: &mut [&mut [u8]],
) {
    assert_eq!(inputs.len(), tables.cols(), "input count mismatch");
    assert_eq!(outputs.len(), tables.rows(), "output count mismatch");
    let len = inputs.first().map_or(0, |s| s.len());
    assert!(
        inputs.iter().all(|s| s.len() == len) && outputs.iter().all(|s| s.len() == len),
        "length mismatch"
    );
    if len == 0 || tables.rows() == 0 {
        return;
    }
    match backend.resolve() {
        GfBackend::Table => dot_product_table(tables, inputs, outputs, len),
        #[cfg(target_arch = "x86_64")]
        GfBackend::Avx2 => {
            // Group output rows by 4 so the accumulators stay in registers.
            let mut r0 = 0;
            while r0 < tables.rows() {
                let group = (tables.rows() - r0).min(4);
                unsafe { dot_product_avx2(tables, inputs, outputs, len, r0, group) };
                r0 += group;
            }
        }
        GfBackend::Auto => unreachable!("resolved above"),
    }
}

fn dot_product_table(tables: &DotTables, inputs: &[&[u8]], outputs: &mut [&mut [u8]], len: usize) {
    // Blocked so a source chunk stays cached across all output rows.
    const BLOCK: usize = 4096;
    let mut lo = 0;
    while lo < len {
        let hi = (lo + BLOCK).min(len);
        for (r, out) in outputs.iter_mut().enumerate() {
            let out = &mut out[lo..hi];
            let row0 = Gf::mul_row(tables.at(r, 0).mul(1));
            for (d, &s) in out.iter_mut().zip(&inputs[0][lo..hi]) {
                *d = row0[s as usize];
            }
            for (i, src) in inputs.iter().enumerate().skip(1) {
                let t = tables.at(r, i);
                if t.mul(1) == 0 {
                    continue;
                }
                let row = Gf::mul_row(t.mul(1));
                for (d, &s) in out.iter_mut().zip(&src[lo..hi]) {
                    *d ^= row[s as usize];
                }
            }
        }
        lo = hi;
    }
}

/// One group of ≤ 4 output rows, AVX2, source-major with register
/// accumulators.
///
/// # Safety
/// Requires AVX2; slices pre-validated by `dot_product`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_product_avx2(
    tables: &DotTables,
    inputs: &[&[u8]],
    outputs: &mut [&mut [u8]],
    len: usize,
    r0: usize,
    group: usize,
) {
    use std::arch::x86_64::*;
    // Preload the (lo, hi) table registers for this row group.
    let n = inputs.len();
    let mut tl: Vec<__m256i> = Vec::with_capacity(group * n);
    let mut th: Vec<__m256i> = Vec::with_capacity(group * n);
    for g in 0..group {
        for i in 0..n {
            let t = tables.at(r0 + g, i);
            tl.push(_mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.lo.as_ptr() as *const __m128i
            )));
            th.push(_mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.hi.as_ptr() as *const __m128i
            )));
        }
    }
    let mask = _mm256_set1_epi8(0x0F);

    let mut off = 0;
    while off + 32 <= len {
        let mut acc = [_mm256_setzero_si256(); 4];
        for (i, src) in inputs.iter().enumerate() {
            let v = _mm256_loadu_si256(src.as_ptr().add(off) as *const __m256i);
            let lo = _mm256_and_si256(v, mask);
            let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), mask);
            for (g, a) in acc.iter_mut().enumerate().take(group) {
                let prod = _mm256_xor_si256(
                    _mm256_shuffle_epi8(tl[g * n + i], lo),
                    _mm256_shuffle_epi8(th[g * n + i], hi),
                );
                *a = _mm256_xor_si256(*a, prod);
            }
        }
        for g in 0..group {
            _mm256_storeu_si256(
                outputs[r0 + g].as_mut_ptr().add(off) as *mut __m256i,
                acc[g],
            );
        }
        off += 32;
    }
    // scalar tail
    for t in off..len {
        for g in 0..group {
            let mut acc = 0u8;
            for (i, src) in inputs.iter().enumerate() {
                acc ^= tables.at(r0 + g, i).mul(src[t]);
            }
            outputs[r0 + g][t] = acc;
        }
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    fn backends() -> Vec<GfBackend> {
        let mut bs = vec![GfBackend::Table];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            bs.push(GfBackend::Avx2);
        }
        bs
    }

    #[test]
    fn fused_dot_product_matches_naive() {
        // 5 outputs forces both a full group of 4 and a remainder group.
        let (rows, cols, len) = (5usize, 6usize, 101usize);
        let coeffs: Vec<Gf> = (0..rows * cols).map(|k| Gf((k * 37 + 1) as u8)).collect();
        let tables = DotTables::new(rows, cols, coeffs.iter().copied());
        let inputs: Vec<Vec<u8>> = (0..cols)
            .map(|i| (0..len).map(|t| ((t * 7 + i * 13) % 256) as u8).collect())
            .collect();
        let input_refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();

        let mut expect = vec![vec![0u8; len]; rows];
        for r in 0..rows {
            for t in 0..len {
                expect[r][t] = (0..cols)
                    .map(|i| coeffs[r * cols + i] * Gf(inputs[i][t]))
                    .fold(Gf::ZERO, |a, b| a + b)
                    .0;
            }
        }
        for b in backends() {
            let mut outs = vec![vec![0u8; len]; rows];
            {
                let mut refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
                dot_product(b, &tables, &input_refs, &mut refs);
            }
            assert_eq!(outs, expect, "backend {b:?}");
        }
    }

    #[test]
    fn zero_coefficients_are_skipped_correctly() {
        let tables = DotTables::new(1, 2, [Gf(0), Gf(3)]);
        let a = vec![0xFFu8; 40];
        let b: Vec<u8> = (0..40u8).collect();
        let mut out = vec![0u8; 40];
        for be in backends() {
            let mut refs: Vec<&mut [u8]> = vec![&mut out];
            dot_product(be, &tables, &[&a, &b], &mut refs);
            for t in 0..40 {
                assert_eq!(out[t], (Gf(3) * Gf(b[t])).0);
            }
        }
    }
}
