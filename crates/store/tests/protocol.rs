//! Protocol-level tests against a live node: hostile frames are
//! rejected with typed errors (no panics, bounded allocations), the
//! node survives every abuse, and honest concurrent clients hammering
//! one node all succeed.

use ec_store::proto::{self, op, status};
use ec_store::{NodeClient, NodeHandle, RemoteErrorCode, StoreError};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(5);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ec_store_proto_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_node(tag: &str) -> (NodeHandle, String, PathBuf) {
    let dir = temp_dir(tag);
    let node = NodeHandle::spawn(&dir, "127.0.0.1:0", 2).expect("spawn node");
    let addr = node.addr().to_string();
    (node, addr, dir)
}

fn client(addr: &str) -> NodeClient {
    NodeClient::connect(addr, TIMEOUT).expect("connect")
}

/// Raw socket with client-side timeouts, for speaking garbage.
fn raw(addr: &str) -> TcpStream {
    let s = TcpStream::connect(addr).expect("raw connect");
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    s.set_write_timeout(Some(TIMEOUT)).unwrap();
    s
}

/// After any abuse, the node must still serve honest clients.
fn assert_still_serving(addr: &str) {
    let mut c = client(addr);
    c.put("liveness-probe", b"ok").expect("node must still serve");
    assert_eq!(c.get("liveness-probe").unwrap(), b"ok");
    c.delete("liveness-probe").unwrap();
}

/// Read one raw frame (len, body, crc) and return
/// `(tag, request_id, payload)`. Accepts both wire versions: a v2 body
/// carries a 4-byte request id after the tag; a v1 body does not.
fn read_raw_frame(s: &mut TcpStream) -> (u8, Option<u32>, Vec<u8>) {
    let mut len = [0u8; 4];
    s.read_exact(&mut len).expect("frame length");
    let body_len = u32::from_le_bytes(len) as usize;
    let mut body = vec![0u8; body_len];
    s.read_exact(&mut body).expect("frame body");
    let mut crc = [0u8; 4];
    s.read_exact(&mut crc).expect("frame crc");
    assert_eq!(u32::from_le_bytes(crc), ec_wire::crc32(&body), "response CRC");
    match body[0] {
        proto::PROTO_VERSION => {
            let id = u32::from_le_bytes(body[2..6].try_into().unwrap());
            (body[1], Some(id), body[6..].to_vec())
        }
        v => {
            assert_eq!(v, proto::MIN_PROTO_VERSION, "unknown response version");
            (body[1], None, body[2..].to_vec())
        }
    }
}

#[test]
fn garbage_bytes_get_a_typed_answer_and_a_close() {
    let (_node, addr, dir) = spawn_node("garbage");
    let mut s = raw(&addr);
    // An HTTP request: the first 4 bytes parse as an absurd length.
    s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let (tag, _, payload) = read_raw_frame(&mut s);
    assert_eq!(tag, status::ERR);
    assert_eq!(payload[0], RemoteErrorCode::BadFrame as u8);
    // The node closes after a framing error.
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).unwrap(), 0);
    assert_still_serving(&addr);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn oversized_length_prefix_rejected_without_allocation() {
    let (_node, addr, dir) = spawn_node("oversize");
    let mut s = raw(&addr);
    // Claim a body of u32::MAX bytes (4 GiB): the MAX_BODY check fires
    // before any buffer is sized from the hostile length.
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let (tag, _, payload) = read_raw_frame(&mut s);
    assert_eq!(tag, status::ERR);
    assert_eq!(payload[0], RemoteErrorCode::BadFrame as u8);
    assert_still_serving(&addr);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn truncated_frame_then_close_does_not_wedge_the_node() {
    let (_node, addr, dir) = spawn_node("truncated");
    {
        let mut s = raw(&addr);
        // Declare 100 bytes, send 10, vanish.
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[0u8; 10]).unwrap();
    } // dropped: the node sees EOF mid-frame
    assert_still_serving(&addr);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn bad_crc_and_bad_version_are_rejected() {
    let (_node, addr, dir) = spawn_node("crcver");
    // Valid shape, corrupted body byte → CRC mismatch.
    {
        let mut s = raw(&addr);
        let mut frame = Vec::new();
        proto::write_frame(&mut frame, op::HEALTH, None, &[]).unwrap();
        let body_start = 4;
        frame[body_start + 1] ^= 0x01; // flip the opcode under the CRC
        s.write_all(&frame).unwrap();
        let (tag, _, payload) = read_raw_frame(&mut s);
        assert_eq!(tag, status::ERR);
        assert_eq!(payload[0], RemoteErrorCode::BadFrame as u8);
    }
    // Correct CRC, unsupported version byte.
    {
        let mut s = raw(&addr);
        let body = [99u8, op::HEALTH];
        s.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        s.write_all(&body).unwrap();
        s.write_all(&ec_wire::crc32(&body).to_le_bytes()).unwrap();
        let (tag, _, payload) = read_raw_frame(&mut s);
        assert_eq!(tag, status::ERR);
        assert_eq!(payload[0], RemoteErrorCode::BadFrame as u8);
    }
    assert_still_serving(&addr);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn malformed_payloads_keep_the_connection_alive() {
    let (_node, addr, dir) = spawn_node("badreq");
    let mut s = raw(&addr);
    // Unknown opcode: typed BadRequest, stream stays usable.
    proto::write_frame(&mut s, 0x7F, None, &[]).unwrap();
    let (tag, _, payload) = read_raw_frame(&mut s);
    assert_eq!(tag, status::ERR);
    assert_eq!(payload[0], RemoteErrorCode::BadRequest as u8);

    // Key length pointing past the payload.
    let mut bad_key = Vec::new();
    bad_key.extend_from_slice(&200u16.to_le_bytes());
    bad_key.extend_from_slice(b"short");
    proto::write_frame(&mut s, op::GET_SHARD, None, &[&bad_key]).unwrap();
    let (tag, _, payload) = read_raw_frame(&mut s);
    assert_eq!(tag, status::ERR);
    assert_eq!(payload[0], RemoteErrorCode::BadRequest as u8);

    // Over-cap key length.
    let mut long_key = Vec::new();
    let key = "k".repeat(proto::MAX_KEY + 1);
    long_key.extend_from_slice(&(key.len() as u16).to_le_bytes());
    long_key.extend_from_slice(key.as_bytes());
    proto::write_frame(&mut s, op::GET_SHARD, None, &[&long_key]).unwrap();
    let (tag, _, payload) = read_raw_frame(&mut s);
    assert_eq!(tag, status::ERR);
    assert_eq!(payload[0], RemoteErrorCode::BadRequest as u8);

    // Trailing garbage after a well-formed GET payload.
    let mut trailing = Vec::new();
    trailing.extend_from_slice(&1u16.to_le_bytes());
    trailing.extend_from_slice(b"kEXTRA");
    proto::write_frame(&mut s, op::GET_SHARD, None, &[&trailing]).unwrap();
    let (tag, _, payload) = read_raw_frame(&mut s);
    assert_eq!(tag, status::ERR);
    assert_eq!(payload[0], RemoteErrorCode::BadRequest as u8);

    // …and the same connection still serves honest requests.
    proto::write_frame(&mut s, op::HEALTH, None, &[]).unwrap();
    let (tag, _, _) = read_raw_frame(&mut s);
    assert_eq!(tag, status::OK);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn typed_errors_for_missing_and_corrupt_blobs() {
    let (_node, addr, dir) = spawn_node("typed");
    let mut c = client(&addr);
    match c.get("absent") {
        Err(StoreError::Remote { code: RemoteErrorCode::NotFound, .. }) => {}
        other => panic!("expected NotFound, got {other:?}"),
    }
    // Corrupt a stored blob on disk, behind the node's back.
    c.put("victim", &[42u8; 1000]).unwrap();
    let blob_file = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "blob"))
        .expect("blob file on disk");
    let mut bytes = std::fs::read(&blob_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x80;
    std::fs::write(&blob_file, &bytes).unwrap();
    match c.get("victim") {
        Err(StoreError::Remote { code: RemoteErrorCode::CorruptBlob, .. }) => {}
        other => panic!("expected CorruptBlob, got {other:?}"),
    }
    // STAT attributes it without shipping the payload.
    let stat = c.stat("victim").unwrap();
    assert!(!stat.ok);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn concurrent_clients_hammering_one_node() {
    let (_node, addr, dir) = spawn_node("hammer");
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = client(&addr);
                for round in 0..50 {
                    let key = format!("t{t}-r{round}");
                    let payload = vec![(t * 37 + round) as u8; 256 + t * 13];
                    c.put(&key, &payload).unwrap();
                    assert_eq!(c.get(&key).unwrap(), payload, "{key}");
                    if round % 3 == 0 {
                        assert!(c.delete(&key).unwrap());
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    // Every key that wasn't deleted is still listed.
    let mut c = client(&addr);
    let keys = c.list("t").unwrap();
    assert_eq!(keys.len(), 8 * 50 - 8 * 17); // 17 of 50 rounds deleted per thread
    let health = c.health().unwrap();
    assert_eq!(health.blobs, keys.len() as u64);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn idle_connections_do_not_starve_honest_clients() {
    // The node has 2 workers; park 4 silent connections on it, then do
    // real work. Quiet connections must yield their workers (they are
    // requeued between frames), so honest requests are served promptly
    // instead of waiting out a 60 s idle deadline.
    let (_node, addr, dir) = spawn_node("idlestarve");
    let _silent: Vec<TcpStream> = (0..4).map(|_| raw(&addr)).collect();
    std::thread::sleep(Duration::from_millis(300)); // workers adopt them
    let start = std::time::Instant::now();
    assert_still_serving(&addr);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "honest client starved by idle connections ({:?})",
        start.elapsed()
    );
    // The silent connections are still alive (not dropped), just
    // deprioritized: one of them can still speak and be served.
    let mut late = _silent.into_iter().next().unwrap();
    proto::write_frame(&mut late, op::HEALTH, None, &[]).unwrap();
    let (tag, _, _) = read_raw_frame(&mut late);
    assert_eq!(tag, status::OK);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn shutdown_kills_inflight_connections() {
    let (node, addr, dir) = spawn_node("shutdown");
    let mut c = client(&addr);
    c.put("k", b"v").unwrap();
    node.shutdown();
    // The held connection dies (EOF/reset), new connections are refused
    // — exactly what the cluster client treats as a dead node.
    assert!(c.get("k").is_err());
    assert!(NodeClient::connect(&addr, Duration::from_millis(500)).is_err());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn v2_responses_echo_the_request_id() {
    let (_node, addr, dir) = spawn_node("idecho");
    let mut s = raw(&addr);
    proto::write_frame(&mut s, op::HEALTH, Some(0xDEAD_BEEF), &[]).unwrap();
    let (tag, id, _) = read_raw_frame(&mut s);
    assert_eq!(tag, status::OK);
    assert_eq!(id, Some(0xDEAD_BEEF), "response must echo the request id");
    // Ids are opaque to the node: no ordering or uniqueness demands.
    for weird in [0u32, u32::MAX, 7, 7] {
        proto::write_frame(&mut s, op::HEALTH, Some(weird), &[]).unwrap();
        let (tag, id, _) = read_raw_frame(&mut s);
        assert_eq!(tag, status::OK);
        assert_eq!(id, Some(weird));
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn v1_requests_get_v1_answers() {
    // Old-version compat: a v1 (id-less) request is answered with a v1
    // frame — an old client never sees four mystery bytes prepended to
    // its payload.
    let (_node, addr, dir) = spawn_node("v1compat");
    let mut s = raw(&addr);
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u16.to_le_bytes());
    payload.push(b'k');
    payload.extend_from_slice(b"value-bytes");
    proto::write_frame(&mut s, op::PUT_SHARD, None, &[&payload]).unwrap();
    let (tag, id, body) = read_raw_frame(&mut s);
    assert_eq!(tag, status::OK);
    assert_eq!(id, None, "a v1 request must be answered with a v1 frame");
    assert!(body.is_empty());
    let mut get = Vec::new();
    get.extend_from_slice(&1u16.to_le_bytes());
    get.push(b'k');
    proto::write_frame(&mut s, op::GET_SHARD, None, &[&get]).unwrap();
    let (tag, id, body) = read_raw_frame(&mut s);
    assert_eq!(tag, status::OK);
    assert_eq!(id, None);
    assert_eq!(body, b"value-bytes");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn pipelined_responses_resolve_out_of_order() {
    let (_node, addr, dir) = spawn_node("pipeline");
    let mut c = client(&addr);
    c.put("a", b"alpha").unwrap();
    c.put("b", b"beta").unwrap();
    c.put("c", b"gamma").unwrap();
    // Three requests on the wire before any answer is read; resolved in
    // reverse order. The node answers in arrival order, so the client's
    // parking lot is doing the reordering.
    let ids = c
        .send_batch(&[
            ec_store::BatchOp::Get { key: "a" },
            ec_store::BatchOp::Get { key: "b" },
            ec_store::BatchOp::Get { key: "c" },
        ])
        .unwrap();
    assert_eq!(ids.len(), 3);
    assert_eq!(c.recv_get(ids[2]).unwrap(), b"gamma");
    assert_eq!(c.recv_get(ids[1]).unwrap(), b"beta");
    assert_eq!(c.recv_get(ids[0]).unwrap(), b"alpha");
    // An id that was never issued (or already resolved) is refused
    // without touching the stream.
    match c.recv_get(ids[0]) {
        Err(StoreError::Protocol(msg)) => assert!(msg.contains("not outstanding")),
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    // The connection is still healthy after the pipelined exchange.
    assert_eq!(c.get("b").unwrap(), b"beta");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn hostile_response_id_is_a_typed_error_and_poisons_the_connection() {
    // A lying "node": answers every request with a well-formed v2 frame
    // carrying a request id the client never issued.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        loop {
            let mut len = [0u8; 4];
            if s.read_exact(&mut len).is_err() {
                return;
            }
            let mut body = vec![0u8; u32::from_le_bytes(len) as usize + 4];
            if s.read_exact(&mut body).is_err() {
                return; // body + trailing crc
            }
            if proto::write_frame(&mut s, status::OK, Some(0x4141_4141), &[b"x"])
                .is_err()
            {
                return;
            }
        }
    });
    let mut c = NodeClient::connect(&addr, TIMEOUT).unwrap();
    match c.get("anything") {
        Err(StoreError::Protocol(msg)) => {
            assert!(
                msg.contains("unexpected request id"),
                "error must name the lie: {msg}"
            );
        }
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    // The stream can no longer be trusted: the client is dropped (as the
    // cluster layer does on any non-Remote error) and the server sees
    // the close rather than more requests on a desynced stream.
    drop(c);
    server.join().unwrap();
}
