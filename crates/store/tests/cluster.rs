//! Cluster-level failure matrix on a small geometry: degraded reads for
//! every erasure pattern, repair ≡ original bytes, delta overwrites,
//! scrub attribution, node death under concurrent readers, and the
//! background scrub scheduler.

use ec_core::{CodecSpec, RsConfig};
use ec_store::{
    Cluster, NodeHandle, OverwriteMode, ScrubCycle, ScrubScheduler, ShardHealth,
    StoreError,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(5);

/// A disposable test cluster: `count` loopback nodes with per-node
/// directories, handles retrievable by index for killing.
struct TestCluster {
    root: PathBuf,
    nodes: Vec<Option<NodeHandle>>,
    addrs: Vec<String>,
}

impl TestCluster {
    fn spawn(tag: &str, count: usize) -> TestCluster {
        let root = std::env::temp_dir().join(format!(
            "ec_store_cluster_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let nodes: Vec<Option<NodeHandle>> = (0..count)
            .map(|i| {
                Some(
                    NodeHandle::spawn(&root.join(format!("node{i}")), "127.0.0.1:0", 2)
                        .expect("spawn node"),
                )
            })
            .collect();
        let addrs = nodes
            .iter()
            .map(|n| n.as_ref().unwrap().addr().to_string())
            .collect();
        TestCluster { root, nodes, addrs }
    }

    fn cluster(&self, n: usize, p: usize) -> Cluster {
        Cluster::new(self.addrs.clone(), RsConfig::new(n, p))
            .unwrap()
            .with_timeout(TIMEOUT)
    }

    /// Kill node `i` (listener closed, in-flight connections dropped).
    fn kill(&mut self, i: usize) {
        if let Some(node) = self.nodes[i].take() {
            node.shutdown();
        }
    }

    /// Spawn a brand-new empty node (a replacement), returning its
    /// address. Its handle joins the managed set.
    fn spawn_replacement(&mut self, tag: &str) -> String {
        let dir = self.root.join(format!("replacement-{tag}-{}", self.nodes.len()));
        let node = NodeHandle::spawn(&dir, "127.0.0.1:0", 2).expect("spawn replacement");
        let addr = node.addr().to_string();
        self.nodes.push(Some(node));
        self.addrs.push(addr.clone());
        addr
    }

    /// Index of the node serving `addr`.
    fn index_of(&self, addr: &str) -> usize {
        self.addrs.iter().position(|a| a == addr).expect("known addr")
    }
}

impl Drop for TestCluster {
    fn drop(&mut self) {
        for node in self.nodes.iter_mut().filter_map(Option::take) {
            node.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn sample_data(len: usize, seed: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + seed * 7 + i / 9) % 251) as u8).collect()
}

#[test]
fn roundtrip_various_sizes() {
    let tc = TestCluster::spawn("sizes", 5);
    let cluster = tc.cluster(3, 2);
    for (k, len) in [0usize, 1, 7, 24, 1000, 100_000].into_iter().enumerate() {
        let name = format!("obj-{len}");
        let data = sample_data(len, k);
        cluster.put(&name, &data).unwrap();
        let (got, report) = cluster.get_with_report(&name).unwrap();
        assert_eq!(got, data, "{name}");
        assert!(!report.degraded(), "{name} should be a healthy read");
    }
    assert_eq!(cluster.objects().unwrap().len(), 6);
    // Delete removes the object everywhere.
    cluster.delete("obj-1000").unwrap();
    assert!(matches!(
        cluster.get("obj-1000"),
        Err(StoreError::NotFound(_))
    ));
    assert_eq!(cluster.objects().unwrap().len(), 5);
}

#[test]
fn invalid_arguments_are_typed() {
    let tc = TestCluster::spawn("args", 3);
    // Too few nodes for the geometry.
    assert!(matches!(
        Cluster::new(tc.addrs.clone(), RsConfig::new(3, 2)),
        Err(StoreError::InvalidArg(_))
    ));
    // Duplicate membership.
    let mut dup = tc.addrs.clone();
    dup.push(dup[0].clone());
    assert!(matches!(
        Cluster::new(dup, RsConfig::new(2, 1)),
        Err(StoreError::InvalidArg(_))
    ));
    let cluster = tc.cluster(2, 1);
    assert!(matches!(cluster.put("", b"x"), Err(StoreError::InvalidArg(_))));
    assert!(matches!(
        cluster.put(&"x".repeat(200), b"x"),
        Err(StoreError::InvalidArg(_))
    ));
    assert!(matches!(cluster.get("absent"), Err(StoreError::NotFound(_))));
}

/// The full failure matrix on RS(3, 2) over 5 nodes: for **every** pair
/// of dead nodes, degraded reads return the exact bytes, and repairing
/// both nodes onto fresh replacements restores a fully healthy cluster
/// whose shards byte-compare through a clean scrub.
#[test]
fn every_double_failure_reads_and_repairs() {
    let objects: Vec<(String, Vec<u8>)> = (0..4)
        .map(|k| (format!("obj-{k}"), sample_data(10_000 + 997 * k, k)))
        .collect();
    for a in 0..5 {
        for b in (a + 1)..5 {
            let mut tc = TestCluster::spawn(&format!("matrix{a}{b}"), 5);
            let mut cluster = tc.cluster(3, 2);
            for (name, data) in &objects {
                cluster.put(name, data).unwrap();
            }
            tc.kill(a);
            tc.kill(b);
            // Degraded reads: any 3 of 5 nodes suffice.
            for (name, data) in &objects {
                let (got, _report) = cluster.get_with_report(name).unwrap();
                assert_eq!(&got, data, "degraded read of {name}, dead {a},{b}");
            }
            // Repair both dead nodes onto fresh replacements.
            for dead_idx in [a, b] {
                let dead_addr = tc.addrs[dead_idx].clone();
                let replacement = tc.spawn_replacement(&format!("{dead_idx}"));
                let report = cluster.repair_node(&dead_addr, &replacement).unwrap();
                assert!(report.failed.is_empty(), "dead {a},{b}: {:?}", report.failed);
            }
            // Fully healthy again: clean scrub and healthy reads.
            let scrub = cluster.scrub().unwrap();
            assert!(scrub.clean(), "dead {a},{b}: {scrub:?}");
            for (name, data) in &objects {
                let (got, report) = cluster.get_with_report(name).unwrap();
                assert_eq!(&got, data, "post-repair read of {name}");
                assert!(!report.degraded(), "post-repair read must be healthy");
            }
        }
    }
}

#[test]
fn node_death_mid_read_falls_back_to_degraded() {
    let mut tc = TestCluster::spawn("middeath", 6);
    let cluster = Arc::new(tc.cluster(4, 2));
    let objects: Vec<(String, Vec<u8>)> = (0..6)
        .map(|k| (format!("obj-{k}"), sample_data(50_000 + k, k)))
        .collect();
    for (name, data) in &objects {
        cluster.put(name, data).unwrap();
    }
    // 8 reader threads loop over every object while two nodes die under
    // them. Some reads observe the node mid-connection (EOF/reset),
    // some get refused connections — every single read must still
    // return the exact bytes.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..8)
        .map(|t| {
            let cluster = cluster.clone();
            let objects = objects.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut reads = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let (name, data) = &objects[(reads + t) % objects.len()];
                    let got = cluster.get(name).unwrap_or_else(|e| {
                        panic!("reader {t}: get({name}) failed: {e}")
                    });
                    assert_eq!(&got, data, "reader {t}: {name}");
                    reads += 1;
                }
                reads
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    tc.kill(1);
    std::thread::sleep(Duration::from_millis(150));
    tc.kill(4);
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    let total: usize = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(total > 0, "readers made no progress");
}

#[test]
fn delta_overwrite_ships_less_and_proves_it() {
    let tc = TestCluster::spawn("delta", 6);
    let cluster = tc.cluster(4, 2);
    let original = sample_data(64 * 1024, 1);
    cluster.put("doc", &original).unwrap();
    let baseline_partials = cluster.codec().partial_cache_len();

    // Change one shard's worth of bytes: a delta overwrite.
    let shard_len = cluster.codec().shard_len(original.len());
    let mut v2 = original.clone();
    for b in &mut v2[..shard_len / 2] {
        *b ^= 0xA5;
    }
    let report = cluster.overwrite("doc", &v2).unwrap();
    assert_eq!(report.mode, OverwriteMode::Delta);
    assert_eq!(report.changed, vec![0]);
    assert_eq!(report.shards_written, 1 + 2); // one data shard + p parity
    // The SLP metrics prove the delta is strictly cheaper than a full
    // re-encode, and the cache introspection proves the column program
    // path actually ran.
    assert!(
        report.xor_count < report.full_xor_count,
        "{} XORs vs full {}",
        report.xor_count,
        report.full_xor_count
    );
    assert!(cluster.codec().partial_cache_len() > baseline_partials);
    assert_eq!(cluster.get("doc").unwrap(), v2);

    // Unchanged content: nothing ships.
    let report = cluster.overwrite("doc", &v2).unwrap();
    assert_eq!(report.mode, OverwriteMode::NoChange);
    assert_eq!(report.shards_written, 0);

    // A size change forces the full path.
    let v3 = sample_data(96 * 1024, 3);
    let report = cluster.overwrite("doc", &v3).unwrap();
    assert_eq!(report.mode, OverwriteMode::Full);
    assert_eq!(cluster.get("doc").unwrap(), v3);

    // Overwrite of a nonexistent object degrades to a plain put.
    let report = cluster.overwrite("fresh", &original).unwrap();
    assert_eq!(report.mode, OverwriteMode::Full);
    assert_eq!(cluster.get("fresh").unwrap(), original);
}

#[test]
fn scrub_attributes_and_repairs_bit_rot() {
    let tc = TestCluster::spawn("scrub", 5);
    let cluster = tc.cluster(3, 2);
    let data = sample_data(40_000, 9);
    cluster.put("victim", &data).unwrap();
    assert!(cluster.scrub().unwrap().clean());

    // Rot one shard blob on disk, behind the node's back: find it by
    // scanning the node directories for a shard-sized blob.
    let mut rotted = 0;
    'outer: for i in 0..5 {
        let dir = tc.root.join(format!("node{i}"));
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "blob") {
                let bytes = std::fs::read(&path).unwrap();
                if bytes.len() > 1000 {
                    // a shard, not a manifest
                    let mut bad = bytes;
                    let mid = bad.len() / 2;
                    bad[mid] ^= 1;
                    std::fs::write(&path, &bad).unwrap();
                    rotted += 1;
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(rotted, 1, "no shard blob found to corrupt");

    // Scrub attributes the damage to exactly one shard, as Corrupt.
    let report = cluster.scrub().unwrap();
    assert!(!report.clean());
    let damaged = report.damaged_objects();
    assert_eq!(damaged.len(), 1);
    let object = damaged[0];
    let bad: Vec<usize> = object.damaged();
    assert_eq!(bad.len(), 1, "{object:?}");
    assert!(
        matches!(object.shards[bad[0]], ShardHealth::Corrupt(_)),
        "{object:?}"
    );

    // Reads never served the rot (degraded around it), and
    // scrub_and_repair heals it in place.
    assert_eq!(cluster.get("victim").unwrap(), data);
    let (_, repairs) = cluster.scrub_and_repair().unwrap();
    assert_eq!(repairs.len(), 1);
    assert_eq!(repairs[0].1.as_ref().unwrap().repaired.len(), 1);
    assert!(cluster.scrub().unwrap().clean());
}

#[test]
fn restarted_empty_node_repairs_in_place() {
    let mut tc = TestCluster::spawn("restart", 4);
    let mut cluster = tc.cluster(2, 2);
    let data = sample_data(30_000, 4);
    cluster.put("obj", &data).unwrap();
    // Kill a node and wipe its directory (disk replaced), then restart
    // it on the same address.
    let idx = tc.index_of(&cluster.nodes()[0].clone());
    let addr = tc.addrs[idx].clone();
    tc.kill(idx);
    let dir = tc.root.join(format!("node{idx}"));
    std::fs::remove_dir_all(&dir).unwrap();
    // Rebinding the same port right after close works because no
    // lingering server-side connection holds it (clients closed first).
    let node = NodeHandle::spawn(&dir, &addr, 2).expect("restart node");
    tc.nodes[idx] = Some(node);

    // Same-address repair: `--dead X` without a replacement.
    let report = cluster.repair_node(&addr, &addr).unwrap();
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert!(cluster.scrub().unwrap().clean());
    assert_eq!(cluster.get("obj").unwrap(), data);
}

#[test]
fn delete_survives_a_partitioned_node_rejoining() {
    let mut tc = TestCluster::spawn("tombstone", 4);
    let cluster = tc.cluster(2, 1);
    cluster.put("ghost", &sample_data(10_000, 3)).unwrap();
    // One node sleeps through the delete (killed, disk intact).
    let slept = 3;
    let slept_addr = tc.addrs[slept].clone();
    tc.kill(slept);
    cluster.delete("ghost").unwrap();
    assert!(matches!(cluster.get("ghost"), Err(StoreError::NotFound(_))));

    // The node rejoins with its stale manifest replica (and possibly a
    // stale shard). The tombstone outvotes it: the object stays
    // deleted, the listing stays empty, and scrub stays clean instead
    // of wedging on an unreconstructable ghost.
    let node = NodeHandle::spawn(
        &tc.root.join(format!("node{slept}")),
        &slept_addr,
        2,
    )
    .expect("rejoin");
    tc.nodes[slept] = Some(node);
    assert!(
        matches!(cluster.get("ghost"), Err(StoreError::NotFound(_))),
        "stale replica resurrected a deleted object"
    );
    assert_eq!(cluster.objects().unwrap(), Vec::<String>::new());
    assert!(cluster.scrub().unwrap().clean());

    // A re-put resurrects cleanly, outvoting the tombstone in turn.
    let v2 = sample_data(8_000, 4);
    cluster.put("ghost", &v2).unwrap();
    assert_eq!(cluster.get("ghost").unwrap(), v2);
    assert_eq!(cluster.objects().unwrap(), vec!["ghost".to_string()]);
    assert!(cluster.scrub().unwrap().clean());
}

#[test]
fn rotted_manifests_are_not_reported_as_absent() {
    use ec_store::{manifest_key, NodeClient};
    let tc = TestCluster::spawn("manifestrot", 4);
    let cluster = tc.cluster(2, 1);
    cluster.put("obj", &sample_data(5000, 1)).unwrap();
    // Overwrite every manifest replica with garbage (valid blob frames,
    // invalid manifest bytes): the object is rotted, not absent.
    for addr in &tc.addrs {
        let mut c = NodeClient::connect(addr, TIMEOUT).unwrap();
        c.put(&manifest_key("obj"), b"not a manifest").unwrap();
    }
    match cluster.get("obj") {
        Err(StoreError::Manifest(_)) => {}
        other => panic!("expected Manifest rot error, got {other:?}"),
    }
}

#[test]
fn repair_node_is_retryable_after_membership_swap() {
    let mut tc = TestCluster::spawn("retry", 4);
    let mut cluster = tc.cluster(2, 1);
    let data = sample_data(20_000, 5);
    cluster.put("obj", &data).unwrap();
    let dead_addr = tc.addrs[1].clone();
    tc.kill(1);
    let replacement = tc.spawn_replacement("r");
    cluster.repair_node(&dead_addr, &replacement).unwrap();
    // Re-running the same repair (membership already swapped) is a
    // valid retry, not an InvalidArg — it rescans and finds nothing to
    // do.
    let report = cluster.repair_node(&dead_addr, &replacement).unwrap();
    assert!(report.failed.is_empty());
    assert_eq!(report.shards_rebuilt, 0, "second pass must be a no-op");
    assert!(cluster.scrub().unwrap().clean());
    assert_eq!(cluster.get("obj").unwrap(), data);
}

#[test]
fn scrub_gc_reclaims_orphans_after_membership_change() {
    use ec_store::NodeClient;
    // Six nodes; membership A = {0..4}, membership B = {1..5}. An
    // object placed (partly) on node 0 under A is re-put under B:
    // node 0 is no longer a member but still reachable, and the prior
    // manifest names it. The re-put deliberately leaves the prior
    // generation in place (snapshot readers may still hold it); a
    // union-membership scrub with zero GC grace must then collect the
    // stale shard.
    let tc = TestCluster::spawn("orphans", 6);
    let cluster_a = Cluster::new(tc.addrs[..5].to_vec(), RsConfig::new(2, 2))
        .unwrap()
        .with_timeout(TIMEOUT);
    let cluster_b = Cluster::new(tc.addrs[1..].to_vec(), RsConfig::new(2, 2))
        .unwrap()
        .with_timeout(TIMEOUT);
    let node0 = &tc.addrs[0];
    let shard_of = |name: &str| -> bool {
        let mut c = NodeClient::connect(node0, TIMEOUT).unwrap();
        c.list("s:").unwrap().iter().any(|key| key.ends_with(name))
    };
    // Find an object whose A-placement includes node 0 (4 of 5 nodes
    // host each object, so almost any name works).
    let mut chosen = None;
    for k in 0..32 {
        let name = format!("orph-{k}");
        cluster_a.put(&name, &sample_data(10_000, k)).unwrap();
        if shard_of(&name) {
            chosen = Some(name);
            break;
        }
        cluster_a.delete(&name).unwrap();
    }
    let name = chosen.expect("no object landed on node 0");

    let v2 = sample_data(10_000, 99);
    cluster_b.put(&name, &v2).unwrap();
    assert!(
        shard_of(&name),
        "re-put must leave the prior generation in place for snapshot readers"
    );
    assert_eq!(cluster_b.get(&name).unwrap(), v2);

    // A scrub over the union membership sees the winning (B) manifest,
    // finds node 0's shard unreferenced by it, and collects it.
    let gc_cluster = Cluster::new(tc.addrs.clone(), RsConfig::new(2, 2))
        .unwrap()
        .with_timeout(TIMEOUT)
        .with_gc_grace(Duration::ZERO);
    let report = gc_cluster.scrub().unwrap();
    assert!(
        report.generations_collected >= 1,
        "scrub GC must report the superseded generation: {report:?}"
    );
    assert!(report.bytes_reclaimed > 0);
    assert!(
        !shard_of(&name),
        "stale shard on the reachable ex-member must be collected by scrub GC"
    );
    assert_eq!(cluster_b.get(&name).unwrap(), v2);
}

/// Locality in action: under LRC(4, 3, r=2) — groups {0,1} and {2,3},
/// local XOR parities at 4 and 5, a global RS row at 6 — repairing a
/// node that held one data shard must fetch only the shard's locality
/// group (its partner + the group parity: 2 shards), not the any-`n`
/// floor of 4 survivors. `bytes_read` is the proof, and the decode
/// cache proves the subset program actually ran.
#[test]
fn lrc_repair_node_reads_only_the_local_group() {
    let mut tc = TestCluster::spawn("lrcrepair", 7);
    let mut cluster = Cluster::with_spec(tc.addrs.clone(), &CodecSpec::lrc(4, 3, 2))
        .unwrap()
        .with_timeout(TIMEOUT);
    let data = sample_data(40_000, 6);
    cluster.put("obj", &data).unwrap();
    let shard_len = cluster.codec().shard_len(data.len()) as u64;

    // Kill the node holding data shard 0 (7 shards over 7 nodes: it
    // holds nothing else).
    let dead_addr = cluster.manifest("obj").unwrap().placement[0].clone();
    tc.kill(tc.index_of(&dead_addr));
    let baseline_decodes = cluster.codec().decode_cache_len();

    let replacement = tc.spawn_replacement("lrc");
    let report = cluster.repair_node(&dead_addr, &replacement).unwrap();
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert_eq!(report.shards_rebuilt, 1);
    assert_eq!(report.bytes_rebuilt, shard_len);
    assert_eq!(
        report.bytes_read,
        2 * shard_len,
        "repair must read exactly the locality group, not {} any-n bytes",
        4 * shard_len
    );
    // The group-subset decode program was compiled and cached.
    assert!(cluster.codec().decode_cache_len() > baseline_decodes);
    assert!(cluster.scrub().unwrap().clean());
    assert_eq!(cluster.get("obj").unwrap(), data);
}

/// The manifest records the codec, and a cluster configured with a
/// different family — same (n, p)! — is refused with a typed error
/// instead of decoding garbage through the wrong generator matrix.
#[test]
fn mismatched_codec_is_a_typed_refusal() {
    let tc = TestCluster::spawn("codectrap", 7);
    let rs = tc.cluster(4, 3);
    let data = sample_data(9_000, 8);
    rs.put("obj", &data).unwrap();

    let lrc = Cluster::with_spec(tc.addrs.clone(), &CodecSpec::lrc(4, 3, 2))
        .unwrap()
        .with_timeout(TIMEOUT);
    match lrc.get("obj") {
        Err(StoreError::Manifest(msg)) => {
            assert!(msg.contains("rs(4, 3)"), "{msg}");
            assert!(msg.contains("lrc:2(4, 3)"), "{msg}");
        }
        other => panic!("expected a typed codec mismatch, got {other:?}"),
    }
    // The recorded codec is still discoverable without matching it…
    assert_eq!(
        lrc.manifest("obj").unwrap().codec_spec().unwrap(),
        CodecSpec::rs(4, 3)
    );
    // …and the LRC cluster round-trips objects stored under its own
    // spec (degraded read included: lose one group member).
    lrc.put("obj2", &data).unwrap();
    assert_eq!(lrc.get("obj2").unwrap(), data);
}

#[test]
fn background_scrubber_heals_rot() {
    let tc = TestCluster::spawn("scheduler", 5);
    let cluster = Arc::new(tc.cluster(3, 2));
    let data = sample_data(20_000, 2);
    cluster.put("watched", &data).unwrap();

    // Rot one shard blob, then let the scheduler find and fix it.
    let mut rotted = false;
    'outer: for i in 0..5 {
        let dir = tc.root.join(format!("node{i}"));
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "blob") {
                let bytes = std::fs::read(&path).unwrap();
                if bytes.len() > 1000 {
                    let mut bad = bytes;
                    bad[500] ^= 0x10;
                    std::fs::write(&path, &bad).unwrap();
                    rotted = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(rotted);

    let scheduler = ScrubScheduler::start(cluster.clone(), Duration::from_millis(50));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut healed = false;
    while std::time::Instant::now() < deadline {
        if cluster.scrub().map(|r| r.clean()).unwrap_or(false) {
            healed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(healed, "scheduler did not heal the rot in time");
    let cycles = scheduler.take_cycles();
    assert!(
        cycles.iter().any(|c| matches!(
            c,
            ScrubCycle::Ran { repairs, .. } if !repairs.is_empty()
        )),
        "no cycle recorded a repair: {cycles:?}"
    );
    scheduler.stop();
    assert_eq!(cluster.get("watched").unwrap(), data);
}

#[test]
fn op_deadline_expiry_is_a_typed_timeout() {
    let tc = TestCluster::spawn("deadline", 5);
    // An already-expired deadline: every operation fails with the typed
    // Timeout before (and regardless of) any socket I/O.
    let expired = Cluster::new(tc.addrs.clone(), RsConfig::new(3, 2))
        .unwrap()
        .with_timeout(TIMEOUT)
        .with_op_deadline(Duration::ZERO);
    let data = sample_data(10_000, 1);
    for result in [
        expired.put("budgeted", &data).map(|_| ()),
        expired.get("budgeted").map(|_| ()),
        expired.objects().map(|_| ()),
        expired.scrub().map(|_| ()),
    ] {
        match result {
            Err(StoreError::Timeout) => {}
            other => panic!("expected StoreError::Timeout, got {other:?}"),
        }
    }
    // A generous deadline changes nothing about a healthy cluster.
    let generous = Cluster::new(tc.addrs.clone(), RsConfig::new(3, 2))
        .unwrap()
        .with_timeout(TIMEOUT)
        .with_op_deadline(Duration::from_secs(30));
    generous.put("budgeted", &data).unwrap();
    assert_eq!(generous.get("budgeted").unwrap(), data);
}

#[test]
fn batch_repair_reads_each_survivor_once() {
    let mut tc = TestCluster::spawn("batchrepair", 8);
    let mut cluster = tc.cluster(4, 2);
    let data = sample_data(48_000, 9);
    let mut shard_len = 0u64;
    for k in 0..5 {
        let report = cluster.put(&format!("obj-{k}"), &data).unwrap();
        shard_len = report.shard_len as u64;
    }

    // Pick two victims and tally, per object, how many survivor-shard
    // reads a batch repair needs: RS(4, 2) rebuilds any ≤2 lost shards
    // of an object from exactly n = 4 survivors, read once — however
    // many of the lost shards each dead node held.
    let dead_a = cluster.manifest("obj-0").unwrap().placement[0].clone();
    let dead_b = cluster.manifest("obj-0").unwrap().placement[1].clone();
    let mut expected_read = 0u64;
    for k in 0..5 {
        let placement = cluster.manifest(&format!("obj-{k}")).unwrap().placement;
        if placement.contains(&dead_a) || placement.contains(&dead_b) {
            expected_read += 4 * shard_len;
        }
    }
    tc.kill(tc.index_of(&dead_a));
    tc.kill(tc.index_of(&dead_b));
    let repl_a = tc.spawn_replacement("a");
    let repl_b = tc.spawn_replacement("b");

    // ONE repair pass for both dead nodes: one survivor fetch + one
    // reconstruct per object places all of that object's lost shards.
    let report = cluster
        .repair_nodes(&[
            (dead_a.clone(), repl_a.clone()),
            (dead_b.clone(), repl_b.clone()),
        ])
        .unwrap();
    assert_eq!(report.objects_scanned, 5);
    assert!(report.failed.is_empty(), "failed: {:?}", report.failed);
    assert_eq!(
        report.bytes_read, expected_read,
        "a batch repair must read each survivor shard once per object, \
         not once per dead node"
    );
    assert!(cluster.nodes().contains(&repl_a));
    assert!(cluster.nodes().contains(&repl_b));
    assert!(!cluster.nodes().iter().any(|a| a == &dead_a || a == &dead_b));

    // The cluster is whole again: clean scrub, healthy reads.
    let scrub = cluster.scrub().unwrap();
    assert!(scrub.clean(), "post-repair scrub: {scrub:?}");
    for k in 0..5 {
        let (got, report) = cluster.get_with_report(&format!("obj-{k}")).unwrap();
        assert_eq!(got, data);
        assert!(!report.degraded());
    }

    // Pair validation is typed: duplicate dead entries and a node used
    // as both dead and replacement are refused up front.
    let bad = cluster.repair_nodes(&[
        (repl_a.clone(), repl_b.clone()),
        (repl_a.clone(), repl_b.clone()),
    ]);
    assert!(matches!(bad, Err(StoreError::InvalidArg(_))), "{bad:?}");
}
