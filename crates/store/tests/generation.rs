//! Crash-atomicity matrix for generation-keyed writes: a client dying
//! after any k of its n + p shard writes (or just before publishing the
//! manifest) must leave the prior generation byte-exact and
//! degraded-free, and the next scrub's GC pass must sweep the
//! unpublished generation so no node keeps orphaned shard keys.
//! Plus: snapshot reads during a slow re-put never observe a
//! mixed-generation decode, and a crashed repair is retryable.

use ec_core::RsConfig;
use ec_store::{
    parse_shard_key, Cluster, FailPoint, NodeClient, NodeHandle, NodeOptions,
};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(5);

/// Loopback nodes with per-node directories, like the cluster-test rig,
/// plus a whole-cluster shard-key census for orphan assertions.
struct Rig {
    root: PathBuf,
    nodes: Vec<Option<NodeHandle>>,
    addrs: Vec<String>,
}

impl Rig {
    fn spawn(tag: &str, count: usize) -> Rig {
        Rig::spawn_with(tag, count, NodeOptions { workers: 2, ..NodeOptions::default() })
    }

    fn spawn_with(tag: &str, count: usize, opts: NodeOptions) -> Rig {
        let root = std::env::temp_dir()
            .join(format!("ec_store_generation_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let nodes: Vec<Option<NodeHandle>> = (0..count)
            .map(|i| {
                Some(
                    NodeHandle::spawn_with(
                        &root.join(format!("node{i}")),
                        "127.0.0.1:0",
                        opts.clone(),
                    )
                    .expect("spawn node"),
                )
            })
            .collect();
        let addrs = nodes
            .iter()
            .map(|n| n.as_ref().unwrap().addr().to_string())
            .collect();
        Rig { root, nodes, addrs }
    }

    fn cluster(&self, n: usize, p: usize) -> Cluster {
        Cluster::new(self.addrs.clone(), RsConfig::new(n, p))
            .unwrap()
            .with_timeout(TIMEOUT)
    }

    fn kill(&mut self, i: usize) {
        if let Some(node) = self.nodes[i].take() {
            node.shutdown();
        }
    }

    fn spawn_replacement(&mut self) -> String {
        let dir = self.root.join(format!("replacement{}", self.nodes.len()));
        let node = NodeHandle::spawn(&dir, "127.0.0.1:0", 2).expect("spawn replacement");
        let addr = node.addr().to_string();
        self.nodes.push(Some(node));
        self.addrs.push(addr.clone());
        addr
    }

    /// Every `s:`-prefixed key on every live node, as sorted
    /// `(addr, key)` pairs — the ground truth for "zero orphans".
    fn shard_keys(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.is_none() {
                continue;
            }
            let mut c = NodeClient::connect(&self.addrs[i], TIMEOUT).unwrap();
            for key in c.list("s:").unwrap() {
                out.push((self.addrs[i].clone(), key));
            }
        }
        out.sort();
        out
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        for node in self.nodes.iter_mut().filter_map(Option::take) {
            node.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn sample(len: usize, seed: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + seed * 97 + i / 7) % 251) as u8).collect()
}

fn failpoint(point: &'static str, k: usize) -> FailPoint {
    Arc::new(move |p, i| p == point && i >= k)
}

#[test]
fn aborted_reput_at_every_step_preserves_prior_generation() {
    let (n, p) = (3usize, 2usize);
    let rig = Rig::spawn("put_matrix", n + p);
    let clean = rig.cluster(n, p).with_gc_grace(Duration::ZERO);
    let v1 = sample(64_000, 1);
    let v2 = sample(64_000, 2);
    clean.put("obj", &v1).unwrap();

    let live_keys = rig.shard_keys();
    assert_eq!(live_keys.len(), n + p, "one shard key per node");
    let gens: BTreeSet<u64> = live_keys
        .iter()
        .map(|(_, key)| parse_shard_key(key).expect("parseable shard key").2)
        .collect();
    assert_eq!(gens.len(), 1, "one live generation: {live_keys:?}");

    // Every abort point: die after k of n + p shard writes, and die
    // with all shards written but the manifest unpublished.
    let points: Vec<(&'static str, usize)> = (0..n + p)
        .map(|k| ("put.shard", k))
        .chain([("put.publish", 0)])
        .collect();
    for (point, k) in points {
        let crashing = rig.cluster(n, p).with_failpoint(failpoint(point, k));
        let err = crashing.put("obj", &v2).unwrap_err();
        assert!(
            err.to_string().contains("failpoint"),
            "{point}={k} must abort the put: {err}"
        );

        // The prior generation is untouched: byte-exact, degraded-free.
        let (got, report) = clean.get_with_report("obj").unwrap();
        assert_eq!(got, v1, "{point}={k} corrupted the live generation");
        assert!(!report.degraded(), "{point}={k} left the live generation short");

        // Scrub GC sweeps the unpublished generation (zero grace) and
        // reports it — except at k = 0, where nothing ever landed.
        let scrub = clean.scrub().unwrap();
        assert!(scrub.clean(), "{point}={k}: {scrub:?}");
        if point == "put.shard" && k == 0 {
            assert_eq!(scrub.generations_collected, 0, "{point}={k}");
        } else {
            assert_eq!(scrub.generations_collected, 1, "{point}={k}: {scrub:?}");
            assert!(scrub.bytes_reclaimed > 0, "{point}={k}: {scrub:?}");
        }

        // Zero orphaned shard keys on any node.
        assert_eq!(rig.shard_keys(), live_keys, "{point}={k} left orphans");
    }

    // A re-put with no failpoint still lands, and the generation it
    // supersedes is collected by the following scrub.
    clean.put("obj", &v2).unwrap();
    assert_eq!(clean.get("obj").unwrap(), v2);
    let scrub = clean.scrub().unwrap();
    assert!(scrub.clean(), "{scrub:?}");
    assert_eq!(scrub.generations_collected, 1, "{scrub:?}");
    let keys = rig.shard_keys();
    assert_eq!(keys.len(), n + p);
    assert_ne!(keys, live_keys, "the new generation must use new keys");
}

#[test]
fn aborted_delta_overwrite_preserves_prior_generation() {
    let (n, p) = (3usize, 2usize);
    let rig = Rig::spawn("overwrite_matrix", n + p);
    let clean = rig.cluster(n, p).with_gc_grace(Duration::ZERO);
    let v1 = sample(96_000, 3);
    clean.put("obj", &v1).unwrap();
    let live_keys = rig.shard_keys();

    // Flip bytes inside data shard 0 only: the delta path ships one
    // changed data shard plus both parity shards — three writes.
    let mut v2 = v1.clone();
    for b in &mut v2[..512] {
        *b ^= 0x5A;
    }
    let ships = 1 + p;

    let points: Vec<(&'static str, usize)> = (0..ships)
        .map(|k| ("overwrite.shard", k))
        .chain([("overwrite.publish", 0)])
        .collect();
    for (point, k) in points {
        let crashing = rig.cluster(n, p).with_failpoint(failpoint(point, k));
        crashing.overwrite("obj", &v2).unwrap_err();

        let (got, report) = clean.get_with_report("obj").unwrap();
        assert_eq!(got, v1, "{point}={k} corrupted the live generation");
        assert!(!report.degraded(), "{point}={k}");

        let scrub = clean.scrub().unwrap();
        assert!(scrub.clean(), "{point}={k}: {scrub:?}");
        assert_eq!(rig.shard_keys(), live_keys, "{point}={k} left orphans");
    }

    // The real overwrite lands; the keys it superseded (changed data +
    // parity — unchanged data shards keep their old keys) are swept.
    clean.overwrite("obj", &v2).unwrap();
    assert_eq!(clean.get("obj").unwrap(), v2);
    let scrub = clean.scrub().unwrap();
    assert!(scrub.clean(), "{scrub:?}");
    assert_eq!(scrub.generations_collected, 1, "{scrub:?}");
    assert!(scrub.bytes_reclaimed > 0);
    let keys = rig.shard_keys();
    assert_eq!(keys.len(), n + p);
    assert_ne!(keys, live_keys);
}

#[test]
fn aborted_repair_is_retryable_and_leaves_no_orphans() {
    let mut rig = Rig::spawn("repair_crash", 3);
    let data = sample(40_000, 7);
    {
        let cluster = rig.cluster(2, 1);
        cluster.put("obj", &data).unwrap();
    }
    let dead = rig.addrs[0].clone();
    rig.kill(0);
    let replacement = rig.spawn_replacement();

    // The repair client dies after 0 replacement writes, and again with
    // the replacement written but the manifest unpublished. Either way
    // the published manifest still names the dead node, so reads keep
    // working (degraded through the survivors) and the repair retries.
    for (point, k) in [("repair.shard", 0), ("repair.publish", 0)] {
        let mut crashing = Cluster::new(rig.addrs[..3].to_vec(), RsConfig::new(2, 1))
            .unwrap()
            .with_timeout(TIMEOUT)
            .with_failpoint(failpoint(point, k));
        let report = crashing.repair_node(&dead, &replacement).unwrap();
        assert!(
            !report.failed.is_empty(),
            "{point}={k} must fail the object repair: {report:?}"
        );
        assert_eq!(
            crashing.get("obj").unwrap(),
            data,
            "{point}={k} broke degraded reads"
        );
    }

    // Retry without the failpoint: completes, and the scrub GC leaves
    // exactly one shard key per live node.
    let mut cluster = Cluster::new(rig.addrs[..3].to_vec(), RsConfig::new(2, 1))
        .unwrap()
        .with_timeout(TIMEOUT)
        .with_gc_grace(Duration::ZERO);
    let report = cluster.repair_node(&dead, &replacement).unwrap();
    assert!(report.failed.is_empty(), "{report:?}");
    let (got, read) = cluster.get_with_report("obj").unwrap();
    assert_eq!(got, data);
    assert!(!read.degraded());
    let scrub = cluster.scrub().unwrap();
    assert!(scrub.clean(), "{scrub:?}");
    let keys = rig.shard_keys();
    assert_eq!(keys.len(), 3, "one shard key per live node: {keys:?}");
    for (_, key) in &keys {
        assert_eq!(parse_shard_key(key).expect("parseable").0, "obj");
    }
}

#[test]
fn snapshot_reads_never_mix_generations() {
    // Shard traffic (prefix `s:`) is slowed on every node so re-puts
    // take long enough for readers to overlap the write window;
    // manifest traffic stays fast.
    let opts = NodeOptions {
        workers: 2,
        response_delay: Some(Duration::from_millis(40)),
        delay_key_prefix: Some("s:".to_string()),
    };
    let rig = Rig::spawn_with("snapshot", 3, opts);
    let cluster = rig.cluster(2, 1);
    let v1 = sample(48_000, 11);
    let v2 = sample(48_000, 22);
    cluster.put("obj", &v1).unwrap();

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (done, addrs, v1, v2) = (&done, rig.addrs.clone(), &v1, &v2);
        s.spawn(move || {
            let reader = Cluster::new(addrs, RsConfig::new(2, 1))
                .unwrap()
                .with_timeout(TIMEOUT);
            let mut reads = 0u32;
            while !done.load(Ordering::Relaxed) {
                let got = reader.get("obj").unwrap();
                assert!(
                    &got == v1 || &got == v2,
                    "mixed-generation read: {} bytes matching neither version",
                    got.len()
                );
                reads += 1;
            }
            assert!(reads > 0, "reader never overlapped the writes");
        });
        // Slow alternating re-puts while the reader hammers the object.
        for _ in 0..3 {
            cluster.put("obj", v2).unwrap();
            cluster.put("obj", v1).unwrap();
        }
        cluster.put("obj", v2).unwrap();
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(cluster.get("obj").unwrap(), v2);
}
