//! End-to-end integrity tests: the Merkle subsystem as deployed.
//!
//! The star witness is a *CRC-colliding* tamper: a 5-byte XOR pattern
//! that is a multiple of the CRC-32 generator polynomial, so flipping it
//! into any stored payload leaves every containing CRC-32 — the node's
//! blob-frame checksum *and* the manifest's per-shard checksum — intact.
//! Only the hash layer can see it; these tests prove it does, that the
//! incremental scrub names the exact damaged leaf without moving payload
//! bytes, and that repair heals it with a root proof before publishing.

use ec_core::RsConfig;
use ec_store::{Cluster, NodeHandle, ShardHealth, HASH_LEAF_SIZE};
use ec_wire::crc32;
use std::path::{Path, PathBuf};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(5);

/// XORing this anywhere inside a buffer preserves the buffer's CRC-32:
/// the pattern is (a byte multiple of) the generator polynomial, and a
/// polynomial multiple stays a multiple under any bit shift.
const CRC_NEUTRAL_FLIP: [u8; 5] = [0x41, 0x06, 0x71, 0xDB, 0x01];

struct TestCluster {
    root: PathBuf,
    nodes: Vec<NodeHandle>,
    addrs: Vec<String>,
}

impl TestCluster {
    fn spawn(tag: &str, count: usize) -> TestCluster {
        let root = std::env::temp_dir()
            .join(format!("ec_store_integrity_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let nodes: Vec<NodeHandle> = (0..count)
            .map(|i| {
                NodeHandle::spawn(&root.join(format!("node{i}")), "127.0.0.1:0", 2)
                    .expect("spawn node")
            })
            .collect();
        let addrs = nodes.iter().map(|n| n.addr().to_string()).collect();
        TestCluster { root, nodes, addrs }
    }

    fn cluster(&self, n: usize, p: usize) -> Cluster {
        Cluster::new(self.addrs.clone(), RsConfig::new(n, p))
            .unwrap()
            .with_timeout(TIMEOUT)
    }

    /// Every blob file across all node dirs whose hex-encoded key starts
    /// with `key_prefix` ("s:" shard payloads, "t:" hash blobs).
    fn blob_files(&self, key_prefix: &str) -> Vec<PathBuf> {
        let hex: String =
            key_prefix.bytes().map(|b| format!("{b:02x}")).collect();
        let mut found = Vec::new();
        for i in 0..self.nodes.len() {
            let dir = self.root.join(format!("node{i}"));
            for entry in std::fs::read_dir(&dir).unwrap() {
                let path = entry.unwrap().path();
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                if name.starts_with(&hex) && name.ends_with(".blob") {
                    found.push(path);
                }
            }
        }
        found.sort();
        found
    }
}

impl Drop for TestCluster {
    fn drop(&mut self) {
        for node in self.nodes.drain(..) {
            node.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn sample_data(len: usize, seed: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + seed * 7 + i / 9) % 251) as u8).collect()
}

/// XOR the CRC-neutral pattern into one blob file at `payload_offset`,
/// asserting the frame's payload CRC-32 really is unchanged (the file
/// on disk stays self-consistent, so the node will happily serve it).
fn crc_colliding_tamper(path: &Path, payload_offset: usize) {
    let mut bytes = std::fs::read(path).unwrap();
    let payload_end = bytes.len() - 4;
    let before = crc32(&bytes[12..payload_end]);
    for (k, b) in CRC_NEUTRAL_FLIP.iter().enumerate() {
        bytes[12 + payload_offset + k] ^= b;
    }
    assert_eq!(
        crc32(&bytes[12..payload_end]),
        before,
        "the tamper pattern must be CRC-32 neutral"
    );
    std::fs::write(path, &bytes).unwrap();
}

/// A healthy hashed object is scrubbed by comparing 32-byte roots: no
/// payload bytes move, and the incremental pass is told apart from the
/// full-read pass by the report's byte accounting.
#[test]
fn healthy_scrub_moves_zero_payload_bytes() {
    let tc = TestCluster::spawn("healthy", 5);
    let cluster = tc.cluster(3, 2);
    // 400 kB over n=3 makes each shard span several 64 KiB hash leaves.
    let data = sample_data(400_000, 3);
    cluster.put("obj", &data).unwrap();

    let report = cluster.scrub().unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(
        report.payload_bytes_read, 0,
        "a healthy incremental scrub must fetch zero shard payload bytes"
    );
    // Two 32-byte roots (computed + stored) per shard, nothing more.
    assert_eq!(report.hash_bytes_read, 64 * 5);
    assert_eq!(report.objects[0].parity_consistent, Some(true));

    // The deep scrub still exists, agrees, and shows what the
    // incremental path saves: every shard read in full.
    let deep = cluster.scrub_deep().unwrap();
    assert!(deep.clean(), "{deep:?}");
    assert_eq!(deep.hash_bytes_read, 0);
    assert!(deep.payload_bytes_read >= data.len() as u64);
    assert!(
        deep.payload_bytes_read >= 5 * report.hash_bytes_read,
        "incremental scrub should cost at least 5x fewer bytes \
         ({} payload vs {} hash)",
        deep.payload_bytes_read,
        report.hash_bytes_read
    );
}

/// The headline case: damage engineered to slip every CRC-32 is caught
/// by the Merkle layer, localized to the exact 64 KiB leaf by the
/// O(log) descent (still zero payload bytes), never served to readers,
/// and healed by repair — after which the descent and the full re-read
/// agree the object is clean.
#[test]
fn crc_colliding_tamper_is_caught_localized_and_repaired() {
    let tc = TestCluster::spawn("tamper", 5);
    let cluster = tc.cluster(3, 2);
    let data = sample_data(400_000, 7);
    cluster.put("victim", &data).unwrap();
    assert!(cluster.scrub().unwrap().clean());

    // Flip the pattern inside hash leaf 1 of some shard, behind the
    // node's back. Both the blob frame CRC and the manifest shard CRC
    // still pass; shard files are the only blobs this large.
    let shard_file = tc
        .blob_files("s:")
        .into_iter()
        .find(|p| p.metadata().unwrap().len() > 100_000)
        .expect("a shard blob on disk");
    crc_colliding_tamper(&shard_file, HASH_LEAF_SIZE as usize + 10);

    // Readers never see the damage: the fetch path root-checks every
    // shard, so the read reconstructs around the tampered one.
    let (got, _) = cluster.get_with_report("victim").unwrap();
    assert_eq!(got, data, "tampered bytes must not reach a reader");

    // The incremental scrub attributes it — exact shard, exact leaf —
    // without fetching any payload.
    let report = cluster.scrub().unwrap();
    assert!(!report.clean());
    assert_eq!(report.payload_bytes_read, 0);
    let object = &report.objects[0];
    let damaged = object.damaged();
    assert_eq!(damaged.len(), 1, "{object:?}");
    assert!(matches!(object.shards[damaged[0]], ShardHealth::Corrupt(_)));
    assert_eq!(
        object.damaged_leaves,
        vec![(damaged[0], vec![1])],
        "descent must name hash leaf 1 and only leaf 1"
    );

    // The full re-read path blames the same shard (descent and full
    // fetch agree on attribution).
    let deep = cluster.scrub_deep().unwrap();
    assert_eq!(deep.objects[0].damaged(), damaged);

    // Repair rebuilds the shard (root-proven before publish) and the
    // next scrub — both flavors — is clean.
    let (_, repairs) = cluster.scrub_and_repair().unwrap();
    assert_eq!(repairs.len(), 1);
    let outcome = repairs[0].1.as_ref().unwrap();
    assert_eq!(outcome.repaired, damaged);
    assert!(cluster.scrub().unwrap().clean());
    assert!(cluster.scrub_deep().unwrap().clean());
    assert_eq!(cluster.get("victim").unwrap(), data);
}

/// Losing or rotting a `t:` hash blob is damage to the *cache*, not the
/// data: scrub reports it as `BadHashes` with parity still provably
/// consistent, and repair rewrites just the blob from verified payload.
#[test]
fn hash_blob_damage_is_bad_hashes_and_rewritten() {
    let tc = TestCluster::spawn("hashblob", 5);
    let cluster = tc.cluster(3, 2);
    let data = sample_data(300_000, 11);
    cluster.put("obj", &data).unwrap();

    // Delete one node's hash blob outright...
    let tree_files = tc.blob_files("t:");
    assert_eq!(tree_files.len(), 5);
    std::fs::remove_file(&tree_files[0]).unwrap();
    // ...and CRC-neutrally corrupt a leaf hash inside another (the
    // leaves start at byte 17 of the hash-blob payload), so the blob
    // still parses but disagrees with the manifest root.
    crc_colliding_tamper(&tree_files[1], 17 + 3);

    let report = cluster.scrub().unwrap();
    assert!(!report.clean());
    let object = &report.objects[0];
    let damaged = object.damaged();
    assert_eq!(damaged.len(), 2, "{object:?}");
    for &i in &damaged {
        assert!(
            matches!(object.shards[i], ShardHealth::BadHashes(_)),
            "{object:?}"
        );
    }
    assert_eq!(
        object.parity_consistent,
        Some(true),
        "payload roots all verified — parity is still proven"
    );
    assert_eq!(report.payload_bytes_read, 0);

    // Repair touches only the blobs: nothing is rebuilt, the two blobs
    // are re-derived from root-verified payload, and scrub goes clean.
    let (_, repairs) = cluster.scrub_and_repair().unwrap();
    assert_eq!(repairs.len(), 1);
    let outcome = repairs[0].1.as_ref().unwrap();
    assert!(outcome.repaired.is_empty(), "{outcome:?}");
    let mut rewritten = outcome.hash_blobs_rewritten.clone();
    rewritten.sort_unstable();
    assert_eq!(rewritten, damaged);
    assert!(cluster.scrub().unwrap().clean());
}
