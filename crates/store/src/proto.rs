//! The shard-node wire protocol: length-prefixed, CRC-framed request /
//! response messages over TCP (`docs/STORE.md` is the normative spec).
//!
//! Every message is one *frame*:
//!
//! ```text
//! ┌────────────┬──────────────────────────────────────┬───────────────┐
//! │ u32 LE len │ body (len bytes)                     │ u32 LE CRC-32 │
//! │            │  [0] version  [1] tag                │ of the body   │
//! │            │  [2..6] u32 request id (version ≥ 2) │               │
//! │            │  [..] payload                        │               │
//! └────────────┴──────────────────────────────────────┴───────────────┘
//! ```
//!
//! Version 2 adds a u32 **request id** between the tag and the payload:
//! a node echoes the id (and the version) of the request it is
//! answering, which lets a client keep several requests in flight on
//! one connection and match responses without trusting arrival order.
//! Version-1 frames (no id field) are still read — an old client
//! talking to a new node gets version-1 answers back.
//!
//! The reader is hostile-input hardened: the length prefix is bounded by
//! [`MAX_BODY`] *before* any allocation, the CRC covers the whole body,
//! and every parse failure is a typed error — a node never panics on
//! line noise and never allocates more than the cap for a single frame.

use crate::error::{RemoteErrorCode, StoreError};
use std::io::{Read, Write};

/// Protocol version this build speaks (and writes by default).
pub const PROTO_VERSION: u8 = 2;

/// Oldest protocol version still read. Version 1 framed the body as
/// `[version][tag][payload]` with no request id.
pub const MIN_PROTO_VERSION: u8 = 1;

/// Upper bound on a frame body (version + tag + id + payload). Shard
/// payloads dominate; 64 MiB bounds a single object shard, and a
/// hostile length prefix beyond it is rejected before any buffer is
/// sized from it.
pub const MAX_BODY: usize = 64 << 20;

/// Upper bound on a blob key. Keys are hex-encoded into node-local file
/// names, so this also keeps the encoded name well under the common
/// 255-byte file-name limit.
pub const MAX_KEY: usize = 100;

/// Request opcodes (frame tag byte, client → node).
pub mod op {
    /// Store a blob: `[u16 key_len][key][payload…]`.
    pub const PUT_SHARD: u8 = 0x01;
    /// Fetch a blob: `[u16 key_len][key]`.
    pub const GET_SHARD: u8 = 0x02;
    /// Delete a blob: `[u16 key_len][key]`.
    pub const DELETE: u8 = 0x03;
    /// List keys by prefix: `[u16 prefix_len][prefix]`.
    pub const LIST: u8 = 0x04;
    /// Blob metadata + integrity: `[u16 key_len][key]`.
    pub const STAT: u8 = 0x05;
    /// Node liveness and usage: empty payload.
    pub const HEALTH: u8 = 0x06;
    /// List keys by prefix with per-blob age and size:
    /// `[u16 prefix_len][prefix]` → OK payload
    /// `[u32 count] count × ([u16 key_len][key][u64 age_secs][u64 len])`.
    /// Age is seconds since the blob's last write *on the node's own
    /// clock*, which is what lets the scrub-time GC apply its grace
    /// window without any cross-node clock agreement. A pre-GC node
    /// answers `ERR BadRequest` (unknown opcode) and the GC skips it.
    pub const LIST_AGED: u8 = 0x07;
    /// Read a slice of one level of a shard's Merkle tree:
    /// `[u16 key_len][key][u32 leaf_size][u8 source][u8 level]
    /// [u32 start][u32 count]` → OK payload `[u32 count][count × 32]`.
    /// `source` 0 re-hashes the shard blob under `key` at `leaf_size`
    /// (the node's *computed* tree); 1 parses the stored `t:` hash blob
    /// named by `key` and rebuilds the tree from its leaves. Level 0 is
    /// the leaves, the top level is the root — widths are a pure
    /// function of the leaf count, so both ends derive the same
    /// coordinates with no tree bytes on the wire. This is what lets
    /// scrub verify a healthy shard in 32 bytes and descend into a
    /// damaged one fetching O(log leaves) hashes instead of the payload.
    /// A pre-hash node answers `ERR BadRequest` (unknown opcode) and
    /// the scrub falls back to a full read.
    pub const HASH_SUBTREE: u8 = 0x08;
}

/// Response tags (node → client).
pub mod status {
    /// Success; payload is operation-specific.
    pub const OK: u8 = 0x80;
    /// Failure; payload is `[u8 code][u16 msg_len][msg]`.
    pub const ERR: u8 = 0x81;
}

/// Why reading a frame failed. `Eof` (clean close before the first
/// length byte) is the normal end of a connection; everything else is a
/// protocol violation or a transport failure.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// The stream ended mid-frame.
    Truncated,
    /// The length prefix exceeds [`MAX_BODY`], or is too short to hold
    /// the header its version byte demands.
    BadLength(u32),
    /// The body checksum does not match.
    BadCrc,
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Transport-level I/O failure.
    Io(std::io::Error),
}

impl FrameError {
    /// Human-readable detail for error responses and logs.
    pub fn detail(&self) -> String {
        match self {
            FrameError::Eof => "connection closed".into(),
            FrameError::Truncated => "stream ended mid-frame".into(),
            FrameError::BadLength(len) => {
                format!("frame length {len} outside 2..={MAX_BODY} (or too short for its version's header)")
            }
            FrameError::BadCrc => "frame checksum mismatch".into(),
            FrameError::BadVersion(v) => {
                format!(
                    "unsupported protocol version {v} (this build speaks \
                     {MIN_PROTO_VERSION}..={PROTO_VERSION})"
                )
            }
            FrameError::Io(e) => format!("i/o error: {e}"),
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => FrameError::Truncated,
            _ => FrameError::Io(e),
        }
    }
}

impl From<FrameError> for StoreError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => {
                if io.kind() == std::io::ErrorKind::WouldBlock
                    || io.kind() == std::io::ErrorKind::TimedOut
                {
                    StoreError::Timeout
                } else {
                    StoreError::Io(io)
                }
            }
            other => StoreError::Protocol(other.detail()),
        }
    }
}

/// A parsed frame: the tag byte, the request id (`None` for a version-1
/// frame) and the payload.
#[derive(Debug, PartialEq, Eq)]
pub struct Frame {
    pub tag: u8,
    /// Echo token for pipelining. `Some` on version-2 frames; a node
    /// answering a request copies the request's id (and version) into
    /// the response.
    pub request_id: Option<u32>,
    pub payload: Vec<u8>,
}

/// Write one frame (`tag` + concatenated `parts`) to the stream.
///
/// `request_id: Some(id)` writes a version-2 frame carrying the id;
/// `None` writes a version-1 frame (used to answer version-1 peers and
/// for framing-error responses, where no request id was recovered).
///
/// Taking the payload in parts lets callers frame a shard without first
/// copying it into one contiguous buffer.
pub fn write_frame(
    w: &mut impl Write,
    tag: u8,
    request_id: Option<u32>,
    parts: &[&[u8]],
) -> std::io::Result<()> {
    let payload_len: usize = parts.iter().map(|p| p.len()).sum();
    let head: &[u8] = match request_id {
        Some(_) => &[PROTO_VERSION, tag],
        None => &[MIN_PROTO_VERSION, tag],
    };
    let id_bytes = request_id.map(u32::to_le_bytes);
    let id_slice: &[u8] = id_bytes.as_ref().map(|b| &b[..]).unwrap_or(&[]);
    let body_len = payload_len + head.len() + id_slice.len();
    assert!(body_len <= MAX_BODY, "frame payload exceeds MAX_BODY");
    let mut crc = ec_wire::Crc32::new();
    crc.update(head);
    crc.update(id_slice);
    for part in parts {
        crc.update(part);
    }
    w.write_all(&(body_len as u32).to_le_bytes())?;
    w.write_all(head)?;
    w.write_all(id_slice)?;
    for part in parts {
        w.write_all(part)?;
    }
    w.write_all(&crc.finish().to_le_bytes())?;
    w.flush()
}

/// Read and validate one frame (either version).
///
/// The length prefix is checked against [`MAX_BODY`] before the body
/// buffer is allocated, so a hostile peer cannot make the node reserve
/// more than the cap. An unknown version byte is still CRC-checked
/// before being rejected — a corrupted frame reports `BadCrc`, not a
/// phantom version error.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut len_bytes = [0u8; 4];
    read_exact_or_eof(r, &mut len_bytes)?;
    let body_len = u32::from_le_bytes(len_bytes);
    if body_len < 2 || body_len as usize > MAX_BODY {
        return Err(FrameError::BadLength(body_len));
    }
    // Version + tag (and the v2 request id) are read separately so the
    // payload lands in its own exact-size buffer — no post-hoc drain()
    // memmove of a potentially 64 MiB shard to strip the header bytes.
    let mut head = [0u8; 2];
    r.read_exact(&mut head)?;
    let (request_id, id_bytes): (Option<u32>, [u8; 4]) = if head[0] == 2 {
        if body_len < 6 {
            return Err(FrameError::BadLength(body_len));
        }
        let mut id = [0u8; 4];
        r.read_exact(&mut id)?;
        (Some(u32::from_le_bytes(id)), id)
    } else {
        (None, [0u8; 4])
    };
    let header_len = if request_id.is_some() { 6 } else { 2 };
    let mut payload = vec![0u8; body_len as usize - header_len];
    r.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let mut crc = ec_wire::Crc32::new();
    crc.update(&head);
    if request_id.is_some() {
        crc.update(&id_bytes);
    }
    crc.update(&payload);
    if u32::from_le_bytes(crc_bytes) != crc.finish() {
        return Err(FrameError::BadCrc);
    }
    if head[0] < MIN_PROTO_VERSION || head[0] > PROTO_VERSION {
        return Err(FrameError::BadVersion(head[0]));
    }
    Ok(Frame { tag: head[1], request_id, payload })
}

/// Read exactly `buf.len()` bytes, mapping a clean close *before the
/// first byte* to [`FrameError::Eof`] (the normal end of a connection)
/// and a close mid-buffer to [`FrameError::Truncated`].
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    FrameError::Eof
                } else {
                    FrameError::Truncated
                })
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Payload helpers: the `[u16 len][bytes]` strings used by every opcode.
// ---------------------------------------------------------------------

/// Append a length-prefixed string to a payload under construction.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over a received payload with typed, bounds-checked reads.
/// Every failure is a `BadRequest`-grade parse error, never a panic.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn rest(&mut self) -> &'a [u8] {
        let r = &self.buf[self.pos..];
        self.pos = self.buf.len();
        r
    }

    pub fn u8(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or("payload truncated")?;
        self.pos += 1;
        Ok(b)
    }

    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], String> {
        let end = self.pos.checked_add(N).ok_or("payload truncated")?;
        let slice = self.buf.get(self.pos..end).ok_or("payload truncated")?;
        self.pos = end;
        Ok(slice.try_into().expect("length checked"))
    }

    /// A `[u16 len][bytes]` string, validated as UTF-8 and bounded by
    /// `max` bytes.
    pub fn str_bounded(&mut self, max: usize, what: &str) -> Result<&'a str, String> {
        let len = self.u16()? as usize;
        if len > max {
            return Err(format!("{what} length {len} exceeds the cap of {max}"));
        }
        let end = self.pos.checked_add(len).ok_or("payload truncated")?;
        let bytes = self.buf.get(self.pos..end).ok_or("payload truncated")?;
        self.pos = end;
        std::str::from_utf8(bytes).map_err(|_| format!("{what} is not valid UTF-8"))
    }

    /// A blob key (bounded by [`MAX_KEY`]).
    pub fn key(&mut self) -> Result<&'a str, String> {
        let key = self.str_bounded(MAX_KEY, "key")?;
        if key.is_empty() {
            return Err("key must not be empty".into());
        }
        Ok(key)
    }

    /// Assert the payload is fully consumed (trailing garbage is a
    /// malformed request, not something to silently ignore).
    pub fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after the payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// Build the payload of an `ERR` response.
pub fn err_payload(code: RemoteErrorCode, message: &str) -> Vec<u8> {
    // Truncate pathological messages — on a char boundary, since the
    // receiver validates the message as UTF-8 and a split multi-byte
    // character would turn a clean typed error into "malformed frame".
    let mut end = message.len().min(512);
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    let msg = &message.as_bytes()[..end];
    let mut out = Vec::with_capacity(3 + msg.len());
    out.push(code as u8);
    out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

/// Parse an `ERR` payload into a [`StoreError::Remote`].
pub fn parse_err(payload: &[u8]) -> StoreError {
    let mut r = PayloadReader::new(payload);
    let parsed = (|| -> Result<StoreError, String> {
        let code = r.u8()?;
        let msg = r.str_bounded(u16::MAX as usize, "error message")?;
        let code = RemoteErrorCode::from_wire(code)
            .ok_or_else(|| format!("unknown error code {code}"))?;
        Ok(StoreError::Remote { code, message: msg.to_string() })
    })();
    parsed.unwrap_or_else(|e| StoreError::Protocol(format!("malformed ERR frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_wire::crc32;
    use std::io::Cursor;

    #[test]
    fn v2_frame_roundtrips_with_id() {
        let mut buf = Vec::new();
        write_frame(&mut buf, op::PUT_SHARD, Some(0xDEAD_BEEF), &[b"abc", b"", b"defg"])
            .unwrap();
        let frame = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(frame.tag, op::PUT_SHARD);
        assert_eq!(frame.request_id, Some(0xDEAD_BEEF));
        assert_eq!(frame.payload, b"abcdefg");
    }

    #[test]
    fn v1_frame_roundtrips_without_id() {
        let mut buf = Vec::new();
        write_frame(&mut buf, op::GET_SHARD, None, &[b"key"]).unwrap();
        // The legacy framing: version byte 1, no id field.
        assert_eq!(buf[4], 1);
        let frame = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(frame.tag, op::GET_SHARD);
        assert_eq!(frame.request_id, None);
        assert_eq!(frame.payload, b"key");
    }

    #[test]
    fn clean_eof_between_frames() {
        assert!(matches!(
            read_frame(&mut Cursor::new(Vec::new())),
            Err(FrameError::Eof)
        ));
    }

    #[test]
    fn truncation_everywhere_is_typed() {
        for id in [None, Some(7u32)] {
            let mut buf = Vec::new();
            write_frame(&mut buf, op::HEALTH, id, &[b"xy"]).unwrap();
            // Cutting the stream at every byte boundary: the first 0..4
            // bytes are a truncated length prefix (or clean EOF at 0);
            // everything after is a truncated body/CRC.
            for cut in 1..buf.len() {
                let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
                assert!(
                    matches!(err, FrameError::Truncated),
                    "id {id:?}, cut at {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn hostile_length_rejected_before_allocation() {
        // A 4 GiB length prefix followed by nothing: must fail on the
        // *length check*, not by attempting the allocation (the cursor
        // has no further bytes, so an attempted read would report
        // truncation instead).
        let mut buf = Vec::from(u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(FrameError::BadLength(u32::MAX))
        ));
        // Lengths too short for version + tag are equally invalid.
        for short in [0u32, 1] {
            let buf = short.to_le_bytes();
            assert!(matches!(
                read_frame(&mut Cursor::new(&buf)),
                Err(FrameError::BadLength(_))
            ));
        }
    }

    #[test]
    fn v2_frame_too_short_for_its_id_is_bad_length() {
        // A version-2 frame must carry at least version + tag + u32 id.
        // body_len in 2..6 with version byte 2 is structurally invalid.
        for body in [vec![2u8, op::HEALTH], vec![2u8, op::HEALTH, 0, 0]] {
            let mut buf = Vec::from((body.len() as u32).to_le_bytes());
            buf.extend_from_slice(&body);
            buf.extend_from_slice(&crc32(&body).to_le_bytes());
            assert!(matches!(
                read_frame(&mut Cursor::new(&buf)),
                Err(FrameError::BadLength(_))
            ));
        }
    }

    #[test]
    fn corrupt_body_detected() {
        for id in [None, Some(42u32)] {
            let mut buf = Vec::new();
            write_frame(&mut buf, op::GET_SHARD, id, &[b"key"]).unwrap();
            for flip in 4..buf.len() {
                let mut bad = buf.clone();
                bad[flip] ^= 0x20;
                let err = read_frame(&mut Cursor::new(&bad)).unwrap_err();
                // Flipping the version byte of a v1 frame to 0x21 (or a
                // v2 byte to 0x22) re-frames the body, but either way
                // the CRC no longer matches what is read.
                assert!(
                    matches!(err, FrameError::BadCrc | FrameError::Truncated),
                    "id {id:?}, flip at {flip}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn wrong_version_detected_after_crc() {
        // A well-formed frame of a future protocol version: CRC valid,
        // version byte unsupported.
        let body = [9u8, op::HEALTH];
        let mut buf = Vec::from((body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(FrameError::BadVersion(9))
        ));
        // The same future-version frame with a corrupt byte reports the
        // CRC failure, not a phantom version error.
        let mut bad = buf.clone();
        bad[5] ^= 0x01;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad)),
            Err(FrameError::BadCrc)
        ));
    }

    #[test]
    fn payload_reader_bounds_everything() {
        let mut payload = Vec::new();
        put_str(&mut payload, "hello");
        payload.extend_from_slice(&7u32.to_le_bytes());
        let mut r = PayloadReader::new(&payload);
        assert_eq!(r.key().unwrap(), "hello");
        assert_eq!(r.u32().unwrap(), 7);
        r.finish().unwrap();

        // Truncated string
        let mut r = PayloadReader::new(&[5, 0, b'a']);
        assert!(r.str_bounded(100, "s").is_err());
        // Over-cap key
        let mut long = Vec::new();
        put_str(&mut long, &"k".repeat(MAX_KEY + 1));
        assert!(PayloadReader::new(&long).key().is_err());
        // Empty key
        let mut empty = Vec::new();
        put_str(&mut empty, "");
        assert!(PayloadReader::new(&empty).key().is_err());
        // Trailing garbage
        let mut r = PayloadReader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.finish().is_err());
        // Invalid UTF-8
        let mut r = PayloadReader::new(&[2, 0, 0xFF, 0xFE]);
        assert!(r.str_bounded(100, "s").unwrap_err().contains("UTF-8"));
    }

    #[test]
    fn err_frames_roundtrip() {
        let payload = err_payload(RemoteErrorCode::NotFound, "no such key");
        match parse_err(&payload) {
            StoreError::Remote { code, message } => {
                assert_eq!(code, RemoteErrorCode::NotFound);
                assert_eq!(message, "no such key");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown code or malformed payload degrade to Protocol, not a
        // panic.
        assert!(matches!(parse_err(&[99, 0, 0]), StoreError::Protocol(_)));
        assert!(matches!(parse_err(&[]), StoreError::Protocol(_)));
    }
}
