//! `xorslp-store` — the networked erasure-coded object store from the
//! command line.
//!
//! ```text
//! xorslp-store serve  <dir> <addr> [--workers N]
//! xorslp-store put    <cluster> <object> <file>   [-n N] [-p P]
//! xorslp-store get    <cluster> <object> <file>   [-n N] [-p P]
//! xorslp-store ...
//! ```
//!
//! `<cluster>` is a comma-separated list of node addresses; the same
//! list (same order) must be given to every client so rendezvous
//! placement agrees.

use ec_core::CodecSpec;
use ec_store::{Cluster, NodeHandle, NodeOptions, OverwriteMode, ShardOutcome, StoreError};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
xorslp-store — networked erasure-coded object store over XOR SLPs

USAGE:
    xorslp-store serve     <dir> <addr> [--workers N] [--delay-ms N [--delay-prefix P]]
    xorslp-store put       <cluster> <object> <file> [GEOMETRY]
    xorslp-store get       <cluster> <object> <file> [--verbose] [GEOMETRY]
    xorslp-store overwrite <cluster> <object> <file> [GEOMETRY]
    xorslp-store delete    <cluster> <object>        [GEOMETRY]
    xorslp-store list      <cluster> [--verbose]     [GEOMETRY]
    xorslp-store health    <cluster>                 [GEOMETRY]
    xorslp-store scrub     <cluster> [--repair] [--deep] [--gc-grace SECS] [GEOMETRY]
    xorslp-store repair    <cluster> --dead ADDR [--replacement ADDR]
                           [--dead ADDR [--replacement ADDR]]... [GEOMETRY]
    xorslp-store tune      [--force]

ARGS:
    <cluster>  comma-separated node addresses, e.g. 127.0.0.1:7501,127.0.0.1:7502
    GEOMETRY   [-n N] [-p P] [--codec NAME] — shard counts (defaults:
               -n 3 -p 2) and codec family (rs, evenodd, rdp, lrc,
               lrc:<r>; default rs); must match across all clients and
               the codec each object was stored under

VERBS:
    serve      run a shard node: store blobs under <dir>, listen on <addr>
               (--delay-ms: hold every response N ms — a latency shim for
               benchmarks; --delay-prefix: only for keys starting with P)
    put        erasure-code <file> across the cluster as <object>
    get        fetch <object> into <file>: all N+P shard fetches are
               issued at once and the read completes on the first N that
               suffice, abandoning stragglers; degrades over up to P dead
               nodes (--verbose: per-shard outcome and timing, and whether
               the read was Merkle-verified or CRC-only)
    overwrite  replace <object> with <file>, shipping deltas when possible
    delete     remove <object> from all nodes
    list       all objects known to the cluster (--verbose: the object's
               Merkle root and per-shard roots, or `crc-only` for objects
               stored before hashing)
    health     per-node liveness and usage
    scrub      verify every object end-to-end; exit 1 on damage.
               Hash-carrying objects verify incrementally: 32-byte Merkle
               roots are compared and mismatches descended to the exact
               damaged leaves, moving zero payload bytes when healthy
               (--deep: force the full-read data↔parity re-encode;
               --repair: rebuild damaged shards in place first). Each
               scrub ends with the generation GC: shard keys no live
               manifest references — superseded by a later write, or
               orphaned by a crashed one — are collected once older
               than the grace window (--gc-grace SECS, default 300;
               0 collects immediately — safe only with no writer
               mid-put)
    repair     rebuild dead nodes' shards onto their --replacement (default:
               the same address, e.g. after restarting it empty); repeat
               --dead/--replacement pairs to repair several nodes in one
               batch pass that reads each survivor once
    tune       micro-benchmark kernel x blocksize x stripes on this CPU,
               cache the winner, and print the chosen configuration
               (--force re-measures even with a valid cache)
";

enum CliError {
    Usage(String),
    Store(StoreError),
}

impl From<StoreError> for CliError {
    fn from(e: StoreError) -> Self {
        CliError::Store(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Store(StoreError::Io(e))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Store(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Parsed common options: positional args, geometry, named flags.
struct Opts {
    positional: Vec<String>,
    n: usize,
    p: usize,
    codec: String,
    workers: usize,
    repair: bool,
    force: bool,
    verbose: bool,
    deep: bool,
    gc_grace: Option<u64>,
    delay_ms: Option<u64>,
    delay_prefix: Option<String>,
    dead: Vec<String>,
    replacement: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, CliError> {
    let mut opts = Opts {
        positional: Vec::new(),
        n: 3,
        p: 2,
        codec: "rs".to_string(),
        workers: 0,
        repair: false,
        force: false,
        verbose: false,
        deep: false,
        gc_grace: None,
        delay_ms: None,
        delay_prefix: None,
        dead: Vec::new(),
        replacement: Vec::new(),
    };
    let mut i = 0;
    let num = |args: &[String], i: &mut usize, flag: &str| -> Result<usize, CliError> {
        *i += 1;
        args.get(*i)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a numeric argument")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "-n" => opts.n = num(args, &mut i, "-n")?,
            "-p" => opts.p = num(args, &mut i, "-p")?,
            "--workers" => opts.workers = num(args, &mut i, "--workers")?,
            "--codec" => {
                i += 1;
                opts.codec = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--codec needs a name".into()))?
                    .clone();
            }
            "--repair" => opts.repair = true,
            "--force" => opts.force = true,
            "--verbose" => opts.verbose = true,
            "--deep" => opts.deep = true,
            "--gc-grace" => {
                opts.gc_grace = Some(num(args, &mut i, "--gc-grace")? as u64)
            }
            "--delay-ms" => {
                opts.delay_ms = Some(num(args, &mut i, "--delay-ms")? as u64)
            }
            "--delay-prefix" => {
                i += 1;
                opts.delay_prefix = Some(
                    args.get(i)
                        .ok_or_else(|| {
                            CliError::Usage("--delay-prefix needs a key prefix".into())
                        })?
                        .clone(),
                );
            }
            "--dead" | "--replacement" => {
                let flag = args[i].clone();
                i += 1;
                let value = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage(format!("{flag} needs an address")))?
                    .clone();
                if flag == "--dead" {
                    opts.dead.push(value);
                } else {
                    opts.replacement.push(value);
                }
            }
            other => opts.positional.push(other.to_string()),
        }
        i += 1;
    }
    Ok(opts)
}

fn cluster_from(opts: &Opts, which: usize) -> Result<Cluster, CliError> {
    let spec = opts
        .positional
        .get(which)
        .ok_or_else(|| CliError::Usage("missing <cluster> argument".into()))?;
    let nodes: Vec<String> = spec.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
    let codec = CodecSpec::parse(&opts.codec, opts.n, opts.p)
        .map_err(|e| CliError::Usage(format!("--codec: {e}")))?;
    let mut cluster =
        Cluster::with_spec(nodes, &codec)?.with_timeout(Duration::from_secs(10));
    if let Some(secs) = opts.gc_grace {
        cluster = cluster.with_gc_grace(Duration::from_secs(secs));
    }
    Ok(cluster)
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(verb) = args.first() else {
        print!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    let opts = parse_opts(&args[1..])?;
    match verb.as_str() {
        "serve" => serve(&opts),
        "put" => put(&opts),
        "get" => get(&opts),
        "overwrite" => overwrite(&opts),
        "delete" => delete(&opts),
        "list" => list(&opts),
        "health" => health(&opts),
        "scrub" => scrub(&opts),
        "repair" => repair(&opts),
        "tune" => tune(&opts),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => {
            eprintln!("unknown verb `{other}`\n\n{USAGE}");
            Ok(ExitCode::from(2))
        }
    }
}

fn tune(opts: &Opts) -> Result<ExitCode, CliError> {
    if !opts.positional.is_empty() {
        return Err(CliError::Usage("tune takes no positional arguments".into()));
    }
    print!("{}", ec_tune::cli_tune(opts.force));
    Ok(ExitCode::SUCCESS)
}

fn serve(opts: &Opts) -> Result<ExitCode, CliError> {
    let [dir, addr] = &opts.positional[..] else {
        return Err(CliError::Usage("serve needs <dir> and <addr>".into()));
    };
    let node = NodeHandle::spawn_with(
        Path::new(dir),
        addr,
        NodeOptions {
            workers: opts.workers,
            response_delay: opts.delay_ms.map(Duration::from_millis),
            delay_key_prefix: opts.delay_prefix.clone(),
        },
    )?;
    match opts.delay_ms {
        Some(ms) => println!(
            "serving {dir} on {} (responses delayed {ms} ms{})",
            node.addr(),
            opts.delay_prefix
                .as_deref()
                .map(|p| format!(" for keys starting `{p}`"))
                .unwrap_or_default()
        ),
        None => println!("serving {dir} on {}", node.addr()),
    }
    // Serve until killed; the acceptor and workers do all the work.
    loop {
        std::thread::park();
    }
}

fn object_file(opts: &Opts, verb: &str) -> Result<(String, String), CliError> {
    match &opts.positional[..] {
        [_cluster, object, file] => Ok((object.clone(), file.clone())),
        _ => Err(CliError::Usage(format!(
            "{verb} needs <cluster>, <object> and <file>"
        ))),
    }
}

fn put(opts: &Opts) -> Result<ExitCode, CliError> {
    let cluster = cluster_from(opts, 0)?;
    let (object, file) = object_file(opts, "put")?;
    let data = std::fs::read(&file)?;
    let report = cluster.put(&object, &data)?;
    println!(
        "stored `{object}` ({} bytes) under {} as {} shards of {} bytes \
         (manifest on {} nodes)",
        data.len(),
        cluster.codec().spec().name(),
        report.shards_written,
        report.shard_len,
        report.manifest_replicas
    );
    Ok(ExitCode::SUCCESS)
}

fn get(opts: &Opts) -> Result<ExitCode, CliError> {
    let cluster = cluster_from(opts, 0)?;
    let (object, file) = object_file(opts, "get")?;
    let (data, report) = cluster.get_with_report(&object)?;
    // Temp-then-rename: a mid-write failure (disk full, kill) must not
    // clobber a pre-existing output file.
    let tmp = format!("{file}.{}.tmp", std::process::id());
    std::fs::write(&tmp, &data)?;
    if let Err(e) = std::fs::rename(&tmp, &file) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if report.degraded() {
        println!(
            "fetched `{object}` ({} bytes) DEGRADED — reconstructed around \
             missing shards {:?}",
            data.len(),
            report.missing
        );
    } else {
        println!("fetched `{object}` ({} bytes), all shards healthy", data.len());
    }
    if opts.verbose {
        println!(
            "  integrity: {}",
            if report.hash_verified {
                "every served shard verified against its manifest Merkle root"
            } else {
                "CRC-only (object stored before per-shard hashing)"
            }
        );
        for fetch in &report.shards {
            let elapsed = fetch
                .elapsed
                .map(|d| format!("{:.1} ms", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into());
            let outcome = match &fetch.outcome {
                ShardOutcome::Served => "served".to_string(),
                ShardOutcome::Abandoned => "abandoned (straggler)".to_string(),
                ShardOutcome::Dead(reason) => format!("dead: {reason}"),
                ShardOutcome::Corrupt(reason) => format!("corrupt: {reason}"),
            };
            println!(
                "  shard {:>2} @ {}  {elapsed:>10}  {outcome}",
                fetch.index, fetch.node
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn overwrite(opts: &Opts) -> Result<ExitCode, CliError> {
    let cluster = cluster_from(opts, 0)?;
    let (object, file) = object_file(opts, "overwrite")?;
    let data = std::fs::read(&file)?;
    let report = cluster.overwrite(&object, &data)?;
    match report.mode {
        OverwriteMode::Delta => println!(
            "delta overwrite of `{object}`: {} changed data shards, {} shards \
             shipped, {} XORs vs {} for a full re-encode ({:.1}x cheaper)",
            report.changed.len(),
            report.shards_written,
            report.xor_count,
            report.full_xor_count,
            report.full_xor_count as f64 / report.xor_count.max(1) as f64,
        ),
        OverwriteMode::Full => println!(
            "full overwrite of `{object}` ({} shards shipped)",
            report.shards_written
        ),
        OverwriteMode::NoChange => println!("`{object}` unchanged; nothing written"),
    }
    Ok(ExitCode::SUCCESS)
}

fn delete(opts: &Opts) -> Result<ExitCode, CliError> {
    let cluster = cluster_from(opts, 0)?;
    let object = opts
        .positional
        .get(1)
        .ok_or_else(|| CliError::Usage("delete needs <cluster> and <object>".into()))?;
    let removed = cluster.delete(object)?;
    println!("deleted `{object}` ({removed} shard blobs removed)");
    Ok(ExitCode::SUCCESS)
}

fn list(opts: &Opts) -> Result<ExitCode, CliError> {
    let cluster = cluster_from(opts, 0)?;
    let objects = cluster.objects()?;
    for object in &objects {
        match cluster.manifest(object) {
            Ok(m) => {
                let codec = m
                    .codec_spec()
                    .map(|s| s.name())
                    .unwrap_or_else(|e| format!("<invalid codec: {e}>"));
                println!(
                    "{object}  {codec}({}, {})  {} bytes",
                    m.data_shards, m.parity_shards, m.object_len
                );
                if opts.verbose {
                    if m.has_hashes() {
                        println!(
                            "  object root {} ({} B leaves)",
                            hex(&m.object_root),
                            m.hash_leaf_size
                        );
                        for (i, root) in m.shard_root.iter().enumerate() {
                            println!("  shard {i:>2} root {}", hex(root));
                        }
                    } else {
                        println!("  crc-only (stored before per-shard hashing)");
                    }
                }
            }
            Err(e) => println!("{object}  <manifest unreadable: {e}>"),
        }
    }
    eprintln!("{} objects", objects.len());
    Ok(ExitCode::SUCCESS)
}

fn health(opts: &Opts) -> Result<ExitCode, CliError> {
    let cluster = cluster_from(opts, 0)?;
    let mut dead = 0;
    for (addr, health) in cluster.health().nodes {
        match health {
            Some(h) => println!("{addr}: alive, {} blobs, {} bytes", h.blobs, h.bytes),
            None => {
                println!("{addr}: UNREACHABLE");
                dead += 1;
            }
        }
    }
    Ok(if dead == 0 { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn scrub(opts: &Opts) -> Result<ExitCode, CliError> {
    let cluster = cluster_from(opts, 0)?;
    let run = |cluster: &Cluster| if opts.deep { cluster.scrub_deep() } else { cluster.scrub() };
    let report = if opts.repair {
        let (first, repairs) = cluster.scrub_and_repair()?;
        for (object, outcome) in &repairs {
            match outcome {
                Ok(report) => {
                    if report.hash_blobs_rewritten.is_empty() {
                        println!("repaired `{object}`: shards {:?}", report.repaired);
                    } else {
                        println!(
                            "repaired `{object}`: shards {:?}, hash blobs rewritten {:?}",
                            report.repaired, report.hash_blobs_rewritten
                        );
                    }
                }
                Err(reason) => println!("`{object}` NOT repaired: {reason}"),
            }
        }
        // Re-scrub so the exit code reflects the post-repair state;
        // fold in the GC work the first pass already did so the
        // printed tally covers the whole invocation.
        let mut report = run(&cluster)?;
        report.generations_collected += first.generations_collected;
        report.bytes_reclaimed += first.bytes_reclaimed;
        report
    } else {
        run(&cluster)?
    };
    for addr in &report.dead_nodes {
        println!("node {addr}: UNREACHABLE");
    }
    for object in &report.objects {
        if object.clean() {
            continue;
        }
        println!(
            "object `{}`: damaged shards {:?}, parity consistent: {:?}",
            object.object,
            object.damaged(),
            object.parity_consistent
        );
        for (shard, leaves) in &object.damaged_leaves {
            println!("  shard {shard}: damaged leaves {leaves:?}");
        }
    }
    for (object, err) in &report.failed_objects {
        println!("object `{object}`: scrub failed: {err}");
    }
    println!(
        "read: {} hash bytes, {} payload bytes",
        report.hash_bytes_read, report.payload_bytes_read
    );
    println!(
        "gc: {} generations collected, {} bytes reclaimed",
        report.generations_collected, report.bytes_reclaimed
    );
    if report.clean() {
        println!("scrub clean: {} objects verified", report.objects.len());
        Ok(ExitCode::SUCCESS)
    } else {
        println!("damage found");
        Ok(ExitCode::from(1))
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn repair(opts: &Opts) -> Result<ExitCode, CliError> {
    let mut cluster = cluster_from(opts, 0)?;
    if opts.dead.is_empty() {
        return Err(CliError::Usage("repair needs --dead ADDR".into()));
    }
    if !opts.replacement.is_empty() && opts.replacement.len() != opts.dead.len() {
        return Err(CliError::Usage(
            "give one --replacement per --dead (or none, to repair each \
             dead node in place)"
                .into(),
        ));
    }
    // One batch pass for all pairs: each object's survivors are read
    // once and every lost shard is placed, however many nodes died.
    let pairs: Vec<(String, String)> = opts
        .dead
        .iter()
        .enumerate()
        .map(|(i, dead)| {
            let replacement =
                opts.replacement.get(i).unwrap_or(dead).clone();
            (dead.clone(), replacement)
        })
        .collect();
    let report = cluster.repair_nodes(&pairs)?;
    let targets: Vec<&str> = pairs.iter().map(|(_, r)| r.as_str()).collect();
    println!(
        "repaired {} shards ({} bytes, {} survivor bytes read) across {} \
         objects onto {}",
        report.shards_rebuilt,
        report.bytes_rebuilt,
        report.bytes_read,
        report.objects_scanned,
        targets.join(", ")
    );
    for (object, err) in &report.failed {
        println!("object `{object}`: NOT repaired: {err}");
    }
    Ok(if report.failed.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}
