//! The background scrub scheduler: periodic end-to-end verification
//! with automatic repair enqueueing.
//!
//! A [`ScrubScheduler`] owns one thread that wakes every `interval`,
//! runs [`Cluster::scrub`], and immediately repairs every damaged
//! object it found ([`Cluster::repair_object`]). Cycle outcomes are
//! recorded and queryable; [`ScrubScheduler::stop`] (or drop) shuts the
//! thread down promptly via a condvar, not a sleep.

use crate::cluster::{Cluster, ClusterScrubReport, RepairOutcome};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;
use xor_runtime::lock_unpoisoned as lock;

/// Outcome of one scrub-and-repair cycle.
#[derive(Debug)]
pub enum ScrubCycle {
    /// The scrub ran; damaged objects were repaired (outcomes listed,
    /// including failed attempts with their reason).
    Ran {
        scrub: ClusterScrubReport,
        repairs: Vec<RepairOutcome>,
    },
    /// The scrub itself failed (e.g. no node reachable).
    Failed(String),
}

/// Retained cycle outcomes: a fire-and-forget embedder that never
/// drains the log must not grow memory without bound.
const MAX_CYCLES: usize = 64;

struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
    cycles: Mutex<VecDeque<ScrubCycle>>,
}

/// Handle of the background scrubber; dropping it stops the thread.
pub struct ScrubScheduler {
    shared: Arc<Shared>,
    thread: Option<thread::JoinHandle<()>>,
}

impl ScrubScheduler {
    /// Start scrubbing `cluster` every `interval`. The first cycle runs
    /// one `interval` after the start (a freshly started cluster is
    /// trivially clean).
    pub fn start(cluster: Arc<Cluster>, interval: Duration) -> ScrubScheduler {
        let shared = Arc::new(Shared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            cycles: Mutex::new(VecDeque::new()),
        });
        let thread = {
            let shared = shared.clone();
            thread::Builder::new()
                .name("store-scrub".into())
                .spawn(move || scrub_loop(&cluster, &shared, interval))
                .expect("spawning scrub thread")
        };
        ScrubScheduler { shared, thread: Some(thread) }
    }

    /// Completed cycles so far (drains the log; only the most recent
    /// [`MAX_CYCLES`] are retained between drains).
    pub fn take_cycles(&self) -> Vec<ScrubCycle> {
        lock(&self.shared.cycles).drain(..).collect()
    }

    /// Stop the scrubber and join its thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        *lock(&self.shared.stop) = true;
        self.shared.wake.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ScrubScheduler {
    fn drop(&mut self) {
        self.halt();
    }
}

fn scrub_loop(cluster: &Cluster, shared: &Shared, interval: Duration) {
    loop {
        // Interruptible sleep: `stop()` flips the flag and notifies.
        {
            let mut stop = lock(&shared.stop);
            while !*stop {
                let (guard, timeout) = shared
                    .wake
                    .wait_timeout(stop, interval)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                stop = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            if *stop {
                return;
            }
        }
        let cycle = match cluster.scrub_and_repair() {
            Ok((scrub, repairs)) => ScrubCycle::Ran { scrub, repairs },
            Err(e) => ScrubCycle::Failed(e.to_string()),
        };
        let mut cycles = lock(&shared.cycles);
        if cycles.len() >= MAX_CYCLES {
            cycles.pop_front();
        }
        cycles.push_back(cycle);
    }
}
