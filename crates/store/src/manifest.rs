//! The shard-map manifest: where an object's shards live and what bytes
//! they must contain.
//!
//! A manifest is written at `put` time and replicated to every cluster
//! node under key `m:<object>`; each shard lives under a
//! generation-qualified key `s:<idx>g<gen>:<object>` on the node the
//! manifest names (legacy shards, written before generations were
//! key-qualified, live under `s:<idx>:<object>` and are recorded with
//! `shard_gen == 0`). The per-shard CRC-32s recorded here are the
//! *end-to-end* ground truth for scrub: a shard whose blob frame is
//! internally consistent but whose content no longer matches the
//! manifest is attributably damaged (rewritten or rotted before its
//! frame CRC was computed), which is what lets scrub name the lying
//! shard instead of only proving "data and parity disagree".
//!
//! Generation-qualified keys are what make the write path crash-atomic:
//! a re-put writes its shards under *new* keys beside the live
//! generation and publishes by swinging the manifest, so no published
//! byte is ever mutated in place; superseded and crash-orphaned
//! generations are collected later by the scrub-time GC
//! (`docs/STORE.md` §GC).

use crate::error::StoreError;
use crate::proto::{put_str, PayloadReader, MAX_KEY};
use ec_core::{CodecId, CodecSpec, EcError};
use ec_wire::crc32;
use ec_wire::merkle::{root_over_roots, Hash};
use ec_wire::SHA256_LEN;

/// Magic prefix of the serialized manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"XSLPECM1";

/// Serialization version this build writes *when the manifest carries
/// hash roots* ([`Manifest::has_hashes`]); a rootless manifest still
/// writes version 3, so repairing a pre-hash object never silently
/// upgrades its record. Version 1 (no codec identity) is still read and
/// normalizes to the RS codec it implied; version 2 (no per-shard
/// generations) reads with every `shard_gen` zero, i.e. the legacy
/// un-suffixed shard keys; version 3 predates the Merkle fields and
/// reads with `hash_leaf_size == 0` (CRC-only integrity).
pub const MANIFEST_VERSION: u8 = 4;

/// Oldest manifest/tombstone version this build still reads.
pub const MIN_MANIFEST_VERSION: u8 = 1;

/// Upper bound on one node address string in a manifest.
pub const MAX_ADDR: usize = 256;

/// Upper bound on an object name: the generation-qualified shard key
/// `s:NNNg<16 hex>:<object>` must fit the protocol's key cap.
pub const MAX_OBJECT_NAME: usize = MAX_KEY - 23;

/// Key of an object's manifest blob.
pub fn manifest_key(object: &str) -> String {
    format!("m:{object}")
}

/// Key of shard `index` of an object at write `generation`.
///
/// Generation 0 never occurs on the write path (the first write of any
/// object is generation ≥ 1) and denotes a *legacy* shard written by a
/// pre-v3 build under the un-suffixed key form; everything newer embeds
/// the generation as 16 hex digits so that concurrent generations of
/// the same shard coexist on one node. The two forms stay unambiguous —
/// the byte after the 3-digit index is `:` (legacy) or `g` (qualified),
/// before the object name (which may itself contain `:`) begins.
pub fn shard_key(object: &str, index: usize, generation: u64) -> String {
    if generation == 0 {
        format!("s:{index:03}:{object}")
    } else {
        format!("s:{index:03}g{generation:016x}:{object}")
    }
}

/// Decompose a shard key into `(object, index, generation)` — the GC's
/// inverse of [`shard_key`]. `None` for keys that are not shard keys
/// (callers list with prefix `s:` but must not trip over foreign keys).
pub fn parse_shard_key(key: &str) -> Option<(&str, usize, u64)> {
    parse_prefixed_key(key, "s:")
}

/// The shared grammar behind [`parse_shard_key`] and
/// [`crate::tree::parse_tree_key`]: `<prefix><iii>[g<16 hex>]:<object>`.
pub(crate) fn parse_prefixed_key<'a>(
    key: &'a str,
    prefix: &str,
) -> Option<(&'a str, usize, u64)> {
    let rest = key.strip_prefix(prefix)?;
    let (idx_digits, rest) = rest.split_at_checked(3)?;
    let index = idx_digits.parse::<usize>().ok()?;
    if let Some(object) = rest.strip_prefix(':') {
        return Some((object, index, 0));
    }
    let rest = rest.strip_prefix('g')?;
    let (gen_digits, rest) = rest.split_at_checked(16)?;
    let generation = u64::from_str_radix(gen_digits, 16).ok()?;
    let object = rest.strip_prefix(':')?;
    Some((object, index, generation))
}

/// Validate a caller-supplied object name against the key grammar.
pub fn validate_object_name(object: &str) -> Result<(), StoreError> {
    if object.is_empty() {
        return Err(StoreError::InvalidArg("object name must not be empty".into()));
    }
    if object.len() > MAX_OBJECT_NAME {
        return Err(StoreError::InvalidArg(format!(
            "object name of {} bytes exceeds the cap of {MAX_OBJECT_NAME}",
            object.len()
        )));
    }
    Ok(())
}

/// Magic prefix of a serialized tombstone: a deleted object's grave
/// marker, stored under the object's manifest key. Deleting the `m:`
/// blobs outright would let a node that slept through the delete
/// resurrect the object with its surviving replica; a tombstone instead
/// *outvotes* stale manifests in the generation election.
pub const TOMBSTONE_MAGIC: [u8; 8] = *b"XSLPECT1";

/// A stored manifest-key record: a live shard map or a tombstone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ManifestRecord {
    Live(Manifest),
    Tombstone { generation: u64 },
}

/// Serialize a tombstone at `generation`
/// (`magic ‖ version ‖ u64 generation ‖ crc32`).
pub fn tombstone_bytes(generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(TOMBSTONE_MAGIC.len() + 13);
    out.extend_from_slice(&TOMBSTONE_MAGIC);
    out.push(MANIFEST_VERSION);
    out.extend_from_slice(&generation.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parse either record form stored under a manifest key.
pub fn parse_record(bytes: &[u8]) -> Result<ManifestRecord, StoreError> {
    if !bytes.starts_with(&TOMBSTONE_MAGIC) {
        return Manifest::from_bytes(bytes).map(ManifestRecord::Live);
    }
    let expect = TOMBSTONE_MAGIC.len() + 1 + 8 + 4;
    if bytes.len() != expect {
        return Err(StoreError::Manifest(format!(
            "tombstone of {} bytes, expected {expect}",
            bytes.len()
        )));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    if u32::from_le_bytes(trailer.try_into().expect("fixed slice")) != crc32(body) {
        return Err(StoreError::Manifest("tombstone checksum mismatch".into()));
    }
    let version = body[TOMBSTONE_MAGIC.len()];
    if !(MIN_MANIFEST_VERSION..=MANIFEST_VERSION).contains(&version) {
        return Err(StoreError::Manifest(format!(
            "unsupported tombstone version {version} (this build reads \
             {MIN_MANIFEST_VERSION}..={MANIFEST_VERSION})"
        )));
    }
    let generation = u64::from_le_bytes(
        body[TOMBSTONE_MAGIC.len() + 1..].try_into().expect("fixed slice"),
    );
    Ok(ManifestRecord::Tombstone { generation })
}

/// One object's shard map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Data shards `n` of the code the object was encoded with.
    pub data_shards: u16,
    /// Parity shards `p`.
    pub parity_shards: u16,
    /// Wire identifier of the codec family ([`CodecId::wire`]).
    /// Version 1 manifests normalize to RS (`1`) on read.
    pub codec_id: u16,
    /// LRC locality-group size `r`; `0` for every other family.
    pub group_size: u16,
    /// Monotonic write generation: every `put`, delta `overwrite` and
    /// node repair bumps it, and readers prefer the highest-generation
    /// replica — a node that slept through a write serves a *stale*
    /// manifest, and without this counter stale and current replicas
    /// are indistinguishable.
    pub generation: u64,
    /// Exact byte length of the object.
    pub object_len: u64,
    /// Byte length of every shard (packet-aligned; zero for an empty
    /// object).
    pub shard_len: u64,
    /// `placement[i]` is the address of the node holding shard `i`
    /// (`0..n` data, `n..n+p` parity).
    pub placement: Vec<String>,
    /// `shard_crc[i]` is the CRC-32 of shard `i`'s exact bytes.
    pub shard_crc: Vec<u32>,
    /// `shard_gen[i]` is the write generation embedded in shard `i`'s
    /// key ([`shard_key`]); `0` means the legacy un-suffixed key form
    /// (pre-v3 manifests read as all-zero). Per-shard rather than
    /// manifest-wide so a delta overwrite can publish changed shards
    /// under the new generation while unchanged data shards keep their
    /// existing immutable keys.
    pub shard_gen: Vec<u64>,
    /// Leaf granularity of the Merkle fields below; `0` means this
    /// manifest predates them (read from a version ≤ 3 record) and the
    /// object is CRC-only.
    pub hash_leaf_size: u32,
    /// `shard_root[i]` is the SHA-256 Merkle root of shard `i`'s exact
    /// bytes at [`Manifest::hash_leaf_size`] leaves — the end-to-end
    /// ground truth that, unlike [`Manifest::shard_crc`], cannot be
    /// forged by a CRC-preserving flip. Empty when `hash_leaf_size == 0`.
    pub shard_root: Vec<Hash>,
    /// Merkle root over [`Manifest::shard_root`]
    /// ([`ec_wire::merkle::root_over_roots`]) — one 32-byte commitment
    /// to the whole object. All zeros when `hash_leaf_size == 0`.
    pub object_root: Hash,
}

impl Manifest {
    /// Total shards `n + p`.
    pub fn total_shards(&self) -> usize {
        self.data_shards as usize + self.parity_shards as usize
    }

    /// Whether this manifest carries Merkle roots (version-4 records);
    /// `false` for objects written or last repaired by a pre-hash build,
    /// which stay CRC-only until an overwrite recomputes their roots.
    pub fn has_hashes(&self) -> bool {
        self.hash_leaf_size != 0
    }

    /// Key of shard `index` as this manifest references it: the
    /// placement address plus this key is the complete, immutable
    /// location of the shard's bytes.
    pub fn shard_key(&self, object: &str, index: usize) -> String {
        shard_key(object, index, self.shard_gen.get(index).copied().unwrap_or(0))
    }

    /// The codec spec the object was encoded under, validated: an
    /// unknown wire id or an unrealizable geometry is a typed
    /// [`EcError`], never a garbage decode.
    pub fn codec_spec(&self) -> Result<CodecSpec, EcError> {
        CodecSpec::from_wire(
            self.codec_id,
            self.group_size,
            self.data_shards as usize,
            self.parity_shards as usize,
        )
    }

    /// Serialize to the wire/blob form (little-endian fields, trailing
    /// CRC-32 over everything before it).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.placement.len() * 64);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.push(if self.has_hashes() { MANIFEST_VERSION } else { 3 });
        out.extend_from_slice(&self.data_shards.to_le_bytes());
        out.extend_from_slice(&self.parity_shards.to_le_bytes());
        out.extend_from_slice(&self.codec_id.to_le_bytes());
        out.extend_from_slice(&self.group_size.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.object_len.to_le_bytes());
        out.extend_from_slice(&self.shard_len.to_le_bytes());
        if self.has_hashes() {
            out.extend_from_slice(&self.hash_leaf_size.to_le_bytes());
        }
        for (i, (addr, crc)) in self.placement.iter().zip(&self.shard_crc).enumerate() {
            put_str(&mut out, addr);
            out.extend_from_slice(&crc.to_le_bytes());
            let gen = self.shard_gen.get(i).copied().unwrap_or(0);
            out.extend_from_slice(&gen.to_le_bytes());
            if self.has_hashes() {
                out.extend_from_slice(&self.shard_root[i]);
            }
        }
        if self.has_hashes() {
            out.extend_from_slice(&self.object_root);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and validate the wire/blob form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, StoreError> {
        let bad = |msg: String| StoreError::Manifest(msg);
        if bytes.len() < MANIFEST_MAGIC.len() + 4 {
            return Err(bad("manifest too short".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("fixed slice"));
        if stored != crc32(body) {
            return Err(bad("manifest checksum mismatch".into()));
        }
        let mut r = PayloadReader::new(body);
        let parse = |r: &mut PayloadReader| -> Result<Manifest, String> {
            let mut magic = [0u8; 8];
            for b in &mut magic {
                *b = r.u8()?;
            }
            if magic != MANIFEST_MAGIC {
                return Err("bad manifest magic".into());
            }
            let version = r.u8()?;
            if !(MIN_MANIFEST_VERSION..=MANIFEST_VERSION).contains(&version) {
                return Err(format!(
                    "unsupported manifest version {version} (this build reads \
                     {MIN_MANIFEST_VERSION}..={MANIFEST_VERSION})"
                ));
            }
            let data_shards = r.u16()?;
            let parity_shards = r.u16()?;
            // Version 1 predates the codec fields; it meant RS.
            let (codec_id, group_size) = if version == 1 {
                (CodecId::Rs.wire(), 0)
            } else {
                (r.u16()?, r.u16()?)
            };
            let generation = r.u64()?;
            let object_len = r.u64()?;
            let shard_len = r.u64()?;
            // Version 4 added the Merkle fields; a v4 writer never emits
            // a zero leaf size (rootless manifests stay version 3).
            let hash_leaf_size = if version >= 4 { r.u32()? } else { 0 };
            if version >= 4 && hash_leaf_size == 0 {
                return Err("version 4 manifest with zero hash leaf size".into());
            }
            let total = data_shards as usize + parity_shards as usize;
            if data_shards == 0 || parity_shards == 0 || total > 255 {
                return Err(format!(
                    "invalid geometry ({data_shards}, {parity_shards})"
                ));
            }
            if shard_len.checked_mul(data_shards as u64).is_none_or(|c| c < object_len) {
                return Err(format!(
                    "{data_shards} shards of {shard_len} bytes cannot hold a \
                     {object_len}-byte object"
                ));
            }
            let mut placement = Vec::with_capacity(total);
            let mut shard_crc = Vec::with_capacity(total);
            let mut shard_gen = Vec::with_capacity(total);
            let mut shard_root = Vec::with_capacity(if version >= 4 { total } else { 0 });
            for _ in 0..total {
                placement.push(r.str_bounded(MAX_ADDR, "node address")?.to_string());
                shard_crc.push(r.u32()?);
                // Versions 1–2 predate per-shard generations; their
                // shards live under the legacy un-suffixed keys.
                shard_gen.push(if version >= 3 { r.u64()? } else { 0 });
                if version >= 4 {
                    let mut root = [0u8; SHA256_LEN];
                    for b in &mut root {
                        *b = r.u8()?;
                    }
                    shard_root.push(root);
                }
            }
            let mut object_root = [0u8; SHA256_LEN];
            if version >= 4 {
                for b in &mut object_root {
                    *b = r.u8()?;
                }
            }
            Ok(Manifest {
                data_shards,
                parity_shards,
                codec_id,
                group_size,
                generation,
                object_len,
                shard_len,
                placement,
                shard_crc,
                shard_gen,
                hash_leaf_size,
                shard_root,
                object_root,
            })
        };
        let manifest = parse(&mut r).map_err(bad)?;
        r.finish().map_err(bad)?;
        // Typed rejection: unknown codec ids / unrealizable family
        // geometry surface as `StoreError::Codec`, and the shard-length
        // alignment check uses the codec's own alignment (8 for the
        // GF(2^8) codecs, `w` for the array codes).
        let spec = manifest.codec_spec().map_err(StoreError::Codec)?;
        let align = spec.shard_alignment().map_err(StoreError::Codec)? as u64;
        if manifest.shard_len % align != 0 {
            return Err(bad(format!(
                "shard length {} is not {align}-aligned for codec {}",
                manifest.shard_len,
                spec.name()
            )));
        }
        // The object root is *derived* from the shard roots; a record
        // where the two disagree was corrupted in a CRC-colliding way or
        // hand-forged, and trusting either half would let scrub and get
        // validate against different ground truths.
        if manifest.has_hashes()
            && manifest.object_root != root_over_roots(&manifest.shard_root)
        {
            return Err(bad("object root does not commit to the shard roots".into()));
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            data_shards: 4,
            parity_shards: 2,
            codec_id: CodecId::Rs.wire(),
            group_size: 0,
            generation: 3,
            object_len: 1000,
            shard_len: 256,
            placement: (0..6).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect(),
            shard_crc: (0..6).map(|i| 0xDEAD_0000 + i).collect(),
            shard_gen: vec![3, 3, 1, 3, 3, 3],
            hash_leaf_size: 0,
            shard_root: Vec::new(),
            object_root: [0u8; SHA256_LEN],
        }
    }

    fn hashed_sample() -> Manifest {
        let shard_root: Vec<Hash> = (0..6u8)
            .map(|i| ec_wire::merkle::leaf_hash(&[i; 16]))
            .collect();
        Manifest {
            hash_leaf_size: 65536,
            object_root: root_over_roots(&shard_root),
            shard_root,
            ..sample()
        }
    }

    #[test]
    fn roundtrips() {
        let m = sample();
        assert_eq!(Manifest::from_bytes(&m.to_bytes()).unwrap(), m);
        // Rootless manifests serialize as version 3, hashed as 4 — so a
        // repair of a pre-hash object never silently upgrades its record.
        assert_eq!(m.to_bytes()[MANIFEST_MAGIC.len()], 3);
        let h = hashed_sample();
        assert_eq!(Manifest::from_bytes(&h.to_bytes()).unwrap(), h);
        assert_eq!(h.to_bytes()[MANIFEST_MAGIC.len()], MANIFEST_VERSION);
    }

    #[test]
    fn forged_hash_fields_rejected() {
        // A manifest whose object root does not commit to its shard
        // roots must be refused even though its CRC is self-consistent.
        let mut m = hashed_sample();
        m.shard_root[2][0] ^= 0x01;
        assert!(matches!(
            Manifest::from_bytes(&m.to_bytes()),
            Err(StoreError::Manifest(_))
        ));
        m = hashed_sample();
        m.object_root[31] ^= 0x80;
        assert!(Manifest::from_bytes(&m.to_bytes()).is_err());
    }

    #[test]
    fn empty_object_roundtrips() {
        let m = Manifest { object_len: 0, shard_len: 0, ..sample() };
        assert_eq!(Manifest::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn every_bit_flip_is_detected() {
        for bytes in [sample().to_bytes(), hashed_sample().to_bytes()] {
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x10;
                assert!(
                    Manifest::from_bytes(&bad).is_err(),
                    "flip at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn hostile_magnitudes_rejected() {
        // CRC-valid but geometrically absurd manifests must fail the
        // magnitude checks, not demand giant buffers downstream.
        let absurd = Manifest {
            data_shards: 200,
            parity_shards: 200,
            ..sample()
        };
        assert!(matches!(
            Manifest::from_bytes(&absurd.to_bytes()),
            Err(StoreError::Manifest(_))
        ));
        let cannot_hold = Manifest { object_len: u64::MAX, shard_len: 8, ..sample() };
        assert!(Manifest::from_bytes(&cannot_hold.to_bytes()).is_err());
        let unaligned = Manifest { shard_len: 12, ..sample() };
        assert!(Manifest::from_bytes(&unaligned.to_bytes()).is_err());
        let zero_parity = Manifest { parity_shards: 0, shard_crc: vec![0; 4], shard_gen: vec![1; 4], placement: sample().placement[..4].to_vec(), ..sample() };
        assert!(Manifest::from_bytes(&zero_parity.to_bytes()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        for bytes in [sample().to_bytes(), hashed_sample().to_bytes()] {
            for cut in 0..bytes.len() {
                assert!(Manifest::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn v3_manifests_read_as_crc_only() {
        // Fabricate the version-3 wire form: per-shard generations but
        // no Merkle fields. The parse must come back rootless
        // (`hash_leaf_size == 0`), never invent hashes.
        let m = sample();
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.push(3);
        out.extend_from_slice(&m.data_shards.to_le_bytes());
        out.extend_from_slice(&m.parity_shards.to_le_bytes());
        out.extend_from_slice(&m.codec_id.to_le_bytes());
        out.extend_from_slice(&m.group_size.to_le_bytes());
        out.extend_from_slice(&m.generation.to_le_bytes());
        out.extend_from_slice(&m.object_len.to_le_bytes());
        out.extend_from_slice(&m.shard_len.to_le_bytes());
        for (i, (addr, crc)) in m.placement.iter().zip(&m.shard_crc).enumerate() {
            put_str(&mut out, addr);
            out.extend_from_slice(&crc.to_le_bytes());
            out.extend_from_slice(&m.shard_gen[i].to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        let parsed = Manifest::from_bytes(&out).unwrap();
        assert_eq!(parsed, m);
        assert!(!parsed.has_hashes());
    }

    #[test]
    fn tombstones_roundtrip_and_reject_damage() {
        let bytes = tombstone_bytes(42);
        assert_eq!(
            parse_record(&bytes).unwrap(),
            ManifestRecord::Tombstone { generation: 42 }
        );
        // A live manifest parses as Live through the same entry point.
        assert_eq!(
            parse_record(&sample().to_bytes()).unwrap(),
            ManifestRecord::Live(sample())
        );
        // Any bit flip or truncation is detected.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x04;
            assert!(parse_record(&bad).is_err(), "flip at byte {i}");
        }
        for cut in 8..bytes.len() {
            assert!(parse_record(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn codec_spec_travels_in_the_manifest() {
        let m = Manifest {
            codec_id: CodecId::Lrc.wire(),
            group_size: 2,
            parity_shards: 3,
            placement: (0..7).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect(),
            shard_crc: (0..7).map(|i| 0xBEEF_0000 + i).collect(),
            shard_gen: vec![3; 7],
            ..sample()
        };
        let parsed = Manifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.codec_spec().unwrap(), CodecSpec::lrc(4, 3, 2));
    }

    #[test]
    fn v1_manifests_read_as_rs() {
        // Fabricate the version-1 wire form: no codec fields at all,
        // no per-shard generations.
        let m = Manifest { shard_gen: vec![0; 6], ..sample() };
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.push(1);
        out.extend_from_slice(&m.data_shards.to_le_bytes());
        out.extend_from_slice(&m.parity_shards.to_le_bytes());
        out.extend_from_slice(&m.generation.to_le_bytes());
        out.extend_from_slice(&m.object_len.to_le_bytes());
        out.extend_from_slice(&m.shard_len.to_le_bytes());
        for (addr, crc) in m.placement.iter().zip(&m.shard_crc) {
            put_str(&mut out, addr);
            out.extend_from_slice(&crc.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        let parsed = Manifest::from_bytes(&out).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.codec_spec().unwrap(), CodecSpec::rs(4, 2));
    }

    #[test]
    fn v2_manifests_read_with_legacy_shard_keys() {
        // Fabricate the version-2 wire form: codec fields present,
        // per-shard `[addr][crc]` without generations. The parse must
        // fill `shard_gen` with zeros so every shard key resolves to
        // the legacy un-suffixed form the v2 writer actually used.
        let m = Manifest { shard_gen: vec![0; 6], ..sample() };
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.push(2);
        out.extend_from_slice(&m.data_shards.to_le_bytes());
        out.extend_from_slice(&m.parity_shards.to_le_bytes());
        out.extend_from_slice(&m.codec_id.to_le_bytes());
        out.extend_from_slice(&m.group_size.to_le_bytes());
        out.extend_from_slice(&m.generation.to_le_bytes());
        out.extend_from_slice(&m.object_len.to_le_bytes());
        out.extend_from_slice(&m.shard_len.to_le_bytes());
        for (addr, crc) in m.placement.iter().zip(&m.shard_crc) {
            put_str(&mut out, addr);
            out.extend_from_slice(&crc.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        let parsed = Manifest::from_bytes(&out).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.shard_key("obj", 3), "s:003:obj");
    }

    #[test]
    fn unknown_codec_id_is_typed() {
        let m = Manifest { codec_id: 999, ..sample() };
        assert!(matches!(
            Manifest::from_bytes(&m.to_bytes()),
            Err(StoreError::Codec(EcError::UnknownCodec(_)))
        ));
        // Known id, impossible family geometry (evenodd wants p = 2...
        // here it gets group_size it cannot take).
        let m = Manifest { codec_id: CodecId::EvenOdd.wire(), group_size: 3, ..sample() };
        assert!(matches!(
            Manifest::from_bytes(&m.to_bytes()),
            Err(StoreError::Codec(EcError::InvalidParams(_)))
        ));
    }

    #[test]
    fn keys_and_names() {
        assert_eq!(manifest_key("obj"), "m:obj");
        assert_eq!(shard_key("obj", 7, 0), "s:007:obj");
        assert_eq!(shard_key("obj", 7, 0x2a), "s:007g000000000000002a:obj");
        validate_object_name("obj").unwrap();
        assert!(validate_object_name("").is_err());
        assert!(validate_object_name(&"x".repeat(MAX_OBJECT_NAME + 1)).is_err());
        validate_object_name(&"x".repeat(MAX_OBJECT_NAME)).unwrap();
        // The longest legal key fits the protocol cap.
        assert!(shard_key(&"x".repeat(MAX_OBJECT_NAME), 255, u64::MAX).len() <= MAX_KEY);
    }

    #[test]
    fn shard_keys_parse_back() {
        for gen in [0u64, 1, 42, u64::MAX] {
            let key = shard_key("a:b/c", 17, gen);
            assert_eq!(parse_shard_key(&key), Some(("a:b/c", 17, gen)));
        }
        // Foreign or mangled keys are refused, not misparsed.
        for bad in [
            "m:obj",
            "s:",
            "s:01",
            "s:007",
            "s:007obj",
            "s:007g123:obj",
            "s:007g00000000000000zz:obj",
            "s:007g0000000000000001obj",
        ] {
            assert_eq!(parse_shard_key(bad), None, "{bad}");
        }
        // The manifest-side accessor agrees with the free function.
        let m = sample();
        assert_eq!(m.shard_key("obj", 2), "s:002g0000000000000001:obj");
        assert_eq!(m.shard_key("obj", 0), "s:000g0000000000000003:obj");
    }
}
