//! Client side of the node protocol: one [`NodeClient`] per TCP
//! connection, with typed request methods and uniform timeouts.

use crate::blob::BlobStat;
use crate::error::StoreError;
use crate::proto::{
    op, parse_err, put_str, read_frame, status, write_frame, FrameError, PayloadReader,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A node's `HEALTH` answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeHealth {
    /// Number of blobs stored.
    pub blobs: u64,
    /// Total payload bytes stored (framing excluded).
    pub bytes: u64,
}

/// One connection to one shard node. Requests are serial
/// (request/response per frame); several requests may reuse the
/// connection. All operations observe the connect/read/write timeout
/// given at [`NodeClient::connect`].
pub struct NodeClient {
    stream: TcpStream,
}

impl NodeClient {
    /// Connect to `addr` (a `host:port` string) with `timeout` applied
    /// to the connect itself and to every subsequent read and write.
    pub fn connect(addr: &str, timeout: Duration) -> Result<NodeClient, StoreError> {
        let sock = addr
            .to_socket_addrs()
            .map_err(|e| {
                StoreError::InvalidArg(format!("cannot resolve node address `{addr}`: {e}"))
            })?
            .next()
            .ok_or_else(|| {
                StoreError::InvalidArg(format!("node address `{addr}` resolves to nothing"))
            })?;
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(NodeClient { stream })
    }

    /// Send one request frame and return the `OK` payload (a typed
    /// [`StoreError::Remote`] for `ERR` answers).
    fn request(&mut self, tag: u8, parts: &[&[u8]]) -> Result<Vec<u8>, StoreError> {
        let payload_len: usize = parts.iter().map(|p| p.len()).sum();
        if payload_len + 2 > crate::proto::MAX_BODY {
            // Checked here so an oversized blob is a typed error, not a
            // panic of `write_frame`'s contract assert.
            return Err(StoreError::InvalidArg(format!(
                "request payload of {payload_len} bytes exceeds the \
                 {}-byte frame cap",
                crate::proto::MAX_BODY
            )));
        }
        write_frame(&mut self.stream, tag, parts)?;
        let frame = read_frame(&mut self.stream).map_err(|e| match e {
            FrameError::Eof => {
                StoreError::Protocol("node closed the connection mid-request".into())
            }
            other => other.into(),
        })?;
        match frame.tag {
            status::OK => Ok(frame.payload),
            status::ERR => Err(parse_err(&frame.payload)),
            other => Err(StoreError::Protocol(format!(
                "unexpected response tag {other:#04x}"
            ))),
        }
    }

    /// Store `data` under `key` on the node.
    pub fn put(&mut self, key: &str, data: &[u8]) -> Result<(), StoreError> {
        let mut head = Vec::with_capacity(2 + key.len());
        put_str(&mut head, key);
        let payload = self.request(op::PUT_SHARD, &[&head, data])?;
        expect_empty(&payload)
    }

    /// Fetch the blob under `key`.
    pub fn get(&mut self, key: &str) -> Result<Vec<u8>, StoreError> {
        self.request(op::GET_SHARD, &[&keyed(key)])
    }

    /// Delete the blob under `key`; returns whether it existed.
    pub fn delete(&mut self, key: &str) -> Result<bool, StoreError> {
        let payload = self.request(op::DELETE, &[&keyed(key)])?;
        match payload[..] {
            [existed] => Ok(existed != 0),
            _ => Err(StoreError::Protocol("malformed DELETE response".into())),
        }
    }

    /// All keys on the node starting with `prefix`.
    pub fn list(&mut self, prefix: &str) -> Result<Vec<String>, StoreError> {
        let payload = self.request(op::LIST, &[&keyed_allow_empty(prefix)])?;
        let mut r = PayloadReader::new(&payload);
        let parse = |r: &mut PayloadReader| -> Result<Vec<String>, String> {
            let count = r.u32()? as usize;
            // The frame cap already bounds the payload; this only guards
            // a lying count against a huge up-front reservation.
            let mut keys = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                keys.push(r.str_bounded(crate::proto::MAX_KEY, "key")?.to_string());
            }
            Ok(keys)
        };
        let keys = parse(&mut r)
            .map_err(|e| StoreError::Protocol(format!("malformed LIST response: {e}")))?;
        r.finish()
            .map_err(|e| StoreError::Protocol(format!("malformed LIST response: {e}")))?;
        Ok(keys)
    }

    /// Size and integrity of the blob under `key`, without transferring
    /// it.
    pub fn stat(&mut self, key: &str) -> Result<BlobStat, StoreError> {
        let payload = self.request(op::STAT, &[&keyed(key)])?;
        let mut r = PayloadReader::new(&payload);
        let parse = |r: &mut PayloadReader| -> Result<BlobStat, String> {
            let len = r.u64()?;
            let crc = r.u32()?;
            let ok = r.u8()? != 0;
            Ok(BlobStat { len, crc, ok })
        };
        let stat = parse(&mut r)
            .map_err(|e| StoreError::Protocol(format!("malformed STAT response: {e}")))?;
        r.finish()
            .map_err(|e| StoreError::Protocol(format!("malformed STAT response: {e}")))?;
        Ok(stat)
    }

    /// Node liveness and usage.
    pub fn health(&mut self) -> Result<NodeHealth, StoreError> {
        let payload = self.request(op::HEALTH, &[])?;
        let mut r = PayloadReader::new(&payload);
        let parse = |r: &mut PayloadReader| -> Result<NodeHealth, String> {
            let blobs = r.u64()?;
            let bytes = r.u64()?;
            Ok(NodeHealth { blobs, bytes })
        };
        let health = parse(&mut r)
            .map_err(|e| StoreError::Protocol(format!("malformed HEALTH response: {e}")))?;
        r.finish()
            .map_err(|e| StoreError::Protocol(format!("malformed HEALTH response: {e}")))?;
        Ok(health)
    }
}

fn keyed(key: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(2 + key.len());
    put_str(&mut payload, key);
    payload
}

fn keyed_allow_empty(prefix: &str) -> Vec<u8> {
    keyed(prefix) // the wire shape is identical; only validation differs
}

fn expect_empty(payload: &[u8]) -> Result<(), StoreError> {
    if payload.is_empty() {
        Ok(())
    } else {
        Err(StoreError::Protocol("unexpected payload in empty response".into()))
    }
}
