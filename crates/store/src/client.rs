//! Client side of the node protocol: one [`NodeClient`] per TCP
//! connection, with typed request methods, uniform timeouts, and a
//! pipelined send/receive path.
//!
//! The protocol's request ids (frame v2, `docs/STORE.md`) let several
//! requests ride one connection concurrently: [`NodeClient::send_batch`]
//! (or the per-op `send_*` methods) puts frames on the wire without
//! waiting, and [`NodeClient::recv_matching`] collects answers in *any*
//! arrival order — responses for other outstanding requests are parked
//! until their turn. A response carrying an id that was never issued is
//! a typed protocol violation (a lying or confused node), after which
//! the connection must be abandoned.
//!
//! Pipelining discipline: a batch must be all-small-request (GETs,
//! DELETEs) or all-small-response (PUTs). Never pipeline a request whose
//! *response* is large behind a request whose *body* is large — with
//! both directions full, two finite TCP buffers can deadlock.

use crate::blob::BlobStat;
use crate::error::StoreError;
use ec_wire::merkle::Hash;
use crate::proto::{
    op, parse_err, put_str, read_frame, status, write_frame, Frame, FrameError, PayloadReader,
};
use std::collections::{HashMap, HashSet};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A node's `HEALTH` answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeHealth {
    /// Number of blobs stored.
    pub blobs: u64,
    /// Total payload bytes stored (framing excluded).
    pub bytes: u64,
}

/// One operation of a pipelined batch (see [`NodeClient::send_batch`]).
#[derive(Debug)]
pub enum BatchOp<'a> {
    /// Store `data` under `key`.
    Put { key: &'a str, data: &'a [u8] },
    /// Fetch the blob under `key`.
    Get { key: &'a str },
    /// Delete the blob under `key`.
    Delete { key: &'a str },
}

/// One connection to one shard node. All operations observe the
/// connect/read/write timeout given at [`NodeClient::connect`] (each
/// individual socket read/write, not whole operations — the cluster
/// layer owns per-operation deadlines).
pub struct NodeClient {
    stream: TcpStream,
    next_id: u32,
    /// Ids issued but not yet resolved. Bounds `parked`: only responses
    /// to ids in this set are ever parked, so a hostile node cannot grow
    /// client memory with unsolicited frames.
    pending: HashSet<u32>,
    /// Responses that arrived while the caller was waiting for a
    /// different id.
    parked: HashMap<u32, Frame>,
}

impl NodeClient {
    /// Connect to `addr` (a `host:port` string) with `timeout` applied
    /// to the connect itself and to every subsequent read and write.
    pub fn connect(addr: &str, timeout: Duration) -> Result<NodeClient, StoreError> {
        let sock = addr
            .to_socket_addrs()
            .map_err(|e| {
                StoreError::InvalidArg(format!("cannot resolve node address `{addr}`: {e}"))
            })?
            .next()
            .ok_or_else(|| {
                StoreError::InvalidArg(format!("node address `{addr}` resolves to nothing"))
            })?;
        let stream = TcpStream::connect_timeout(&sock, timeout).map_err(StoreError::Io)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(NodeClient {
            stream,
            next_id: 1,
            pending: HashSet::new(),
            parked: HashMap::new(),
        })
    }

    /// Re-bound every subsequent socket read/write. The fan-out layer
    /// uses this to shrink per-I/O timeouts to an operation deadline's
    /// remaining budget.
    pub fn set_io_timeout(&mut self, timeout: Duration) -> Result<(), StoreError> {
        // A zero timeout would mean "non-blocking", not "expired".
        let t = timeout.max(Duration::from_millis(1));
        self.stream.set_read_timeout(Some(t))?;
        self.stream.set_write_timeout(Some(t))?;
        Ok(())
    }

    /// Put one request frame on the wire without waiting for the answer;
    /// returns the request id to pass to [`NodeClient::recv_matching`].
    fn send_request(&mut self, tag: u8, parts: &[&[u8]]) -> Result<u32, StoreError> {
        let payload_len: usize = parts.iter().map(|p| p.len()).sum();
        if payload_len + 6 > crate::proto::MAX_BODY {
            // Checked here so an oversized blob is a typed error, not a
            // panic of `write_frame`'s contract assert.
            return Err(StoreError::InvalidArg(format!(
                "request payload of {payload_len} bytes exceeds the \
                 {}-byte frame cap",
                crate::proto::MAX_BODY
            )));
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        write_frame(&mut self.stream, tag, Some(id), parts)?;
        self.pending.insert(id);
        Ok(id)
    }

    /// Receive the response for request `id`, tolerating out-of-order
    /// arrival: responses to *other* outstanding requests are parked and
    /// handed out when their id is asked for. Returns the `OK` payload,
    /// a typed [`StoreError::Remote`] for an `ERR` answer, or a
    /// [`StoreError::Protocol`] for an id that was never issued (after
    /// which the connection is poisoned and must be dropped).
    pub fn recv_matching(&mut self, id: u32) -> Result<Vec<u8>, StoreError> {
        if !self.pending.contains(&id) {
            return Err(StoreError::Protocol(format!(
                "request id {id} is not outstanding on this connection"
            )));
        }
        loop {
            if let Some(frame) = self.parked.remove(&id) {
                self.pending.remove(&id);
                return resolve(frame);
            }
            let frame = read_frame(&mut self.stream).map_err(|e| match e {
                FrameError::Eof => {
                    StoreError::Protocol("node closed the connection mid-request".into())
                }
                other => other.into(),
            })?;
            match frame.request_id {
                Some(rid) if rid == id => {
                    self.pending.remove(&id);
                    return resolve(frame);
                }
                Some(rid) if self.pending.contains(&rid) && !self.parked.contains_key(&rid) => {
                    self.parked.insert(rid, frame);
                }
                Some(rid) => {
                    // An id we never issued (or a replay of one already
                    // parked): the node is lying or desynchronized. The
                    // stream can no longer be trusted.
                    return Err(StoreError::Protocol(format!(
                        "response carries unexpected request id {rid}"
                    )));
                }
                None => {
                    // A version-1 (id-less) frame mid-pipeline: nodes
                    // answer framing errors this way before closing.
                    return match frame.tag {
                        status::ERR => Err(parse_err(&frame.payload)),
                        _ => Err(StoreError::Protocol(
                            "un-addressed response frame in a pipelined exchange".into(),
                        )),
                    };
                }
            }
        }
    }

    /// Send one request and wait for its answer (the serial path).
    fn request(&mut self, tag: u8, parts: &[&[u8]]) -> Result<Vec<u8>, StoreError> {
        let id = self.send_request(tag, parts)?;
        self.recv_matching(id)
    }

    /// Put a whole batch of requests on the wire back-to-back; returns
    /// the request ids in operation order. Collect the answers with the
    /// matching `recv_*` method per op (any order). See the module docs
    /// for the pipelining discipline that avoids TCP-buffer deadlock.
    pub fn send_batch(&mut self, ops: &[BatchOp<'_>]) -> Result<Vec<u32>, StoreError> {
        let mut ids = Vec::with_capacity(ops.len());
        for op in ops {
            ids.push(match op {
                BatchOp::Put { key, data } => self.send_put(key, data)?,
                BatchOp::Get { key } => self.send_get(key)?,
                BatchOp::Delete { key } => self.send_delete(key)?,
            });
        }
        Ok(ids)
    }

    /// Pipelined send of a PUT; resolve with [`NodeClient::recv_put`].
    pub fn send_put(&mut self, key: &str, data: &[u8]) -> Result<u32, StoreError> {
        let mut head = Vec::with_capacity(2 + key.len());
        put_str(&mut head, key);
        self.send_request(op::PUT_SHARD, &[&head, data])
    }

    /// Resolve a pipelined PUT.
    pub fn recv_put(&mut self, id: u32) -> Result<(), StoreError> {
        expect_empty(&self.recv_matching(id)?)
    }

    /// Pipelined send of a GET; resolve with [`NodeClient::recv_get`].
    pub fn send_get(&mut self, key: &str) -> Result<u32, StoreError> {
        self.send_request(op::GET_SHARD, &[&keyed(key)])
    }

    /// Resolve a pipelined GET.
    pub fn recv_get(&mut self, id: u32) -> Result<Vec<u8>, StoreError> {
        self.recv_matching(id)
    }

    /// Pipelined send of a DELETE; resolve with
    /// [`NodeClient::recv_delete`].
    pub fn send_delete(&mut self, key: &str) -> Result<u32, StoreError> {
        self.send_request(op::DELETE, &[&keyed(key)])
    }

    /// Resolve a pipelined DELETE; returns whether the key existed.
    pub fn recv_delete(&mut self, id: u32) -> Result<bool, StoreError> {
        let payload = self.recv_matching(id)?;
        match payload[..] {
            [existed] => Ok(existed != 0),
            _ => Err(StoreError::Protocol("malformed DELETE response".into())),
        }
    }

    /// Store `data` under `key` on the node.
    pub fn put(&mut self, key: &str, data: &[u8]) -> Result<(), StoreError> {
        let id = self.send_put(key, data)?;
        self.recv_put(id)
    }

    /// Fetch the blob under `key`.
    pub fn get(&mut self, key: &str) -> Result<Vec<u8>, StoreError> {
        let id = self.send_get(key)?;
        self.recv_get(id)
    }

    /// Delete the blob under `key`; returns whether it existed.
    pub fn delete(&mut self, key: &str) -> Result<bool, StoreError> {
        let id = self.send_delete(key)?;
        self.recv_delete(id)
    }

    /// All keys on the node starting with `prefix`.
    pub fn list(&mut self, prefix: &str) -> Result<Vec<String>, StoreError> {
        let payload = self.request(op::LIST, &[&keyed_allow_empty(prefix)])?;
        let mut r = PayloadReader::new(&payload);
        let parse = |r: &mut PayloadReader| -> Result<Vec<String>, String> {
            let count = r.u32()? as usize;
            // The frame cap already bounds the payload; this only guards
            // a lying count against a huge up-front reservation.
            let mut keys = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                keys.push(r.str_bounded(crate::proto::MAX_KEY, "key")?.to_string());
            }
            Ok(keys)
        };
        let keys = parse(&mut r)
            .map_err(|e| StoreError::Protocol(format!("malformed LIST response: {e}")))?;
        r.finish()
            .map_err(|e| StoreError::Protocol(format!("malformed LIST response: {e}")))?;
        Ok(keys)
    }

    /// All keys on the node starting with `prefix`, each with its age
    /// in seconds (node-clock mtime) and payload length — the
    /// scrub-time GC's view of a node. A pre-GC node answers
    /// `ERR BadRequest` for the unknown opcode; callers treat that as
    /// "this node cannot be collected yet", not as damage.
    pub fn list_aged(
        &mut self,
        prefix: &str,
    ) -> Result<Vec<(String, u64, u64)>, StoreError> {
        let payload = self.request(op::LIST_AGED, &[&keyed_allow_empty(prefix)])?;
        let mut r = PayloadReader::new(&payload);
        let parse = |r: &mut PayloadReader| -> Result<Vec<(String, u64, u64)>, String> {
            let count = r.u32()? as usize;
            let mut entries = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let key = r.str_bounded(crate::proto::MAX_KEY, "key")?.to_string();
                let age_secs = r.u64()?;
                let len = r.u64()?;
                entries.push((key, age_secs, len));
            }
            Ok(entries)
        };
        let entries = parse(&mut r).map_err(|e| {
            StoreError::Protocol(format!("malformed LIST_AGED response: {e}"))
        })?;
        r.finish().map_err(|e| {
            StoreError::Protocol(format!("malformed LIST_AGED response: {e}"))
        })?;
        Ok(entries)
    }

    /// Size and integrity of the blob under `key`, without transferring
    /// it.
    pub fn stat(&mut self, key: &str) -> Result<BlobStat, StoreError> {
        let payload = self.request(op::STAT, &[&keyed(key)])?;
        let mut r = PayloadReader::new(&payload);
        let parse = |r: &mut PayloadReader| -> Result<BlobStat, String> {
            let len = r.u64()?;
            let crc = r.u32()?;
            let ok = r.u8()? != 0;
            Ok(BlobStat { len, crc, ok })
        };
        let stat = parse(&mut r)
            .map_err(|e| StoreError::Protocol(format!("malformed STAT response: {e}")))?;
        r.finish()
            .map_err(|e| StoreError::Protocol(format!("malformed STAT response: {e}")))?;
        Ok(stat)
    }

    /// A slice of one level of the Merkle tree over the blob at `key`:
    /// `stored == false` re-hashes the shard blob at `leaf_size` on the
    /// node (its *computed* tree), `stored == true` rebuilds the tree
    /// from the node's `t:` hash blob. Level 0 is the leaves; the slice
    /// is `[start, start + count)` within that level. This is the scrub
    /// descent's transport: O(log leaves) hash bytes instead of the
    /// shard payload.
    pub fn hash_subtree(
        &mut self,
        key: &str,
        leaf_size: u32,
        stored: bool,
        level: u8,
        start: u32,
        count: u32,
    ) -> Result<Vec<Hash>, StoreError> {
        let mut req = keyed(key);
        req.extend_from_slice(&leaf_size.to_le_bytes());
        req.push(stored as u8);
        req.push(level);
        req.extend_from_slice(&start.to_le_bytes());
        req.extend_from_slice(&count.to_le_bytes());
        let payload = self.request(op::HASH_SUBTREE, &[&req])?;
        let mut r = PayloadReader::new(&payload);
        let parse = |r: &mut PayloadReader| -> Result<Vec<Hash>, String> {
            let got = r.u32()? as usize;
            if got != count as usize {
                return Err(format!("asked for {count} hashes, node sent {got}"));
            }
            let mut hashes = Vec::with_capacity(got.min(4096));
            for _ in 0..got {
                let mut h = [0u8; 32];
                for b in &mut h {
                    *b = r.u8()?;
                }
                hashes.push(h);
            }
            Ok(hashes)
        };
        let hashes = parse(&mut r).map_err(|e| {
            StoreError::Protocol(format!("malformed HASH_SUBTREE response: {e}"))
        })?;
        r.finish().map_err(|e| {
            StoreError::Protocol(format!("malformed HASH_SUBTREE response: {e}"))
        })?;
        Ok(hashes)
    }

    /// Node liveness and usage.
    pub fn health(&mut self) -> Result<NodeHealth, StoreError> {
        let payload = self.request(op::HEALTH, &[])?;
        let mut r = PayloadReader::new(&payload);
        let parse = |r: &mut PayloadReader| -> Result<NodeHealth, String> {
            let blobs = r.u64()?;
            let bytes = r.u64()?;
            Ok(NodeHealth { blobs, bytes })
        };
        let health = parse(&mut r)
            .map_err(|e| StoreError::Protocol(format!("malformed HEALTH response: {e}")))?;
        r.finish()
            .map_err(|e| StoreError::Protocol(format!("malformed HEALTH response: {e}")))?;
        Ok(health)
    }
}

fn resolve(frame: Frame) -> Result<Vec<u8>, StoreError> {
    match frame.tag {
        status::OK => Ok(frame.payload),
        status::ERR => Err(parse_err(&frame.payload)),
        other => Err(StoreError::Protocol(format!(
            "unexpected response tag {other:#04x}"
        ))),
    }
}

fn keyed(key: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(2 + key.len());
    put_str(&mut payload, key);
    payload
}

fn keyed_allow_empty(prefix: &str) -> Vec<u8> {
    keyed(prefix) // the wire shape is identical; only validation differs
}

fn expect_empty(payload: &[u8]) -> Result<(), StoreError> {
    if payload.is_empty() {
        Ok(())
    } else {
        Err(StoreError::Protocol("unexpected payload in empty response".into()))
    }
}
