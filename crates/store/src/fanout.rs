//! Concurrent per-node fan-out: the engine that turns sum-of-RTT
//! cluster operations into max-of-RTT ones.
//!
//! [`ParallelConnSet`] keeps at most one connection per node address
//! (like the serial set it replaces) and adds two shapes of
//! concurrency:
//!
//! * [`ParallelConnSet::run_batch`] — run every job of a batch
//!   concurrently, one scoped thread per distinct address; jobs for the
//!   same address share that address's single connection and run in
//!   order on it. The batch completes in ~max(per-node time) instead of
//!   the sum, and the barrier returns every connection to the pool.
//! * [`ParallelConnSet::run_first_n`] — issue every job and return as
//!   soon as a caller-supplied predicate over the partial results is
//!   satisfied, abandoning stragglers: the first-n-of-n+p read path,
//!   where one slow node must not add its RTT to every read. Workers
//!   are detached; a straggler that finishes after the harvest just
//!   drops its connection.
//!
//! The threading mirrors `xor_runtime::ExecPool` idiom: shared state
//! behind a `Mutex` + `Condvar` board, `lock_unpoisoned` everywhere,
//! scoped threads where a barrier is wanted.
//!
//! Connection lifecycle (same rules as the serial set had): a connect
//! failure marks the address *dead for the rest of the operation* — no
//! reconnect storms against a down node — typed `ERR` answers keep the
//! connection (the stream is intact, the node just said no), and any
//! other failure drops the possibly-desynced connection so the next
//! use reconnects. A per-operation deadline, when set, shrinks every
//! per-I/O timeout to the remaining budget and fails the whole batch
//! with [`StoreError::Timeout`] once spent.

use crate::client::NodeClient;
use crate::error::StoreError;
use std::collections::HashMap;
use std::mem;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use xor_runtime::lock_unpoisoned as lock;

/// Fan-out threads spawned at once by one batch; larger batches run in
/// waves. Real geometries sit far below this — it only bounds thread
/// count under a pathological membership list.
const MAX_FANOUT: usize = 64;

/// Condvar re-check tick while waiting for first-n results.
const WAIT_TICK: Duration = Duration::from_millis(100);

/// One node address's slot in the pool.
enum Slot {
    /// An idle, believed-good connection.
    Ready(NodeClient),
    /// Connect failed earlier this operation: every further touch
    /// fast-fails without a new connect attempt.
    Dead,
}

/// One node's slice of a batch: address, pooled slot, indexed jobs.
type NodeWork<F> = (String, Option<Slot>, Vec<(usize, F)>);

/// What [`drive`] hands back: the slot to re-pool (`None` = dropped),
/// connect attempts made, and the per-job results.
type Driven<T> = (Option<Slot>, u32, Vec<(usize, Result<T, StoreError>)>);

/// Result of a [`ParallelConnSet::run_first_n`].
pub(crate) struct FirstN<T> {
    /// Per-job outcome; `None` = still in flight when the harvest
    /// happened (an abandoned straggler).
    pub outcomes: Vec<Option<Result<T, StoreError>>>,
    /// Issue-to-completion time per job (`None` for abandoned jobs).
    pub elapsed: Vec<Option<Duration>>,
    /// Whether the per-operation deadline expired before the predicate
    /// was satisfied or every job completed.
    pub timed_out: bool,
}

/// Shared completion board of one first-n fan-out.
struct Board<T> {
    state: Mutex<BoardState<T>>,
    progress: Condvar,
}

struct BoardState<T> {
    outcomes: Vec<Option<Result<T, StoreError>>>,
    elapsed: Vec<Option<Duration>>,
    done: usize,
    /// Set once the caller has taken the results: late finishers must
    /// not touch the (already moved-out) vectors, and their connections
    /// are dropped rather than returned.
    harvested: bool,
    /// Slots (and connect-attempt counts) to fold back into the pool.
    returns: Vec<(String, Option<Slot>, u32)>,
}

/// A pool of at-most-one connection per node address, scoped to one
/// cluster operation, with concurrent batch execution.
pub(crate) struct ParallelConnSet {
    timeout: Duration,
    /// Absolute deadline of the operation this set serves (`None` =
    /// unbounded; only the per-I/O `timeout` applies).
    deadline: Option<Instant>,
    slots: HashMap<String, Slot>,
    /// Connect attempts per address — observability, and the proof that
    /// a dead node is dialed once per operation, not once per object.
    connects: HashMap<String, u32>,
}

impl ParallelConnSet {
    pub(crate) fn new(timeout: Duration, deadline: Option<Instant>) -> ParallelConnSet {
        ParallelConnSet {
            timeout,
            deadline,
            slots: HashMap::new(),
            connects: HashMap::new(),
        }
    }

    /// The per-I/O budget right now: the configured timeout, shrunk to
    /// the operation deadline's remaining time. [`StoreError::Timeout`]
    /// once the deadline is spent.
    fn io_budget(&self) -> Result<Duration, StoreError> {
        match self.deadline {
            None => Ok(self.timeout),
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    Err(StoreError::Timeout)
                } else {
                    Ok(self.timeout.min(remaining))
                }
            }
        }
    }

    /// How many times this operation actually dialed `addr`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn connect_attempts(&self, addr: &str) -> u32 {
        self.connects.get(addr).copied().unwrap_or(0)
    }

    /// Run one job against one node on the pooled connection (the
    /// serial path, for low-volume touches).
    pub(crate) fn with<T>(
        &mut self,
        addr: &str,
        f: impl FnOnce(&mut NodeClient) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let budget = self.io_budget()?;
        let slot = self.slots.remove(addr);
        let (slot, attempts, mut outs) = drive(addr, slot, budget, vec![(0usize, f)]);
        self.credit(addr.to_string(), slot, attempts);
        outs.pop().expect("exactly one job ran").1
    }

    /// Run every job concurrently — one scoped thread per distinct
    /// address, same-address jobs serialized on that address's single
    /// connection — and return the results in job order. The whole
    /// batch costs ~max(per-node time).
    pub(crate) fn run_batch<T, F>(
        &mut self,
        jobs: Vec<(String, F)>,
    ) -> Vec<Result<T, StoreError>>
    where
        T: Send,
        F: FnOnce(&mut NodeClient) -> Result<T, StoreError> + Send,
    {
        let budget = match self.io_budget() {
            Ok(b) => b,
            Err(_) => return jobs.into_iter().map(|_| Err(StoreError::Timeout)).collect(),
        };
        let count = jobs.len();
        // Group by address, preserving per-address job order.
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, Vec<(usize, F)>> = HashMap::new();
        for (idx, (addr, job)) in jobs.into_iter().enumerate() {
            match groups.get_mut(&addr) {
                Some(list) => list.push((idx, job)),
                None => {
                    order.push(addr.clone());
                    groups.insert(addr, vec![(idx, job)]);
                }
            }
        }
        let mut results: Vec<Option<Result<T, StoreError>>> =
            (0..count).map(|_| None).collect();
        for wave in order.chunks(MAX_FANOUT) {
            let work: Vec<NodeWork<F>> = wave
                .iter()
                .map(|addr| {
                    (
                        addr.clone(),
                        self.slots.remove(addr),
                        groups.remove(addr).expect("grouped above"),
                    )
                })
                .collect();
            let finished: Vec<(String, Driven<T>)> =
                thread::scope(|s| {
                    let handles: Vec<_> = work
                        .into_iter()
                        .map(|(addr, slot, jobs)| {
                            s.spawn(move || {
                                let driven = drive(&addr, slot, budget, jobs);
                                (addr, driven)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|panic| {
                                std::panic::resume_unwind(panic)
                            })
                        })
                        .collect()
                });
            for (addr, (slot, attempts, outs)) in finished {
                self.credit(addr, slot, attempts);
                for (idx, result) in outs {
                    results[idx] = Some(result);
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every job was dispatched"))
            .collect()
    }

    /// Issue every job on its own detached worker and return as soon as
    /// enough of them finished (or every job finished, or the deadline
    /// expired). Stragglers are abandoned: their slot entry leaves the
    /// pool (the next touch of that address reconnects) and whatever
    /// they produce is dropped.
    ///
    /// Two completion predicates over the partial outcomes:
    ///
    /// * `prefer` — the ideal stopping set; return the moment it holds;
    /// * `stop` — a sufficient set. Once it holds the wait *lingers*
    ///   briefly — half the time taken to reach it — hoping `prefer`
    ///   lands too, then returns anyway.
    ///
    /// The linger is the hedged-read compromise: when `stop` is merely
    /// sufficient (an MDS "any n of n + p" read that would pay an extra
    /// reconstruction) and the outstanding fetches are only
    /// microseconds behind the n-th arrival — the common case on
    /// uniform-latency clusters — a wait proportional to the observed
    /// round-trip collects them and the cheap path applies. A genuinely
    /// slow straggler (the case first-n reads exist for) blows through
    /// the linger and is abandoned at ~1.5x the fast-node RTT, nowhere
    /// near the straggler's. Pass the same closure for both to disable
    /// the distinction.
    pub(crate) fn run_first_n<T, F>(
        &mut self,
        jobs: Vec<(String, F)>,
        prefer: impl Fn(&[Option<Result<T, StoreError>>]) -> bool,
        stop: impl Fn(&[Option<Result<T, StoreError>>]) -> bool,
    ) -> FirstN<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut NodeClient) -> Result<T, StoreError> + Send + 'static,
    {
        let count = jobs.len();
        let budget = match self.io_budget() {
            Ok(b) => b,
            Err(_) => {
                return FirstN {
                    outcomes: (0..count).map(|_| None).collect(),
                    elapsed: vec![None; count],
                    timed_out: true,
                }
            }
        };
        let board = Arc::new(Board {
            state: Mutex::new(BoardState {
                outcomes: (0..count).map(|_| None).collect(),
                elapsed: vec![None; count],
                done: 0,
                harvested: false,
                returns: Vec::new(),
            }),
            progress: Condvar::new(),
        });
        for (idx, (addr, job)) in jobs.into_iter().enumerate() {
            let slot = self.slots.remove(&addr);
            let worker_board = board.clone();
            let spawned = thread::Builder::new()
                .name(format!("store-fanout-{idx}"))
                .spawn(move || {
                    let start = Instant::now();
                    let (slot, attempts, mut outs) =
                        drive(&addr, slot, budget, vec![(idx, job)]);
                    let result = outs.pop().expect("exactly one job ran").1;
                    let mut st = lock(&worker_board.state);
                    if st.harvested {
                        return; // straggler: result unwanted, conn dropped
                    }
                    st.outcomes[idx] = Some(result);
                    st.elapsed[idx] = Some(start.elapsed());
                    st.done += 1;
                    st.returns.push((addr, slot, attempts));
                    drop(st);
                    worker_board.progress.notify_all();
                });
            if spawned.is_err() {
                // Spawn failure (resource exhaustion): the job and slot
                // are gone with the dropped closure; record the loss so
                // the caller is not left waiting on a job that never ran.
                let mut st = lock(&board.state);
                st.outcomes[idx] = Some(Err(StoreError::Io(std::io::Error::other(
                    "could not spawn a fan-out worker",
                ))));
                st.elapsed[idx] = Some(Duration::ZERO);
                st.done += 1;
            }
        }
        let issued = Instant::now();
        let mut linger_until: Option<Instant> = None;
        let mut timed_out = false;
        let mut st = lock(&board.state);
        loop {
            if st.done == count || prefer(&st.outcomes) {
                break;
            }
            let now = Instant::now();
            if stop(&st.outcomes) {
                // Sufficient but not ideal: linger for `prefer` by half
                // of the time the sufficient set took to arrive.
                let until = *linger_until
                    .get_or_insert_with(|| now + now.duration_since(issued) / 2);
                if now >= until {
                    break;
                }
            }
            if let Some(deadline) = self.deadline {
                if now >= deadline {
                    timed_out = true;
                    break;
                }
            }
            let mut wait = self
                .deadline
                .map(|d| d.saturating_duration_since(now).min(WAIT_TICK))
                .unwrap_or(WAIT_TICK);
            if let Some(until) = linger_until {
                wait = wait.min(until.saturating_duration_since(now)).max(Duration::from_micros(100));
            }
            st = board
                .progress
                .wait_timeout(st, wait)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
        st.harvested = true;
        let outcomes = mem::take(&mut st.outcomes);
        let elapsed = mem::take(&mut st.elapsed);
        let returns = mem::take(&mut st.returns);
        drop(st);
        for (addr, slot, attempts) in returns {
            self.credit(addr, slot, attempts);
        }
        FirstN { outcomes, elapsed, timed_out }
    }

    /// Fold a worker's slot and connect-attempt count back into the
    /// pool (`None` slot = connection dropped as possibly desynced).
    fn credit(&mut self, addr: String, slot: Option<Slot>, attempts: u32) {
        if attempts > 0 {
            *self.connects.entry(addr.clone()).or_insert(0) += attempts;
        }
        if let Some(slot) = slot {
            self.slots.insert(addr, slot);
        }
    }
}

/// Drive `jobs` serially over `addr`'s single connection, applying the
/// lifecycle rules (connect failure ⇒ dead for the operation; `Remote`
/// answer keeps the connection; any other failure drops it and the
/// next job reconnects). Returns the slot to pool (`None` = dropped),
/// the connect attempts made, and the per-job results.
fn drive<T, F>(
    addr: &str,
    slot: Option<Slot>,
    budget: Duration,
    jobs: Vec<(usize, F)>,
) -> Driven<T>
where
    F: FnOnce(&mut NodeClient) -> Result<T, StoreError>,
{
    let mut conn = None;
    let mut dead = false;
    match slot {
        Some(Slot::Ready(mut c)) => {
            let _ = c.set_io_timeout(budget);
            conn = Some(c);
        }
        Some(Slot::Dead) => dead = true,
        None => {}
    }
    let mut attempts = 0u32;
    let mut outs = Vec::with_capacity(jobs.len());
    for (idx, job) in jobs {
        if dead {
            outs.push((idx, Err(dead_err(addr))));
            continue;
        }
        if conn.is_none() {
            attempts += 1;
            match NodeClient::connect(addr, budget) {
                Ok(c) => conn = Some(c),
                Err(e) => {
                    dead = true;
                    outs.push((idx, Err(e)));
                    continue;
                }
            }
        }
        let c = conn.as_mut().expect("connected above");
        match job(c) {
            Ok(v) => outs.push((idx, Ok(v))),
            Err(e @ StoreError::Remote { .. }) => outs.push((idx, Err(e))),
            Err(e) => {
                conn = None;
                outs.push((idx, Err(e)));
            }
        }
    }
    let slot = if dead { Some(Slot::Dead) } else { conn.map(Slot::Ready) };
    (slot, attempts, outs)
}

fn dead_err(addr: &str) -> StoreError {
    StoreError::Io(std::io::Error::new(
        std::io::ErrorKind::ConnectionRefused,
        format!("node {addr} is unreachable (marked dead this operation)"),
    ))
}
