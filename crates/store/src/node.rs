//! The shard node: a [`BlobStore`] served over the framed TCP protocol.
//!
//! The threading model mirrors `xor_runtime::ExecPool`: one acceptor
//! thread pushes connections into a `Mutex<VecDeque>` + `Condvar` queue
//! and a small fixed set of worker threads pops and serves them — no
//! thread-per-connection, no async runtime, bounded memory under a
//! connection flood (the queue has a hard cap; overflow connections are
//! dropped at accept).
//!
//! Hostile-input posture: a frame's length prefix is bounded before any
//! allocation ([`crate::proto::MAX_BODY`]), malformed payloads get typed
//! `ERR` responses on an intact stream, and framing-level damage gets
//! one `ERR BadFrame` answer before the connection is closed (after a
//! framing error the stream position is unknowable). A worker stuck on
//! a silent peer gives up after [`FRAME_DEADLINE`]; an in-flight
//! shutdown is noticed within [`POLL_TICK`].

use crate::blob::{BlobError, BlobStore};
use crate::error::RemoteErrorCode;
use crate::proto::{
    self, err_payload, op, read_frame, status, write_frame, Frame, FrameError,
    PayloadReader,
};
use crate::tree::HashBlob;
use ec_wire::merkle::MerkleTree;
use std::collections::VecDeque;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use xor_runtime::lock_unpoisoned as lock;

/// How often a blocked worker re-checks the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// A peer that started a frame must finish it within this budget
/// (slow-loris bound); an idle connection may sit quietly for
/// [`IDLE_DEADLINE`] between frames.
const FRAME_DEADLINE: Duration = Duration::from_secs(10);

/// Idle connections are closed after this long without a frame.
const IDLE_DEADLINE: Duration = Duration::from_secs(60);

/// Accepted-but-unserved connections beyond this are dropped (connection
/// floods must not grow server memory).
const ACCEPT_BACKLOG: usize = 1024;

/// Default worker-thread count when `workers == 0`.
const DEFAULT_WORKERS: usize = 4;

struct Shared {
    store: BlobStore,
    shutdown: AtomicBool,
    /// Connections awaiting a worker, each with the instant it went
    /// idle (preserved across yields so the idle deadline still fires
    /// for a connection that keeps getting requeued).
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    ready: Condvar,
    /// Artificial per-request service delay (RTT injection for latency
    /// benchmarks and the CI slow-node round). Applied after a request
    /// frame is read, before it is dispatched.
    response_delay: Option<Duration>,
    /// When set, [`Shared::response_delay`] applies only to keyed
    /// requests whose key starts with this prefix (e.g. `"s:"` to slow
    /// shard traffic while manifest traffic stays fast).
    delay_key_prefix: Option<String>,
}

/// Tuning knobs for [`NodeHandle::spawn_with`].
#[derive(Clone, Debug, Default)]
pub struct NodeOptions {
    /// Connection-serving threads (`0` = default).
    pub workers: usize,
    /// Sleep this long before answering each request — a deterministic
    /// stand-in for network RTT, used to demonstrate that cluster
    /// operations pay max-of-RTT rather than sum-of-RTT.
    pub response_delay: Option<Duration>,
    /// Restrict [`NodeOptions::response_delay`] to keyed requests whose
    /// key starts with this prefix. `None` delays every request.
    pub delay_key_prefix: Option<String>,
}

/// A running shard node. Dropping the handle (or calling
/// [`NodeHandle::shutdown`]) stops the acceptor, drains the workers and
/// closes every in-flight connection.
pub struct NodeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl NodeHandle {
    /// Serve `dir` on `bind` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) with `workers` connection-serving threads (`0` = default).
    pub fn spawn(dir: &Path, bind: &str, workers: usize) -> std::io::Result<NodeHandle> {
        NodeHandle::spawn_with(dir, bind, NodeOptions { workers, ..NodeOptions::default() })
    }

    /// [`NodeHandle::spawn`] with the full option set.
    pub fn spawn_with(dir: &Path, bind: &str, opts: NodeOptions) -> std::io::Result<NodeHandle> {
        let store = BlobStore::open(dir)?;
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            response_delay: opts.response_delay,
            delay_key_prefix: opts.delay_key_prefix,
        });
        let workers = if opts.workers == 0 { DEFAULT_WORKERS } else { opts.workers };
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = shared.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("store-accept-{addr}"))
                    .spawn(move || acceptor_loop(&listener, &shared))?,
            );
        }
        for i in 0..workers {
            let shared = shared.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("store-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(NodeHandle { addr, shared, threads })
    }

    /// The address the node is actually listening on (resolves the
    /// ephemeral port of a `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop serving: the acceptor exits, queued and in-flight
    /// connections are dropped, and all threads are joined. From the
    /// clients' perspective the node is dead (connection refused /
    /// reset) — this is also how tests and the example kill nodes.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of `accept()` with a throwaway
        // connection, and the workers out of their condvar wait.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        self.shared.ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _peer)) = conn else {
            // Persistent accept failures (EMFILE under an fd-exhaustion
            // flood) would otherwise busy-spin at 100% CPU.
            thread::sleep(Duration::from_millis(10));
            continue;
        };
        // Short read timeouts let workers poll the shutdown flag; the
        // write timeout bounds a worker stuck sending to a stalled peer.
        let _ = stream.set_read_timeout(Some(POLL_TICK));
        let _ = stream.set_write_timeout(Some(FRAME_DEADLINE));
        let _ = stream.set_nodelay(true);
        let mut q = lock(&shared.queue);
        if q.len() >= ACCEPT_BACKLOG {
            continue; // drop the connection: flood protection
        }
        q.push_back((stream, Instant::now()));
        drop(q);
        shared.ready.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (stream, idle_since) = {
            let mut q = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(s) = q.pop_front() {
                    break s;
                }
                q = shared
                    .ready
                    .wait_timeout(q, POLL_TICK)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        };
        // A panic while serving one connection (a bug, or an assert in
        // a lower layer) must not shrink the worker pool for the node's
        // lifetime — contain it and move to the next connection.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_connection(stream, idle_since, shared)
        }));
        if let Ok(ConnOutcome::Yield(stream, idle_since)) = outcome {
            let mut q = lock(&shared.queue);
            if q.len() < ACCEPT_BACKLOG {
                q.push_back((stream, idle_since));
                drop(q);
                shared.ready.notify_one();
            }
        }
    }
}

/// What a worker should do with a connection it stopped serving.
enum ConnOutcome {
    /// Finished (EOF, error, deadline, shutdown): drop it.
    Done,
    /// Idle while other connections were waiting: requeue it (with its
    /// original idle timestamp, so the idle deadline still accrues).
    Yield(TcpStream, Instant),
}

/// Wraps the socket so `read_frame` blocks *interruptibly* while a
/// frame is in flight: timeouts are swallowed and retried until the
/// frame deadline passes (slow-loris bound) or the node shuts down.
/// Idle waiting *between* frames lives in [`serve_connection`], which
/// can yield the worker instead of camping on a silent peer.
struct PatientReader<'a> {
    stream: &'a TcpStream,
    shared: &'a Shared,
    deadline: Instant,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "node shutting down",
                ));
            }
            // Checked every iteration — not only on timeouts — so a
            // peer trickling one byte per poll tick cannot dodge the
            // slow-loris bound by keeping each read() successful.
            if Instant::now() > self.deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "frame not completed in time",
                ));
            }
            let mut sock = self.stream; // `impl Read for &TcpStream`
            match sock.read(buf) {
                Ok(n) => return Ok(n),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    mut idle_since: Instant,
    shared: &Shared,
) -> ConnOutcome {
    loop {
        // Idle phase: wait for the first byte of the next frame without
        // monopolizing the worker. A silent connection yields whenever
        // other connections are queued, so `workers` quiet peers cannot
        // starve the node.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return ConnOutcome::Done, // EOF between frames
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return ConnOutcome::Done;
                }
                if Instant::now().duration_since(idle_since) > IDLE_DEADLINE {
                    return ConnOutcome::Done;
                }
                if !lock(&shared.queue).is_empty() {
                    return ConnOutcome::Yield(stream, idle_since);
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ConnOutcome::Done,
        }
        // A frame has begun: read it whole under the slow-loris bound.
        let frame = {
            let mut reader = PatientReader {
                stream: &stream,
                shared,
                deadline: Instant::now() + FRAME_DEADLINE,
            };
            read_frame(&mut reader)
        };
        match frame {
            Ok(frame) => {
                // RTT injection for benchmarks: pretend the request
                // spent `response_delay` on the wire. Sleep in poll-tick
                // slices so shutdown still lands promptly.
                if let Some(delay) = shared.response_delay.filter(|_| delay_applies(shared, &frame)) {
                    let until = Instant::now() + delay;
                    while Instant::now() < until {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            return ConnOutcome::Done;
                        }
                        thread::sleep(POLL_TICK.min(until.saturating_duration_since(Instant::now())));
                    }
                }
                // Payload-level errors answer with a typed ERR on an
                // intact stream and keep serving; only a failed write
                // (or the framing errors below) closes the connection.
                // The response echoes the request's id (and with it the
                // frame version): a version-1 peer gets a version-1
                // answer, a pipelining peer gets its id back.
                let (tag, payload) = dispatch(&frame, &shared.store);
                if write_frame(&mut stream, tag, frame.request_id, &[&payload]).is_err() {
                    return ConnOutcome::Done;
                }
                idle_since = Instant::now();
            }
            Err(FrameError::Eof) => return ConnOutcome::Done,
            Err(e) => {
                // One best-effort typed answer, then close: after a
                // framing error the stream position is unknowable.
                // No request id was recovered from the broken frame, so
                // the answer is a version-1 (id-less) frame.
                let payload = err_payload(RemoteErrorCode::BadFrame, &e.detail());
                let _ = write_frame(&mut stream, status::ERR, None, &[&payload]);
                // Half-close and briefly drain what the peer already
                // sent: closing a socket with unread received bytes
                // RSTs the connection, which would destroy the ERR
                // answer before the peer can read it.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let deadline = Instant::now() + Duration::from_millis(250);
                let mut sink = [0u8; 4096];
                let mut s = &stream;
                while Instant::now() < deadline {
                    match s.read(&mut sink) {
                        Ok(0) => break,
                        Ok(_) => {}
                        Err(err)
                            if matches!(
                                err.kind(),
                                std::io::ErrorKind::WouldBlock
                                    | std::io::ErrorKind::TimedOut
                            ) => {}
                        Err(_) => break,
                    }
                }
                return ConnOutcome::Done;
            }
        }
    }
}

/// Whether the injected [`Shared::response_delay`] applies to `frame`.
/// With no key-prefix filter every request is delayed; with one, only
/// keyed requests (put/get/delete/stat) whose key matches the prefix.
fn delay_applies(shared: &Shared, frame: &Frame) -> bool {
    let Some(prefix) = &shared.delay_key_prefix else {
        return true;
    };
    if !matches!(frame.tag, op::PUT_SHARD | op::GET_SHARD | op::DELETE | op::STAT) {
        return false;
    }
    let mut r = PayloadReader::new(&frame.payload);
    r.key().map(|key| key.starts_with(prefix.as_str())).unwrap_or(false)
}

/// Handle one parsed request frame; returns the response tag + payload.
fn dispatch(frame: &Frame, store: &BlobStore) -> (u8, Vec<u8>) {
    match handle(frame, store) {
        Ok(payload) => (status::OK, payload),
        Err((code, msg)) => (status::ERR, err_payload(code, &msg)),
    }
}

type Handled = Result<Vec<u8>, (RemoteErrorCode, String)>;

fn blob_err(e: BlobError) -> (RemoteErrorCode, String) {
    match e {
        BlobError::NotFound => (RemoteErrorCode::NotFound, "no such key".into()),
        BlobError::Corrupt(msg) => (RemoteErrorCode::CorruptBlob, msg),
        BlobError::Io(e) => (RemoteErrorCode::Io, e.to_string()),
    }
}

fn bad_req(msg: String) -> (RemoteErrorCode, String) {
    (RemoteErrorCode::BadRequest, msg)
}

fn handle(frame: &Frame, store: &BlobStore) -> Handled {
    let mut r = PayloadReader::new(&frame.payload);
    match frame.tag {
        op::PUT_SHARD => {
            let key = r.key().map_err(bad_req)?;
            let data = r.rest();
            store.put(key, data).map_err(blob_err)?;
            Ok(Vec::new())
        }
        op::GET_SHARD => {
            let key = r.key().map_err(bad_req)?;
            r.finish().map_err(bad_req)?;
            let payload = store.get(key).map_err(blob_err)?;
            // The blob layer allows up to 4 GiB; the frame layer does
            // not. A blob written out-of-band past the frame cap must
            // get a typed answer, not panic `write_frame`'s contract.
            if payload.len() + 6 > proto::MAX_BODY {
                return Err((
                    RemoteErrorCode::Io,
                    format!(
                        "blob of {} bytes exceeds the {}-byte frame cap",
                        payload.len(),
                        proto::MAX_BODY
                    ),
                ));
            }
            Ok(payload)
        }
        op::DELETE => {
            let key = r.key().map_err(bad_req)?;
            r.finish().map_err(bad_req)?;
            let existed = store.delete(key).map_err(blob_err)?;
            Ok(vec![existed as u8])
        }
        op::LIST => {
            let prefix = r.str_bounded(proto::MAX_KEY, "prefix").map_err(bad_req)?;
            r.finish().map_err(bad_req)?;
            let keys = store.list(prefix).map_err(|e| blob_err(e.into()))?;
            let mut payload = Vec::new();
            payload.extend_from_slice(&(keys.len() as u32).to_le_bytes());
            for key in &keys {
                proto::put_str(&mut payload, key);
            }
            if payload.len() + 6 > proto::MAX_BODY {
                return Err(bad_req(format!(
                    "listing of {} keys exceeds the frame cap; narrow the prefix",
                    keys.len()
                )));
            }
            Ok(payload)
        }
        op::LIST_AGED => {
            let prefix = r.str_bounded(proto::MAX_KEY, "prefix").map_err(bad_req)?;
            r.finish().map_err(bad_req)?;
            let entries = store.list_meta(prefix).map_err(|e| blob_err(e.into()))?;
            let mut payload = Vec::new();
            payload.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (key, age_secs, len) in &entries {
                proto::put_str(&mut payload, key);
                payload.extend_from_slice(&age_secs.to_le_bytes());
                payload.extend_from_slice(&len.to_le_bytes());
            }
            if payload.len() + 6 > proto::MAX_BODY {
                return Err(bad_req(format!(
                    "listing of {} keys exceeds the frame cap; narrow the prefix",
                    entries.len()
                )));
            }
            Ok(payload)
        }
        op::STAT => {
            let key = r.key().map_err(bad_req)?;
            r.finish().map_err(bad_req)?;
            let stat = store.stat(key).map_err(blob_err)?;
            let mut payload = Vec::with_capacity(13);
            payload.extend_from_slice(&stat.len.to_le_bytes());
            payload.extend_from_slice(&stat.crc.to_le_bytes());
            payload.push(stat.ok as u8);
            Ok(payload)
        }
        op::HEALTH => {
            r.finish().map_err(bad_req)?;
            let (blobs, bytes) = store.usage().map_err(|e| blob_err(e.into()))?;
            let mut payload = Vec::with_capacity(16);
            payload.extend_from_slice(&blobs.to_le_bytes());
            payload.extend_from_slice(&bytes.to_le_bytes());
            Ok(payload)
        }
        op::HASH_SUBTREE => {
            let key = r.key().map_err(bad_req)?;
            let leaf_size = r.u32().map_err(bad_req)?;
            let source = r.u8().map_err(bad_req)?;
            let level = r.u8().map_err(bad_req)?;
            let start = r.u32().map_err(bad_req)? as usize;
            let count = r.u32().map_err(bad_req)? as usize;
            r.finish().map_err(bad_req)?;
            if leaf_size == 0 {
                return Err(bad_req("zero leaf size".into()));
            }
            // Both trees are rebuilt on demand rather than cached: a
            // scrub asks for a handful of levels per shard, and
            // recomputation is what makes the *computed* answer reflect
            // the blob bytes as they are right now — the whole point.
            let tree = match source {
                0 => {
                    let shard = store.get(key).map_err(blob_err)?;
                    MerkleTree::from_payload(&shard, leaf_size as usize)
                }
                1 => {
                    let blob = store.get(key).map_err(blob_err)?;
                    let hashes = HashBlob::from_bytes(&blob).map_err(|e| {
                        (RemoteErrorCode::CorruptBlob, e.to_string())
                    })?;
                    if hashes.leaf_size != leaf_size {
                        return Err((
                            RemoteErrorCode::CorruptBlob,
                            format!(
                                "stored hash blob is at leaf size {}, requested {leaf_size}",
                                hashes.leaf_size
                            ),
                        ));
                    }
                    MerkleTree::from_leaves(hashes.leaves)
                }
                other => return Err(bad_req(format!("unknown hash source {other}"))),
            };
            let nodes = tree
                .level(level as usize)
                .ok_or_else(|| bad_req(format!("level {level} above the root")))?;
            let end = start
                .checked_add(count)
                .filter(|&e| e <= nodes.len())
                .ok_or_else(|| {
                    bad_req(format!(
                        "slice [{start}, {start}+{count}) outside level {level} of \
                         width {}",
                        nodes.len()
                    ))
                })?;
            let slice = &nodes[start..end];
            let mut payload = Vec::with_capacity(4 + slice.len() * 32);
            payload.extend_from_slice(&(slice.len() as u32).to_le_bytes());
            for node in slice {
                payload.extend_from_slice(node);
            }
            if payload.len() + 6 > proto::MAX_BODY {
                return Err(bad_req("hash slice exceeds the frame cap".into()));
            }
            Ok(payload)
        }
        other => Err(bad_req(format!("unknown opcode {other:#04x}"))),
    }
}
