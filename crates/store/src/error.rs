//! Error type of the object-store subsystem.

use ec_core::EcError;
use std::fmt;

/// A typed error code carried on the wire in `ERR` response frames
/// (`docs/STORE.md`). The numeric values are part of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RemoteErrorCode {
    /// The requested key does not exist on this node.
    NotFound = 1,
    /// The stored blob failed its CRC or framing check (bit-rot on the
    /// node's disk — attributable to this shard, repairable from peers).
    CorruptBlob = 2,
    /// The request frame parsed but its payload is malformed (bad key
    /// length, oversized key, trailing bytes, unknown opcode, …).
    BadRequest = 3,
    /// The node failed on a local I/O operation.
    Io = 4,
    /// The byte stream is not a valid protocol frame (bad length prefix,
    /// CRC mismatch, unsupported version). The node answers once and
    /// closes the connection: after a framing error the stream position
    /// is unknowable.
    BadFrame = 5,
}

impl RemoteErrorCode {
    /// Decode a wire byte; unknown values map to `None` (a future node
    /// speaking a newer protocol revision).
    pub fn from_wire(b: u8) -> Option<RemoteErrorCode> {
        match b {
            1 => Some(RemoteErrorCode::NotFound),
            2 => Some(RemoteErrorCode::CorruptBlob),
            3 => Some(RemoteErrorCode::BadRequest),
            4 => Some(RemoteErrorCode::Io),
            5 => Some(RemoteErrorCode::BadFrame),
            _ => None,
        }
    }
}

impl fmt::Display for RemoteErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RemoteErrorCode::NotFound => "not found",
            RemoteErrorCode::CorruptBlob => "corrupt blob",
            RemoteErrorCode::BadRequest => "bad request",
            RemoteErrorCode::Io => "i/o failure",
            RemoteErrorCode::BadFrame => "bad frame",
        };
        f.write_str(s)
    }
}

/// Everything that can go wrong in the store: node-local failures,
/// protocol violations, and cluster-level unavailability.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure (socket, disk).
    Io(std::io::Error),
    /// A codec-level failure bubbled up from `ec-core`.
    Codec(EcError),
    /// The peer sent bytes that do not form a valid protocol frame, or a
    /// frame whose payload is malformed. Detected *locally* (contrast
    /// [`StoreError::Remote`]).
    Protocol(String),
    /// The remote node answered with a typed `ERR` frame.
    Remote { code: RemoteErrorCode, message: String },
    /// The object has no manifest on any reachable node.
    NotFound(String),
    /// Too few shards of the object are retrievable to reconstruct it.
    Unavailable { object: String, needed: usize, have: usize },
    /// A stored manifest is malformed or inconsistent.
    Manifest(String),
    /// Invalid caller-supplied arguments (object name, geometry, node
    /// set).
    InvalidArg(String),
    /// A per-operation deadline (or a per-I/O socket timeout) expired
    /// before the operation completed.
    Timeout,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            StoreError::Remote { code, message } => {
                write!(f, "remote error ({code}): {message}")
            }
            StoreError::NotFound(object) => {
                write!(f, "object `{object}` not found on any reachable node")
            }
            StoreError::Unavailable { object, needed, have } => write!(
                f,
                "object `{object}` unavailable: {have} of the {needed} shards \
                 needed for reconstruction are retrievable"
            ),
            StoreError::Manifest(msg) => write!(f, "invalid manifest: {msg}"),
            StoreError::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
            StoreError::Timeout => f.write_str("operation deadline exceeded"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        // A socket read/write timeout surfaces as WouldBlock or TimedOut
        // depending on the platform; both mean "the deadline expired",
        // which callers want to see as the typed variant.
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            StoreError::Timeout
        } else {
            StoreError::Io(e)
        }
    }
}

impl From<EcError> for StoreError {
    fn from(e: EcError) -> Self {
        StoreError::Codec(e)
    }
}
