//! The node-local blob store: a directory of CRC-trailed blob files.
//!
//! Each blob is one file (PR-4-style framing, see `docs/STORE.md`):
//!
//! ```text
//! [8  magic "XSLPECB1"][u32 LE payload_len][payload][u32 LE CRC-32(payload)]
//! ```
//!
//! so bit-rot is *attributable per shard*: a read either returns exactly
//! the stored bytes or a typed [`BlobError::Corrupt`] naming what is
//! wrong (truncation, framing, checksum). Keys are arbitrary short UTF-8
//! strings, hex-encoded into file names so the key namespace cannot
//! escape the store directory. Writes go to a temp file and `rename`
//! into place, so a crashed node never leaves a half-written blob under
//! a live key.

use ec_wire::crc32;
use std::fs;
use std::io::{ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every blob file.
pub const BLOB_MAGIC: [u8; 8] = *b"XSLPECB1";

/// Fixed framing overhead: magic + length prefix + CRC trailer.
pub const BLOB_OVERHEAD: u64 = 16;

/// File-name suffix of blob files (temp files use `.tmp` instead; scans
/// ignore them and [`BlobStore::open`] sweeps crash leftovers).
const BLOB_SUFFIX: &str = ".blob";

/// Why a stored blob could not be returned.
#[derive(Debug)]
pub enum BlobError {
    /// No blob under this key.
    NotFound,
    /// The file exists but its framing or checksum is wrong; the string
    /// names the specific damage.
    Corrupt(String),
    /// Underlying filesystem failure.
    Io(std::io::Error),
}

impl From<std::io::Error> for BlobError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            ErrorKind::NotFound => BlobError::NotFound,
            _ => BlobError::Io(e),
        }
    }
}

/// Result of [`BlobStore::stat`]: size and integrity without shipping
/// the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlobStat {
    /// Payload length recorded in the frame.
    pub len: u64,
    /// CRC-32 recorded in the trailer.
    pub crc: u32,
    /// Whether the payload re-hashes to the recorded CRC and the framing
    /// is intact.
    pub ok: bool,
}

/// A directory of CRC-framed blobs.
pub struct BlobStore {
    root: PathBuf,
}

impl BlobStore {
    /// Open (creating if needed) a blob directory. Temp files orphaned
    /// by a crash mid-`put` are swept here: no writer is live at open
    /// time, so any `.tmp` is garbage.
    pub fn open(root: &Path) -> std::io::Result<BlobStore> {
        fs::create_dir_all(root)?;
        for entry in fs::read_dir(root)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(&path);
            }
        }
        Ok(BlobStore { root: root.to_path_buf() })
    }

    /// The directory backing this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.root.join(format!("{}{BLOB_SUFFIX}", hex_encode(key.as_bytes())))
    }

    /// Store `data` under `key`, replacing any existing blob atomically.
    pub fn put(&self, key: &str, data: &[u8]) -> Result<(), BlobError> {
        // The frame's length prefix is u32: a larger blob would be
        // written with a wrapped length and read back as Corrupt, so
        // refuse it at write time instead.
        if data.len() as u64 > u32::MAX as u64 {
            return Err(BlobError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("blob of {} bytes exceeds the 4 GiB frame cap", data.len()),
            )));
        }
        // Unique temp name per call: concurrent writers of one key must
        // not truncate each other's in-flight temp file (last rename
        // wins, but every rename installs a *complete* frame).
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let final_path = self.path_for(key);
        let tmp_path = self.root.join(format!(
            "{}.{seq}.tmp",
            hex_encode(key.as_bytes())
        ));
        {
            let mut f = fs::File::create(&tmp_path)?;
            let write = (|| {
                f.write_all(&BLOB_MAGIC)?;
                f.write_all(&(data.len() as u32).to_le_bytes())?;
                f.write_all(data)?;
                f.write_all(&crc32(data).to_le_bytes())?;
                f.sync_data()
            })();
            if let Err(e) = write {
                drop(f);
                let _ = fs::remove_file(&tmp_path);
                return Err(e.into());
            }
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    /// Fetch the payload stored under `key`, verifying the frame.
    pub fn get(&self, key: &str) -> Result<Vec<u8>, BlobError> {
        let path = self.path_for(key);
        let mut f = fs::File::open(&path)?;
        let file_len = f.metadata()?.len();
        if file_len < BLOB_OVERHEAD {
            return Err(BlobError::Corrupt(format!(
                "file is {file_len} bytes, below the {BLOB_OVERHEAD}-byte frame minimum"
            )));
        }
        let mut head = [0u8; 12];
        f.read_exact(&mut head)?;
        if head[..8] != BLOB_MAGIC {
            return Err(BlobError::Corrupt("bad blob magic".into()));
        }
        let payload_len =
            u32::from_le_bytes(head[8..12].try_into().expect("fixed slice")) as u64;
        if file_len != BLOB_OVERHEAD + payload_len {
            return Err(BlobError::Corrupt(format!(
                "file is {file_len} bytes but the frame declares {} (truncated or grown)",
                BLOB_OVERHEAD + payload_len
            )));
        }
        let mut payload = vec![0u8; payload_len as usize];
        f.read_exact(&mut payload)?;
        let mut trailer = [0u8; 4];
        f.read_exact(&mut trailer)?;
        let stored = u32::from_le_bytes(trailer);
        let actual = crc32(&payload);
        if stored != actual {
            return Err(BlobError::Corrupt(format!(
                "payload CRC {actual:#010x} does not match stored {stored:#010x}"
            )));
        }
        Ok(payload)
    }

    /// Size and integrity of the blob under `key` (reads the payload to
    /// re-hash it, but never ships it anywhere).
    pub fn stat(&self, key: &str) -> Result<BlobStat, BlobError> {
        match self.get(key) {
            Ok(payload) => {
                let crc = crc32(&payload);
                Ok(BlobStat { len: payload.len() as u64, crc, ok: true })
            }
            Err(BlobError::Corrupt(_)) => {
                // Report what the frame *claims* so the caller can still
                // see the blob exists; `ok: false` marks it damaged.
                let path = self.path_for(key);
                let file_len = fs::metadata(&path)?.len();
                Ok(BlobStat {
                    len: file_len.saturating_sub(BLOB_OVERHEAD),
                    crc: 0,
                    ok: false,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Remove the blob under `key`. Returns whether it existed.
    pub fn delete(&self, key: &str) -> Result<bool, BlobError> {
        match fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// All keys starting with `prefix`, sorted. Stray files (temp files,
    /// foreign names) are ignored.
    pub fn list(&self, prefix: &str) -> std::io::Result<Vec<String>> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_suffix(BLOB_SUFFIX) else { continue };
            let Some(bytes) = hex_decode(hex) else { continue };
            let Ok(key) = String::from_utf8(bytes) else { continue };
            if key.starts_with(prefix) {
                keys.push(key);
            }
        }
        keys.sort();
        Ok(keys)
    }

    /// All keys starting with `prefix` as `(key, age_secs, len)`
    /// triples, sorted by key — the listing the scrub-time GC drives
    /// on, where plain [`BlobStore::list`] lacks the age and size.
    ///
    /// `age_secs` comes from the blob file's mtime — measured on *this
    /// node's* clock, so the GC's grace window needs no cross-node clock
    /// agreement. `len` is the payload length the frame claims (file
    /// size minus framing), good enough for reclaim accounting even on
    /// a damaged blob.
    pub fn list_meta(&self, prefix: &str) -> std::io::Result<Vec<(String, u64, u64)>> {
        let now = std::time::SystemTime::now();
        let mut entries = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_suffix(BLOB_SUFFIX) else { continue };
            let Some(bytes) = hex_decode(hex) else { continue };
            let Ok(key) = String::from_utf8(bytes) else { continue };
            if !key.starts_with(prefix) {
                continue;
            }
            let meta = entry.metadata()?;
            // A file whose mtime is in the future (clock step) ages as
            // zero: it stays inside the grace window, never the reverse.
            let age_secs = meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok())
                .map_or(0, |d| d.as_secs());
            let len = meta.len().saturating_sub(BLOB_OVERHEAD);
            entries.push((key, age_secs, len));
        }
        entries.sort();
        Ok(entries)
    }

    /// Blob count and total payload bytes (framing excluded), for
    /// `HEALTH` reporting.
    pub fn usage(&self) -> std::io::Result<(u64, u64)> {
        let mut count = 0u64;
        let mut bytes = 0u64;
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(BLOB_SUFFIX) {
                continue;
            }
            count += 1;
            bytes += entry.metadata()?.len().saturating_sub(BLOB_OVERHEAD);
        }
        Ok((count, bytes))
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> BlobStore {
        let dir = std::env::temp_dir().join(format!(
            "ec_store_blob_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        BlobStore::open(&dir).unwrap()
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let store = temp_store("roundtrip");
        assert!(matches!(store.get("k"), Err(BlobError::NotFound)));
        store.put("k", b"hello world").unwrap();
        assert_eq!(store.get("k").unwrap(), b"hello world");
        // Overwrite replaces.
        store.put("k", b"v2").unwrap();
        assert_eq!(store.get("k").unwrap(), b"v2");
        assert!(store.delete("k").unwrap());
        assert!(!store.delete("k").unwrap());
        assert!(matches!(store.get("k"), Err(BlobError::NotFound)));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn empty_payload_and_odd_keys() {
        let store = temp_store("oddkeys");
        for key in ["a", "s:003:obj/with/slashes", "m:..", "k\u{00e9}y"] {
            store.put(key, b"").unwrap();
            assert_eq!(store.get(key).unwrap(), b"");
        }
        let mut keys = store.list("").unwrap();
        keys.sort();
        assert_eq!(keys.len(), 4);
        assert_eq!(store.list("s:").unwrap(), vec!["s:003:obj/with/slashes"]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corruption_is_attributed() {
        let store = temp_store("corrupt");
        store.put("k", &[7u8; 100]).unwrap();
        let path = store.path_for("k");

        // Bit-flip in the payload → CRC mismatch.
        let mut bytes = fs::read(&path).unwrap();
        bytes[50] ^= 1;
        fs::write(&path, &bytes).unwrap();
        match store.get("k") {
            Err(BlobError::Corrupt(msg)) => assert!(msg.contains("CRC"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let stat = store.stat("k").unwrap();
        assert!(!stat.ok);

        // Truncation → length mismatch.
        store.put("k", &[7u8; 100]).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..40]).unwrap();
        match store.get("k") {
            Err(BlobError::Corrupt(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Below the frame minimum.
        fs::write(&path, b"xy").unwrap();
        assert!(matches!(store.get("k"), Err(BlobError::Corrupt(_))));

        // Bad magic.
        let mut bytes = vec![0u8; 20];
        bytes[0] = b'Z';
        fs::write(&path, &bytes).unwrap();
        match store.get("k") {
            Err(BlobError::Corrupt(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stat_reports_healthy_blobs() {
        let store = temp_store("stat");
        store.put("k", b"0123456789").unwrap();
        let stat = store.stat("k").unwrap();
        assert_eq!(stat, BlobStat { len: 10, crc: crc32(b"0123456789"), ok: true });
        assert!(matches!(store.stat("missing"), Err(BlobError::NotFound)));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn list_meta_reports_age_and_len() {
        let store = temp_store("listmeta");
        store.put("s:000g0000000000000001:obj", &[1u8; 64]).unwrap();
        store.put("s:001g0000000000000001:obj", &[2u8; 32]).unwrap();
        store.put("m:obj", b"manifest").unwrap();
        let entries = store.list_meta("s:").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "s:000g0000000000000001:obj");
        assert_eq!(entries[0].2, 64);
        assert_eq!(entries[1].2, 32);
        // Just written: well inside any real grace window.
        assert!(entries.iter().all(|(_, age, _)| *age < 60));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn usage_counts_blobs() {
        let store = temp_store("usage");
        store.put("a", &[0u8; 100]).unwrap();
        store.put("b", &[0u8; 50]).unwrap();
        // A stray non-blob file is not counted.
        fs::write(store.root().join("stray.txt"), b"x").unwrap();
        assert_eq!(store.usage().unwrap(), (2, 150));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn open_sweeps_crash_leftover_temp_files() {
        let store = temp_store("sweep");
        store.put("k", b"v").unwrap();
        let stray = store.root().join("deadbeef.17.tmp");
        fs::write(&stray, b"half-written").unwrap();
        // Re-open: the orphaned temp file is gone, the blob survives.
        let store = BlobStore::open(store.root()).unwrap();
        assert!(!stray.exists());
        assert_eq!(store.get("k").unwrap(), b"v");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn hex_codec_roundtrips() {
        for key in ["", "abc", "s:000:x", "\u{1F4BE}"] {
            let enc = hex_encode(key.as_bytes());
            assert_eq!(hex_decode(&enc).unwrap(), key.as_bytes());
        }
        assert!(hex_decode("abc").is_none()); // odd length
        assert!(hex_decode("zz").is_none()); // non-hex
    }
}
