//! `ec-store` — a networked erasure-coded object store on top of the
//! `ec-core` codec: the HDFS-style deployment the paper's introduction
//! motivates, where the SLP-optimized codec is fast enough that the
//! *system around it* is what needs engineering.
//!
//! The pieces:
//!
//! * **shard node** ([`NodeHandle`]): a directory-backed blob store
//!   served over a length-prefixed, CRC-framed binary protocol on plain
//!   `std::net` TCP (`docs/STORE.md`) — acceptor + worker-thread model,
//!   hostile-input hardened, blobs stored as CRC-trailed frames so
//!   bit-rot is attributable per shard;
//! * **cluster client** ([`Cluster`]): deterministic rendezvous
//!   placement with replicated shard-map [`Manifest`]s, striped `put`
//!   through any registered [`ec_core::ErasureCoder`] (the manifest
//!   records the codec; mismatches are typed errors, never garbage
//!   decodes), **first-n reads** (`get` issues all `n + p` shard
//!   fetches concurrently and returns on the first `n` that suffice,
//!   abandoning stragglers; degraded reads reconstruct through the
//!   decode-program LRU), delta `overwrite` (changed shards +
//!   per-column parity updates, not a full re-put), and online batch
//!   `repair_nodes` — any number of simultaneously-dead nodes rebuilt
//!   with one survivor fetch + one reconstruct per object, fetching
//!   only the codec's repair plan when it applies (under LRC a single
//!   lost shard reads just its locality group). Every multi-node
//!   exchange fans out concurrently over pipelined request-id framed
//!   connections, so operations cost ~max(per-node RTT), not the sum,
//!   and an optional per-op deadline surfaces as a typed timeout;
//! * **integrity** ([`Manifest`] v4 + [`HashBlob`]): every object
//!   carries per-shard SHA-256 Merkle roots and an object root in its
//!   manifest, with the leaf hashes cached beside each shard as a `t:`
//!   blob — so scrub verifies a healthy object by comparing 32-byte
//!   roots (zero payload bytes moved) and descends the tree over the
//!   `HASH_SUBTREE` opcode to name the exact damaged 64 KiB leaves,
//!   catching even CRC-colliding tampering end-to-end;
//! * **scrub** ([`ScrubScheduler`]): periodic end-to-end verification —
//!   per-shard manifest CRCs plus Merkle-root comparison (full
//!   data↔parity re-encode for pre-hash objects or on demand) — with
//!   automatic repair of what it finds, each rebuilt shard proven
//!   against its manifest root before it is published;
//! * the `xorslp-store` CLI wiring `serve` / `put` / `get` / `overwrite`
//!   / `delete` / `list` / `health` / `repair` / `scrub`.
//!
//! ```
//! use ec_core::RsConfig;
//! use ec_store::{Cluster, NodeHandle};
//! use std::time::Duration;
//!
//! // Three in-process loopback nodes (dir-backed, ephemeral ports).
//! let dir = std::env::temp_dir().join(format!("ec_store_doctest_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut nodes: Vec<NodeHandle> = (0..3)
//!     .map(|i| NodeHandle::spawn(&dir.join(format!("node{i}")), "127.0.0.1:0", 2).unwrap())
//!     .collect();
//! let addrs: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
//!
//! // RS(2, 1): any single node may die.
//! let cluster = Cluster::new(addrs, RsConfig::new(2, 1))
//!     .unwrap()
//!     .with_timeout(Duration::from_secs(2));
//! let payload: Vec<u8> = (0..100_000u32).map(|i| (i * 7) as u8).collect();
//! cluster.put("demo", &payload).unwrap();
//!
//! // Kill one node: reads degrade transparently.
//! nodes.remove(0).shutdown();
//! assert_eq!(cluster.get("demo").unwrap(), payload);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

mod blob;
mod client;
mod cluster;
mod error;
mod fanout;
mod manifest;
mod node;
mod placement;
pub mod proto;
mod scrub;
mod tree;

pub use blob::{BlobError, BlobStat, BlobStore, BLOB_MAGIC, BLOB_OVERHEAD};
pub use client::{BatchOp, NodeClient, NodeHealth};
pub use cluster::{
    Cluster, ClusterHealth, ClusterScrubReport, FailPoint, GetReport,
    NodeRepairReport, ObjectRepairReport, ObjectScrub, OverwriteMode,
    OverwriteReport, PutReport, RepairOutcome, ShardFetch, ShardHealth,
    ShardOutcome, DEFAULT_GC_GRACE, DEFAULT_TIMEOUT,
};
pub use error::{RemoteErrorCode, StoreError};
pub use manifest::{
    manifest_key, parse_record, parse_shard_key, shard_key, tombstone_bytes,
    Manifest, ManifestRecord, MANIFEST_MAGIC, MANIFEST_VERSION, MAX_OBJECT_NAME,
    MIN_MANIFEST_VERSION, TOMBSTONE_MAGIC,
};
pub use node::{NodeHandle, NodeOptions};
pub use placement::{rank_nodes, score};
pub use scrub::{ScrubCycle, ScrubScheduler};
pub use tree::{
    parse_tree_key, tree_key, HashBlob, HASH_BLOB_VERSION, HASH_LEAF_SIZE,
    HASH_MAGIC,
};
