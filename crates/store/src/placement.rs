//! Deterministic shard placement: highest-random-weight (rendezvous)
//! hashing.
//!
//! Every client that knows the object name and the node set computes the
//! same placement with no coordination: node `j` gets score
//! `mix(fnv1a(node_j) ⊕ rot(fnv1a(object)))` and the `n + p` highest
//! scores host the shards, in score order. Removing one node from the
//! set only reassigns the shards that lived on it — the relative order
//! of the surviving nodes is untouched (the HRW property that makes
//! repair targeted instead of a full reshuffle).
//!
//! The exact hash (FNV-1a 64 + a splitmix64 finalizer) is part of the
//! deployment contract and is pinned in `docs/STORE.md`.

/// FNV-1a over a byte string (64-bit).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: spreads the weak FNV mixing over all 64 bits.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous score of `(object, node)`.
pub fn score(object: &str, node: &str) -> u64 {
    mix(fnv1a(node.as_bytes()) ^ fnv1a(object.as_bytes()).rotate_left(32))
}

/// All node indices ranked by descending score (ties break by index, so
/// the ranking is total and deterministic).
pub fn rank_nodes(object: &str, nodes: &[String]) -> Vec<usize> {
    let mut ranked: Vec<usize> = (0..nodes.len()).collect();
    ranked.sort_by_key(|&i| (std::cmp::Reverse(score(object, &nodes[i])), i));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(k: usize) -> Vec<String> {
        (0..k).map(|i| format!("10.0.0.{i}:7000")).collect()
    }

    #[test]
    fn ranking_is_a_deterministic_permutation() {
        let ns = nodes(14);
        let a = rank_nodes("obj-007", &ns);
        let b = rank_nodes("obj-007", &ns);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..14).collect::<Vec<_>>());
    }

    #[test]
    fn different_objects_spread_across_nodes() {
        // The top-ranked node must not be constant across objects —
        // otherwise one node hosts every first shard.
        let ns = nodes(8);
        let firsts: std::collections::HashSet<usize> =
            (0..64).map(|k| rank_nodes(&format!("obj-{k}"), &ns)[0]).collect();
        assert!(firsts.len() > 3, "placement is degenerate: {firsts:?}");
    }

    #[test]
    fn removing_a_node_preserves_relative_order() {
        // The HRW property: dropping node `d` from the set must not
        // change the relative order of the others.
        let ns = nodes(9);
        for d in 0..ns.len() {
            let survivors: Vec<String> =
                ns.iter().enumerate().filter(|&(i, _)| i != d).map(|(_, n)| n.clone()).collect();
            for obj in ["a", "obj-42", "some/longer/object/name"] {
                let full: Vec<&String> = rank_nodes(obj, &ns)
                    .into_iter()
                    .filter(|&i| i != d)
                    .map(|i| &ns[i])
                    .collect();
                let reduced: Vec<&String> =
                    rank_nodes(obj, &survivors).into_iter().map(|i| &survivors[i]).collect();
                assert_eq!(full, reduced, "object {obj}, dropped node {d}");
            }
        }
    }
}
