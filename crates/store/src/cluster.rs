//! The cluster client: erasure-coded objects across shard nodes.
//!
//! * `put` stripes an object into `n + p` shards (one `encode` through
//!   the SLP-optimized codec), places them on the `n + p` top-ranked
//!   nodes of the object's rendezvous ordering, and replicates a
//!   [`Manifest`] to every node;
//! * `get` reads the data shards, and *degrades* transparently: any `n`
//!   retrievable shards reconstruct the object through the codec's
//!   cached decode programs;
//! * `overwrite` is the delta path: only changed data shards ship, and
//!   parity is brought up to date with the cached per-column programs
//!   (`old ⊕ new`, not the world);
//! * `repair_node` rebuilds a dead node's shards onto a replacement,
//!   fetching only the survivors the codec's repair plan names — a
//!   locally-repairable codec shrinks a single-shard repair to its
//!   locality group — and falling back to an any-`n` reconstruct when
//!   the plan's sources are themselves unavailable;
//! * `scrub` + `repair_object` verify end-to-end CRCs and chunk-wise
//!   parity consistency, attributing damage per shard via the manifest
//!   checksums.

use crate::client::{NodeClient, NodeHealth};
use crate::error::{RemoteErrorCode, StoreError};
use crate::manifest::{
    self, manifest_key, shard_key, validate_object_name, Manifest, ManifestRecord,
};
use crate::placement;
use crate::proto::{MAX_BODY, MAX_KEY};
use ec_core::{codec_for_with, CodecSpec, EcError, ErasureCoder, RsConfig};
use ec_wire::crc32;
use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

/// Default network timeout (connect + each read/write).
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// A pool of at-most-one connection per node address, scoped to one
/// cluster operation. Connect failures mark the node dead for the rest
/// of the operation (no per-shard reconnect storms against a down
/// node); request failures drop the possibly-desynced connection and
/// the next use reconnects. Typed `ERR` answers keep the connection —
/// the stream is intact, the node just said no.
struct ConnSet {
    timeout: Duration,
    conns: HashMap<String, Option<NodeClient>>,
}

impl ConnSet {
    fn new(timeout: Duration) -> ConnSet {
        ConnSet { timeout, conns: HashMap::new() }
    }

    fn with<T>(
        &mut self,
        addr: &str,
        f: impl FnOnce(&mut NodeClient) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut conn = match self.conns.remove(addr) {
            Some(None) => {
                self.conns.insert(addr.to_string(), None);
                return Err(StoreError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    format!("node {addr} is unreachable (marked dead this operation)"),
                )));
            }
            Some(Some(conn)) => conn,
            None => match NodeClient::connect(addr, self.timeout) {
                Ok(conn) => conn,
                Err(e) => {
                    self.conns.insert(addr.to_string(), None);
                    return Err(e);
                }
            },
        };
        match f(&mut conn) {
            Ok(v) => {
                self.conns.insert(addr.to_string(), Some(conn));
                Ok(v)
            }
            Err(e @ StoreError::Remote { .. }) => {
                self.conns.insert(addr.to_string(), Some(conn));
                Err(e)
            }
            // Transport/framing failure: the connection may be desynced;
            // drop it and let the next use reconnect.
            Err(e) => Err(e),
        }
    }
}

/// Result of a [`Cluster::put`].
#[derive(Clone, Debug)]
pub struct PutReport {
    /// Shards stored (`n + p`).
    pub shards_written: usize,
    /// Bytes per shard.
    pub shard_len: usize,
    /// Nodes holding a manifest replica after the put.
    pub manifest_replicas: usize,
}

/// Result of a [`Cluster::get_with_report`].
#[derive(Clone, Debug)]
pub struct GetReport {
    /// Shard indices that could not be retrieved (or failed their
    /// manifest checksum) and were reconstructed around.
    pub missing: Vec<usize>,
}

impl GetReport {
    /// Whether the read had to reconstruct (any shard missing).
    pub fn degraded(&self) -> bool {
        !self.missing.is_empty()
    }
}

/// How an [`Cluster::overwrite`] was executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverwriteMode {
    /// Changed data shards + delta parity updates (the cheap path).
    Delta,
    /// Full re-encode and re-put (size changed, too much changed, or
    /// prerequisites for the delta were unavailable).
    Full,
    /// The new bytes equal the stored bytes; nothing was written.
    NoChange,
}

/// Result of a [`Cluster::overwrite`].
#[derive(Clone, Debug)]
pub struct OverwriteReport {
    pub mode: OverwriteMode,
    /// Data-shard indices whose content changed.
    pub changed: Vec<usize>,
    /// Shards actually shipped to nodes (changed data + parity for the
    /// delta path; `n + p` for the full path; `0` for no change).
    pub shards_written: usize,
    /// XOR instructions the executed path costs per packet-byte
    /// (column programs of the changed shards for delta; the full
    /// encode program otherwise). Comparing the two *proves* the delta
    /// win — the acceptance metric of the delta-update subsystem.
    pub xor_count: usize,
    /// XOR count of the full encode program, for comparison.
    pub full_xor_count: usize,
}

/// Tally of one manifest-record election across the nodes.
#[derive(Default)]
struct RecordVote {
    /// Highest-generation live manifest seen.
    live: Option<Manifest>,
    /// Highest tombstone generation seen.
    tombstone: Option<u64>,
    /// Nodes that answered (with a record or a clean NotFound).
    reachable: usize,
    /// A replica that exists but fails its checks (kept for honest
    /// attribution when nothing usable is found).
    rot_err: Option<StoreError>,
    /// A transport-level failure.
    conn_err: Option<StoreError>,
}

impl RecordVote {
    /// The generation a fresh write must carry to win this election.
    fn next_generation(&self) -> u64 {
        let live = self.live.as_ref().map_or(0, |m| m.generation);
        live.max(self.tombstone.unwrap_or(0)) + 1
    }

    /// The live manifest, unless a tombstone supersedes it.
    fn current(self) -> Option<Manifest> {
        let tomb = self.tombstone.unwrap_or(0);
        self.live.filter(|m| m.generation > tomb)
    }
}

/// Why one shard fetch failed, typed so scrub can attribute damage.
enum ShardFault {
    /// Bytes exist but are wrong (frame/checksum/length failure).
    Corrupt(String),
    /// Unreachable node or absent blob.
    Missing(String),
}

impl From<ShardFault> for ShardHealth {
    fn from(f: ShardFault) -> ShardHealth {
        match f {
            ShardFault::Corrupt(msg) => ShardHealth::Corrupt(msg),
            ShardFault::Missing(msg) => ShardHealth::Missing(msg),
        }
    }
}

/// Health of one shard as seen by scrub.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Retrieved and matches the manifest checksum.
    Ok,
    /// Unreachable or absent (reason recorded).
    Missing(String),
    /// Retrieved (or stored) bytes that fail the manifest checksum or
    /// the node's own frame check.
    Corrupt(String),
}

impl ShardHealth {
    pub fn is_ok(&self) -> bool {
        matches!(self, ShardHealth::Ok)
    }
}

/// One object's scrub result.
#[derive(Clone, Debug)]
pub struct ObjectScrub {
    pub object: String,
    pub shards: Vec<ShardHealth>,
    /// `Some(false)` when every shard is individually intact yet data
    /// and parity disagree (possible only if the manifest itself lies);
    /// `None` when damage prevented the chunk-wise re-encode check.
    pub parity_consistent: Option<bool>,
}

impl ObjectScrub {
    /// Indices of damaged shards.
    pub fn damaged(&self) -> Vec<usize> {
        (0..self.shards.len()).filter(|&i| !self.shards[i].is_ok()).collect()
    }

    /// Whether the object is fully healthy.
    pub fn clean(&self) -> bool {
        self.damaged().is_empty() && self.parity_consistent == Some(true)
    }
}

/// Result of a [`Cluster::scrub`].
#[derive(Clone, Debug)]
pub struct ClusterScrubReport {
    /// Nodes that did not answer `HEALTH`.
    pub dead_nodes: Vec<String>,
    /// Per-object results.
    pub objects: Vec<ObjectScrub>,
    /// Objects whose manifest could not be fetched or parsed.
    pub failed_objects: Vec<(String, String)>,
}

impl ClusterScrubReport {
    /// Objects with at least one damaged shard or a consistency
    /// failure.
    pub fn damaged_objects(&self) -> Vec<&ObjectScrub> {
        self.objects.iter().filter(|o| !o.clean()).collect()
    }

    /// Whether the whole cluster is healthy.
    pub fn clean(&self) -> bool {
        self.dead_nodes.is_empty()
            && self.failed_objects.is_empty()
            && self.objects.iter().all(ObjectScrub::clean)
    }
}

/// Result of a [`Cluster::repair_object`].
#[derive(Clone, Debug, Default)]
pub struct ObjectRepairReport {
    /// Shard indices rebuilt and re-stored.
    pub repaired: Vec<usize>,
    /// Shard indices that were rebuilt but whose node did not accept
    /// the write.
    pub unplaced: Vec<usize>,
}

/// Per-object outcome of a [`Cluster::scrub_and_repair`] pass: the
/// object name and either its repair report or the reason repair
/// failed (so objects that *stayed* broken are visible).
pub type RepairOutcome = (String, Result<ObjectRepairReport, String>);

/// Result of a [`Cluster::repair_node`].
#[derive(Clone, Debug, Default)]
pub struct NodeRepairReport {
    /// Objects whose manifests were examined.
    pub objects_scanned: usize,
    /// Shards rebuilt onto the replacement node.
    pub shards_rebuilt: usize,
    /// Bytes rebuilt onto the replacement node.
    pub bytes_rebuilt: u64,
    /// Survivor shard bytes fetched to drive the rebuilds — the repair
    /// traffic. A locality-aware codec keeps this below the any-`n`
    /// floor by reading only the lost shard's group.
    pub bytes_read: u64,
    /// Objects that could not be repaired (too few survivors right
    /// now), with the reason.
    pub failed: Vec<(String, String)>,
}

/// Per-node health as seen by [`Cluster::health`].
#[derive(Clone, Debug)]
pub struct ClusterHealth {
    /// `(address, health)` per node; `None` for unreachable nodes.
    pub nodes: Vec<(String, Option<NodeHealth>)>,
}

/// A client of a set of shard nodes, holding the codec and the node
/// membership. All read-side operations take `&self` and the cluster is
/// `Send + Sync` — share it behind an `Arc` across client threads.
///
/// **Write concurrency**: writes to *different* objects may run
/// concurrently, but writes to one object (`put` / `overwrite` /
/// `delete`) must be serialized by the caller — shard replacement is
/// not transactional across nodes, and the delta-overwrite path is a
/// read-modify-write of parity with no cross-client locking.
pub struct Cluster {
    codec: Box<dyn ErasureCoder>,
    nodes: Vec<String>,
    timeout: Duration,
}

impl Cluster {
    /// Build a client for `nodes` with the default RS codec configured
    /// by `cfg` (`cfg.data_shards + cfg.parity_shards` must not exceed
    /// the node count; extra nodes are spare capacity that rendezvous
    /// placement will use object-by-object).
    pub fn new(nodes: Vec<String>, cfg: RsConfig) -> Result<Cluster, StoreError> {
        let spec = CodecSpec::rs(cfg.data_shards, cfg.parity_shards);
        Cluster::with_spec_and_config(nodes, &spec, cfg)
    }

    /// Build a client for `nodes` with any registered codec — the same
    /// registry store manifests resolve through, so a cluster opened
    /// with the spec an object was stored under round-trips it.
    pub fn with_spec(nodes: Vec<String>, spec: &CodecSpec) -> Result<Cluster, StoreError> {
        let cfg = RsConfig::new(spec.data_shards, spec.parity_shards);
        Cluster::with_spec_and_config(nodes, spec, cfg)
    }

    /// [`Cluster::with_spec`] carrying engine knobs (kernel,
    /// parallelism, cache caps) from `cfg`; geometry comes from `spec`.
    pub fn with_spec_and_config(
        nodes: Vec<String>,
        spec: &CodecSpec,
        cfg: RsConfig,
    ) -> Result<Cluster, StoreError> {
        let total = spec.data_shards + spec.parity_shards;
        if nodes.len() < total {
            return Err(StoreError::InvalidArg(format!(
                "{} nodes cannot host {} shards per object (n + p = {total})",
                nodes.len(),
                total,
            )));
        }
        let distinct: BTreeSet<&String> = nodes.iter().collect();
        if distinct.len() != nodes.len() {
            return Err(StoreError::InvalidArg("duplicate node address".into()));
        }
        if let Some(addr) = nodes.iter().find(|a| a.len() > crate::manifest::MAX_ADDR) {
            return Err(StoreError::InvalidArg(format!(
                "node address of {} bytes exceeds the cap of {}",
                addr.len(),
                crate::manifest::MAX_ADDR
            )));
        }
        let codec = codec_for_with(spec, cfg)?;
        Ok(Cluster { codec, nodes, timeout: DEFAULT_TIMEOUT })
    }

    /// Override the network timeout (connect and each read/write).
    pub fn with_timeout(mut self, timeout: Duration) -> Cluster {
        self.timeout = timeout;
        self
    }

    /// The codec backing this cluster (e.g. for SLP/cache metrics).
    pub fn codec(&self) -> &dyn ErasureCoder {
        &*self.codec
    }

    /// Current node membership, in configuration order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    fn conns(&self) -> ConnSet {
        ConnSet::new(self.timeout)
    }

    /// The `n + p` node addresses hosting `object`, shard-index order.
    fn placement_for(&self, object: &str) -> Vec<String> {
        let total = self.codec.total_shards();
        placement::rank_nodes(object, &self.nodes)[..total]
            .iter()
            .map(|&i| self.nodes[i].clone())
            .collect()
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Store `data` under `object`, replacing any previous version.
    ///
    /// Writes to one object must be serialized by the caller (single
    /// writer per object): replacement is not transactional across
    /// nodes, so concurrent writers of the *same* object can interleave
    /// shard generations. Concurrent writers of different objects are
    /// safe.
    ///
    /// Replacement is also not crash-atomic: new shards overwrite old
    /// ones in place, so a client that dies mid-re-put after rewriting
    /// more than `p` shards leaves neither generation reconstructable
    /// (the surviving manifest's checksums reject the new shards).
    /// Treat a re-put that errored midway as damage and re-drive it to
    /// completion; generation-suffixed shard keys are the planned fix
    /// (see ROADMAP).
    pub fn put(&self, object: &str, data: &[u8]) -> Result<PutReport, StoreError> {
        validate_object_name(object)?;
        let mut conns = self.conns();
        // Replacing an existing (or deleted) object must advance its
        // generation past every live replica *and* every tombstone, so
        // stale records lose the freshest-record vote.
        let vote = self.fetch_record(&mut conns, object, None);
        let generation = vote.next_generation();
        let prior = vote.current();
        self.put_inner(&mut conns, object, data, generation, prior)
    }

    /// [`Cluster::put`] with the generation election already decided
    /// (the overwrite fallbacks fetched the manifest; no second
    /// cluster-wide sweep). `prior` is the superseded live manifest,
    /// used to reclaim shards its placement orphans.
    fn put_inner(
        &self,
        conns: &mut ConnSet,
        object: &str,
        data: &[u8],
        generation: u64,
        prior: Option<Manifest>,
    ) -> Result<PutReport, StoreError> {
        let shard_len = self.codec.shard_len(data.len());
        if shard_len + MAX_KEY + 64 > MAX_BODY {
            return Err(StoreError::InvalidArg(format!(
                "object of {} bytes needs {shard_len}-byte shards, beyond the \
                 {MAX_BODY}-byte frame cap — archive it with ec-stream instead",
                data.len()
            )));
        }
        let shards = self.codec.encode(data)?;
        let placement = self.placement_for(object);
        let spec = self.codec.spec();
        let manifest = Manifest {
            data_shards: spec.data_shards as u16,
            parity_shards: spec.parity_shards as u16,
            codec_id: spec.id.wire(),
            group_size: spec.group_size as u16,
            generation,
            object_len: data.len() as u64,
            shard_len: shard_len as u64,
            placement: placement.clone(),
            shard_crc: shards.iter().map(|s| crc32(s)).collect(),
        };
        for (i, shard) in shards.iter().enumerate() {
            conns.with(&placement[i], |c| c.put(&shard_key(object, i), shard))?;
        }
        let replicas = self.replicate_manifest(conns, object, &manifest)?;
        // Membership churn between writes moves placements: shard blobs
        // at ex-locations would otherwise be orphaned forever (invisible
        // to `get`/`delete`, but consuming disk). Best-effort reclaim.
        if let Some(prior) = prior {
            for (i, addr) in prior.placement.iter().enumerate() {
                if placement.get(i) != Some(addr) {
                    let _ = conns.with(addr, |c| c.delete(&shard_key(object, i)));
                }
            }
        }
        Ok(PutReport {
            shards_written: shards.len(),
            shard_len,
            manifest_replicas: replicas,
        })
    }

    /// Write the manifest to every node: mandatory on the placement
    /// nodes (they are what repair trusts), best-effort elsewhere.
    fn replicate_manifest(
        &self,
        conns: &mut ConnSet,
        object: &str,
        manifest: &Manifest,
    ) -> Result<usize, StoreError> {
        let bytes = manifest.to_bytes();
        let key = manifest_key(object);
        let mut replicas = 0;
        for addr in &self.nodes {
            match conns.with(addr, |c| c.put(&key, &bytes)) {
                Ok(()) => replicas += 1,
                Err(e) if manifest.placement.contains(addr) => return Err(e),
                Err(_) => {}
            }
        }
        Ok(replicas)
    }

    /// Delete `object` everywhere. Returns the number of shard blobs
    /// removed (unreachable nodes are skipped).
    ///
    /// Deletion is recorded as a *tombstone* under the manifest key —
    /// a higher-generation grave marker — rather than by removing the
    /// manifests: a node that slept through the delete would otherwise
    /// resurrect the object with its surviving replica and wedge every
    /// scrub cycle on an unreconstructable ghost.
    pub fn delete(&self, object: &str) -> Result<usize, StoreError> {
        validate_object_name(object)?;
        let mut conns = self.conns();
        let manifest = self.fetch_manifest(&mut conns, object, None)?;
        let mut removed = 0;
        for (i, addr) in manifest.placement.iter().enumerate() {
            if let Ok(true) = conns.with(addr, |c| c.delete(&shard_key(object, i))) {
                removed += 1;
            }
        }
        let tomb = manifest::tombstone_bytes(manifest.generation + 1);
        let key = manifest_key(object);
        let mut accepted = 0;
        for addr in &self.nodes {
            if conns.with(addr, |c| c.put(&key, &tomb)).is_ok() {
                accepted += 1;
            }
        }
        if accepted == 0 {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "no node accepted the delete tombstone",
            )));
        }
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Poll every node (skipping `exclude`) for the object's manifest
    /// record and tally the generation election.
    fn fetch_record(
        &self,
        conns: &mut ConnSet,
        object: &str,
        exclude: Option<&str>,
    ) -> RecordVote {
        let key = manifest_key(object);
        let mut vote = RecordVote::default();
        for addr in &self.nodes {
            if Some(addr.as_str()) == exclude {
                continue;
            }
            match conns.with(addr, |c| c.get(&key)) {
                Ok(bytes) => {
                    vote.reachable += 1;
                    match manifest::parse_record(&bytes) {
                        Ok(ManifestRecord::Live(m))
                            if vote
                                .live
                                .as_ref()
                                .is_none_or(|b| m.generation > b.generation) =>
                        {
                            vote.live = Some(m)
                        }
                        Ok(ManifestRecord::Live(_)) => {}
                        Ok(ManifestRecord::Tombstone { generation }) => {
                            vote.tombstone =
                                Some(vote.tombstone.unwrap_or(0).max(generation));
                        }
                        Err(e) => vote.rot_err = Some(e),
                    }
                }
                Err(StoreError::Remote { code: RemoteErrorCode::NotFound, .. }) => {
                    vote.reachable += 1;
                }
                Err(e @ StoreError::Remote { .. }) => vote.rot_err = Some(e),
                Err(e) => vote.conn_err = Some(e),
            }
        }
        vote
    }

    /// The freshest *live* manifest: the highest-generation valid copy
    /// wins (a node that slept through a write cannot serve a stale
    /// shard map), unless a tombstone of equal or higher generation
    /// supersedes it — then the object is deleted. Corrupt replicas are
    /// skipped, not fatal, but are reported honestly when no usable
    /// replica exists (rot must not masquerade as "not found").
    fn fetch_manifest(
        &self,
        conns: &mut ConnSet,
        object: &str,
        exclude: Option<&str>,
    ) -> Result<Manifest, StoreError> {
        let vote = self.fetch_record(conns, object, exclude);
        let tomb = vote.tombstone.unwrap_or(0);
        match vote.live {
            Some(m) if m.generation > tomb => return Ok(m),
            Some(_) => return Err(StoreError::NotFound(object.to_string())),
            None if vote.tombstone.is_some() => {
                return Err(StoreError::NotFound(object.to_string()))
            }
            None => {}
        }
        if let Some(e) = vote.rot_err {
            return Err(e);
        }
        if vote.reachable == 0 {
            if let Some(e) = vote.conn_err {
                return Err(e); // every node unreachable: that's the story
            }
        }
        Err(StoreError::NotFound(object.to_string()))
    }

    /// Check that a fetched manifest matches this cluster's codec —
    /// exact [`CodecSpec`] equality, so a same-geometry object stored
    /// under a different family (or group size) is refused with a typed
    /// error instead of decoded into garbage.
    fn check_geometry(&self, object: &str, m: &Manifest) -> Result<(), StoreError> {
        let stored = m.codec_spec().map_err(StoreError::Codec)?;
        let ours = self.codec.spec();
        if stored != ours {
            return Err(StoreError::Manifest(format!(
                "object `{object}` is stored as {}({}, {}) but the cluster is \
                 configured as {}({}, {})",
                stored.name(),
                stored.data_shards,
                stored.parity_shards,
                ours.name(),
                ours.data_shards,
                ours.parity_shards
            )));
        }
        Ok(())
    }

    /// Fetch shard `i`, validating length and manifest checksum.
    fn fetch_shard(
        &self,
        conns: &mut ConnSet,
        object: &str,
        manifest: &Manifest,
        i: usize,
    ) -> Result<Vec<u8>, ShardFault> {
        let addr = &manifest.placement[i];
        match conns.with(addr, |c| c.get(&shard_key(object, i))) {
            Ok(bytes) => {
                if bytes.len() as u64 != manifest.shard_len {
                    return Err(ShardFault::Corrupt(format!(
                        "node {addr} returned {} bytes, manifest says {}",
                        bytes.len(),
                        manifest.shard_len
                    )));
                }
                if crc32(&bytes) != manifest.shard_crc[i] {
                    return Err(ShardFault::Corrupt(format!(
                        "shard bytes from {addr} fail the manifest checksum"
                    )));
                }
                Ok(bytes)
            }
            Err(StoreError::Remote { code: RemoteErrorCode::CorruptBlob, message }) => {
                Err(ShardFault::Corrupt(format!("{addr}: corrupt blob: {message}")))
            }
            Err(e) => Err(ShardFault::Missing(format!("{addr}: {e}"))),
        }
    }

    /// The freshest live manifest of `object` — no geometry check, so
    /// this also answers "what codec was this stored under?" for
    /// objects the current cluster codec cannot read.
    pub fn manifest(&self, object: &str) -> Result<Manifest, StoreError> {
        validate_object_name(object)?;
        self.fetch_manifest(&mut self.conns(), object, None)
    }

    /// Read `object` (degrading transparently over up to `p` missing
    /// shards).
    pub fn get(&self, object: &str) -> Result<Vec<u8>, StoreError> {
        self.get_with_report(object).map(|(data, _)| data)
    }

    /// [`Cluster::get`] plus which shards had to be reconstructed
    /// around.
    pub fn get_with_report(
        &self,
        object: &str,
    ) -> Result<(Vec<u8>, GetReport), StoreError> {
        validate_object_name(object)?;
        let mut conns = self.conns();
        let manifest = self.fetch_manifest(&mut conns, object, None)?;
        self.check_geometry(object, &manifest)?;
        let (n, total) = (self.codec.data_shards(), manifest.total_shards());
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; total];

        // Data shards first: a healthy read never touches parity.
        for (i, slot) in shards.iter_mut().enumerate().take(n) {
            *slot = self.fetch_shard(&mut conns, object, &manifest, i).ok();
        }
        if shards[..n].iter().any(Option::is_none) {
            for (i, slot) in shards.iter_mut().enumerate().take(total).skip(n) {
                *slot = self.fetch_shard(&mut conns, object, &manifest, i).ok();
            }
        }
        let missing: Vec<usize> = (0..total).filter(|&i| shards[i].is_none()).collect();
        let have = total - missing.len();
        // A healthy fast path never fetched parity: only the data-shard
        // completeness matters there.
        if shards[..n].iter().any(Option::is_none) && have < n {
            return Err(StoreError::Unavailable {
                object: object.to_string(),
                needed: n,
                have,
            });
        }
        let data = self.codec.decode(&shards, manifest.object_len as usize)?;
        let missing = if shards[n..].iter().all(Option::is_none) && have >= n {
            // Fast path: parity was deliberately not fetched; report
            // only genuinely-missing data shards (none).
            missing.into_iter().filter(|&i| i < n).collect()
        } else {
            missing
        };
        Ok((data, GetReport { missing }))
    }

    // ------------------------------------------------------------------
    // Delta overwrite
    // ------------------------------------------------------------------

    /// Replace `object`'s content, shipping deltas instead of the world
    /// when possible: unchanged data shards are not rewritten, and
    /// parity is updated with the cached per-column programs over
    /// `old ⊕ new`. Falls back to a full re-put when the shard geometry
    /// changes, every data shard changed, or the old shards/parity are
    /// not all retrievable.
    ///
    /// Like [`Cluster::put`], writes to one object must be serialized
    /// by the caller: the delta path is a read-modify-write of parity
    /// with no cross-client locking, so two concurrent overwrites of
    /// the same object can each apply only their own delta and leave
    /// parity matching neither.
    pub fn overwrite(
        &self,
        object: &str,
        data: &[u8],
    ) -> Result<OverwriteReport, StoreError> {
        validate_object_name(object)?;
        let full_xor = self.codec.encode_xor_count();
        // `prior` is the live manifest overwrite already fetched — it
        // won the generation election, so `generation + 1` beats every
        // replica and tombstone without a second cluster sweep.
        let full = |this: &Cluster,
                    conns: &mut ConnSet,
                    prior: Manifest|
         -> Result<OverwriteReport, StoreError> {
            let generation = prior.generation + 1;
            let report = this.put_inner(conns, object, data, generation, Some(prior))?;
            Ok(OverwriteReport {
                mode: OverwriteMode::Full,
                changed: (0..this.codec.data_shards()).collect(),
                shards_written: report.shards_written,
                xor_count: full_xor,
                full_xor_count: full_xor,
            })
        };

        let mut conns = self.conns();
        let mut manifest = match self.fetch_manifest(&mut conns, object, None) {
            Ok(m) => m,
            Err(StoreError::NotFound(_)) => {
                // Absent (or tombstoned): a plain put re-runs the
                // generation election and resurrects cleanly.
                let report = self.put(object, data)?;
                return Ok(OverwriteReport {
                    mode: OverwriteMode::Full,
                    changed: (0..self.codec.data_shards()).collect(),
                    shards_written: report.shards_written,
                    xor_count: full_xor,
                    full_xor_count: full_xor,
                });
            }
            Err(e) => return Err(e),
        };
        self.check_geometry(object, &manifest)?;
        let (n, p) = (self.codec.data_shards(), self.codec.parity_shards());
        if self.codec.shard_len(data.len()) as u64 != manifest.shard_len {
            // Geometry changed: delta cannot apply.
            return full(self, &mut conns, manifest);
        }

        // Old data shards (checksum-validated): without all of them the
        // change set is unknowable — fall back.
        let mut old: Vec<Vec<u8>> = Vec::with_capacity(n);
        for i in 0..n {
            match self.fetch_shard(&mut conns, object, &manifest, i) {
                Ok(shard) => old.push(shard),
                Err(_) => return full(self, &mut conns, manifest),
            }
        }
        let new = self.codec.split_data(data);
        let changed: Vec<usize> = (0..n).filter(|&i| old[i] != new[i]).collect();
        if changed.is_empty() {
            if data.len() as u64 != manifest.object_len {
                // Same shard bytes, different logical length (padding
                // collision): only the manifest needs refreshing.
                manifest.object_len = data.len() as u64;
                manifest.generation += 1;
                self.replicate_manifest(&mut conns, object, &manifest)?;
            }
            return Ok(OverwriteReport {
                mode: OverwriteMode::NoChange,
                changed,
                shards_written: 0,
                xor_count: 0,
                full_xor_count: full_xor,
            });
        }
        if changed.len() == n {
            // Nothing survives; re-encoding is strictly cheaper.
            return full(self, &mut conns, manifest);
        }
        let delta_xor: usize = changed
            .iter()
            .map(|&i| self.codec.update_xor_count(i))
            .sum::<Result<usize, _>>()?;

        // Parity RMW: all p parity shards must be present to update in
        // place.
        let mut parity: Vec<Vec<u8>> = Vec::with_capacity(p);
        for j in 0..p {
            match self.fetch_shard(&mut conns, object, &manifest, n + j) {
                Ok(shard) => parity.push(shard),
                Err(_) => return full(self, &mut conns, manifest),
            }
        }
        {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            for &i in &changed {
                self.codec.update_parity(i, &old[i], &new[i], &mut prefs)?;
            }
        }

        // Ship: changed data shards + all parity shards + the manifest.
        for &i in &changed {
            conns.with(&manifest.placement[i], |c| {
                c.put(&shard_key(object, i), &new[i])
            })?;
            manifest.shard_crc[i] = crc32(&new[i]);
        }
        for (j, shard) in parity.iter().enumerate() {
            conns.with(&manifest.placement[n + j], |c| {
                c.put(&shard_key(object, n + j), shard)
            })?;
            manifest.shard_crc[n + j] = crc32(shard);
        }
        manifest.object_len = data.len() as u64;
        manifest.generation += 1;
        self.replicate_manifest(&mut conns, object, &manifest)?;
        Ok(OverwriteReport {
            mode: OverwriteMode::Delta,
            shards_written: changed.len() + p,
            changed,
            xor_count: delta_xor,
            full_xor_count: full_xor,
        })
    }

    // ------------------------------------------------------------------
    // Discovery, health, scrub, repair
    // ------------------------------------------------------------------

    /// All object names known to any reachable node, via the replicated
    /// manifests.
    pub fn objects(&self) -> Result<Vec<String>, StoreError> {
        let mut conns = self.conns();
        let names = self.objects_via(&mut conns, None)?;
        // Tombstoned (deleted) objects still hold an `m:` record on
        // every node; the listing is by key, so filter them through the
        // record election.
        Ok(names
            .into_iter()
            .filter(|name| {
                !matches!(
                    self.fetch_manifest(&mut conns, name, None),
                    Err(StoreError::NotFound(_))
                )
            })
            .collect())
    }

    fn objects_via(
        &self,
        conns: &mut ConnSet,
        exclude: Option<&str>,
    ) -> Result<Vec<String>, StoreError> {
        let mut names = BTreeSet::new();
        let mut reachable = 0usize;
        for addr in &self.nodes {
            if Some(addr.as_str()) == exclude {
                continue;
            }
            if let Ok(keys) = conns.with(addr, |c| c.list("m:")) {
                reachable += 1;
                for key in keys {
                    names.insert(key["m:".len()..].to_string());
                }
            }
        }
        if reachable == 0 {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "no cluster node is reachable",
            )));
        }
        Ok(names.into_iter().collect())
    }

    /// Per-node liveness and usage.
    pub fn health(&self) -> ClusterHealth {
        let mut conns = self.conns();
        ClusterHealth {
            nodes: self
                .nodes
                .iter()
                .map(|addr| {
                    (addr.clone(), conns.with(addr, |c| c.health()).ok())
                })
                .collect(),
        }
    }

    /// Verify every object end to end: per-shard manifest checksums
    /// (bit-rot attribution) plus a chunk-wise data↔parity consistency
    /// re-encode when all shards are intact.
    pub fn scrub(&self) -> Result<ClusterScrubReport, StoreError> {
        self.scrub_via(&mut self.conns())
    }

    /// One ConnSet for the whole sweep: a node found dead by the health
    /// probe fast-fails every later touch this cycle instead of paying
    /// a fresh connect timeout per damaged object.
    fn scrub_via(&self, conns: &mut ConnSet) -> Result<ClusterScrubReport, StoreError> {
        let dead_nodes: Vec<String> = self
            .nodes
            .iter()
            .filter(|addr| conns.with(addr, |c| c.health()).is_err())
            .cloned()
            .collect();
        let mut report = ClusterScrubReport {
            dead_nodes,
            objects: Vec::new(),
            failed_objects: Vec::new(),
        };
        for object in self.objects_via(conns, None)? {
            match self.scrub_object(conns, &object) {
                Ok(scrub) => report.objects.push(scrub),
                // Tombstoned (deleted) — the key listing can't filter
                // these; they are not damage.
                Err(StoreError::NotFound(_)) => {}
                Err(e) => report.failed_objects.push((object, e.to_string())),
            }
        }
        Ok(report)
    }

    fn scrub_object(
        &self,
        conns: &mut ConnSet,
        object: &str,
    ) -> Result<ObjectScrub, StoreError> {
        let manifest = self.fetch_manifest(conns, object, None)?;
        self.check_geometry(object, &manifest)?;
        let total = manifest.total_shards();
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; total];
        let mut health = Vec::with_capacity(total);
        for (i, slot) in shards.iter_mut().enumerate() {
            match self.fetch_shard(conns, object, &manifest, i) {
                Ok(bytes) => {
                    *slot = Some(bytes);
                    health.push(ShardHealth::Ok);
                }
                Err(fault) => health.push(fault.into()),
            }
        }
        let parity_consistent = if health.iter().all(ShardHealth::is_ok) {
            let owned: Vec<Vec<u8>> =
                shards.into_iter().map(|s| s.expect("all present")).collect();
            Some(self.codec.verify(&owned)?)
        } else {
            None
        };
        Ok(ObjectScrub { object: object.to_string(), shards: health, parity_consistent })
    }

    /// Rebuild every damaged shard of `object` from the survivors and
    /// re-store them on their placement nodes.
    pub fn repair_object(&self, object: &str) -> Result<ObjectRepairReport, StoreError> {
        self.repair_object_via(&mut self.conns(), object)
    }

    fn repair_object_via(
        &self,
        conns: &mut ConnSet,
        object: &str,
    ) -> Result<ObjectRepairReport, StoreError> {
        validate_object_name(object)?;
        let manifest = self.fetch_manifest(conns, object, None)?;
        self.check_geometry(object, &manifest)?;
        let total = manifest.total_shards();
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; total];
        for (i, slot) in shards.iter_mut().enumerate() {
            *slot = self.fetch_shard(conns, object, &manifest, i).ok();
        }
        let damaged: Vec<usize> = (0..total).filter(|&i| shards[i].is_none()).collect();
        if damaged.is_empty() {
            return Ok(ObjectRepairReport::default());
        }
        let have = total - damaged.len();
        if have < self.codec.data_shards() {
            return Err(StoreError::Unavailable {
                object: object.to_string(),
                needed: self.codec.data_shards(),
                have,
            });
        }
        self.codec.reconstruct(&mut shards)?;
        let mut manifest = manifest;
        let mut report = ObjectRepairReport::default();
        let mut retargeted = Vec::new();
        for &i in &damaged {
            // A damaged shard placed on an address that is no longer a
            // member (e.g. its node was replaced while this object's
            // repair failed transiently) would be rebuilt and dropped
            // every scrub cycle: re-target it to a live member first.
            if !self.nodes.contains(&manifest.placement[i]) {
                if let Some(target) = self.spare_member(object, &manifest.placement) {
                    manifest.placement[i] = target;
                    retargeted.push(i);
                }
            }
            let shard = shards[i].as_deref().expect("reconstructed");
            match conns.with(&manifest.placement[i], |c| {
                c.put(&shard_key(object, i), shard)
            }) {
                Ok(()) => report.repaired.push(i),
                Err(_) => report.unplaced.push(i),
            }
        }
        if !retargeted.is_empty() {
            // The shard map changed: publish it. Required on the nodes
            // that just accepted re-targeted shards (they proved alive;
            // without the manifest their shards are undiscoverable),
            // best-effort elsewhere.
            manifest.generation += 1;
            let bytes = manifest.to_bytes();
            let key = manifest_key(object);
            for addr in &self.nodes {
                let required = retargeted
                    .iter()
                    .any(|&i| &manifest.placement[i] == addr && report.repaired.contains(&i));
                match conns.with(addr, |c| c.put(&key, &bytes)) {
                    Ok(()) => {}
                    Err(e) if required => return Err(e),
                    Err(_) => {}
                }
            }
        }
        Ok(report)
    }

    /// The highest-ranked member (for `object`'s rendezvous ordering)
    /// not already in `placement` — the natural home for a shard whose
    /// recorded node left the cluster.
    fn spare_member(&self, object: &str, placement: &[String]) -> Option<String> {
        placement::rank_nodes(object, &self.nodes)
            .into_iter()
            .map(|i| self.nodes[i].clone())
            .find(|addr| !placement.contains(addr))
    }

    /// Run a scrub and repair every damaged object it found. Returns
    /// the scrub report and the per-object repair outcomes — including
    /// failed attempts, so an object that *stayed* broken is
    /// distinguishable from one never attempted.
    pub fn scrub_and_repair(
        &self,
    ) -> Result<(ClusterScrubReport, Vec<RepairOutcome>), StoreError> {
        let mut conns = self.conns();
        let scrub = self.scrub_via(&mut conns)?;
        let mut repairs = Vec::new();
        for damaged in scrub.damaged_objects() {
            let outcome = self
                .repair_object_via(&mut conns, &damaged.object)
                .map_err(|e| e.to_string());
            repairs.push((damaged.object.clone(), outcome));
        }
        Ok((scrub, repairs))
    }

    /// Rebuild every shard that lived on `dead` onto `replacement`
    /// (which may equal `dead` for a node that came back empty), update
    /// the manifests, and swap the membership. Objects that cannot be
    /// repaired right now (too few survivors) are reported, not fatal.
    pub fn repair_node(
        &mut self,
        dead: &str,
        replacement: &str,
    ) -> Result<NodeRepairReport, StoreError> {
        let dead_pos = self.nodes.iter().position(|a| a == dead);
        let replacement_member = self.nodes.iter().any(|a| a == replacement);
        match dead_pos {
            Some(_) => {
                if replacement != dead && replacement_member {
                    return Err(StoreError::InvalidArg(format!(
                        "{replacement} is already a cluster member"
                    )));
                }
            }
            // Retry path: an earlier (partially failed) repair already
            // swapped the membership. Re-running with the same pair is
            // allowed and finishes the objects that failed then.
            None if replacement_member => {}
            None => {
                return Err(StoreError::InvalidArg(format!(
                    "{dead} is not a cluster member"
                )));
            }
        }
        if replacement.len() > crate::manifest::MAX_ADDR {
            return Err(StoreError::InvalidArg("replacement address too long".into()));
        }
        let mut conns = self.conns();
        let objects = self.objects_via(&mut conns, Some(dead))?;
        let mut report = NodeRepairReport::default();
        for object in &objects {
            report.objects_scanned += 1;
            match self.repair_object_onto(&mut conns, object, dead, replacement, &mut report) {
                Ok(()) => {}
                // Tombstoned (deleted) objects need no repair.
                Err(StoreError::NotFound(_)) => {}
                Err(e) => report.failed.push((object.clone(), e.to_string())),
            }
        }
        if let Some(pos) = dead_pos {
            self.nodes[pos] = replacement.to_string();
        }
        Ok(report)
    }

    /// Rebuild `lost` from survivors, preferring the codec's repair
    /// plan: fetch only the shards [`ErasureCoder::repair_sources`]
    /// names and run the cached subset program — for a single loss
    /// under LRC that is the shard's locality group, a fraction of the
    /// any-`n` read floor. Falls back to fetching everything when the
    /// plan's sources are themselves missing. Fetched survivor bytes
    /// are tallied into `report.bytes_read`.
    fn rebuild_lost(
        &self,
        conns: &mut ConnSet,
        object: &str,
        manifest: &Manifest,
        dead: &str,
        lost: &[usize],
        report: &mut NodeRepairReport,
    ) -> Result<Vec<Option<Vec<u8>>>, StoreError> {
        let total = manifest.total_shards();
        if let Ok(plan) = self.codec.repair_sources(lost) {
            if plan.len() + lost.len() < total
                && plan.iter().all(|&i| manifest.placement[i] != dead)
            {
                let mut shards: Vec<Option<Vec<u8>>> = vec![None; total];
                let mut bytes = 0u64;
                let complete = plan.iter().all(|&i| {
                    match self.fetch_shard(conns, object, manifest, i) {
                        Ok(s) => {
                            bytes += s.len() as u64;
                            shards[i] = Some(s);
                            true
                        }
                        Err(_) => false,
                    }
                });
                if complete {
                    match self.codec.reconstruct_subset(&mut shards, lost) {
                        Ok(()) => {
                            report.bytes_read += bytes;
                            return Ok(shards);
                        }
                        // A source the subset program needs is gone
                        // after all: retry below against everything.
                        Err(EcError::MissingSource { .. }) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        }
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; total];
        let mut bytes = 0u64;
        for (i, slot) in shards.iter_mut().enumerate() {
            if manifest.placement[i] == dead {
                continue; // that's the node we're replacing
            }
            if let Ok(s) = self.fetch_shard(conns, object, manifest, i) {
                bytes += s.len() as u64;
                *slot = Some(s);
            }
        }
        let have = shards.iter().flatten().count();
        if have < self.codec.data_shards() {
            return Err(StoreError::Unavailable {
                object: object.to_string(),
                needed: self.codec.data_shards(),
                have,
            });
        }
        // `reconstruct` rebuilds every missing shard; the caller places
        // only the dead node's shards — other damage belongs to other
        // repairs.
        self.codec.reconstruct(&mut shards)?;
        report.bytes_read += bytes;
        Ok(shards)
    }

    fn repair_object_onto(
        &self,
        conns: &mut ConnSet,
        object: &str,
        dead: &str,
        replacement: &str,
        report: &mut NodeRepairReport,
    ) -> Result<(), StoreError> {
        let mut manifest = self.fetch_manifest(conns, object, Some(dead))?;
        self.check_geometry(object, &manifest)?;
        let total = manifest.total_shards();
        let affected: Vec<usize> =
            (0..total).filter(|&i| manifest.placement[i] == dead).collect();
        if !affected.is_empty() {
            let shards = self.rebuild_lost(conns, object, &manifest, dead, &affected, report)?;
            for &i in &affected {
                let shard = shards[i].as_deref().expect("reconstructed");
                conns.with(replacement, |c| c.put(&shard_key(object, i), shard))?;
                manifest.placement[i] = replacement.to_string();
                report.shards_rebuilt += 1;
                report.bytes_rebuilt += shard.len() as u64;
            }
        }
        let key = manifest_key(object);
        if affected.is_empty() {
            // Nothing moved: the manifest is unchanged, so no
            // generation bump and no cluster-wide republish — the
            // replacement just needs its discovery copy seeded.
            let bytes = manifest.to_bytes();
            conns.with(replacement, |c| c.put(&key, &bytes))?;
            return Ok(());
        }
        // The shard map changed: refresh it on the post-repair
        // membership. Only the replacement is *required* to accept it
        // (it just proved alive; without a manifest its new shards are
        // undiscoverable) — other nodes may themselves be dead
        // mid-multi-failure, and their stale replicas lose the
        // generation vote until their own repair refreshes them.
        manifest.generation += 1;
        let bytes = manifest.to_bytes();
        for addr in self.nodes.iter().map(String::as_str) {
            let addr = if addr == dead { replacement } else { addr };
            match conns.with(addr, |c| c.put(&key, &bytes)) {
                Ok(()) => {}
                Err(e) if addr == replacement => return Err(e),
                Err(_) => {}
            }
        }
        Ok(())
    }
}
