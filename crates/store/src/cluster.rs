//! The cluster client: erasure-coded objects across shard nodes, with
//! every multi-node exchange fanned out concurrently so operations cost
//! ~max(per-node RTT) instead of the sum.
//!
//! * `put` stripes an object into `n + p` shards (one `encode` through
//!   the SLP-optimized codec), ships all of them *concurrently* to the
//!   top-ranked nodes of the object's rendezvous ordering, and
//!   replicates a [`Manifest`] to every node in one more fan-out round;
//! * `get` issues all `n + p` shard fetches at once and returns on the
//!   **first n** that suffice — all data shards, or (for an MDS codec)
//!   any `n` arrivals — abandoning stragglers, so one slow node does
//!   not tax every read; degraded reads reconstruct through the codec's
//!   cached decode programs;
//! * `overwrite` is the delta path: only changed data shards ship, and
//!   parity is brought up to date with the cached per-column programs
//!   (`old ⊕ new`, not the world);
//! * `repair_nodes` rebuilds any number of simultaneously-dead nodes
//!   onto replacements in **one survivor fetch + one reconstruct per
//!   object** (not one pass per dead node), fetching only the shards
//!   the codec's repair plan names when it applies — a locally
//!   repairable codec shrinks a single-shard repair to its locality
//!   group; `repair_node` is the single-pair convenience;
//! * `scrub` + `repair_object` verify end-to-end CRCs and chunk-wise
//!   parity consistency with per-object fan-out, attributing damage per
//!   shard via the manifest checksums; a node found dead is marked once
//!   in the shared connection state and fast-fails every later touch;
//! * an optional per-operation deadline ([`Cluster::with_op_deadline`])
//!   bounds each operation's wall clock and surfaces as the typed
//!   [`StoreError::Timeout`].
//!
//! **Crash atomicity** (the generation-keyed write discipline): every
//! write path — `put`, delta `overwrite`, `repair_nodes` — *prepares*
//! its shards under fresh generation-qualified keys beside the live
//! generation, *publishes* by replicating the new manifest only after
//! every shard landed, and leaves *collection* of superseded and
//! crash-orphaned generations to the scrub-time GC
//! ([`Cluster::scrub`], grace window via [`Cluster::with_gc_grace`]).
//! No published shard byte is ever mutated in place, so a client that
//! dies at any point mid-write leaves the prior generation fully
//! readable, and a `get` racing a re-put decodes one generation or the
//! other, never a mixture.

use crate::client::{NodeClient, NodeHealth};
use crate::error::{RemoteErrorCode, StoreError};
use crate::fanout::ParallelConnSet;
use crate::manifest::{
    self, manifest_key, parse_shard_key, validate_object_name, Manifest,
    ManifestRecord,
};
use crate::placement;
use crate::proto::{MAX_BODY, MAX_KEY};
use crate::tree::{tree_key, HashBlob, HASH_LEAF_SIZE};
use ec_core::{codec_for_with, CodecSpec, EcError, ErasureCoder, RsConfig};
use ec_wire::crc32;
use ec_wire::merkle::{leaf_count, root_over_roots, Hash, MerkleTree};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One shard-fetch outcome slot as the first-n predicates see it:
/// `None` = still in flight, outer `Err` = transport failure, inner
/// `Err` = the node answered but the shard is damaged or absent.
type FetchSlot = Option<Result<Result<Vec<u8>, ShardFault>, StoreError>>;

/// Default network timeout (connect + each read/write).
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// Default GC grace window: a shard blob younger than this (by its own
/// node's clock) is never collected, however orphaned it looks — it may
/// belong to a put whose manifest has not landed *yet*.
pub const DEFAULT_GC_GRACE: Duration = Duration::from_secs(300);

/// A crash-injection hook for the fault-injection tests: called as
/// `(point, index)` before each guarded write step, and the step fails
/// (as if the client died there) when it returns `true`.
///
/// Points: `put.shard` / `overwrite.shard` / `repair.shard` fire per
/// shard write with the write's index, so `index >= k` simulates a
/// client crashing after `k` of `n + p` shard writes; `put.publish` /
/// `overwrite.publish` / `repair.publish` fire once (index 0) just
/// before the manifest replication that makes the write visible.
///
/// Install with [`Cluster::with_failpoint`], or via the environment for
/// CLI-driven tests: `XORSLP_FAILPOINT="<point>=<k>"` makes `point`
/// fail at every `index >= k`.
pub type FailPoint = Arc<dyn Fn(&str, usize) -> bool + Send + Sync>;

/// Parse `XORSLP_FAILPOINT="<point>=<k>"` into a hook (`None` when the
/// variable is unset or malformed — a malformed spec must not silently
/// disable the injection a test asked for, so it is at least loud).
fn failpoint_from_env() -> Option<FailPoint> {
    let spec = std::env::var("XORSLP_FAILPOINT").ok()?;
    let Some((point, k)) = spec.split_once('=') else {
        eprintln!("ignoring malformed XORSLP_FAILPOINT `{spec}` (want <point>=<k>)");
        return None;
    };
    let Ok(k) = k.trim().parse::<usize>() else {
        eprintln!("ignoring malformed XORSLP_FAILPOINT `{spec}` (want <point>=<k>)");
        return None;
    };
    let point = point.trim().to_string();
    Some(Arc::new(move |p: &str, index: usize| p == point && index >= k))
}

/// Evaluate a failpoint inside a write step: `Err` = the injected
/// crash. A tripped step errors before touching the network, so the
/// write aborts exactly as if the client process died there — shards
/// already written stay on their nodes as an unpublished generation.
fn trip(fp: &Option<FailPoint>, point: &'static str, index: usize) -> Result<(), StoreError> {
    match fp {
        Some(f) if f(point, index) => Err(StoreError::Io(std::io::Error::other(
            format!("failpoint {point} tripped at index {index}"),
        ))),
        _ => Ok(()),
    }
}

/// Result of a [`Cluster::put`].
#[derive(Clone, Debug)]
pub struct PutReport {
    /// Shards stored (`n + p`).
    pub shards_written: usize,
    /// Bytes per shard.
    pub shard_len: usize,
    /// Nodes holding a manifest replica after the put.
    pub manifest_replicas: usize,
}

/// How one shard fetch of a first-n read ended.
#[derive(Clone, Debug)]
pub enum ShardOutcome {
    /// Arrived and passed validation; available to the decode.
    Served,
    /// Still in flight when the read already had enough — the straggler
    /// the first-n path exists to not wait for.
    Abandoned,
    /// The node was unreachable, or the blob absent (reason recorded).
    Dead(String),
    /// Bytes arrived but failed the manifest checksum / length check.
    Corrupt(String),
}

impl ShardOutcome {
    /// Whether this fetch failed (as opposed to served or abandoned).
    pub fn failed(&self) -> bool {
        matches!(self, ShardOutcome::Dead(_) | ShardOutcome::Corrupt(_))
    }
}

/// Per-shard observability of one read: what each of the `n + p`
/// concurrently-issued fetches did, and how long it took.
#[derive(Clone, Debug)]
pub struct ShardFetch {
    /// Shard index.
    pub index: usize,
    /// The node the fetch targeted.
    pub node: String,
    pub outcome: ShardOutcome,
    /// Issue-to-completion time (`None` for abandoned fetches).
    pub elapsed: Option<Duration>,
}

/// Result of a [`Cluster::get_with_report`].
#[derive(Clone, Debug)]
pub struct GetReport {
    /// Shard indices whose fetch *failed* (unreachable node, absent or
    /// corrupt blob) and were reconstructed around. Abandoned
    /// stragglers are not failures and are not listed here.
    pub missing: Vec<usize>,
    /// Every shard fetch of the read, with outcome and timing.
    pub shards: Vec<ShardFetch>,
    /// Whether every served shard was verified against its manifest
    /// Merkle root (version-4 manifests). `false` means the object
    /// predates the hash fields and only CRC-32 vouched for the bytes.
    pub hash_verified: bool,
}

impl GetReport {
    /// Whether the read observed real damage (a failed shard fetch).
    /// Early-returning past a slow-but-healthy straggler is not
    /// degradation.
    pub fn degraded(&self) -> bool {
        !self.missing.is_empty()
    }

    /// Shard indices abandoned as stragglers.
    pub fn abandoned(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| matches!(s.outcome, ShardOutcome::Abandoned))
            .map(|s| s.index)
            .collect()
    }
}

/// How an [`Cluster::overwrite`] was executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverwriteMode {
    /// Changed data shards + delta parity updates (the cheap path).
    Delta,
    /// Full re-encode and re-put (size changed, too much changed, or
    /// prerequisites for the delta were unavailable).
    Full,
    /// The new bytes equal the stored bytes; nothing was written.
    NoChange,
}

/// Result of a [`Cluster::overwrite`].
#[derive(Clone, Debug)]
pub struct OverwriteReport {
    pub mode: OverwriteMode,
    /// Data-shard indices whose content changed.
    pub changed: Vec<usize>,
    /// Shards actually shipped to nodes (changed data + parity for the
    /// delta path; `n + p` for the full path; `0` for no change).
    pub shards_written: usize,
    /// XOR instructions the executed path costs per packet-byte
    /// (column programs of the changed shards for delta; the full
    /// encode program otherwise). Comparing the two *proves* the delta
    /// win — the acceptance metric of the delta-update subsystem.
    pub xor_count: usize,
    /// XOR count of the full encode program, for comparison.
    pub full_xor_count: usize,
}

/// Tally of one manifest-record election across the nodes.
#[derive(Default)]
struct RecordVote {
    /// Highest-generation live manifest seen.
    live: Option<Manifest>,
    /// Highest tombstone generation seen.
    tombstone: Option<u64>,
    /// Nodes that answered (with a record or a clean NotFound).
    reachable: usize,
    /// A replica that exists but fails its checks (kept for honest
    /// attribution when nothing usable is found).
    rot_err: Option<StoreError>,
    /// A transport-level failure.
    conn_err: Option<StoreError>,
}

impl RecordVote {
    /// The generation a fresh write must carry to win this election.
    fn next_generation(&self) -> u64 {
        let live = self.live.as_ref().map_or(0, |m| m.generation);
        live.max(self.tombstone.unwrap_or(0)) + 1
    }

    /// The live manifest, unless a tombstone supersedes it.
    fn current(self) -> Option<Manifest> {
        let tomb = self.tombstone.unwrap_or(0);
        self.live.filter(|m| m.generation > tomb)
    }
}

/// Why one shard fetch failed, typed so scrub can attribute damage.
enum ShardFault {
    /// Bytes exist but are wrong (frame/checksum/length failure).
    Corrupt(String),
    /// Unreachable node or absent blob.
    Missing(String),
}

impl From<ShardFault> for ShardHealth {
    fn from(f: ShardFault) -> ShardHealth {
        match f {
            ShardFault::Corrupt(msg) => ShardHealth::Corrupt(msg),
            ShardFault::Missing(msg) => ShardHealth::Missing(msg),
        }
    }
}

/// Health of one shard as seen by scrub.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Retrieved and matches the manifest checksum.
    Ok,
    /// Unreachable or absent (reason recorded).
    Missing(String),
    /// Retrieved (or stored) bytes that fail the manifest checksum or
    /// the node's own frame check.
    Corrupt(String),
    /// The shard payload verifies against its manifest Merkle root but
    /// its stored `t:` hash blob is missing, damaged, or disagrees with
    /// the manifest — repair rewrites the blob from the verified
    /// payload without touching the shard itself.
    BadHashes(String),
}

impl ShardHealth {
    pub fn is_ok(&self) -> bool {
        matches!(self, ShardHealth::Ok)
    }
}

/// One object's scrub result.
#[derive(Clone, Debug)]
pub struct ObjectScrub {
    pub object: String,
    pub shards: Vec<ShardHealth>,
    /// `Some(false)` when every shard is individually intact yet data
    /// and parity disagree (possible only if the manifest itself lies);
    /// `None` when damage prevented the chunk-wise re-encode check.
    ///
    /// On the incremental (Merkle) scrub path a healthy object infers
    /// `Some(true)` without re-encoding: every shard's bytes still hash
    /// to the roots recorded when parity *was* consistent (at encode
    /// time), and unchanged bytes cannot have become inconsistent.
    pub parity_consistent: Option<bool>,
    /// Hash bytes fetched to scrub this object (roots plus any descent
    /// levels) — the incremental scrub's entire read cost for a healthy
    /// object.
    pub hash_bytes_read: u64,
    /// Shard payload bytes fetched. Zero on the incremental path for a
    /// healthy object; the full-read path (pre-hash manifests, or
    /// [`Cluster::scrub_deep`]) pays `(n + p) · shard_len` here.
    pub payload_bytes_read: u64,
    /// Per damaged shard, the exact leaf indices (at the manifest's
    /// `hash_leaf_size` granularity) where the node's computed tree and
    /// the trusted stored tree disagree — the descent's damage
    /// attribution. Empty for shards whose damage could not be
    /// localized (missing shard, untrusted hash blob, pre-hash object).
    pub damaged_leaves: Vec<(usize, Vec<usize>)>,
}

impl ObjectScrub {
    /// Indices of damaged shards.
    pub fn damaged(&self) -> Vec<usize> {
        (0..self.shards.len()).filter(|&i| !self.shards[i].is_ok()).collect()
    }

    /// Whether the object is fully healthy.
    pub fn clean(&self) -> bool {
        self.damaged().is_empty() && self.parity_consistent == Some(true)
    }
}

/// Result of a [`Cluster::scrub`].
#[derive(Clone, Debug)]
pub struct ClusterScrubReport {
    /// Nodes that did not answer `HEALTH`.
    pub dead_nodes: Vec<String>,
    /// Per-object results.
    pub objects: Vec<ObjectScrub>,
    /// Objects whose manifest could not be fetched or parsed.
    pub failed_objects: Vec<(String, String)>,
    /// Distinct `(object, generation)` shard-key groups the scrub-time
    /// GC collected this cycle: superseded generations a later write
    /// replaced, and orphans a crashed writer left unpublished.
    pub generations_collected: u64,
    /// Payload bytes freed by the GC deletions.
    pub bytes_reclaimed: u64,
    /// Total hash bytes fetched across all objects (see
    /// [`ObjectScrub::hash_bytes_read`]).
    pub hash_bytes_read: u64,
    /// Total shard payload bytes fetched across all objects (see
    /// [`ObjectScrub::payload_bytes_read`]).
    pub payload_bytes_read: u64,
}

impl ClusterScrubReport {
    /// Objects with at least one damaged shard or a consistency
    /// failure.
    pub fn damaged_objects(&self) -> Vec<&ObjectScrub> {
        self.objects.iter().filter(|o| !o.clean()).collect()
    }

    /// Whether the whole cluster is healthy.
    pub fn clean(&self) -> bool {
        self.dead_nodes.is_empty()
            && self.failed_objects.is_empty()
            && self.objects.iter().all(ObjectScrub::clean)
    }
}

/// Result of a [`Cluster::repair_object`].
#[derive(Clone, Debug, Default)]
pub struct ObjectRepairReport {
    /// Shard indices rebuilt and re-stored.
    pub repaired: Vec<usize>,
    /// Shard indices that were rebuilt but whose node did not accept
    /// the write.
    pub unplaced: Vec<usize>,
    /// Shard indices whose `t:` hash blob was re-derived from verified
    /// payload bytes and rewritten — covers both blobs beside repaired
    /// shards and blobs that were themselves the only damage
    /// ([`ShardHealth::BadHashes`]).
    pub hash_blobs_rewritten: Vec<usize>,
}

/// Per-object outcome of a [`Cluster::scrub_and_repair`] pass: the
/// object name and either its repair report or the reason repair
/// failed (so objects that *stayed* broken are visible).
pub type RepairOutcome = (String, Result<ObjectRepairReport, String>);

/// Result of a [`Cluster::repair_node`] / [`Cluster::repair_nodes`].
#[derive(Clone, Debug, Default)]
pub struct NodeRepairReport {
    /// Objects whose manifests were examined.
    pub objects_scanned: usize,
    /// Shards rebuilt onto replacement nodes.
    pub shards_rebuilt: usize,
    /// Bytes rebuilt onto replacement nodes.
    pub bytes_rebuilt: u64,
    /// Survivor shard bytes fetched to drive the rebuilds — the repair
    /// traffic. A locality-aware codec keeps this below the any-`n`
    /// floor by reading only the lost shard's group, and a batch
    /// multi-node repair reads each survivor once, not once per dead
    /// node.
    pub bytes_read: u64,
    /// Objects that could not be repaired (too few survivors right
    /// now), with the reason.
    pub failed: Vec<(String, String)>,
}

/// Per-node health as seen by [`Cluster::health`].
#[derive(Clone, Debug)]
pub struct ClusterHealth {
    /// `(address, health)` per node; `None` for unreachable nodes.
    pub nodes: Vec<(String, Option<NodeHealth>)>,
}

/// A client of a set of shard nodes, holding the codec and the node
/// membership. All read-side operations take `&self` and the cluster is
/// `Send + Sync` — share it behind an `Arc` across client threads.
///
/// **Write concurrency**: writes to *different* objects may run
/// concurrently, but writes to one object (`put` / `overwrite` /
/// `delete`) must be serialized by the caller — shard replacement is
/// not transactional across nodes, and the delta-overwrite path is a
/// read-modify-write of parity with no cross-client locking.
pub struct Cluster {
    codec: Box<dyn ErasureCoder>,
    nodes: Vec<String>,
    timeout: Duration,
    /// Per-operation wall-clock bound (`None` = only the per-I/O
    /// `timeout` applies).
    op_deadline: Option<Duration>,
    /// Minimum age (node-clock) a shard blob must reach before the
    /// scrub-time GC may collect it.
    gc_grace: Duration,
    /// Crash injection for the fault tests ([`FailPoint`]); `None` in
    /// production unless `XORSLP_FAILPOINT` is set.
    failpoint: Option<FailPoint>,
}

impl Cluster {
    /// Build a client for `nodes` with the default RS codec configured
    /// by `cfg` (`cfg.data_shards + cfg.parity_shards` must not exceed
    /// the node count; extra nodes are spare capacity that rendezvous
    /// placement will use object-by-object).
    pub fn new(nodes: Vec<String>, cfg: RsConfig) -> Result<Cluster, StoreError> {
        let spec = CodecSpec::rs(cfg.data_shards, cfg.parity_shards);
        Cluster::with_spec_and_config(nodes, &spec, cfg)
    }

    /// Build a client for `nodes` with any registered codec — the same
    /// registry store manifests resolve through, so a cluster opened
    /// with the spec an object was stored under round-trips it.
    pub fn with_spec(nodes: Vec<String>, spec: &CodecSpec) -> Result<Cluster, StoreError> {
        let cfg = RsConfig::new(spec.data_shards, spec.parity_shards);
        Cluster::with_spec_and_config(nodes, spec, cfg)
    }

    /// [`Cluster::with_spec`] carrying engine knobs (kernel,
    /// parallelism, cache caps) from `cfg`; geometry comes from `spec`.
    pub fn with_spec_and_config(
        nodes: Vec<String>,
        spec: &CodecSpec,
        cfg: RsConfig,
    ) -> Result<Cluster, StoreError> {
        let total = spec.data_shards + spec.parity_shards;
        if nodes.len() < total {
            return Err(StoreError::InvalidArg(format!(
                "{} nodes cannot host {} shards per object (n + p = {total})",
                nodes.len(),
                total,
            )));
        }
        let distinct: BTreeSet<&String> = nodes.iter().collect();
        if distinct.len() != nodes.len() {
            return Err(StoreError::InvalidArg("duplicate node address".into()));
        }
        if let Some(addr) = nodes.iter().find(|a| a.len() > crate::manifest::MAX_ADDR) {
            return Err(StoreError::InvalidArg(format!(
                "node address of {} bytes exceeds the cap of {}",
                addr.len(),
                crate::manifest::MAX_ADDR
            )));
        }
        let codec = codec_for_with(spec, cfg)?;
        Ok(Cluster {
            codec,
            nodes,
            timeout: DEFAULT_TIMEOUT,
            op_deadline: None,
            gc_grace: DEFAULT_GC_GRACE,
            failpoint: failpoint_from_env(),
        })
    }

    /// Override the network timeout (connect and each read/write).
    pub fn with_timeout(mut self, timeout: Duration) -> Cluster {
        self.timeout = timeout;
        self
    }

    /// Bound every operation (`put`/`get`/`scrub`/…) to `deadline` of
    /// wall clock from the moment it starts. The budget is carried
    /// through every fan-out round — per-I/O timeouts shrink to the
    /// remaining time — and once spent the operation fails with the
    /// typed [`StoreError::Timeout`].
    pub fn with_op_deadline(mut self, deadline: Duration) -> Cluster {
        self.op_deadline = Some(deadline);
        self
    }

    /// Override the GC grace window ([`DEFAULT_GC_GRACE`]). Zero means
    /// "collect every non-live shard key immediately" — right for tests
    /// and controlled maintenance, wrong while any writer may be
    /// mid-put: an unpublished generation younger than the grace window
    /// is the only thing standing between an in-flight put and the GC.
    pub fn with_gc_grace(mut self, grace: Duration) -> Cluster {
        self.gc_grace = grace;
        self
    }

    /// Install a crash-injection hook (see [`FailPoint`]). Test-only by
    /// intent; overrides any `XORSLP_FAILPOINT` environment hook.
    pub fn with_failpoint(mut self, failpoint: FailPoint) -> Cluster {
        self.failpoint = Some(failpoint);
        self
    }

    /// The codec backing this cluster (e.g. for SLP/cache metrics).
    pub fn codec(&self) -> &dyn ErasureCoder {
        &*self.codec
    }

    /// Current node membership, in configuration order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    fn conns(&self) -> ParallelConnSet {
        ParallelConnSet::new(
            self.timeout,
            self.op_deadline.map(|d| Instant::now() + d),
        )
    }

    /// The `n + p` node addresses hosting `object`, shard-index order.
    fn placement_for(&self, object: &str) -> Vec<String> {
        let total = self.codec.total_shards();
        placement::rank_nodes(object, &self.nodes)[..total]
            .iter()
            .map(|&i| self.nodes[i].clone())
            .collect()
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Store `data` under `object`, replacing any previous version.
    ///
    /// Writes to one object must be serialized by the caller (single
    /// writer per object): two concurrent writers can race the
    /// generation election and the loser's publish silently supersede
    /// the winner's. The race is *detectable and collectable* — each
    /// writer's shards live under its own generation keys, the election
    /// picks exactly one manifest, and the loser's generation is
    /// GC'd — but last-publish-wins is not a merge. Concurrent writers
    /// of different objects are safe.
    ///
    /// Replacement is crash-atomic: the new generation's shards are
    /// written under fresh generation-qualified keys *beside* the live
    /// generation, and the manifest that makes them visible replicates
    /// only after all `n + p` landed. A client that dies at any point
    /// mid-re-put leaves the prior generation byte-exact (its keys were
    /// never touched) and its partial shards unpublished, to be
    /// collected by the next scrub cycle's GC after the grace window.
    pub fn put(&self, object: &str, data: &[u8]) -> Result<PutReport, StoreError> {
        validate_object_name(object)?;
        let mut conns = self.conns();
        // Replacing an existing (or deleted) object must advance its
        // generation past every live replica *and* every tombstone, so
        // stale records lose the freshest-record vote.
        let vote = self.fetch_record(&mut conns, object, &[]);
        let generation = vote.next_generation();
        self.put_inner(&mut conns, object, data, generation)
    }

    /// [`Cluster::put`] with the generation election already decided
    /// (the overwrite fallbacks fetched the manifest; no second
    /// cluster-wide sweep). Superseded shards — the prior generation's
    /// keys, and ex-placement blobs stranded by membership churn — are
    /// deliberately *not* reclaimed here: a concurrent reader may still
    /// be fetching the prior generation it resolved, so collection
    /// belongs to the scrub-time GC.
    fn put_inner(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        data: &[u8],
        generation: u64,
    ) -> Result<PutReport, StoreError> {
        let shard_len = self.codec.shard_len(data.len());
        if shard_len + MAX_KEY + 64 > MAX_BODY {
            return Err(StoreError::InvalidArg(format!(
                "object of {} bytes needs {shard_len}-byte shards, beyond the \
                 {MAX_BODY}-byte frame cap — archive it with ec-stream instead",
                data.len()
            )));
        }
        let shards = self.codec.encode(data)?;
        let placement = self.placement_for(object);
        let spec = self.codec.spec();
        // Hash every shard once at write time: the per-shard Merkle
        // roots (and the object root over them) ride in the manifest as
        // the end-to-end ground truth, and the leaf hashes ship beside
        // each shard as its `t:` blob so scrub can descend without
        // re-reading payloads.
        let hash_blobs: Vec<HashBlob> =
            shards.iter().map(|s| HashBlob::from_shard(s, HASH_LEAF_SIZE)).collect();
        let shard_root: Vec<Hash> = hash_blobs.iter().map(HashBlob::root).collect();
        let manifest = Manifest {
            data_shards: spec.data_shards as u16,
            parity_shards: spec.parity_shards as u16,
            codec_id: spec.id.wire(),
            group_size: spec.group_size as u16,
            generation,
            object_len: data.len() as u64,
            shard_len: shard_len as u64,
            placement: placement.clone(),
            shard_crc: shards.iter().map(|s| crc32(s)).collect(),
            shard_gen: vec![generation; shards.len()],
            hash_leaf_size: HASH_LEAF_SIZE,
            object_root: root_over_roots(&shard_root),
            shard_root,
        };
        // Prepare: all n + p shards (each with its hash blob) ship in
        // one concurrent round under the new generation's keys — beside
        // the live generation, never over it — so the put costs
        // ~max(per-node RTT), not the sum. All must land before the
        // manifest publishes; any failure here aborts with the prior
        // generation untouched and the partial shards left for GC.
        let tree_bytes: Vec<Vec<u8>> =
            hash_blobs.iter().map(HashBlob::to_bytes).collect();
        let ships: Vec<(usize, &String, String, &[u8])> = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                (i, &placement[i], manifest.shard_key(object, i), shard.as_slice())
            })
            .chain(tree_bytes.iter().enumerate().map(|(i, bytes)| {
                (i, &placement[i], tree_key(object, i, generation), bytes.as_slice())
            }))
            .collect();
        let jobs: Vec<_> = ships
            .iter()
            .map(|(i, addr, key, bytes)| {
                let (i, key, bytes) = (*i, key, *bytes);
                let fp = self.failpoint.clone();
                (addr.to_string(), move |c: &mut NodeClient| {
                    // The hash blob trips at its shard's index, so a
                    // simulated crash after k shard writes strands at
                    // most k shard/hash pairs.
                    trip(&fp, "put.shard", i)?;
                    c.put(key, bytes)
                })
            })
            .collect();
        for result in conns.run_batch(jobs) {
            result?;
        }
        // Publish: the manifest replication is the commit point.
        trip(&self.failpoint, "put.publish", 0)?;
        let replicas = self.replicate_manifest(conns, object, &manifest)?;
        Ok(PutReport {
            shards_written: shards.len(),
            shard_len,
            manifest_replicas: replicas,
        })
    }

    /// Write the manifest to every node concurrently: mandatory on the
    /// placement nodes (they are what repair trusts), best-effort
    /// elsewhere.
    fn replicate_manifest(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        manifest: &Manifest,
    ) -> Result<usize, StoreError> {
        let bytes = manifest.to_bytes();
        let key = manifest_key(object);
        let jobs: Vec<_> = self
            .nodes
            .iter()
            .map(|addr| {
                let (key, bytes) = (&key, &bytes);
                (addr.clone(), move |c: &mut NodeClient| c.put(key, bytes))
            })
            .collect();
        let mut replicas = 0;
        for (addr, result) in self.nodes.iter().zip(conns.run_batch(jobs)) {
            match result {
                Ok(()) => replicas += 1,
                Err(e) if manifest.placement.contains(addr) => return Err(e),
                Err(_) => {}
            }
        }
        Ok(replicas)
    }

    /// Delete `object` everywhere. Returns the number of shard blobs
    /// removed (unreachable nodes are skipped).
    ///
    /// Deletion is recorded as a *tombstone* under the manifest key —
    /// a higher-generation grave marker — rather than by removing the
    /// manifests: a node that slept through the delete would otherwise
    /// resurrect the object with its surviving replica and wedge every
    /// scrub cycle on an unreconstructable ghost.
    pub fn delete(&self, object: &str) -> Result<usize, StoreError> {
        validate_object_name(object)?;
        let mut conns = self.conns();
        let manifest = self.fetch_manifest(&mut conns, object, &[])?;
        // The tombstone publishes *first*: the index swing is the
        // delete, exactly as the manifest swing is the put. A client
        // that dies right after this point has deleted the object; the
        // shard blobs it did not get to are ordinary superseded keys
        // for the GC. The old order (shards first) had a crash window
        // where the object was half-destroyed yet still live.
        let tomb = manifest::tombstone_bytes(manifest.generation + 1);
        let key = manifest_key(object);
        let jobs: Vec<_> = self
            .nodes
            .iter()
            .map(|addr| {
                let (key, tomb) = (&key, &tomb);
                (addr.clone(), move |c: &mut NodeClient| c.put(key, tomb))
            })
            .collect();
        let accepted =
            conns.run_batch(jobs).into_iter().filter(Result::is_ok).count();
        if accepted == 0 {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "no node accepted the delete tombstone",
            )));
        }
        // Best-effort eager reclaim of the shard keys (and their `t:`
        // hash-blob twins) the manifest referenced; whatever this misses
        // (unreachable nodes, older generations) the GC collects after
        // the grace window.
        let mut doomed: Vec<(String, String, bool)> = Vec::new();
        for (i, addr) in manifest.placement.iter().enumerate() {
            doomed.push((addr.clone(), manifest.shard_key(object, i), true));
            if manifest.has_hashes() {
                let gen = manifest.shard_gen.get(i).copied().unwrap_or(0);
                doomed.push((addr.clone(), tree_key(object, i, gen), false));
            }
        }
        let jobs: Vec<_> = doomed
            .iter()
            .map(|(addr, key, _)| {
                (addr.clone(), move |c: &mut NodeClient| c.delete(key))
            })
            .collect();
        // The returned count stays what it always was: *shard* blobs
        // removed (hash blobs are bookkeeping, not payload).
        let removed = doomed
            .iter()
            .zip(conns.run_batch(jobs))
            .filter(|((_, _, is_shard), r)| *is_shard && matches!(r, Ok(true)))
            .count();
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Poll every node (skipping `exclude`) for the object's manifest
    /// record — one concurrent fan-out round — and tally the generation
    /// election. The election deliberately waits for *every* reachable
    /// node: returning on the first few answers could miss the freshest
    /// generation or a tombstone and resurrect stale data.
    fn fetch_record(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        exclude: &[&str],
    ) -> RecordVote {
        let key = manifest_key(object);
        let targets: Vec<&String> = self
            .nodes
            .iter()
            .filter(|a| !exclude.contains(&a.as_str()))
            .collect();
        let jobs: Vec<_> = targets
            .iter()
            .map(|addr| {
                let key = &key;
                (addr.to_string(), move |c: &mut NodeClient| c.get(key))
            })
            .collect();
        let mut vote = RecordVote::default();
        for result in conns.run_batch(jobs) {
            match result {
                Ok(bytes) => {
                    vote.reachable += 1;
                    match manifest::parse_record(&bytes) {
                        Ok(ManifestRecord::Live(m))
                            if vote
                                .live
                                .as_ref()
                                .is_none_or(|b| m.generation > b.generation) =>
                        {
                            vote.live = Some(m)
                        }
                        Ok(ManifestRecord::Live(_)) => {}
                        Ok(ManifestRecord::Tombstone { generation }) => {
                            vote.tombstone =
                                Some(vote.tombstone.unwrap_or(0).max(generation));
                        }
                        Err(e) => vote.rot_err = Some(e),
                    }
                }
                Err(StoreError::Remote { code: RemoteErrorCode::NotFound, .. }) => {
                    vote.reachable += 1;
                }
                Err(e @ StoreError::Remote { .. }) => vote.rot_err = Some(e),
                Err(e) => vote.conn_err = Some(e),
            }
        }
        vote
    }

    /// The freshest *live* manifest: the highest-generation valid copy
    /// wins (a node that slept through a write cannot serve a stale
    /// shard map), unless a tombstone of equal or higher generation
    /// supersedes it — then the object is deleted. Corrupt replicas are
    /// skipped, not fatal, but are reported honestly when no usable
    /// replica exists (rot must not masquerade as "not found").
    fn fetch_manifest(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        exclude: &[&str],
    ) -> Result<Manifest, StoreError> {
        let vote = self.fetch_record(conns, object, exclude);
        let tomb = vote.tombstone.unwrap_or(0);
        match vote.live {
            Some(m) if m.generation > tomb => return Ok(m),
            Some(_) => return Err(StoreError::NotFound(object.to_string())),
            None if vote.tombstone.is_some() => {
                return Err(StoreError::NotFound(object.to_string()))
            }
            None => {}
        }
        if let Some(e) = vote.rot_err {
            return Err(e);
        }
        if vote.reachable == 0 {
            if let Some(e) = vote.conn_err {
                return Err(e); // every node unreachable: that's the story
            }
        }
        Err(StoreError::NotFound(object.to_string()))
    }

    /// Check that a fetched manifest matches this cluster's codec —
    /// exact [`CodecSpec`] equality, so a same-geometry object stored
    /// under a different family (or group size) is refused with a typed
    /// error instead of decoded into garbage.
    fn check_geometry(&self, object: &str, m: &Manifest) -> Result<(), StoreError> {
        let stored = m.codec_spec().map_err(StoreError::Codec)?;
        let ours = self.codec.spec();
        if stored != ours {
            return Err(StoreError::Manifest(format!(
                "object `{object}` is stored as {}({}, {}) but the cluster is \
                 configured as {}({}, {})",
                stored.name(),
                stored.data_shards,
                stored.parity_shards,
                ours.name(),
                ours.data_shards,
                ours.parity_shards
            )));
        }
        Ok(())
    }

    /// The freshest live manifest of `object` — no geometry check, so
    /// this also answers "what codec was this stored under?" for
    /// objects the current cluster codec cannot read.
    pub fn manifest(&self, object: &str) -> Result<Manifest, StoreError> {
        validate_object_name(object)?;
        self.fetch_manifest(&mut self.conns(), object, &[])
    }

    /// Read `object` (degrading transparently over up to `p` missing
    /// shards).
    pub fn get(&self, object: &str) -> Result<Vec<u8>, StoreError> {
        self.get_with_report(object).map(|(data, _)| data)
    }

    /// [`Cluster::get`] plus the per-shard fetch report: which shards
    /// were served, which failed and were reconstructed around, which
    /// stragglers the first-n early return abandoned, and how long each
    /// fetch took.
    pub fn get_with_report(
        &self,
        object: &str,
    ) -> Result<(Vec<u8>, GetReport), StoreError> {
        validate_object_name(object)?;
        let mut conns = self.conns();
        let manifest = self.fetch_manifest(&mut conns, object, &[])?;
        self.check_geometry(object, &manifest)?;
        let (n, total) = (self.codec.data_shards(), manifest.total_shards());

        // First-n read: issue all n + p fetches concurrently and return
        // as soon as enough arrived. Preferred stopping set: all data
        // shards (a straight column-copy decode). Sufficient, for an
        // MDS codec: any n arrivals — after a short proportional linger
        // for the data stragglers, since a reconstruction decode is
        // dearer than a sub-RTT wait. A non-MDS codec (LRC) must not
        // stop at n arbitrary arrivals at all: some ≤ p loss patterns
        // are undecodable, so it waits for all data or for every fetch
        // to settle.
        let jobs: Vec<_> = (0..total)
            .map(|i| {
                (manifest.placement[i].clone(), shard_fetch_job(object, &manifest, i))
            })
            .collect();
        let is_mds = self.codec.is_mds();
        let served = |o: &FetchSlot| matches!(o, Some(Ok(Ok(_))));
        let all_data =
            move |outcomes: &[FetchSlot]| outcomes[..n].iter().all(served);
        let first = conns.run_first_n(jobs, all_data, move |outcomes| {
            all_data(outcomes)
                || (is_mds && outcomes.iter().filter(|o| served(o)).count() >= n)
        });

        let mut shards: Vec<Option<Vec<u8>>> = vec![None; total];
        let mut fetches = Vec::with_capacity(total);
        let mut missing = Vec::new();
        for (i, outcome) in first.outcomes.into_iter().enumerate() {
            let outcome = match outcome {
                Some(Ok(Ok(bytes))) => {
                    shards[i] = Some(bytes);
                    ShardOutcome::Served
                }
                Some(Ok(Err(ShardFault::Corrupt(msg)))) => {
                    missing.push(i);
                    ShardOutcome::Corrupt(msg)
                }
                Some(Ok(Err(ShardFault::Missing(msg)))) => {
                    missing.push(i);
                    ShardOutcome::Dead(msg)
                }
                Some(Err(e)) => {
                    missing.push(i);
                    ShardOutcome::Dead(format!("{}: {e}", manifest.placement[i]))
                }
                None => ShardOutcome::Abandoned,
            };
            fetches.push(ShardFetch {
                index: i,
                node: manifest.placement[i].clone(),
                outcome,
                elapsed: first.elapsed[i],
            });
        }
        let have = shards.iter().flatten().count();
        if have < n {
            return Err(if first.timed_out {
                StoreError::Timeout
            } else {
                StoreError::Unavailable {
                    object: object.to_string(),
                    needed: n,
                    have,
                }
            });
        }
        let data = self.codec.decode(&shards, manifest.object_len as usize)?;
        let report = GetReport {
            missing,
            shards: fetches,
            hash_verified: manifest.has_hashes(),
        };
        Ok((data, report))
    }

    // ------------------------------------------------------------------
    // Delta overwrite
    // ------------------------------------------------------------------

    /// Replace `object`'s content, shipping deltas instead of the world
    /// when possible: unchanged data shards are not rewritten, and
    /// parity is updated with the cached per-column programs over
    /// `old ⊕ new`. Falls back to a full re-put when the shard geometry
    /// changes, every data shard changed, or the old shards/parity are
    /// not all retrievable.
    ///
    /// Like [`Cluster::put`], writes to one object must be serialized
    /// by the caller: the delta path is a read-modify-write of parity
    /// with no cross-client locking, so two concurrent overwrites of
    /// the same object can each apply only their own delta and leave
    /// parity matching neither.
    pub fn overwrite(
        &self,
        object: &str,
        data: &[u8],
    ) -> Result<OverwriteReport, StoreError> {
        validate_object_name(object)?;
        let full_xor = self.codec.encode_xor_count();
        // `prior` is the live manifest overwrite already fetched — it
        // won the generation election, so `generation + 1` beats every
        // replica and tombstone without a second cluster sweep.
        let full = |this: &Cluster,
                    conns: &mut ParallelConnSet,
                    prior: Manifest|
         -> Result<OverwriteReport, StoreError> {
            let generation = prior.generation + 1;
            let report = this.put_inner(conns, object, data, generation)?;
            Ok(OverwriteReport {
                mode: OverwriteMode::Full,
                changed: (0..this.codec.data_shards()).collect(),
                shards_written: report.shards_written,
                xor_count: full_xor,
                full_xor_count: full_xor,
            })
        };

        let mut conns = self.conns();
        let mut manifest = match self.fetch_manifest(&mut conns, object, &[]) {
            Ok(m) => m,
            Err(StoreError::NotFound(_)) => {
                // Absent (or tombstoned): a plain put re-runs the
                // generation election and resurrects cleanly.
                let report = self.put(object, data)?;
                return Ok(OverwriteReport {
                    mode: OverwriteMode::Full,
                    changed: (0..self.codec.data_shards()).collect(),
                    shards_written: report.shards_written,
                    xor_count: full_xor,
                    full_xor_count: full_xor,
                });
            }
            Err(e) => return Err(e),
        };
        self.check_geometry(object, &manifest)?;
        let (n, p) = (self.codec.data_shards(), self.codec.parity_shards());
        if self.codec.shard_len(data.len()) as u64 != manifest.shard_len {
            // Geometry changed: delta cannot apply.
            return full(self, &mut conns, manifest);
        }

        // Old data shards (checksum-validated), one fan-out round:
        // without all of them the change set is unknowable — fall back.
        let mut old: Vec<Vec<u8>> = Vec::with_capacity(n);
        for result in self.fetch_shards(&mut conns, object, &manifest, &(0..n).collect::<Vec<_>>()) {
            match result {
                Some(shard) => old.push(shard),
                None => return full(self, &mut conns, manifest),
            }
        }
        let new = self.codec.split_data(data);
        let changed: Vec<usize> = (0..n).filter(|&i| old[i] != new[i]).collect();
        if changed.is_empty() {
            if data.len() as u64 != manifest.object_len {
                // Same shard bytes, different logical length (padding
                // collision): only the manifest needs refreshing.
                manifest.object_len = data.len() as u64;
                manifest.generation += 1;
                self.replicate_manifest(&mut conns, object, &manifest)?;
            }
            return Ok(OverwriteReport {
                mode: OverwriteMode::NoChange,
                changed,
                shards_written: 0,
                xor_count: 0,
                full_xor_count: full_xor,
            });
        }
        if changed.len() == n {
            // Nothing survives; re-encoding is strictly cheaper.
            return full(self, &mut conns, manifest);
        }
        let delta_xor: usize = changed
            .iter()
            .map(|&i| self.codec.update_xor_count(i))
            .sum::<Result<usize, _>>()?;

        // Parity RMW: all p parity shards must be present to update in
        // place.
        let parity_idx: Vec<usize> = (n..n + p).collect();
        let mut parity: Vec<Vec<u8>> = Vec::with_capacity(p);
        for result in self.fetch_shards(&mut conns, object, &manifest, &parity_idx) {
            match result {
                Some(shard) => parity.push(shard),
                None => return full(self, &mut conns, manifest),
            }
        }
        {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            for &i in &changed {
                self.codec.update_parity(i, &old[i], &new[i], &mut prefs)?;
            }
        }

        // Prepare: ship changed data shards + all updated parity under
        // the *new* generation's keys, in one round. Unchanged data
        // shards keep their existing keys — that is the delta saving —
        // and the old generation's changed/parity keys stay untouched
        // beside the new ones, so a crash anywhere below leaves the
        // published generation byte-exact for readers and the partial
        // new-generation shards for GC. (The old delta path RMW'd
        // parity *in place* under the live keys: a crash mid-round
        // could leave more than `p` published shards clobbered, losing
        // both generations.)
        let new_gen = manifest.generation + 1;
        // The delta path holds every post-overwrite shard byte (new
        // data + updated parity), so it recomputes all n + p Merkle
        // roots — and thereby *upgrades* a pre-hash object to a
        // version-4 manifest as a side effect. Hash blobs for every
        // shard ship alongside: changed shards under the new
        // generation's keys, unchanged shards under their existing keys
        // (the blob content is a pure function of bytes already
        // published, so rewriting it is idempotent).
        let hash_blobs: Vec<HashBlob> = new
            .iter()
            .map(|s| HashBlob::from_shard(s, HASH_LEAF_SIZE))
            .chain(parity.iter().map(|s| HashBlob::from_shard(s, HASH_LEAF_SIZE)))
            .collect();
        let tree_bytes: Vec<Vec<u8>> =
            hash_blobs.iter().map(HashBlob::to_bytes).collect();
        let tree_gen = |i: usize| {
            if changed.contains(&i) || i >= n {
                new_gen
            } else {
                manifest.shard_gen[i]
            }
        };
        let ships: Vec<(String, String, &[u8], Option<usize>)> = changed
            .iter()
            .enumerate()
            .map(|(ship_idx, &i)| {
                (
                    manifest.placement[i].clone(),
                    manifest::shard_key(object, i, new_gen),
                    new[i].as_slice(),
                    Some(ship_idx),
                )
            })
            .chain(parity.iter().enumerate().map(|(j, shard)| {
                (
                    manifest.placement[n + j].clone(),
                    manifest::shard_key(object, n + j, new_gen),
                    shard.as_slice(),
                    Some(changed.len() + j),
                )
            }))
            .chain(tree_bytes.iter().enumerate().map(|(i, bytes)| {
                (
                    manifest.placement[i].clone(),
                    tree_key(object, i, tree_gen(i)),
                    bytes.as_slice(),
                    None,
                )
            }))
            .collect();
        let jobs: Vec<_> = ships
            .iter()
            .map(|(addr, key, bytes, fail_idx)| {
                let (key, bytes, fail_idx) = (key, *bytes, *fail_idx);
                let fp = self.failpoint.clone();
                (addr.clone(), move |c: &mut NodeClient| {
                    if let Some(ship_idx) = fail_idx {
                        trip(&fp, "overwrite.shard", ship_idx)?;
                    }
                    c.put(key, bytes)
                })
            })
            .collect();
        for result in conns.run_batch(jobs) {
            result?;
        }
        for &i in &changed {
            manifest.shard_crc[i] = crc32(&new[i]);
            manifest.shard_gen[i] = new_gen;
        }
        for (j, shard) in parity.iter().enumerate() {
            manifest.shard_crc[n + j] = crc32(shard);
            manifest.shard_gen[n + j] = new_gen;
        }
        manifest.hash_leaf_size = HASH_LEAF_SIZE;
        manifest.shard_root = hash_blobs.iter().map(HashBlob::root).collect();
        manifest.object_root = root_over_roots(&manifest.shard_root);
        manifest.object_len = data.len() as u64;
        manifest.generation = new_gen;
        // Publish: the commit point of the delta.
        trip(&self.failpoint, "overwrite.publish", 0)?;
        self.replicate_manifest(&mut conns, object, &manifest)?;
        Ok(OverwriteReport {
            mode: OverwriteMode::Delta,
            shards_written: changed.len() + p,
            changed,
            xor_count: delta_xor,
            full_xor_count: full_xor,
        })
    }

    /// Fetch the given shard indices concurrently; per-index `Some`
    /// only for shards that arrived and validated.
    fn fetch_shards(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        manifest: &Manifest,
        indices: &[usize],
    ) -> Vec<Option<Vec<u8>>> {
        let jobs: Vec<_> = indices
            .iter()
            .map(|&i| {
                (manifest.placement[i].clone(), shard_fetch_job(object, manifest, i))
            })
            .collect();
        conns
            .run_batch(jobs)
            .into_iter()
            .map(|r| match r {
                Ok(Ok(bytes)) => Some(bytes),
                _ => None,
            })
            .collect()
    }

    /// Like [`Cluster::fetch_shards`] but keeping the typed fault per
    /// failed shard (for scrub attribution).
    fn fetch_shards_attributed(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        manifest: &Manifest,
        indices: &[usize],
    ) -> Vec<Result<Vec<u8>, ShardFault>> {
        let jobs: Vec<_> = indices
            .iter()
            .map(|&i| {
                (manifest.placement[i].clone(), shard_fetch_job(object, manifest, i))
            })
            .collect();
        indices
            .iter()
            .zip(conns.run_batch(jobs))
            .map(|(&i, r)| match r {
                Ok(inner) => inner,
                Err(e) => {
                    Err(ShardFault::Missing(format!("{}: {e}", manifest.placement[i])))
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Discovery, health, scrub, repair
    // ------------------------------------------------------------------

    /// All object names known to any reachable node, via the replicated
    /// manifests.
    pub fn objects(&self) -> Result<Vec<String>, StoreError> {
        let mut conns = self.conns();
        let names = self.objects_via(&mut conns, &[])?;
        // Tombstoned (deleted) objects still hold an `m:` record on
        // every node; the listing is by key, so filter them through the
        // record election.
        Ok(names
            .into_iter()
            .filter(|name| {
                !matches!(
                    self.fetch_manifest(&mut conns, name, &[]),
                    Err(StoreError::NotFound(_))
                )
            })
            .collect())
    }

    fn objects_via(
        &self,
        conns: &mut ParallelConnSet,
        exclude: &[&str],
    ) -> Result<Vec<String>, StoreError> {
        let targets: Vec<&String> = self
            .nodes
            .iter()
            .filter(|a| !exclude.contains(&a.as_str()))
            .collect();
        let jobs: Vec<_> = targets
            .iter()
            .map(|addr| (addr.to_string(), |c: &mut NodeClient| c.list("m:")))
            .collect();
        let mut names = BTreeSet::new();
        let mut reachable = 0usize;
        let mut timed_out = false;
        for result in conns.run_batch(jobs) {
            match result {
                Ok(keys) => {
                    reachable += 1;
                    for key in keys {
                        names.insert(key["m:".len()..].to_string());
                    }
                }
                Err(StoreError::Timeout) => timed_out = true,
                Err(_) => {}
            }
        }
        if reachable == 0 {
            // The operation budget running out is a different story
            // from every node being down — keep the timeout typed.
            return Err(if timed_out {
                StoreError::Timeout
            } else {
                StoreError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "no cluster node is reachable",
                ))
            });
        }
        Ok(names.into_iter().collect())
    }

    /// Per-node liveness and usage, probed concurrently.
    pub fn health(&self) -> ClusterHealth {
        let mut conns = self.conns();
        let jobs: Vec<_> = self
            .nodes
            .iter()
            .map(|addr| (addr.clone(), |c: &mut NodeClient| c.health()))
            .collect();
        ClusterHealth {
            nodes: self
                .nodes
                .iter()
                .zip(conns.run_batch(jobs))
                .map(|(addr, result)| (addr.clone(), result.ok()))
                .collect(),
        }
    }

    /// Verify every object end to end: per-shard manifest checksums
    /// (bit-rot attribution) plus a chunk-wise data↔parity consistency
    /// re-encode when all shards are intact. The sweep ends with the
    /// generation GC pass — superseded and crash-orphaned shard keys
    /// past the grace window are collected and tallied into
    /// [`ClusterScrubReport::generations_collected`] /
    /// [`ClusterScrubReport::bytes_reclaimed`].
    pub fn scrub(&self) -> Result<ClusterScrubReport, StoreError> {
        self.scrub_via(&mut self.conns())
    }

    /// [`Cluster::scrub`] forcing the full-read path for every object:
    /// fetch all shards, verify CRCs and Merkle roots over the actual
    /// payload bytes, and re-encode data↔parity chunk-wise. The
    /// incremental scrub proves bytes unchanged in O(log) hash traffic;
    /// the deep scrub is the periodic belt-and-suspenders pass that
    /// additionally exercises the codec identity end to end.
    pub fn scrub_deep(&self) -> Result<ClusterScrubReport, StoreError> {
        self.scrub_via_opts(&mut self.conns(), true)
    }

    fn scrub_via(&self, conns: &mut ParallelConnSet) -> Result<ClusterScrubReport, StoreError> {
        self.scrub_via_opts(conns, false)
    }

    /// One connection set for the whole sweep: the opening health probe
    /// fans out to every node at once, and a node it finds dead is
    /// marked dead *once* in the shared state — every later touch this
    /// cycle fast-fails instead of paying a fresh connect timeout per
    /// damaged object.
    fn scrub_via_opts(
        &self,
        conns: &mut ParallelConnSet,
        deep: bool,
    ) -> Result<ClusterScrubReport, StoreError> {
        let jobs: Vec<_> = self
            .nodes
            .iter()
            .map(|addr| (addr.clone(), |c: &mut NodeClient| c.health()))
            .collect();
        let dead_nodes: Vec<String> = self
            .nodes
            .iter()
            .zip(conns.run_batch(jobs))
            .filter(|(_, result)| result.is_err())
            .map(|(addr, _)| addr.clone())
            .collect();
        let mut report = ClusterScrubReport {
            dead_nodes,
            objects: Vec::new(),
            failed_objects: Vec::new(),
            generations_collected: 0,
            bytes_reclaimed: 0,
            hash_bytes_read: 0,
            payload_bytes_read: 0,
        };
        for object in self.objects_via(conns, &[])? {
            match self.scrub_object_opts(conns, &object, deep) {
                Ok(scrub) => {
                    report.hash_bytes_read += scrub.hash_bytes_read;
                    report.payload_bytes_read += scrub.payload_bytes_read;
                    report.objects.push(scrub);
                }
                // Tombstoned (deleted) — the key listing can't filter
                // these; they are not damage.
                Err(StoreError::NotFound(_)) => {}
                Err(e) => report.failed_objects.push((object, e.to_string())),
            }
        }
        self.gc_via(conns, &mut report);
        Ok(report)
    }

    /// The scrub-time garbage collector: collect every shard key no
    /// live manifest references, once it has outlived the grace window.
    ///
    /// A shard key on node `A` is **live** iff the object's winning
    /// manifest `m` has `m.placement[idx] == A && m.shard_gen[idx] ==
    /// gen` — one rule that uniformly covers superseded generations
    /// (a later write swung the manifest away), crash orphans (their
    /// manifest never published, or a tombstone won), and ex-placement
    /// strays from membership churn. Everything else about the pass is
    /// refusal to over-collect:
    ///
    /// * an object whose record election hit *any* transport failure is
    ///   skipped this cycle — the unreachable node might hold the
    ///   freshest manifest, and collecting against a stale one would
    ///   eat a published generation;
    /// * a key younger than the grace window is kept even when no
    ///   manifest references it: it may belong to a put that has not
    ///   published *yet* (ages come from each node's own clock via
    ///   `LIST_AGED`, so no cross-node clock agreement is assumed);
    /// * a node that cannot answer `LIST_AGED` — unreachable, or a
    ///   pre-GC build answering `BadRequest` to the unknown opcode — is
    ///   skipped; its garbage waits for a later cycle.
    ///
    /// GC failures are deliberately non-fatal to the scrub: collection
    /// is bookkeeping, and the next cycle retries everything.
    fn gc_via(&self, conns: &mut ParallelConnSet, report: &mut ClusterScrubReport) {
        let grace_secs = self.gc_grace.as_secs();
        // Every node's shard-key listing first: the election set must
        // cover objects that *only* exist as orphaned shards (a first
        // put that died before any manifest landed leaves keys no
        // manifest listing will ever name).
        type AgedListing = Vec<(String, u64, u64)>; // (key, age_secs, len)
        let mut listings: Vec<(String, AgedListing)> = Vec::new();
        for addr in &self.nodes {
            // Shard keys and their `t:` hash-blob twins are collected by
            // the same rule; a node that answers one listing answers the
            // other (same opcode), so the extension cannot half-apply.
            if let Ok(mut entries) = conns.with(addr, |c| c.list_aged("s:")) {
                if let Ok(trees) = conns.with(addr, |c| c.list_aged("t:")) {
                    entries.extend(trees);
                }
                listings.push((addr.clone(), entries));
            }
        }
        let mut objects = BTreeSet::new();
        for (_, entries) in &listings {
            for (key, _, _) in entries {
                if let Some((object, _, _)) = parse_gc_key(key) {
                    objects.insert(object.to_string());
                }
            }
        }
        // One record election per object: `Some(m)` = live manifest,
        // `None` = provably deleted or never published; objects whose
        // election saw a transport failure stay out of the map and are
        // skipped entirely.
        let mut live: HashMap<String, Option<Manifest>> = HashMap::new();
        for object in &objects {
            let vote = self.fetch_record(conns, object, &[]);
            if vote.conn_err.is_some() {
                continue;
            }
            live.insert(object.clone(), vote.current());
        }
        let mut collected: BTreeSet<(String, u64)> = BTreeSet::new();
        for (addr, entries) in &listings {
            let doomed: Vec<&(String, u64, u64)> = entries
                .iter()
                .filter(|(key, age_secs, _)| {
                    let Some((object, idx, gen)) = parse_gc_key(key) else {
                        return false; // not ours to judge
                    };
                    let is_live = match live.get(object) {
                        None => return false, // election deferred: keep
                        Some(None) => false,
                        Some(Some(m)) => {
                            m.placement.get(idx) == Some(addr)
                                && m.shard_gen.get(idx) == Some(&gen)
                                // A `t:` blob is live only for manifests
                                // that actually carry hashes — a stray
                                // one beside a pre-hash object is
                                // garbage even at the live generation.
                                && (!key.starts_with("t:") || m.has_hashes())
                        }
                    };
                    !is_live && *age_secs >= grace_secs
                })
                .collect();
            let jobs: Vec<_> = doomed
                .iter()
                .map(|(key, _, _)| {
                    (addr.clone(), move |c: &mut NodeClient| c.delete(key))
                })
                .collect();
            for (entry, result) in doomed.iter().zip(conns.run_batch(jobs)) {
                if matches!(result, Ok(true)) {
                    let (key, _, len) = entry;
                    let (object, _, gen) =
                        parse_gc_key(key).expect("filtered above");
                    collected.insert((object.to_string(), gen));
                    report.bytes_reclaimed += len;
                }
            }
        }
        report.generations_collected = collected.len() as u64;
    }

    fn scrub_object_opts(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        deep: bool,
    ) -> Result<ObjectScrub, StoreError> {
        let manifest = self.fetch_manifest(conns, object, &[])?;
        self.check_geometry(object, &manifest)?;
        if manifest.has_hashes() && !deep {
            // Incremental path: O(p · log leaves) hash bytes, zero
            // payload bytes for a healthy object. `None` means some
            // node predates `HASH_SUBTREE` — fall back to full reads.
            if let Some(scrub) = self.scrub_object_incremental(conns, object, &manifest)? {
                return Ok(scrub);
            }
        }
        self.scrub_object_full(conns, object, &manifest)
    }

    /// The full-read scrub: fetch every shard (CRC- and root-verified by
    /// the fetch job), then re-encode data↔parity chunk-wise.
    fn scrub_object_full(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        manifest: &Manifest,
    ) -> Result<ObjectScrub, StoreError> {
        let total = manifest.total_shards();
        let all: Vec<usize> = (0..total).collect();
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; total];
        let mut health = Vec::with_capacity(total);
        let mut payload_bytes_read = 0u64;
        for (i, result) in self
            .fetch_shards_attributed(conns, object, manifest, &all)
            .into_iter()
            .enumerate()
        {
            match result {
                Ok(bytes) => {
                    payload_bytes_read += bytes.len() as u64;
                    shards[i] = Some(bytes);
                    health.push(ShardHealth::Ok);
                }
                Err(fault) => health.push(fault.into()),
            }
        }
        let parity_consistent = if health.iter().all(ShardHealth::is_ok) {
            let owned: Vec<Vec<u8>> =
                shards.into_iter().map(|s| s.expect("all present")).collect();
            Some(self.codec.verify(&owned)?)
        } else {
            None
        };
        Ok(ObjectScrub {
            object: object.to_string(),
            shards: health,
            parity_consistent,
            hash_bytes_read: 0,
            payload_bytes_read,
            damaged_leaves: Vec::new(),
        })
    }

    /// The incremental (Merkle) scrub of one version-4 object.
    ///
    /// Round 1 fetches two 32-byte roots per shard over `HASH_SUBTREE`:
    /// the node's *computed* root (re-hashed from the shard blob as it
    /// is right now) and the *stored* root (from the `t:` hash blob).
    /// A shard whose computed root equals the manifest root provably
    /// holds the exact bytes recorded at write time — no payload read
    /// needed, and since parity was consistent when those roots were
    /// recorded, unchanged bytes mean parity still holds. A computed
    /// mismatch descends the two trees level by level, fetching only
    /// the children of mismatching nodes, to name the exact damaged
    /// leaves in O(damaged · log leaves) hash transfers.
    ///
    /// Returns `Ok(None)` when a node does not speak `HASH_SUBTREE`
    /// (pre-hash build): the caller falls back to the full-read path.
    fn scrub_object_incremental(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        manifest: &Manifest,
    ) -> Result<Option<ObjectScrub>, StoreError> {
        let total = manifest.total_shards();
        let leaf_size = manifest.hash_leaf_size;
        let widths =
            MerkleTree::level_widths(leaf_count(manifest.shard_len, leaf_size as u64));
        let top = (widths.len() - 1) as u8;
        type RootPair = (Result<Hash, StoreError>, Result<Hash, StoreError>);
        let jobs: Vec<_> = (0..total)
            .map(|i| {
                let skey = manifest.shard_key(object, i);
                let tkey =
                    tree_key(object, i, manifest.shard_gen.get(i).copied().unwrap_or(0));
                let job = move |c: &mut NodeClient| -> Result<RootPair, StoreError> {
                    let computed =
                        c.hash_subtree(&skey, leaf_size, false, top, 0, 1).map(|v| v[0]);
                    let stored =
                        c.hash_subtree(&tkey, leaf_size, true, top, 0, 1).map(|v| v[0]);
                    Ok((computed, stored))
                };
                (manifest.placement[i].clone(), job)
            })
            .collect();
        let mut health = Vec::with_capacity(total);
        let mut hash_bytes_read = 0u64;
        let mut damaged_leaves = Vec::new();
        let is_unsupported = |e: &StoreError| {
            matches!(e, StoreError::Remote { code: RemoteErrorCode::BadRequest, .. })
        };
        for (i, result) in conns.run_batch(jobs).into_iter().enumerate() {
            let addr = &manifest.placement[i];
            let (computed, stored) = match result {
                Ok(pair) => pair,
                Err(e) => {
                    health.push(ShardHealth::Missing(format!("{addr}: {e}")));
                    continue;
                }
            };
            match &computed {
                Ok(_) => hash_bytes_read += 32,
                Err(e) if is_unsupported(e) => return Ok(None),
                _ => {}
            }
            match &stored {
                Ok(_) => hash_bytes_read += 32,
                Err(e) if is_unsupported(e) => return Ok(None),
                _ => {}
            }
            let computed = match computed {
                Ok(root) => root,
                Err(StoreError::Remote { code: RemoteErrorCode::NotFound, .. }) => {
                    health.push(ShardHealth::Missing(format!(
                        "{addr}: shard blob absent"
                    )));
                    continue;
                }
                Err(e) => {
                    health.push(ShardHealth::Corrupt(format!("{addr}: {e}")));
                    continue;
                }
            };
            if computed == manifest.shard_root[i] {
                // Payload proven byte-exact. The stored hash blob is a
                // cache — audit it so descent stays possible next time.
                match stored {
                    Ok(root) if root == manifest.shard_root[i] => {
                        health.push(ShardHealth::Ok)
                    }
                    Ok(_) => health.push(ShardHealth::BadHashes(format!(
                        "{addr}: stored hash blob disagrees with the manifest root"
                    ))),
                    Err(e) => health.push(ShardHealth::BadHashes(format!(
                        "{addr}: stored hash blob unusable: {e}"
                    ))),
                }
                continue;
            }
            // Computed ≠ manifest: the shard's bytes changed since the
            // write. Attribute the damage by descending computed vs
            // stored — valid only when the stored tree re-hashes to the
            // trusted manifest root.
            let trusted_cache = matches!(&stored, Ok(r) if *r == manifest.shard_root[i]);
            if !trusted_cache {
                health.push(ShardHealth::Corrupt(format!(
                    "{addr}: shard fails its manifest Merkle root and the stored \
                     hash blob is unusable for attribution"
                )));
                continue;
            }
            match self.descend(
                conns,
                object,
                manifest,
                i,
                &widths,
                &mut hash_bytes_read,
            ) {
                Ok(leaves) => {
                    health.push(ShardHealth::Corrupt(format!(
                        "{addr}: shard fails its manifest Merkle root; damaged \
                         {leaf_size}-byte leaves {leaves:?}"
                    )));
                    damaged_leaves.push((i, leaves));
                }
                Err(e) => health.push(ShardHealth::Corrupt(format!(
                    "{addr}: shard fails its manifest Merkle root (descent \
                     failed: {e})"
                ))),
            }
        }
        // Healthy bytes are *unchanged* bytes: the roots were recorded
        // when data and parity were consistent by construction, so the
        // re-encode check is implied. (A hash-blob audit failure does
        // not make parity unknown — the payload roots all verified.)
        let payload_healthy = health
            .iter()
            .all(|h| matches!(h, ShardHealth::Ok | ShardHealth::BadHashes(_)));
        Ok(Some(ObjectScrub {
            object: object.to_string(),
            shards: health,
            parity_consistent: if payload_healthy { Some(true) } else { None },
            hash_bytes_read,
            payload_bytes_read: 0,
            damaged_leaves,
        }))
    }

    /// Walk shard `i`'s computed and stored trees from the root's
    /// children down, fetching only the children of mismatching nodes,
    /// and return the leaf indices where the two disagree.
    fn descend(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        manifest: &Manifest,
        i: usize,
        widths: &[u64],
        hash_bytes_read: &mut u64,
    ) -> Result<Vec<usize>, StoreError> {
        let addr = &manifest.placement[i];
        let skey = manifest.shard_key(object, i);
        let tkey = tree_key(object, i, manifest.shard_gen.get(i).copied().unwrap_or(0));
        let leaf_size = manifest.hash_leaf_size;
        let top = widths.len() - 1;
        let mut suspects = vec![0usize];
        for level in (0..top).rev() {
            let width = widths[level] as usize;
            let mut next = Vec::with_capacity(suspects.len() * 2);
            for &parent in &suspects {
                let start = parent * 2;
                let count = 2.min(width - start) as u32;
                let computed = conns.with(addr, |c| {
                    c.hash_subtree(&skey, leaf_size, false, level as u8, start as u32, count)
                })?;
                let stored = conns.with(addr, |c| {
                    c.hash_subtree(&tkey, leaf_size, true, level as u8, start as u32, count)
                })?;
                *hash_bytes_read += 32 * (computed.len() + stored.len()) as u64;
                for k in 0..count as usize {
                    if computed[k] != stored[k] {
                        next.push(start + k);
                    }
                }
            }
            if next.is_empty() {
                // The trees disagree at the root but nowhere below — the
                // damage is in interior bookkeeping, not leaf data;
                // nothing finer to report.
                return Ok(suspects);
            }
            suspects = next;
        }
        Ok(suspects)
    }

    /// Rebuild every damaged shard of `object` from the survivors and
    /// re-store them on their placement nodes.
    pub fn repair_object(&self, object: &str) -> Result<ObjectRepairReport, StoreError> {
        self.repair_object_via(&mut self.conns(), object)
    }

    fn repair_object_via(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
    ) -> Result<ObjectRepairReport, StoreError> {
        validate_object_name(object)?;
        let manifest = self.fetch_manifest(conns, object, &[])?;
        self.check_geometry(object, &manifest)?;
        let total = manifest.total_shards();
        let all: Vec<usize> = (0..total).collect();
        let mut shards: Vec<Option<Vec<u8>>> =
            self.fetch_shards(conns, object, &manifest, &all);
        let damaged: Vec<usize> = (0..total).filter(|&i| shards[i].is_none()).collect();
        let mut report = ObjectRepairReport::default();
        // Hash-blob audit first, and unconditionally: an object whose
        // only damage is a lost/rotted `t:` blob ([`ShardHealth::
        // BadHashes`]) has zero payload damage, so the early return
        // below would otherwise skip the one thing that needs fixing.
        if manifest.has_hashes() {
            self.audit_hash_blobs(conns, object, &manifest, &shards, &mut report);
        }
        if damaged.is_empty() {
            return Ok(report);
        }
        let have = total - damaged.len();
        if have < self.codec.data_shards() {
            return Err(StoreError::Unavailable {
                object: object.to_string(),
                needed: self.codec.data_shards(),
                have,
            });
        }
        self.codec.reconstruct(&mut shards)?;
        let mut manifest = manifest;
        let mut retargeted = Vec::new();
        for &i in &damaged {
            // A damaged shard placed on an address that is no longer a
            // member (e.g. its node was replaced while this object's
            // repair failed transiently) would be rebuilt and dropped
            // every scrub cycle: re-target it to a live member first.
            if !self.nodes.contains(&manifest.placement[i]) {
                if let Some(target) = self.spare_member(object, &manifest.placement) {
                    manifest.placement[i] = target;
                    retargeted.push(i);
                }
            }
            // In-place rewrite under the manifest's own key is safe
            // here (and only here): the bytes written are exactly what
            // the live manifest already promises for this key, so the
            // write is idempotent, a crash mid-way leaves at worst the
            // same damage scrub just attributed, and the node-side
            // temp-file + rename makes each single rewrite atomic. No
            // new generation is needed because nothing is *changing* —
            // damage is being restored to the published state.
            let shard = shards[i].as_deref().expect("reconstructed");
            // Root proof before publish: the reconstruction consumed
            // root-verified survivors, so a mismatch here means a codec
            // fault or an internally inconsistent manifest — publishing
            // would overwrite a (possibly recoverable) shard with bytes
            // the manifest itself disowns.
            if manifest.has_hashes()
                && MerkleTree::from_payload(shard, manifest.hash_leaf_size as usize)
                    .root()
                    != manifest.shard_root[i]
            {
                return Err(StoreError::Manifest(format!(
                    "repair of `{object}` shard {i}: reconstructed bytes fail \
                     the manifest Merkle root — refusing to publish"
                )));
            }
            match conns.with(&manifest.placement[i], |c| {
                c.put(&manifest.shard_key(object, i), shard)
            }) {
                Ok(()) => {
                    report.repaired.push(i);
                    // The shard's bytes were just re-derived; refresh
                    // the leaf cache beside them so the next scrub can
                    // descend again. Best-effort: a missed rewrite is
                    // re-flagged as `BadHashes` next cycle.
                    if manifest.has_hashes()
                        && conns
                            .with(&manifest.placement[i], |c| {
                                c.put(
                                    &tree_key(object, i, manifest.shard_gen[i]),
                                    &HashBlob::from_shard(shard, manifest.hash_leaf_size)
                                        .to_bytes(),
                                )
                            })
                            .is_ok()
                        && !report.hash_blobs_rewritten.contains(&i)
                    {
                        report.hash_blobs_rewritten.push(i);
                    }
                }
                Err(_) => report.unplaced.push(i),
            }
        }
        if !retargeted.is_empty() {
            // The shard map changed: publish it. Required on the nodes
            // that just accepted re-targeted shards (they proved alive;
            // without the manifest their shards are undiscoverable),
            // best-effort elsewhere.
            manifest.generation += 1;
            let bytes = manifest.to_bytes();
            let key = manifest_key(object);
            for addr in &self.nodes {
                let required = retargeted
                    .iter()
                    .any(|&i| &manifest.placement[i] == addr && report.repaired.contains(&i));
                match conns.with(addr, |c| c.put(&key, &bytes)) {
                    Ok(()) => {}
                    Err(e) if required => return Err(e),
                    Err(_) => {}
                }
            }
        }
        Ok(report)
    }

    /// Check each intact shard's stored `t:` hash blob against the
    /// trusted manifest root and rewrite the ones that are absent,
    /// damaged, or disagree — re-derived from payload bytes the fetch
    /// already proved against that same root. Best-effort per blob: a
    /// blob that cannot be fixed now is re-flagged by the next scrub.
    fn audit_hash_blobs(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        manifest: &Manifest,
        shards: &[Option<Vec<u8>>],
        report: &mut ObjectRepairReport,
    ) {
        let widths = MerkleTree::level_widths(leaf_count(
            manifest.shard_len,
            manifest.hash_leaf_size as u64,
        ));
        let top = (widths.len() - 1) as u8;
        for (i, shard) in shards.iter().enumerate() {
            let Some(shard) = shard else { continue };
            let addr = &manifest.placement[i];
            let tkey = tree_key(object, i, manifest.shard_gen[i]);
            let stored = conns.with(addr, |c| {
                c.hash_subtree(&tkey, manifest.hash_leaf_size, true, top, 0, 1)
            });
            let needs_rewrite = match stored {
                // A stored root that re-hashes to the manifest root
                // proves the whole blob (the node derives it from the
                // stored leaves).
                Ok(roots) => roots[0] != manifest.shard_root[i],
                // Pre-hash node: it can hold the blob but not answer
                // for it; leave it alone.
                Err(StoreError::Remote {
                    code: RemoteErrorCode::BadRequest, ..
                }) => continue,
                Err(StoreError::Remote { .. }) => true,
                // Transport failure — nothing to rewrite onto.
                Err(_) => continue,
            };
            if needs_rewrite
                && conns
                    .with(addr, |c| {
                        c.put(
                            &tkey,
                            &HashBlob::from_shard(shard, manifest.hash_leaf_size)
                                .to_bytes(),
                        )
                    })
                    .is_ok()
            {
                report.hash_blobs_rewritten.push(i);
            }
        }
    }

    /// The highest-ranked member (for `object`'s rendezvous ordering)
    /// not already in `placement` — the natural home for a shard whose
    /// recorded node left the cluster.
    fn spare_member(&self, object: &str, placement: &[String]) -> Option<String> {
        placement::rank_nodes(object, &self.nodes)
            .into_iter()
            .map(|i| self.nodes[i].clone())
            .find(|addr| !placement.contains(addr))
    }

    /// Run a scrub and repair every damaged object it found. Returns
    /// the scrub report and the per-object repair outcomes — including
    /// failed attempts, so an object that *stayed* broken is
    /// distinguishable from one never attempted.
    pub fn scrub_and_repair(
        &self,
    ) -> Result<(ClusterScrubReport, Vec<RepairOutcome>), StoreError> {
        let mut conns = self.conns();
        let scrub = self.scrub_via(&mut conns)?;
        let mut repairs = Vec::new();
        for damaged in scrub.damaged_objects() {
            let outcome = self
                .repair_object_via(&mut conns, &damaged.object)
                .map_err(|e| e.to_string());
            repairs.push((damaged.object.clone(), outcome));
        }
        Ok((scrub, repairs))
    }

    /// Rebuild every shard that lived on `dead` onto `replacement`
    /// (which may equal `dead` for a node that came back empty), update
    /// the manifests, and swap the membership. Objects that cannot be
    /// repaired right now (too few survivors) are reported, not fatal.
    ///
    /// The single-pair convenience over [`Cluster::repair_nodes`].
    pub fn repair_node(
        &mut self,
        dead: &str,
        replacement: &str,
    ) -> Result<NodeRepairReport, StoreError> {
        self.repair_nodes(&[(dead.to_string(), replacement.to_string())])
    }

    /// Rebuild every shard that lived on any of the dead nodes onto its
    /// pair's replacement — **one survivor fetch and one reconstruct
    /// per object**, placing all of that object's lost shards at once,
    /// instead of one full fetch-and-rebuild pass per dead node. For k
    /// simultaneous failures this reads each survivor shard once, not k
    /// times ([`NodeRepairReport::bytes_read`] is the proof).
    ///
    /// Each pair follows [`Cluster::repair_node`]'s rules: `dead` must
    /// be a member (or `replacement` already one — the retry after an
    /// earlier partial repair swapped the membership), and `replacement
    /// == dead` means the node restarted empty in place. Memberships
    /// are swapped after the sweep.
    pub fn repair_nodes(
        &mut self,
        pairs: &[(String, String)],
    ) -> Result<NodeRepairReport, StoreError> {
        if pairs.is_empty() {
            return Err(StoreError::InvalidArg(
                "no (dead, replacement) pairs given".into(),
            ));
        }
        for (i, (dead, replacement)) in pairs.iter().enumerate() {
            if replacement.len() > crate::manifest::MAX_ADDR {
                return Err(StoreError::InvalidArg("replacement address too long".into()));
            }
            for (prior_dead, prior_repl) in &pairs[..i] {
                if prior_dead == dead {
                    return Err(StoreError::InvalidArg(format!(
                        "{dead} is listed as dead twice"
                    )));
                }
                if prior_repl == replacement {
                    return Err(StoreError::InvalidArg(format!(
                        "{replacement} is the replacement of two nodes"
                    )));
                }
            }
            if pairs.iter().any(|(d, r)| d != dead && r == dead) {
                return Err(StoreError::InvalidArg(format!(
                    "{dead} is both a dead node and a replacement"
                )));
            }
            let dead_member = self.nodes.iter().any(|a| a == dead);
            let replacement_member = self.nodes.iter().any(|a| a == replacement);
            match (dead_member, replacement_member) {
                (true, true) if dead != replacement => {
                    return Err(StoreError::InvalidArg(format!(
                        "{replacement} is already a cluster member"
                    )));
                }
                (true, _) => {}
                // Retry path: an earlier (partially failed) repair
                // already swapped the membership. Re-running with the
                // same pair is allowed and finishes the objects that
                // failed then.
                (false, true) => {}
                (false, false) => {
                    return Err(StoreError::InvalidArg(format!(
                        "{dead} is not a cluster member"
                    )));
                }
            }
        }
        let dead: Vec<&str> = pairs.iter().map(|(d, _)| d.as_str()).collect();
        let replacements: HashMap<&str, &str> =
            pairs.iter().map(|(d, r)| (d.as_str(), r.as_str())).collect();
        let mut conns = self.conns();
        let objects = self.objects_via(&mut conns, &dead)?;
        let mut report = NodeRepairReport::default();
        for object in &objects {
            report.objects_scanned += 1;
            match self.repair_object_onto(&mut conns, object, &dead, &replacements, &mut report)
            {
                Ok(()) => {}
                // Tombstoned (deleted) objects need no repair.
                Err(StoreError::NotFound(_)) => {}
                Err(e) => report.failed.push((object.clone(), e.to_string())),
            }
        }
        for (dead, replacement) in pairs {
            if let Some(pos) = self.nodes.iter().position(|a| a == dead) {
                self.nodes[pos] = replacement.clone();
            }
        }
        Ok(report)
    }

    /// Rebuild `lost` from survivors, preferring the codec's repair
    /// plan: fetch only the shards [`ErasureCoder::repair_sources`]
    /// names and run the cached subset program — for a single loss
    /// under LRC that is the shard's locality group, a fraction of the
    /// any-`n` read floor. Falls back to fetching everything when the
    /// plan's sources are themselves missing. Fetched survivor bytes
    /// are tallied into `report.bytes_read` — once per object, however
    /// many dead nodes `lost` spans.
    fn rebuild_lost(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        manifest: &Manifest,
        dead: &[&str],
        lost: &[usize],
        report: &mut NodeRepairReport,
    ) -> Result<Vec<Option<Vec<u8>>>, StoreError> {
        let total = manifest.total_shards();
        if let Ok(plan) = self.codec.repair_sources(lost) {
            if plan.len() + lost.len() < total
                && plan
                    .iter()
                    .all(|&i| !dead.contains(&manifest.placement[i].as_str()))
            {
                let mut shards: Vec<Option<Vec<u8>>> = vec![None; total];
                let mut bytes = 0u64;
                let mut complete = true;
                for (&i, fetched) in plan
                    .iter()
                    .zip(self.fetch_shards(conns, object, manifest, &plan))
                {
                    match fetched {
                        Some(s) => {
                            bytes += s.len() as u64;
                            shards[i] = Some(s);
                        }
                        None => complete = false,
                    }
                }
                if complete {
                    match self.codec.reconstruct_subset(&mut shards, lost) {
                        Ok(()) => {
                            report.bytes_read += bytes;
                            return Ok(shards);
                        }
                        // A source the subset program needs is gone
                        // after all: retry below against everything.
                        Err(EcError::MissingSource { .. }) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        }
        let survivors: Vec<usize> = (0..total)
            .filter(|&i| !dead.contains(&manifest.placement[i].as_str()))
            .collect();
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; total];
        let mut bytes = 0u64;
        for (&i, fetched) in survivors
            .iter()
            .zip(self.fetch_shards(conns, object, manifest, &survivors))
        {
            if let Some(s) = fetched {
                bytes += s.len() as u64;
                shards[i] = Some(s);
            }
        }
        let have = shards.iter().flatten().count();
        if have < self.codec.data_shards() {
            return Err(StoreError::Unavailable {
                object: object.to_string(),
                needed: self.codec.data_shards(),
                have,
            });
        }
        // `reconstruct` rebuilds every missing shard; the caller places
        // only the dead nodes' shards — other damage belongs to other
        // repairs.
        self.codec.reconstruct(&mut shards)?;
        report.bytes_read += bytes;
        Ok(shards)
    }

    /// Repair one object across all dead nodes at once: find every
    /// shard placed on a dead node, rebuild them in a single
    /// reconstruct from one survivor fetch, and place each onto its
    /// dead node's replacement.
    ///
    /// Replacement writes follow the same prepare→publish discipline as
    /// `put`: rebuilt shards land under a *new* generation's keys, and
    /// the manifest naming them replicates only after every placement
    /// succeeded. A repairer that dies mid-object leaves the old
    /// manifest (and every key it references) exactly as it was —
    /// still degraded, still repairable by the retry — and its partial
    /// placements as GC-able orphans on the replacements.
    fn repair_object_onto(
        &self,
        conns: &mut ParallelConnSet,
        object: &str,
        dead: &[&str],
        replacements: &HashMap<&str, &str>,
        report: &mut NodeRepairReport,
    ) -> Result<(), StoreError> {
        let mut manifest = self.fetch_manifest(conns, object, dead)?;
        self.check_geometry(object, &manifest)?;
        let total = manifest.total_shards();
        let affected: Vec<usize> = (0..total)
            .filter(|&i| dead.contains(&manifest.placement[i].as_str()))
            .collect();
        let new_gen = manifest.generation + 1;
        if !affected.is_empty() {
            let shards =
                self.rebuild_lost(conns, object, &manifest, dead, &affected, report)?;
            // Root proof before publish: the survivors that fed the
            // reconstruction were root-verified on fetch, so a mismatch
            // here is a codec fault or a lying manifest — either way
            // these bytes must not become the object's new truth.
            if manifest.has_hashes() {
                for &i in &affected {
                    let shard = shards[i].as_deref().expect("reconstructed");
                    if MerkleTree::from_payload(shard, manifest.hash_leaf_size as usize)
                        .root()
                        != manifest.shard_root[i]
                    {
                        return Err(StoreError::Manifest(format!(
                            "repair of `{object}` shard {i}: reconstructed bytes \
                             fail the manifest Merkle root — refusing to publish"
                        )));
                    }
                }
            }
            // Prepare: one concurrent round places every rebuilt shard —
            // and, for hashed objects, its regenerated `t:` leaf cache —
            // on its replacement node, under the new generation's keys.
            let tree_bytes: Vec<Vec<u8>> = if manifest.has_hashes() {
                affected
                    .iter()
                    .map(|&i| {
                        HashBlob::from_shard(
                            shards[i].as_deref().expect("reconstructed"),
                            manifest.hash_leaf_size,
                        )
                        .to_bytes()
                    })
                    .collect()
            } else {
                Vec::new()
            };
            // Uniform ship tuples (one closure type per batch): the
            // failpoint index is `Some(write_idx)` only for shard
            // writes, so `repair.shard` trip semantics are unchanged;
            // the parallel `shard_of` vec maps each ship back to the
            // shard index it publishes (None = hash blob).
            let mut ships: Vec<(String, String, &[u8], Option<usize>)> = Vec::new();
            let mut shard_of: Vec<Option<usize>> = Vec::new();
            for (write_idx, &i) in affected.iter().enumerate() {
                let target = replacements[manifest.placement[i].as_str()].to_string();
                ships.push((
                    target.clone(),
                    manifest::shard_key(object, i, new_gen),
                    shards[i].as_deref().expect("reconstructed"),
                    Some(write_idx),
                ));
                shard_of.push(Some(i));
                if manifest.has_hashes() {
                    ships.push((
                        target,
                        tree_key(object, i, new_gen),
                        &tree_bytes[write_idx],
                        None,
                    ));
                    shard_of.push(None);
                }
            }
            let jobs: Vec<_> = ships
                .into_iter()
                .map(|(target, key, bytes, fail_idx)| {
                    let fp = self.failpoint.clone();
                    (target, move |c: &mut NodeClient| {
                        if let Some(idx) = fail_idx {
                            trip(&fp, "repair.shard", idx)?;
                        }
                        c.put(&key, bytes)
                    })
                })
                .collect();
            for (meta, result) in shard_of.iter().zip(conns.run_batch(jobs)) {
                result?;
                let Some(i) = *meta else { continue };
                let target = replacements[manifest.placement[i].as_str()];
                manifest.placement[i] = target.to_string();
                manifest.shard_gen[i] = new_gen;
                let shard = shards[i].as_ref().expect("reconstructed");
                report.shards_rebuilt += 1;
                report.bytes_rebuilt += shard.len() as u64;
            }
        }
        let key = manifest_key(object);
        if affected.is_empty() {
            // Nothing moved: the manifest is unchanged, so no
            // generation bump and no cluster-wide republish — each
            // replacement just needs its discovery copy seeded.
            let bytes = manifest.to_bytes();
            let jobs: Vec<_> = replacements
                .values()
                .map(|&target| {
                    let (key, bytes) = (&key, &bytes);
                    (target.to_string(), move |c: &mut NodeClient| c.put(key, bytes))
                })
                .collect();
            for result in conns.run_batch(jobs) {
                result?;
            }
            return Ok(());
        }
        // Publish: the shard map changed — refresh it on the
        // post-repair membership, concurrently. Only the replacements
        // are *required* to accept it (they just proved alive; without
        // a manifest their new shards are undiscoverable) — other
        // nodes may themselves be dead mid-multi-failure, and their
        // stale replicas lose the generation vote until their own
        // repair refreshes them.
        trip(&self.failpoint, "repair.publish", 0)?;
        manifest.generation = new_gen;
        let bytes = manifest.to_bytes();
        let targets: Vec<&str> = self
            .nodes
            .iter()
            .map(|addr| {
                replacements.get(addr.as_str()).copied().unwrap_or(addr.as_str())
            })
            .collect();
        let jobs: Vec<_> = targets
            .iter()
            .map(|&addr| {
                let (key, bytes) = (&key, &bytes);
                (addr.to_string(), move |c: &mut NodeClient| c.put(key, bytes))
            })
            .collect();
        for (&addr, result) in targets.iter().zip(conns.run_batch(jobs)) {
            match result {
                Ok(()) => {}
                Err(e) if replacements.values().any(|&r| r == addr) => return Err(e),
                Err(_) => {}
            }
        }
        Ok(())
    }
}

/// Parse a GC-able per-shard key — a shard blob (`s:`) or its hash-blob
/// twin (`t:`) — into `(object, index, generation)`. The two families
/// share one suffix grammar, so one liveness rule judges both.
fn parse_gc_key(key: &str) -> Option<(&str, usize, u64)> {
    parse_shard_key(key).or_else(|| crate::tree::parse_tree_key(key))
}

/// A self-contained (`'static`) fetch-and-validate job for shard `i` of
/// `object`: suitable for both barrier batches and detached first-n
/// workers. The outer `Err` is a transport failure (the fan-out layer
/// drops the connection); the inner result is the typed shard outcome.
fn shard_fetch_job(
    object: &str,
    manifest: &Manifest,
    i: usize,
) -> impl FnOnce(&mut NodeClient) -> Result<Result<Vec<u8>, ShardFault>, StoreError>
       + Send
       + 'static {
    let key = manifest.shard_key(object, i);
    let addr = manifest.placement[i].clone();
    let want_len = manifest.shard_len;
    let want_crc = manifest.shard_crc[i];
    // Version-4 manifests carry per-shard Merkle roots: every consumer
    // of this job — get, overwrite's old-shard fetch, repair's survivor
    // fetch, the full-read scrub — gets end-to-end hash verification
    // for free, so even a CRC-colliding flip cannot slip into a decode.
    let want_root = manifest
        .has_hashes()
        .then(|| (manifest.shard_root[i], manifest.hash_leaf_size as usize));
    move |c| match c.get(&key) {
        Ok(bytes) => {
            if bytes.len() as u64 != want_len {
                return Ok(Err(ShardFault::Corrupt(format!(
                    "node {addr} returned {} bytes, manifest says {want_len}",
                    bytes.len()
                ))));
            }
            if crc32(&bytes) != want_crc {
                return Ok(Err(ShardFault::Corrupt(format!(
                    "shard bytes from {addr} fail the manifest checksum"
                ))));
            }
            if let Some((root, leaf_size)) = want_root {
                if MerkleTree::from_payload(&bytes, leaf_size).root() != root {
                    return Ok(Err(ShardFault::Corrupt(format!(
                        "shard bytes from {addr} fail the manifest Merkle root \
                         (CRC-32 passes — checksum-colliding damage)"
                    ))));
                }
            }
            Ok(Ok(bytes))
        }
        Err(StoreError::Remote { code: RemoteErrorCode::CorruptBlob, message }) => {
            Ok(Err(ShardFault::Corrupt(format!("{addr}: corrupt blob: {message}"))))
        }
        Err(e @ StoreError::Remote { .. }) => {
            Ok(Err(ShardFault::Missing(format!("{addr}: {e}"))))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeHandle;

    /// Regression for the shared-connection-state contract: a node
    /// found dead by the scrub health probe is marked dead exactly once
    /// in the operation's `ParallelConnSet` — every per-object touch
    /// afterwards fast-fails without a new dial, so a sweep over many
    /// objects pays one connect failure, not one per object.
    #[test]
    fn scrub_marks_a_dead_node_exactly_once() {
        let root = std::env::temp_dir()
            .join(format!("ec_store_deadonce_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut nodes: Vec<NodeHandle> = (0..4)
            .map(|i| {
                NodeHandle::spawn(&root.join(format!("n{i}")), "127.0.0.1:0", 2)
                    .expect("spawn node")
            })
            .collect();
        let addrs: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
        let cluster = Cluster::new(addrs.clone(), RsConfig::new(2, 1)).unwrap();
        for k in 0..12 {
            cluster
                .put(&format!("obj-{k}"), &vec![k as u8; 4096])
                .unwrap();
        }
        let dead = addrs[0].clone();
        nodes.remove(0).shutdown();

        let mut conns = cluster.conns();
        let report = cluster.scrub_via(&mut conns).unwrap();
        assert_eq!(report.dead_nodes, vec![dead.clone()]);
        assert_eq!(report.objects.len() + report.failed_objects.len(), 12);
        assert_eq!(
            conns.connect_attempts(&dead),
            1,
            "a dead node must be dialed once per sweep, not once per object"
        );
        drop(nodes);
        let _ = std::fs::remove_dir_all(&root);
    }
}
