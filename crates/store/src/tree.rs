//! Per-shard hash trees for the object store: the stored leaf-hash
//! blobs (`t:` keys) and the manifest-root arithmetic the incremental
//! scrub descends over.
//!
//! Every version-4 manifest records one SHA-256 Merkle root per shard
//! plus the object root over those roots
//! ([`ec_wire::merkle::root_over_roots`]). Beside each shard blob
//! (`s:<idx>g<gen>:<object>`) lives a *hash blob*
//! (`t:<idx>g<gen>:<object>`) holding the shard's leaf hashes at
//! [`HASH_LEAF_SIZE`] granularity:
//!
//! ```text
//! [8 magic "XSLPECH1"][u8 version][u32 LE leaf_size][u32 LE leaf_count]
//! [leaf_count × 32 leaf hashes][u32 LE CRC-32 of everything before]
//! ```
//!
//! The split of trust is deliberate: the manifest root is the ground
//! truth (it travels with the CRC'd, generation-elected manifest), the
//! stored leaves are a *cache* of the tree below it — useful only after
//! their own root re-hashes to the manifest root. Scrub compares the
//! node's **computed** tree (re-hashed from the shard bytes on the node,
//! via the `HASH_SUBTREE` opcode) against the **stored** tree level by
//! level, shipping `O(log leaves)` hashes to attribute damage to exact
//! leaf ranges — never the shard payload itself.

use crate::error::StoreError;
use ec_wire::crc32;
use ec_wire::merkle::{payload_leaves, Hash, MerkleTree};
use ec_wire::SHA256_LEN;

/// Magic prefix of a serialized hash blob.
pub const HASH_MAGIC: [u8; 8] = *b"XSLPECH1";

/// Serialization version of the hash-blob form.
pub const HASH_BLOB_VERSION: u8 = 1;

/// Leaf granularity the store hashes shards at: 64 KiB balances
/// attribution precision (a damaged region is named to within 64 KiB)
/// against tree size (a 64 MiB shard carries 1024 leaves = 32 KiB of
/// hashes, under 0.05% overhead).
pub const HASH_LEAF_SIZE: u32 = 64 * 1024;

/// Key of the hash blob for shard `index` of `object` at `generation` —
/// the `t:` twin of [`crate::manifest::shard_key`], same grammar, so it
/// rides the same [`crate::proto::MAX_KEY`] budget and the same GC
/// liveness rule.
pub fn tree_key(object: &str, index: usize, generation: u64) -> String {
    if generation == 0 {
        format!("t:{index:03}:{object}")
    } else {
        format!("t:{index:03}g{generation:016x}:{object}")
    }
}

/// Decompose a tree key into `(object, index, generation)` — the GC's
/// inverse of [`tree_key`]; `None` for keys that are not tree keys.
pub fn parse_tree_key(key: &str) -> Option<(&str, usize, u64)> {
    crate::manifest::parse_prefixed_key(key, "t:")
}

/// The leaf hashes of one shard, as stored in a `t:` hash blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashBlob {
    /// Leaf granularity the hashes were computed at.
    pub leaf_size: u32,
    /// `leaves[k]` = `leaf_hash` of shard bytes `[k·leaf_size, …)`.
    pub leaves: Vec<Hash>,
}

impl HashBlob {
    /// Hash `shard` at `leaf_size` granularity.
    pub fn from_shard(shard: &[u8], leaf_size: u32) -> HashBlob {
        HashBlob { leaf_size, leaves: payload_leaves(shard, leaf_size as usize) }
    }

    /// The Merkle root over the stored leaves.
    pub fn root(&self) -> Hash {
        MerkleTree::from_leaves(self.leaves.clone()).root()
    }

    /// Serialize to the blob form described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21 + self.leaves.len() * SHA256_LEN);
        out.extend_from_slice(&HASH_MAGIC);
        out.push(HASH_BLOB_VERSION);
        out.extend_from_slice(&self.leaf_size.to_le_bytes());
        out.extend_from_slice(&(self.leaves.len() as u32).to_le_bytes());
        for leaf in &self.leaves {
            out.extend_from_slice(leaf);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and validate the blob form.
    pub fn from_bytes(bytes: &[u8]) -> Result<HashBlob, StoreError> {
        let bad = |msg: &str| StoreError::Manifest(format!("hash blob: {msg}"));
        let head = HASH_MAGIC.len() + 1 + 4 + 4;
        if bytes.len() < head + 4 {
            return Err(bad("too short"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        if u32::from_le_bytes(trailer.try_into().expect("fixed slice")) != crc32(body) {
            return Err(bad("checksum mismatch"));
        }
        if body[..HASH_MAGIC.len()] != HASH_MAGIC {
            return Err(bad("bad magic"));
        }
        let version = body[HASH_MAGIC.len()];
        if version != HASH_BLOB_VERSION {
            return Err(StoreError::Manifest(format!(
                "unsupported hash blob version {version} (this build reads \
                 {HASH_BLOB_VERSION})"
            )));
        }
        let leaf_size = u32::from_le_bytes(
            body[HASH_MAGIC.len() + 1..HASH_MAGIC.len() + 5].try_into().expect("fixed"),
        );
        if leaf_size == 0 {
            return Err(bad("zero leaf size"));
        }
        let count = u32::from_le_bytes(
            body[HASH_MAGIC.len() + 5..head].try_into().expect("fixed"),
        ) as usize;
        let hashes = &body[head..];
        if hashes.len() != count * SHA256_LEN {
            return Err(bad("leaf count does not match the payload length"));
        }
        let leaves = hashes
            .chunks_exact(SHA256_LEN)
            .map(|c| {
                let mut h = [0u8; SHA256_LEN];
                h.copy_from_slice(c);
                h
            })
            .collect();
        Ok(HashBlob { leaf_size, leaves })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_wire::merkle::empty_root;

    #[test]
    fn roundtrips_and_roots() {
        let shard: Vec<u8> = (0..200_000u32).map(|i| (i * 13) as u8).collect();
        let blob = HashBlob::from_shard(&shard, HASH_LEAF_SIZE);
        assert_eq!(blob.leaves.len(), 4); // 200 000 / 65 536 rounds up to 4
        assert_eq!(blob.root(), MerkleTree::from_payload(&shard, HASH_LEAF_SIZE as usize).root());
        let parsed = HashBlob::from_bytes(&blob.to_bytes()).unwrap();
        assert_eq!(parsed, blob);
        // Empty shard: no leaves, the canonical empty root.
        let empty = HashBlob::from_shard(&[], HASH_LEAF_SIZE);
        assert_eq!(empty.root(), empty_root());
        assert_eq!(HashBlob::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = HashBlob::from_shard(&[7u8; 1000], 256).to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(HashBlob::from_bytes(&bad).is_err(), "flip at byte {i}");
        }
        for cut in 0..bytes.len() {
            assert!(HashBlob::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn tree_keys_mirror_shard_keys() {
        assert_eq!(tree_key("obj", 7, 0), "t:007:obj");
        assert_eq!(tree_key("obj", 7, 0x2a), "t:007g000000000000002a:obj");
        for gen in [0u64, 1, 42, u64::MAX] {
            let key = tree_key("a:b/c", 17, gen);
            assert_eq!(parse_tree_key(&key), Some(("a:b/c", 17, gen)));
        }
        for bad in ["s:007:obj", "t:", "t:01", "t:007obj", "t:007g123:obj"] {
            assert_eq!(parse_tree_key(bad), None, "{bad}");
        }
    }
}
