//! Computation graphs (§6.4): the arenas of the pebble game.
//!
//! A computation graph is a DAG whose leaves are the program's constants
//! and whose inner nodes are its variables; an inner node's value is the
//! XOR of its children, and *goal* nodes are the returned values.

use slp::{Slp, Term};

/// The computation graph of an SSA `SLP®⊕`.
#[derive(Clone, Debug)]
pub struct CompGraph {
    /// Number of constants (leaves).
    pub n_consts: usize,
    /// `children[v]` — the argument terms of inner node `v`, in ≺ order.
    pub children: Vec<Vec<Term>>,
    /// `parent_count[v]` — how many inner nodes consume `v`.
    pub parent_count: Vec<usize>,
    /// Goal terms, positionally matching the program's outputs.
    pub goals: Vec<Term>,
    /// `is_goal[v]` for inner nodes.
    pub is_goal: Vec<bool>,
    /// Inner nodes reachable from some goal (everything worth computing).
    pub needed: Vec<bool>,
}

impl CompGraph {
    /// Build from an SSA program with duplicate-free argument lists (the
    /// shape produced by compression and fusion).
    ///
    /// # Panics
    /// Panics if the program is not SSA or an instruction repeats a term.
    pub fn build(slp: &Slp) -> CompGraph {
        assert!(slp.is_ssa(), "computation graphs require SSA form");
        let n = slp.n_vars();
        let mut children: Vec<Vec<Term>> = vec![Vec::new(); n];
        let mut parent_count = vec![0usize; n];
        for instr in &slp.instrs {
            let mut args = instr.args.clone();
            args.sort_unstable();
            let before = args.len();
            args.dedup();
            assert_eq!(
                before,
                args.len(),
                "instruction for v{} repeats an argument; fuse first",
                instr.dst
            );
            for &t in &args {
                if let Term::Var(v) = t {
                    parent_count[v as usize] += 1;
                }
            }
            children[instr.dst as usize] = args;
        }

        let mut is_goal = vec![false; n];
        for &t in &slp.outputs {
            if let Term::Var(v) = t {
                is_goal[v as usize] = true;
            }
        }

        // Mark nodes reachable from the goals (downward).
        let mut needed = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&v| is_goal[v]).collect();
        while let Some(v) = stack.pop() {
            if std::mem::replace(&mut needed[v], true) {
                continue;
            }
            for &t in &children[v] {
                if let Term::Var(c) = t {
                    if !needed[c as usize] {
                        stack.push(c as usize);
                    }
                }
            }
        }

        CompGraph {
            n_consts: slp.n_consts,
            children,
            parent_count,
            goals: slp.outputs.clone(),
            is_goal,
            needed,
        }
    }

    /// Number of inner nodes.
    pub fn n_inner(&self) -> usize {
        self.children.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::Instr;
    use slp::Term::{Const, Var};

    /// The fused example P_eg whose graph is drawn in §6.4 (G_eg).
    fn p_eg() -> Slp {
        Slp::new(
            7,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(2), Const(3)]),
                Instr::new(2, vec![Var(0), Const(4), Const(5)]),
                Instr::new(3, vec![Var(2), Const(6), Const(0)]),
                Instr::new(4, vec![Var(0), Var(2), Var(3)]),
            ],
            vec![Var(1), Var(3), Var(4)],
        )
        .unwrap()
    }

    #[test]
    fn g_eg_structure() {
        let g = CompGraph::build(&p_eg());
        assert_eq!(g.n_inner(), 5);
        // v1 feeds v3 and v5; v3 feeds v4 and v5; v4 feeds v5.
        assert_eq!(g.parent_count[0], 2);
        assert_eq!(g.parent_count[2], 2);
        assert_eq!(g.parent_count[3], 1);
        assert_eq!(g.parent_count[1], 0); // v2 is a root
        assert_eq!(g.parent_count[4], 0); // v5 is a root
        assert!(g.is_goal[1] && g.is_goal[3] && g.is_goal[4]);
        assert!(!g.is_goal[0] && !g.is_goal[2]);
        assert!(g.needed.iter().all(|&b| b));
        // children are stored in ≺ order: variables before constants.
        assert_eq!(g.children[3], vec![Var(2), Const(0), Const(6)]);
    }

    #[test]
    fn dead_roots_are_not_needed() {
        let p = Slp::new(
            3,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(1), Const(2)]), // dead
            ],
            vec![Var(0)],
        )
        .unwrap();
        let g = CompGraph::build(&p);
        assert!(g.needed[0]);
        assert!(!g.needed[1]);
    }

    #[test]
    #[should_panic(expected = "repeats an argument")]
    fn duplicate_args_rejected() {
        let p = Slp::new(
            2,
            vec![Instr::new(0, vec![Const(0), Const(0), Const(1)])],
            vec![Var(0)],
        )
        .unwrap();
        let _ = CompGraph::build(&p);
    }
}
