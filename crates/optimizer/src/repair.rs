//! RePair and XorRePair (§4.3–§4.4): compressing `SLP⊕` by recursive
//! pairing, optionally exploiting XOR cancellativity via `Rebuild`.
//!
//! The compressor works on the *flat* normal form: one definition per
//! output, each a set of terms. Definitions still to be processed are the
//! "original variables" (below the horizontal line in the paper's
//! notation); `Pair(x, y)` introduces *temporal* variables `t1, t2, …`
//! above the line. The loop ends when every original has collapsed into an
//! alias of a temporal (or a constant), at which point the program is a
//! sequence of binary XORs — one per temporal.
//!
//! Tie-breaking uses the total order `≺` of §4.3 (temporals by generation
//! order, then constants alphabetically) extended lexicographically to
//! pairs (`⊏`); this makes the output fully deterministic.

use slp::{Instr, Slp, Term, ValueSet};
use std::collections::btree_set::BTreeSet;
use std::collections::HashMap;

/// Statistics reported by a compression run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompressStats {
    /// Number of `Pair` applications (= temporals created).
    pub pairs: usize,
    /// Number of `Rebuild` applications that strictly shrank a definition.
    pub rebuilds_applied: usize,
    /// Temporals left unused by the final program (candidates for DCE).
    pub dead_temporals: usize,
}

/// A pair key, normalized so the ≺-smaller term comes first.
fn pair_key(a: Term, b: Term) -> (Term, Term) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

struct Original {
    /// Current definition: a set of terms (constants and temporals).
    def: BTreeSet<Term>,
    /// The invariant value of this definition (fixed at construction).
    value: ValueSet,
    /// Output slot this original defines.
    slot: usize,
}

struct Compressor {
    universe: usize,
    /// Temporal definitions in creation order; `Term::Var(i)` refers to
    /// `temporals[i]`.
    temporals: Vec<(Term, Term)>,
    /// Value of each temporal.
    temporal_values: Vec<ValueSet>,
    /// Reuse map: definition pair → existing temporal index.
    by_def: HashMap<(Term, Term), u32>,
    /// Live originals.
    originals: Vec<Original>,
    /// Pair frequencies across live original definitions.
    counts: HashMap<(Term, Term), u32>,
    /// Resolved output slots.
    out_map: Vec<Option<Term>>,
    stats: CompressStats,
}

impl Compressor {
    fn new(flat: &Slp) -> Self {
        let mut c = Compressor {
            universe: flat.n_consts,
            temporals: Vec::new(),
            temporal_values: Vec::new(),
            by_def: HashMap::new(),
            originals: Vec::new(),
            counts: HashMap::new(),
            out_map: vec![None; flat.outputs.len()],
            stats: CompressStats::default(),
        };
        let values = flat.eval();
        for (slot, out) in flat.outputs.iter().enumerate() {
            match out {
                Term::Const(k) => c.out_map[slot] = Some(Term::Const(*k)),
                Term::Var(_) => {
                    let def: BTreeSet<Term> =
                        values[slot].iter().map(Term::Const).collect();
                    assert!(!def.is_empty(), "output {slot} has empty value");
                    c.originals.push(Original {
                        def,
                        value: values[slot].clone(),
                        slot,
                    });
                }
            }
        }
        for orig in &c.originals {
            let terms: Vec<Term> = orig.def.iter().copied().collect();
            for i in 0..terms.len() {
                for j in i + 1..terms.len() {
                    *c.counts.entry(pair_key(terms[i], terms[j])).or_insert(0) += 1;
                }
            }
        }
        c
    }

    fn term_value(&self, t: Term) -> ValueSet {
        match t {
            Term::Const(k) => ValueSet::singleton(self.universe, k),
            Term::Var(i) => self.temporal_values[i as usize].clone(),
        }
    }

    fn dec(&mut self, key: (Term, Term)) {
        match self.counts.get_mut(&key) {
            Some(1) => {
                self.counts.remove(&key);
            }
            Some(n) => *n -= 1,
            None => unreachable!("pair count underflow for {key:?}"),
        }
    }

    /// Remove `x` from original `oi`'s definition, updating pair counts.
    fn def_remove(&mut self, oi: usize, x: Term) {
        let others: Vec<Term> = self.originals[oi]
            .def
            .iter()
            .copied()
            .filter(|&z| z != x)
            .collect();
        assert!(self.originals[oi].def.remove(&x), "removing absent term");
        for z in others {
            self.dec(pair_key(x, z));
        }
    }

    /// Insert `x` into original `oi`'s definition, updating pair counts.
    fn def_insert(&mut self, oi: usize, x: Term) {
        let others: Vec<Term> = self.originals[oi].def.iter().copied().collect();
        assert!(self.originals[oi].def.insert(x), "inserting duplicate term");
        for z in others {
            *self.counts.entry(pair_key(x, z)).or_insert(0) += 1;
        }
    }

    /// Toggle membership (used when a pair replacement meets an existing
    /// occurrence of the temporal: `t ⊕ t` cancels).
    fn def_toggle(&mut self, oi: usize, x: Term) {
        if self.originals[oi].def.contains(&x) {
            self.def_remove(oi, x);
        } else {
            self.def_insert(oi, x);
        }
    }

    fn get_or_create_temporal(&mut self, x: Term, y: Term) -> Term {
        let key = pair_key(x, y);
        if let Some(&i) = self.by_def.get(&key) {
            return Term::Var(i);
        }
        let idx = self.temporals.len() as u32;
        let value = self.term_value(x).symdiff(&self.term_value(y));
        self.temporals.push(key);
        self.temporal_values.push(value);
        self.by_def.insert(key, idx);
        self.stats.pairs += 1;
        Term::Var(idx)
    }

    /// Resolve originals whose definition collapsed to a single term.
    fn resolve_aliases(&mut self) {
        let mut i = 0;
        while i < self.originals.len() {
            if self.originals[i].def.len() == 1 {
                let orig = self.originals.swap_remove(i);
                let term = *orig.def.iter().next().expect("len checked");
                self.out_map[orig.slot] = Some(term);
            } else {
                i += 1;
            }
        }
    }

    /// The most frequent pair; ties broken by the lexicographic order ⊏.
    fn best_pair(&self) -> Option<(Term, Term)> {
        let max = *self.counts.values().max()?;
        self.counts
            .iter()
            .filter(|(_, &c)| c == max)
            .map(|(&k, _)| k)
            .min()
    }

    /// One `Pair(x, y)` step (§4.3).
    fn apply_pair(&mut self, x: Term, y: Term) {
        let t = self.get_or_create_temporal(x, y);
        for oi in 0..self.originals.len() {
            let has_both = {
                let d = &self.originals[oi].def;
                d.contains(&x) && d.contains(&y)
            };
            if !has_both {
                continue;
            }
            self.def_remove(oi, x);
            self.def_remove(oi, y);
            // If t already occurs, x ⊕ y ⊕ t = 0 cancels it out entirely.
            self.def_toggle(oi, t);
            assert!(
                !self.originals[oi].def.is_empty(),
                "definition cancelled to the empty set"
            );
        }
    }

    /// `Rebuild(v)` (§4.4): greedily re-express an original's value using
    /// temporal values, exploiting cancellativity.
    fn rebuild(&self, oi: usize) -> BTreeSet<Term> {
        let orig = &self.originals[oi];
        let mut rem = orig.value.clone();
        let mut chosen: BTreeSet<u32> = BTreeSet::new();
        loop {
            let here = rem.len();
            let mut best: Option<(usize, u32)> = None; // (|rem ⊕ t|, index)
            for (i, tv) in self.temporal_values.iter().enumerate() {
                let after = rem.symdiff_len(tv);
                if after < here {
                    let candidate = (after, i as u32);
                    // strictly better, or equal size with smaller index (≺)
                    if best.is_none_or(|b| candidate < b) {
                        best = Some(candidate);
                    }
                }
            }
            let Some((_, idx)) = best else { break };
            rem.symdiff_assign(&self.temporal_values[idx as usize]);
            // toggling keeps the invariant value(def) = ⟦v⟧ even if the
            // greedy loop revisits a temporal
            if !chosen.remove(&idx) {
                chosen.insert(idx);
            }
        }
        let mut def: BTreeSet<Term> = rem.iter().map(Term::Const).collect();
        def.extend(chosen.into_iter().map(Term::Var));
        def
    }

    /// The `Rebuild` sweep of XorRePair's step (3).
    fn rebuild_pass(&mut self) {
        for oi in 0..self.originals.len() {
            let candidate = self.rebuild(oi);
            if candidate.len() < self.originals[oi].def.len() {
                // Replace wholesale, keeping pair counts consistent.
                let old: Vec<Term> = self.originals[oi].def.iter().copied().collect();
                for &x in &old {
                    self.def_remove(oi, x);
                }
                for x in candidate {
                    self.def_insert(oi, x);
                }
                self.stats.rebuilds_applied += 1;
            }
        }
    }

    fn run(mut self, use_rebuild: bool) -> (Slp, CompressStats) {
        loop {
            self.resolve_aliases();
            if self.originals.is_empty() {
                break;
            }
            let (x, y) = self
                .best_pair()
                .expect("non-alias originals always contain a pair");
            self.apply_pair(x, y);
            if use_rebuild {
                self.rebuild_pass();
            }
        }
        self.emit()
    }

    fn emit(mut self) -> (Slp, CompressStats) {
        let instrs: Vec<Instr> = self
            .temporals
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| Instr::new(i as u32, vec![a, b]))
            .collect();
        let outputs: Vec<Term> = self
            .out_map
            .iter()
            .map(|t| t.expect("all outputs resolved at termination"))
            .collect();
        let slp = Slp::new(self.universe, instrs, outputs)
            .expect("compressor emits well-formed SLPs");
        // Count temporals never read and never returned.
        let uses = slp.use_counts();
        let mut returned = vec![false; slp.n_vars()];
        for &t in &slp.outputs {
            if let Term::Var(v) = t {
                returned[v as usize] = true;
            }
        }
        self.stats.dead_temporals = (0..slp.n_vars())
            .filter(|&v| uses[v] == 0 && !returned[v])
            .count();
        (slp, self.stats)
    }
}

/// RePair (§4.3): recursive pairing without cancellation.
///
/// Accepts any SLP; it is flattened first (each output expressed over
/// constants), which is semantics-preserving. The result is a binary SSA
/// `SLP⊕` with `⟦out⟧ = ⟦in⟧`.
pub fn repair(slp: &Slp) -> (Slp, CompressStats) {
    Compressor::new(&slp.flatten()).run(false)
}

/// XorRePair (§4.4): RePair augmented with the cancellation-aware
/// `Rebuild` sweep after every pairing step.
pub fn xor_repair(slp: &Slp) -> (Slp, CompressStats) {
    Compressor::new(&slp.flatten()).run(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::Term::{Const, Var};

    /// P0 of §4.2/§4.3 (consts a,b,c,d = 0..3).
    fn p0() -> Slp {
        Slp::new(
            4,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(0), Const(1), Const(2)]),
                Instr::new(2, vec![Const(0), Const(1), Const(2), Const(3)]),
                Instr::new(3, vec![Const(1), Const(2), Const(3)]),
            ],
            vec![Var(0), Var(1), Var(2), Var(3)],
        )
        .unwrap()
    }

    #[test]
    fn repair_reproduces_the_paper_trace_on_p0() {
        // §4.3: RePair compresses P0 from 8 XORs to 5, producing
        //   t1 ← a⊕b; t2 ← t1⊕c; t3 ← t2⊕d; t4 ← b⊕c; t5 ← t4⊕d.
        let (q, stats) = repair(&p0());
        assert_eq!(q.xor_count(), 5);
        assert_eq!(stats.pairs, 5);
        assert_eq!(q.eval(), p0().eval());
        assert!(q.is_binary());
        assert!(q.is_ssa());

        let expect: Vec<Instr> = vec![
            Instr::new(0, vec![Const(0), Const(1)]), // t1 ← a⊕b
            Instr::new(1, vec![Var(0), Const(2)]),   // t2 ← t1⊕c
            Instr::new(2, vec![Var(1), Const(3)]),   // t3 ← t2⊕d
            Instr::new(3, vec![Const(1), Const(2)]), // t4 ← b⊕c
            Instr::new(4, vec![Var(3), Const(3)]),   // t5 ← t4⊕d
        ];
        assert_eq!(q.instrs, expect);
        assert_eq!(q.outputs, vec![Var(0), Var(1), Var(2), Var(4)]);
    }

    #[test]
    fn xor_repair_finds_the_shortest_slp_for_p0() {
        // §4.4: XorRePair reaches the optimum of 4 XORs by rebuilding
        // v4 ← a ⊕ t3 and then pairing (t3, a) — note ⊏ orders the
        // temporal first.
        let (q, stats) = xor_repair(&p0());
        assert_eq!(q.xor_count(), 4, "\n{q}");
        assert_eq!(q.eval(), p0().eval());
        assert!(stats.rebuilds_applied >= 1);

        let expect: Vec<Instr> = vec![
            Instr::new(0, vec![Const(0), Const(1)]), // t1 ← a⊕b
            Instr::new(1, vec![Var(0), Const(2)]),   // t2 ← t1⊕c
            Instr::new(2, vec![Var(1), Const(3)]),   // t3 ← t2⊕d
            Instr::new(3, vec![Var(2), Const(0)]),   // t4 ← t3⊕a
        ];
        assert_eq!(q.instrs, expect);
        assert_eq!(q.outputs, vec![Var(0), Var(1), Var(2), Var(3)]);
    }

    #[test]
    fn xor_repair_never_beats_repair_in_reverse() {
        // On programs without cancellation opportunities both coincide.
        let p = Slp::new(
            5,
            vec![
                Instr::new(0, vec![Const(0), Const(1), Const(2)]),
                Instr::new(1, vec![Const(2), Const(3), Const(4)]),
            ],
            vec![Var(0), Var(1)],
        )
        .unwrap();
        let (a, _) = repair(&p);
        let (b, _) = xor_repair(&p);
        assert_eq!(a.eval(), p.eval());
        assert_eq!(b.eval(), p.eval());
        assert!(b.xor_count() <= a.xor_count());
    }

    #[test]
    fn shared_subterm_is_extracted_once() {
        // §2.1: c⊕d⊕e shared by two outputs is computed once.
        let p = Slp::new(
            7,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(2), Const(3), Const(4), Const(5)]),
                Instr::new(2, vec![Const(2), Const(3), Const(4), Const(6)]),
            ],
            vec![Var(0), Var(1), Var(2)],
        )
        .unwrap();
        let (q, _) = repair(&p);
        assert_eq!(q.xor_count(), 5); // 7 → 5 as in the §2.1 summary
        assert_eq!(q.eval(), p.eval());
    }

    #[test]
    fn constant_outputs_pass_through() {
        let p = Slp::new(
            3,
            vec![Instr::new(0, vec![Const(0), Const(1), Const(2)])],
            vec![Var(0), Const(2)],
        )
        .unwrap();
        let (q, _) = xor_repair(&p);
        assert_eq!(q.outputs[1], Const(2));
        assert_eq!(q.eval(), p.eval());
    }

    #[test]
    fn single_output_chain() {
        // One output of k consts compresses to a left-deep chain of k-1
        // pairings (no sharing available).
        let p = Slp::new(
            6,
            vec![Instr::new(
                0,
                (0..6).map(Const).collect::<Vec<_>>(),
            )],
            vec![Var(0)],
        )
        .unwrap();
        let (q, _) = repair(&p);
        assert_eq!(q.xor_count(), 5);
        assert_eq!(q.eval(), p.eval());
    }

    #[test]
    fn identical_outputs_share_everything() {
        let p = Slp::new(
            3,
            vec![
                Instr::new(0, vec![Const(0), Const(1), Const(2)]),
                Instr::new(1, vec![Const(0), Const(1), Const(2)]),
            ],
            vec![Var(0), Var(1)],
        )
        .unwrap();
        let (q, _) = repair(&p);
        assert_eq!(q.xor_count(), 2); // one chain, two aliased outputs
        assert_eq!(q.outputs[0], q.outputs[1]);
        assert_eq!(q.eval(), p.eval());
    }
}
