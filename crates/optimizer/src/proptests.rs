//! Property tests: every pass preserves `⟦·⟧` on random programs, and the
//! quantitative theorems hold.

use crate::{fuse, optimize, repair, schedule_dfs, schedule_greedy, xor_repair, OptConfig};
use crate::{Compression, Scheduling};
use proptest::prelude::*;
use slp::{Instr, Slp, Term};

/// Random flat SLP: `n_outputs` rows over `n_consts` inputs, each row a
/// random non-empty subset. This is exactly the shape coding matrices
/// produce.
fn flat_slp(n_consts: usize, n_outputs: usize) -> impl Strategy<Value = Slp> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..n_consts as u32, 1..=n_consts),
        n_outputs,
    )
    .prop_map(move |rows| {
        let mut instrs = Vec::new();
        let mut outputs = Vec::new();
        for row in rows {
            let dst = instrs.len() as u32;
            instrs.push(Instr::new(dst, row.into_iter().map(Term::Const).collect::<Vec<_>>()));
            outputs.push(Term::Var(dst));
        }
        Slp::new(n_consts, instrs, outputs).unwrap()
    })
}

/// Random layered DAG SLP exercising variable reuse in argument lists.
fn dag_slp() -> impl Strategy<Value = Slp> {
    (4usize..10, 5usize..25).prop_flat_map(|(n_consts, n_instrs)| {
        let arity = 2usize..5;
        proptest::collection::vec(
            (proptest::collection::vec(any::<u32>(), arity), any::<u32>()),
            n_instrs,
        )
        .prop_map(move |raw| {
            let mut instrs: Vec<Instr> = Vec::new();
            for (v, (seeds, _)) in raw.iter().enumerate() {
                let v = v as u32;
                let mut args: Vec<Term> = Vec::new();
                for &s in seeds {
                    // mix constants and previously defined variables
                    let t = if v > 0 && s % 3 == 0 {
                        Term::Var(s % v)
                    } else {
                        Term::Const(s % n_consts as u32)
                    };
                    if !args.contains(&t) {
                        args.push(t);
                    }
                }
                if args.is_empty() {
                    args.push(Term::Const(0));
                }
                instrs.push(Instr::new(v, args));
            }
            let n = instrs.len() as u32;
            let outputs: Vec<Term> = (n.saturating_sub(4)..n).map(Term::Var).collect();
            Slp::new(n_consts, instrs, outputs).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn repair_preserves_semantics(p in flat_slp(10, 6)) {
        let (q, _) = repair(&p);
        prop_assert_eq!(q.eval(), p.eval());
        prop_assert!(q.is_binary());
        prop_assert!(q.is_ssa());
    }

    #[test]
    fn xor_repair_preserves_semantics_and_never_loses(p in flat_slp(10, 6)) {
        let (q, _) = xor_repair(&p);
        prop_assert_eq!(q.eval(), p.eval());
        // compression never exceeds the naive XOR count
        prop_assert!(q.xor_count() <= p.xor_count().max(1));
    }

    #[test]
    fn fusion_preserves_semantics_on_dags(p in dag_slp()) {
        let q = fuse(&p);
        prop_assert_eq!(q.eval(), p.eval());
    }

    #[test]
    fn theorem_2_fusion_strictly_reduces_mem(p in dag_slp()) {
        // Whenever fusion changes the (DCE'd) program, #M strictly drops.
        let ssa = p.to_ssa().eliminate_dead_code();
        let q = fuse(&ssa);
        if q != ssa {
            prop_assert!(
                q.mem_accesses() < ssa.mem_accesses(),
                "#M went {} -> {}",
                ssa.mem_accesses(),
                q.mem_accesses()
            );
        }
    }

    #[test]
    fn schedulers_preserve_semantics(p in flat_slp(12, 6)) {
        let fused = fuse(&p);
        let dfs = schedule_dfs(&fused);
        prop_assert_eq!(dfs.eval(), p.eval());
        let greedy = schedule_greedy(&fused, 8);
        prop_assert_eq!(greedy.eval(), p.eval());
    }

    #[test]
    fn schedulers_never_increase_static_costs(p in flat_slp(12, 6)) {
        let fused = fuse(&xor_repair(&p).0);
        for q in [schedule_dfs(&fused), schedule_greedy(&fused, 8)] {
            prop_assert_eq!(q.xor_count(), fused.xor_count());
            prop_assert_eq!(q.mem_accesses(), fused.mem_accesses());
            prop_assert!(q.nvar() <= fused.nvar());
        }
    }

    #[test]
    fn full_pipeline_preserves_semantics(p in flat_slp(16, 8)) {
        for config in [
            OptConfig::FULL_DFS,
            OptConfig {
                compression: Compression::RePair,
                fuse: true,
                schedule: Scheduling::Greedy { cache_blocks: 12 },
            },
        ] {
            let q = optimize(&p, config);
            prop_assert_eq!(q.eval(), p.eval());
        }
    }

    #[test]
    fn pipeline_output_runs_on_real_bytes(p in flat_slp(8, 4), len in 1usize..64) {
        // The reference interpreter agrees before/after optimization on
        // concrete data — ties the abstract semantics to actual bytes.
        let q = optimize(&p, OptConfig::FULL_DFS);
        let inputs: Vec<Vec<u8>> = (0..8u8)
            .map(|i| (0..len).map(|j| i.wrapping_mul(31) ^ (j as u8)).collect())
            .collect();
        let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(p.run_reference(&refs), q.run_reference(&refs));
    }
}
