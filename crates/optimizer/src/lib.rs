//! Optimization passes for XOR straight-line programs, implementing §4–§6
//! of the paper:
//!
//! * **Compression** (§4): [`repair`] — the grammar-compression heuristic
//!   RePair adapted to `SLP⊕`, and XorRePair, its extension with the
//!   cancellation-aware `Rebuild` subroutine;
//! * **Fusion** (§5): [`fusion`] — deforestation for SLPs: variables used
//!   exactly once are unfolded into variadic XORs, eliminating intermediate
//!   arrays and reducing the memory-access count `#M`;
//! * **Scheduling** (§6): [`schedule`] — two pebble-game heuristics (DFS
//!   postorder and bottom-up greedy) that reorder the program and reuse
//!   buffers ("pebbles") to shrink `NVar`, `CCap` and `IOcost`;
//! * **Register allocation** (§6.3): [`regalloc`] — linear-scan register
//!   assignment on SSA SLPs, kept as an ablation showing why renaming alone
//!   (without reordering) is not enough;
//! * a [`pipeline`] driver composing the passes the way §7 evaluates them
//!   (`Co`, `Fu`, `Dfs`, `Greedy`).
//!
//! Every pass preserves the set semantics `⟦·⟧` exactly; this invariant is
//! enforced by unit tests on the paper's worked examples and by property
//! tests on randomly generated programs.

pub mod fusion;
pub mod graph;
pub mod pipeline;
pub mod regalloc;
pub mod repair;
pub mod schedule;

pub use fusion::fuse;
pub use pipeline::{optimize, Compression, OptConfig, Scheduling, StageMetrics};
pub use regalloc::assign_registers;
pub use repair::{repair, xor_repair, CompressStats};
pub use schedule::{schedule_dfs, schedule_greedy};

#[cfg(test)]
mod proptests;
