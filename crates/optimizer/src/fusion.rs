//! XOR fusion (§5.2): deforestation for SLPs.
//!
//! A variable used exactly once (and not returned) is *unfolded* into its
//! single use site, turning chains of binary XORs into one variadic XOR and
//! eliminating the intermediate array:
//!
//! ```text
//! v  ← ⊕(t1, …, tn);             ⇒     v' ← ⊕(…, t1, …, tn, …);
//! v' ← ⊕(…, v, …);
//! ```
//!
//! Variables used more than once are deliberately *not* unfolded: doing so
//! would duplicate work and increase `#M` (the compress-vs-fuse example of
//! §5.2). Theorem 2 — fusion strictly decreases `#M` whenever it applies —
//! is checked by a property test.
//!
//! One extension over the paper's description: unfolding can make a term
//! appear twice in an argument list (possible after XorRePair's `Rebuild`).
//! `x ⊕ x` cancels, so both occurrences are dropped, preserving `⟦·⟧`
//! exactly and only ever shrinking the program.

use slp::{Instr, Slp, Term};

/// Apply XOR fusion. Non-SSA inputs (e.g. the binary-chain `Base` form,
/// whose accumulator is reassigned) are converted to SSA first.
///
/// The result is an SSA `SLP®⊕` with the same `⟦·⟧`, no dead instructions,
/// and `#M` no larger than the input's.
pub fn fuse(slp: &Slp) -> Slp {
    let mut cur = if slp.is_ssa() { slp.clone() } else { slp.to_ssa() };
    loop {
        let next = fuse_once(&cur);
        if next == cur {
            return next;
        }
        cur = next;
    }
}

/// One forward unfolding pass.
fn fuse_once(slp: &Slp) -> Slp {
    let uses = slp.use_counts();
    let mut returned = vec![false; slp.n_vars()];
    for &t in &slp.outputs {
        if let Term::Var(v) = t {
            returned[v as usize] = true;
        }
    }

    // defs[v] = current (possibly already fused) argument list of v.
    let mut defs: Vec<Option<Vec<Term>>> = vec![None; slp.n_vars()];
    let inlinable = |v: u32| uses[v as usize] == 1 && !returned[v as usize];

    let mut out_instrs: Vec<(u32, Vec<Term>)> = Vec::with_capacity(slp.instrs.len());
    for instr in &slp.instrs {
        let mut args: Vec<Term> = Vec::with_capacity(instr.args.len());
        for &t in &instr.args {
            match t {
                Term::Var(v) if inlinable(v) => {
                    args.extend(
                        defs[v as usize]
                            .as_ref()
                            .expect("SSA guarantees def before use")
                            .iter()
                            .copied(),
                    );
                }
                other => args.push(other),
            }
        }
        let original_first = instr.args[0];
        let mut args = cancel_duplicates(args);
        if args.is_empty() {
            // Everything cancelled: the value is the zero array. The IR has
            // no empty XOR, so represent zero as `t ⊕ t` — semantically the
            // empty set, and harmless at runtime. (Never occurs for SLPs
            // derived from MDS coding matrices, whose values are non-empty.)
            let t = match original_first {
                Term::Var(v) if inlinable(v) => defs[v as usize]
                    .as_ref()
                    .and_then(|d| d.first().copied())
                    .unwrap_or(original_first),
                other => other,
            };
            args = vec![t, t];
        }
        defs[instr.dst as usize] = Some(args.clone());
        out_instrs.push((instr.dst, args));
    }

    // Drop instructions that were folded into their single use, then
    // renumber densely.
    let keep: Vec<(u32, Vec<Term>)> = out_instrs
        .into_iter()
        .filter(|(dst, _)| !inlinable(*dst))
        .collect();
    let mut remap = vec![u32::MAX; slp.n_vars()];
    for (fresh, (dst, _)) in keep.iter().enumerate() {
        remap[*dst as usize] = fresh as u32;
    }
    let map_term = |t: Term| match t {
        Term::Var(v) => Term::Var(remap[v as usize]),
        c => c,
    };
    let instrs: Vec<Instr> = keep
        .iter()
        .map(|(dst, args)| Instr::new(remap[*dst as usize], args.iter().map(|&t| map_term(t)).collect::<Vec<_>>()))
        .collect();
    let outputs: Vec<Term> = slp.outputs.iter().map(|&t| map_term(t)).collect();

    Slp::new(slp.n_consts, instrs, outputs).expect("fusion emits well-formed SLPs")
}

/// Remove pairs of equal terms (`x ⊕ x = 0`), keeping one copy for odd
/// multiplicities. Order of first occurrences is preserved.
fn cancel_duplicates(args: Vec<Term>) -> Vec<Term> {
    use std::collections::HashMap;
    let mut parity: HashMap<Term, usize> = HashMap::new();
    for &t in &args {
        *parity.entry(t).or_insert(0) += 1;
    }
    if parity.values().all(|&c| c == 1) {
        return args; // common fast path: nothing cancels
    }
    let mut out = Vec::with_capacity(args.len());
    let mut emitted: HashMap<Term, bool> = HashMap::new();
    for &t in &args {
        if parity[&t] % 2 == 1 && !std::mem::replace(emitted.entry(t).or_insert(false), true) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::Term::{Const, Var};

    #[test]
    fn section_5_chain_fuses_to_xor4() {
        // v1 ← a⊕b; v2 ← v1⊕c; v3 ← v2⊕d; ret(v3)  ⇒  v ← ⊕(a,b,c,d).
        let p = Slp::new(
            4,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Var(0), Const(2)]),
                Instr::new(2, vec![Var(1), Const(3)]),
            ],
            vec![Var(2)],
        )
        .unwrap();
        let q = fuse(&p);
        assert_eq!(q.instrs.len(), 1);
        assert_eq!(q.instrs[0].args.len(), 4);
        assert_eq!(q.mem_accesses(), 5); // 9 → 5 as in §5
        assert_eq!(q.eval(), p.eval());
    }

    #[test]
    fn shared_variable_is_not_unfolded() {
        // §5.2: B must not be uncompressed into C.
        let b = Slp::new(
            7,
            vec![
                Instr::new(0, vec![Const(0), Const(1), Const(2), Const(3), Const(4)]),
                Instr::new(1, vec![Var(0), Const(5)]),
                Instr::new(2, vec![Var(0), Const(6)]),
            ],
            vec![Var(1), Var(2)],
        )
        .unwrap();
        let q = fuse(&b);
        assert_eq!(q, b); // v1 is used twice: fixpoint immediately
        assert_eq!(q.mem_accesses(), 12);
    }

    #[test]
    fn returned_variables_are_not_unfolded() {
        // v1 is used once *and* returned; unfolding it would lose the output.
        let p = Slp::new(
            3,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Var(0), Const(2)]),
            ],
            vec![Var(0), Var(1)],
        )
        .unwrap();
        let q = fuse(&p);
        assert_eq!(q.instrs.len(), 2);
        assert_eq!(q.eval(), p.eval());
    }

    #[test]
    fn base_binary_chain_fuses_to_flat_form() {
        // The non-SSA accumulator chain (Base form) becomes the flat
        // one-instruction-per-output form.
        let m = bitmatrix::BitMatrix::parse(&["110110", "011011"]);
        let base = slp::binary_slp_from_bitmatrix(&m);
        let flat = slp::flat_slp_from_bitmatrix(&m);
        let fused = fuse(&base);
        assert_eq!(fused.eval(), flat.eval());
        assert_eq!(fused.mem_accesses(), flat.mem_accesses());
        assert_eq!(fused.instrs.len(), 2);
    }

    #[test]
    fn theorem_2_on_a_chain() {
        // #M strictly decreases whenever fusion applies.
        let p = Slp::new(
            5,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Var(0), Const(2)]),
                Instr::new(2, vec![Var(1), Const(3), Const(4)]),
            ],
            vec![Var(2)],
        )
        .unwrap();
        let q = fuse(&p);
        assert!(q.mem_accesses() < p.mem_accesses());
        assert_eq!(q.eval(), p.eval());
    }

    #[test]
    fn duplicate_terms_cancel_on_unfold() {
        // v1 ← a⊕b; v2 ← v1⊕a; ret(v2): unfolding gives a⊕b⊕a = b... with
        // the pair of a's dropped.
        let p = Slp::new(
            2,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Var(0), Const(0)]),
            ],
            vec![Var(1)],
        )
        .unwrap();
        let q = fuse(&p);
        assert_eq!(q.eval(), p.eval());
        assert_eq!(q.instrs.len(), 1);
        assert_eq!(q.instrs[0].args, vec![Const(1)]);
    }

    #[test]
    fn fusion_is_idempotent() {
        let m = bitmatrix::BitMatrix::parse(&["1111", "1101", "0111"]);
        let p = fuse(&slp::binary_slp_from_bitmatrix(&m));
        assert_eq!(fuse(&p), p);
    }
}
