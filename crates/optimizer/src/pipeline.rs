//! The optimization pipeline of the paper, `Sched(Fu(Co(P)))`, with every
//! stage optional so the evaluation can ablate them (§7.3, §7.5).

use crate::fusion::fuse;
use crate::repair::{repair, xor_repair};
use crate::schedule::{schedule_dfs, schedule_greedy};
use slp::{ccap, Slp};

/// Which compression heuristic to run (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Compression {
    /// Leave the program as built from the matrix.
    None,
    /// RePair (§4.3).
    RePair,
    /// XorRePair = RePair + Rebuild (§4.4).
    #[default]
    XorRePair,
}

/// Which scheduling heuristic to run (§6.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Keep the order produced by the earlier stages.
    None,
    /// DFS postorder over the computation graph.
    #[default]
    Dfs,
    /// Bottom-up greedy with an abstract cache of the given capacity
    /// (in blocks); the paper uses `L1 size / blocksize`.
    Greedy {
        /// Abstract cache capacity in blocks.
        cache_blocks: usize,
    },
}

/// Full pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptConfig {
    /// §4 stage.
    pub compression: Compression,
    /// §5 stage (XOR fusion).
    pub fuse: bool,
    /// §6 stage.
    pub schedule: Scheduling,
}

impl Default for OptConfig {
    /// The paper's best configuration: `Dfs(Fu(XorRePair(P)))`.
    fn default() -> Self {
        OptConfig {
            compression: Compression::XorRePair,
            fuse: true,
            schedule: Scheduling::Dfs,
        }
    }
}

impl OptConfig {
    /// No optimization at all (the `Base` rows of §7).
    pub const BASE: OptConfig = OptConfig {
        compression: Compression::None,
        fuse: false,
        schedule: Scheduling::None,
    };

    /// Compression only (`Co`).
    pub const COMPRESS: OptConfig = OptConfig {
        compression: Compression::XorRePair,
        fuse: false,
        schedule: Scheduling::None,
    };

    /// Compression + fusion (`Fu(Co)`).
    pub const FUSE: OptConfig = OptConfig {
        compression: Compression::XorRePair,
        fuse: true,
        schedule: Scheduling::None,
    };

    /// The full pipeline with DFS scheduling (`Dfs(Fu(Co))`).
    pub const FULL_DFS: OptConfig = OptConfig {
        compression: Compression::XorRePair,
        fuse: true,
        schedule: Scheduling::Dfs,
    };
}

/// Run the configured stages over `slp` (any well-formed SLP; the paper
/// starts from the binary-chain or flat matrix form).
pub fn optimize(slp: &Slp, config: OptConfig) -> Slp {
    let compressed = match config.compression {
        Compression::None => slp.clone(),
        Compression::RePair => repair(slp).0,
        Compression::XorRePair => xor_repair(slp).0,
    };
    let fused = if config.fuse { fuse(&compressed) } else { compressed };
    match config.schedule {
        Scheduling::None => fused,
        Scheduling::Dfs => schedule_dfs(&fused),
        Scheduling::Greedy { cache_blocks } => schedule_greedy(&fused, cache_blocks),
    }
}

/// The four static measures reported throughout §7 for one program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageMetrics {
    /// `#⊕`: XOR operations.
    pub xors: usize,
    /// `#M`: memory accesses.
    pub mem: usize,
    /// `NVar`: distinct variables / pebbles.
    pub nvar: usize,
    /// `CCap`: minimum no-reload cache capacity.
    pub ccap: usize,
}

impl StageMetrics {
    /// Measure a program. `CCap` costs a simulation per binary-search step;
    /// for very large programs prefer measuring once and caching.
    pub fn of(slp: &Slp) -> StageMetrics {
        StageMetrics {
            xors: slp.xor_count(),
            mem: slp.mem_accesses(),
            nvar: slp.nvar(),
            ccap: ccap(slp),
        }
    }
}

impl std::fmt::Display for StageMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#⊕={} #M={} NVar={} CCap={}",
            self.xors, self.mem, self.nvar, self.ccap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmatrix::BitMatrix;
    use slp::binary_slp_from_bitmatrix;

    fn sample_matrix() -> BitMatrix {
        // 6 outputs over 12 inputs with heavy sharing, enough for every
        // stage to have an effect.
        BitMatrix::parse(&[
            "111100000000",
            "111111110000",
            "000011111111",
            "111100001111",
            "000011110000",
            "110011001100",
        ])
    }

    #[test]
    fn every_stage_preserves_semantics() {
        let base = binary_slp_from_bitmatrix(&sample_matrix());
        let expected = base.eval();
        for config in [
            OptConfig::BASE,
            OptConfig::COMPRESS,
            OptConfig::FUSE,
            OptConfig::FULL_DFS,
            OptConfig {
                compression: Compression::RePair,
                fuse: true,
                schedule: Scheduling::Greedy { cache_blocks: 16 },
            },
            OptConfig {
                compression: Compression::None,
                fuse: true,
                schedule: Scheduling::Dfs,
            },
        ] {
            let q = optimize(&base, config);
            assert_eq!(q.eval(), expected, "config {config:?} broke semantics");
        }
    }

    #[test]
    fn stage_trends_match_the_paper() {
        // On any matrix with sharing: Co shrinks #⊕; Fu shrinks #M further;
        // scheduling shrinks NVar and CCap relative to Fu(Co).
        let base = binary_slp_from_bitmatrix(&sample_matrix());
        let co = optimize(&base, OptConfig::COMPRESS);
        let fu = optimize(&base, OptConfig::FUSE);
        let full = optimize(&base, OptConfig::FULL_DFS);

        let m_base = StageMetrics::of(&base);
        let m_co = StageMetrics::of(&co);
        let m_fu = StageMetrics::of(&fu);
        let m_full = StageMetrics::of(&full);

        assert!(m_co.xors < m_base.xors, "Co must reduce XORs");
        assert!(m_co.mem < m_base.mem, "Co must reduce accesses");
        assert!(m_fu.mem < m_co.mem, "Fu must reduce accesses further");
        assert_eq!(m_fu.xors, m_co.xors, "Fu never changes #⊕");
        assert_eq!(m_full.xors, m_fu.xors, "scheduling never changes #⊕");
        assert_eq!(m_full.mem, m_fu.mem, "scheduling never changes #M");
        assert!(m_full.nvar <= m_fu.nvar);
        // CCap is improved on average (§7.3) but not guaranteed per input;
        // we only require the scheduler not to explode it.
        assert!(m_full.ccap <= 2 * m_fu.ccap);
        // compression blows up NVar before scheduling reins it in (§7.3)
        assert!(m_co.nvar > m_base.nvar);
    }

    #[test]
    fn default_config_is_the_papers_best() {
        assert_eq!(OptConfig::default(), OptConfig::FULL_DFS);
    }
}
