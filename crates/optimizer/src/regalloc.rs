//! Register assignment on SSA SLPs (§6.3) — kept as an ablation.
//!
//! Because an SLP is branch-free, its SSA live ranges are intervals, and
//! interval graphs are colored optimally by a linear scan (this is the
//! "register assignment for SSA programs is tractable" observation of
//! §6.3). The pass renames variables *without reordering instructions*;
//! the paper shows — and our Table 7.5 ablation confirms — that renaming
//! alone shrinks `NVar` and a little of `IOcost` but cannot improve
//! `CCap`, which is why scheduling (§6.6) goes beyond it.

use slp::{Instr, Slp, Term};

/// Optimally rename the variables of an SSA program to minimize the number
/// of distinct variables, preserving instruction order and semantics.
///
/// # Panics
/// Panics if the input is not in SSA form.
pub fn assign_registers(slp: &Slp) -> Slp {
    assert!(slp.is_ssa(), "register assignment requires SSA form");
    let n = slp.n_vars();

    // last_use[v]: index of the last instruction reading v, or usize::MAX
    // if v is returned (live until the end).
    let mut last_use = vec![0usize; n];
    for (i, instr) in slp.instrs.iter().enumerate() {
        for &t in &instr.args {
            if let Term::Var(v) = t {
                last_use[v as usize] = i;
            }
        }
    }
    for &t in &slp.outputs {
        if let Term::Var(v) = t {
            last_use[v as usize] = usize::MAX;
        }
    }

    let mut reg_of = vec![u32::MAX; n];
    let mut free: std::collections::BinaryHeap<std::cmp::Reverse<u32>> =
        std::collections::BinaryHeap::new();
    let mut next_reg = 0u32;

    let mut instrs = Vec::with_capacity(slp.instrs.len());
    for (i, instr) in slp.instrs.iter().enumerate() {
        // Arguments dying at this instruction free their registers first,
        // so the destination may reuse one (dst/src aliasing is sound for
        // element-wise XOR).
        for &t in &instr.args {
            if let Term::Var(v) = t {
                if last_use[v as usize] == i {
                    free.push(std::cmp::Reverse(reg_of[v as usize]));
                }
            }
        }
        let reg = match free.pop() {
            Some(std::cmp::Reverse(r)) => r,
            None => {
                let r = next_reg;
                next_reg += 1;
                r
            }
        };
        reg_of[instr.dst as usize] = reg;
        let args = instr
            .args
            .iter()
            .map(|&t| match t {
                Term::Var(v) => Term::Var(reg_of[v as usize]),
                c => c,
            })
            .collect::<Vec<_>>();
        instrs.push(Instr::new(reg, args));
    }
    let outputs = slp
        .outputs
        .iter()
        .map(|&t| match t {
            Term::Var(v) => Term::Var(reg_of[v as usize]),
            c => c,
        })
        .collect();
    Slp::new(slp.n_consts, instrs, outputs).expect("regalloc emits well-formed SLPs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::Term::{Const, Var};
    use slp::{ccap, iocost};

    fn p_eg() -> Slp {
        Slp::new(
            7,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(2), Const(3)]),
                Instr::new(2, vec![Var(0), Const(4), Const(5)]),
                Instr::new(3, vec![Var(2), Const(6), Const(0)]),
                Instr::new(4, vec![Var(0), Var(2), Var(3)]),
            ],
            vec![Var(1), Var(3), Var(4)],
        )
        .unwrap()
    }

    #[test]
    fn reproduces_p_reg_of_section_6_3() {
        // Graph-coloring assignment turns P_eg into P_reg: the final XOR
        // reuses v1's register, NVar drops 5 → 4, IOcost(·,8) drops
        // 13 → 12, but CCap stays 10.
        let p = p_eg();
        let q = assign_registers(&p);
        assert_eq!(q.eval(), p.eval());
        assert_eq!(q.nvar(), 4);
        assert_eq!(iocost(&q, 8), 12);
        assert_eq!(ccap(&q), 10);
        // the last instruction writes into the register of v1
        assert_eq!(q.instrs[4].dst, q.instrs[0].dst);
    }

    #[test]
    fn no_reuse_possible_when_everything_is_returned() {
        let p = Slp::new(
            3,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Var(0), Const(2)]),
            ],
            vec![Var(0), Var(1)],
        )
        .unwrap();
        let q = assign_registers(&p);
        assert_eq!(q.nvar(), 2);
        assert_eq!(q.eval(), p.eval());
    }

    #[test]
    fn long_dead_chain_uses_two_registers() {
        // v_{i+1} ← v_i ⊕ c: every value dies immediately; dst reuses the
        // dying argument's register, so one register suffices.
        let mut instrs = vec![Instr::new(0, vec![Const(0), Const(1)])];
        for i in 1..10u32 {
            instrs.push(Instr::new(i, vec![Var(i - 1), Const(i % 3)]));
        }
        let p = Slp::new(3, instrs, vec![Var(9)]).unwrap();
        let q = assign_registers(&p);
        assert_eq!(q.nvar(), 1);
        assert_eq!(q.eval(), p.eval());
    }
}
