//! Pebble-game scheduling (§6.6): reorder an SLP and reuse buffers
//! ("pebbles") to reduce `NVar`, `CCap` and `IOcost`.
//!
//! Both heuristics play the pebble game of §6.4 on the computation graph:
//! an instruction `n : p ← ⊕(p1, …, pk)` computes node `n` into pebble `p`,
//! where `p` may be a *movable* pebble — one sitting on a node whose value
//! is dead (all parents computed, not a goal). Goals keep their pebbles
//! until `ret`; this repairs the erratum in the paper's printed listings,
//! which clobber the goal `v4` (the cost numbers are unchanged — see the
//! golden tests in the `slp` crate).
//!
//! * [`schedule_dfs`] visits the graph in postorder from the goals, using
//!   the total order `≺` as the tie-breaker everywhere.
//! * [`schedule_greedy`] is the bottom-up heuristic: among computable nodes
//!   it picks the one with the highest fraction of children already in an
//!   abstract LRU cache of the given capacity, emitting cached arguments
//!   first.

use crate::graph::CompGraph;
use slp::{CacheSim, Instr, Slp, Term};

/// Shared emission state for both schedulers.
struct Scheduler {
    g: CompGraph,
    /// Parents not yet computed, per inner node.
    remaining_parents: Vec<usize>,
    computed: Vec<bool>,
    /// node → pebble currently holding its value.
    pebble_of: Vec<Option<u32>>,
    /// pebble → node whose value it holds.
    node_of: Vec<Option<usize>>,
    instrs: Vec<Instr>,
}

impl Scheduler {
    fn new(g: CompGraph) -> Self {
        let remaining_parents = g.parent_count.clone();
        let n = g.n_inner();
        Scheduler {
            g,
            remaining_parents,
            computed: vec![false; n],
            pebble_of: vec![None; n],
            node_of: Vec::new(),
            instrs: Vec::new(),
        }
    }

    /// The block a child term occupies at runtime: constants are
    /// themselves; inner nodes are represented by their pebble.
    fn block_of(&self, t: Term) -> Term {
        match t {
            Term::Const(c) => Term::Const(c),
            Term::Var(v) => Term::Var(
                self.pebble_of[v as usize].expect("child must be computed before its parent"),
            ),
        }
    }

    /// Movable pebbles: those on dead non-goal nodes, ascending.
    fn movable_pebbles(&self) -> impl Iterator<Item = u32> + '_ {
        self.node_of.iter().enumerate().filter_map(|(p, n)| {
            let node = (*n)?;
            (self.remaining_parents[node] == 0 && !self.g.is_goal[node]).then_some(p as u32)
        })
    }

    /// Emit the instruction computing `node` with the given argument order,
    /// choosing the destination pebble with `pick`, which receives the
    /// movable candidates in ascending order and returns one or `None` for
    /// a fresh pebble.
    fn emit(
        &mut self,
        node: usize,
        args: Vec<Term>,
        pick: impl FnOnce(&[u32]) -> Option<u32>,
    ) {
        debug_assert!(!self.computed[node], "node pebbled twice");
        // Consume the children: their remaining-parent counts drop, which
        // may free their pebbles for reuse *by this very instruction*.
        for &t in &self.g.children[node] {
            if let Term::Var(v) = t {
                self.remaining_parents[v as usize] -= 1;
            }
        }
        let movable: Vec<u32> = self.movable_pebbles().collect();
        let pebble = match pick(&movable) {
            Some(p) => {
                debug_assert!(movable.contains(&p), "picked an unmovable pebble");
                let old = self.node_of[p as usize].expect("movable pebble sits on a node");
                self.pebble_of[old] = None; // the old value is destroyed
                p
            }
            None => {
                self.node_of.push(None);
                (self.node_of.len() - 1) as u32
            }
        };
        self.pebble_of[node] = Some(pebble);
        self.node_of[pebble as usize] = Some(node);
        self.computed[node] = true;
        self.instrs.push(Instr::new(pebble, args));
    }

    fn finish(self, n_consts: usize) -> Slp {
        let outputs: Vec<Term> = self
            .g
            .goals
            .iter()
            .map(|&t| match t {
                Term::Const(c) => Term::Const(c),
                Term::Var(v) => Term::Var(
                    self.pebble_of[v as usize].expect("goal computed with a live pebble"),
                ),
            })
            .collect();
        Slp::new(n_consts, self.instrs, outputs).expect("scheduler emits well-formed SLPs")
    }
}

/// DFS postorder scheduling (§6.6, first heuristic).
///
/// The input must be SSA with duplicate-free arguments (the shape produced
/// by [`crate::fusion::fuse`]); any other SLP is normalized via
/// [`Slp::to_ssa`] first.
pub fn schedule_dfs(slp: &Slp) -> Slp {
    let slp = if slp.is_ssa() { slp.clone() } else { slp.to_ssa() };
    let g = CompGraph::build(&slp);
    let mut s = Scheduler::new(g);

    // Visit goals in ≺ order; traverse children in ≺ order; emit on
    // postorder exit. Iterative DFS with an explicit stack.
    let mut goal_terms: Vec<Term> = s.g.goals.clone();
    goal_terms.sort_unstable();
    goal_terms.dedup();

    #[derive(Clone, Copy)]
    enum Visit {
        Enter(usize),
        Exit(usize),
    }
    let mut visited = vec![false; s.g.n_inner()];
    for goal in goal_terms {
        let Term::Var(root) = goal else { continue };
        let mut stack = vec![Visit::Enter(root as usize)];
        while let Some(v) = stack.pop() {
            match v {
                Visit::Enter(n) => {
                    if std::mem::replace(&mut visited[n], true) {
                        continue;
                    }
                    stack.push(Visit::Exit(n));
                    // Children are stored in ≺ order; push in reverse so
                    // the ≺-least child is visited first.
                    for &t in s.g.children[n].iter().rev() {
                        if let Term::Var(c) = t {
                            if !visited[c as usize] {
                                stack.push(Visit::Enter(c as usize));
                            }
                        }
                    }
                }
                Visit::Exit(n) => {
                    let args: Vec<Term> =
                        s.g.children[n].iter().map(|&t| s.block_of(t)).collect();
                    // Reuse the ≺-least movable pebble, else a fresh one.
                    s.emit(n, args, |movable| movable.first().copied());
                }
            }
        }
    }
    s.finish(slp.n_consts)
}

/// Bottom-up greedy scheduling (§6.6, second heuristic), parameterized by
/// the abstract cache capacity in blocks.
pub fn schedule_greedy(slp: &Slp, cache_blocks: usize) -> Slp {
    let slp = if slp.is_ssa() { slp.clone() } else { slp.to_ssa() };
    let g = CompGraph::build(&slp);
    let mut s = Scheduler::new(g);
    let mut sim = CacheSim::new(cache_blocks);

    let n = s.g.n_inner();
    let total_needed = (0..n).filter(|&v| s.g.needed[v]).count();
    let mut done = 0;

    // pending child count per node (children that are inner and uncomputed)
    let mut pending: Vec<usize> = (0..n)
        .map(|v| {
            s.g.children[v]
                .iter()
                .filter(|t| matches!(t, Term::Var(_)))
                .count()
        })
        .collect();

    while done < total_needed {
        // Candidates: needed, uncomputed, all children available.
        // Score |H| / |C| compared as cross-products to avoid floats.
        let mut best: Option<(usize, (usize, usize))> = None; // (node, (h, c))
        #[allow(clippy::needless_range_loop)] // v indexes four parallel arrays
        for v in 0..n {
            if s.computed[v] || !s.g.needed[v] || pending[v] != 0 {
                continue;
            }
            let c = s.g.children[v].len();
            let h = s.g.children[v]
                .iter()
                .filter(|&&t| sim.contains(s.block_of(t)))
                .count();
            let better = match best {
                None => true,
                // h/c > bh/bc  ⇔  h·bc > bh·c; ties keep the ≺-least node,
                // which is the first seen since we scan ascending.
                Some((_, (bh, bc))) => h * bc > bh * c,
            };
            if better {
                best = Some((v, (h, c)));
            }
        }
        let (node, _) = best.expect("acyclic graph always has a computable node");

        // Argument order: cached children first (≺ order), then the rest.
        let mut cached: Vec<Term> = Vec::new();
        let mut uncached: Vec<Term> = Vec::new();
        for &t in &s.g.children[node] {
            if sim.contains(s.block_of(t)) {
                cached.push(t);
            } else {
                uncached.push(t);
            }
        }
        let args: Vec<Term> = cached
            .into_iter()
            .chain(uncached)
            .map(|t| s.block_of(t))
            .collect();

        for &a in &args {
            sim.access_arg(a);
        }
        // Prefer a movable pebble that is currently cached; fall back to
        // any movable pebble, else allocate fresh.
        s.emit(node, args, |movable| {
            movable
                .iter()
                .copied()
                .find(|&p| sim.contains(Term::Var(p)))
                .or_else(|| movable.first().copied())
        });
        let dst = s.instrs.last().expect("just emitted").dst;
        sim.access_dst(dst);

        let newly = Term::Var(node as u32);
        for (v, ch) in pending.iter_mut().enumerate() {
            if !s.computed[v] && s.g.children[v].contains(&newly) {
                *ch -= 1;
            }
        }
        done += 1;
    }
    s.finish(slp.n_consts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::Term::{Const, Var};
    use slp::{ccap, iocost};

    /// The fused P_eg of §6 (G_eg's program).
    fn p_eg() -> Slp {
        Slp::new(
            7,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(2), Const(3)]),
                Instr::new(2, vec![Var(0), Const(4), Const(5)]),
                Instr::new(3, vec![Var(2), Const(6), Const(0)]),
                Instr::new(4, vec![Var(0), Var(2), Var(3)]),
            ],
            vec![Var(1), Var(3), Var(4)],
        )
        .unwrap()
    }

    #[test]
    fn dfs_reproduces_q_dfs_costs_and_fixes_semantics() {
        // §6.6: NVar(Q_DFS) = 4, CCap = 7, IOcost(·, 8) = 10.
        let q = schedule_dfs(&p_eg());
        assert_eq!(q.eval(), p_eg().eval(), "\n{q}");
        assert_eq!(q.nvar(), 4);
        assert_eq!(ccap(&q), 7);
        assert_eq!(iocost(&q, 8), 10);
    }

    #[test]
    fn dfs_emits_the_paper_order() {
        // Postorder from goals v2 ≺ v4 ≺ v5 gives the node order
        // v2, v1, v3, v4, v5 with the paper's argument orders.
        let q = schedule_dfs(&p_eg());
        let expect: Vec<Instr> = vec![
            Instr::new(0, vec![Const(2), Const(3)]),           // v2: p1 ← C⊕D
            Instr::new(1, vec![Const(0), Const(1)]),           // v1: p2 ← A⊕B
            Instr::new(2, vec![Var(1), Const(4), Const(5)]),   // v3: p3 ← ⊕(p2,E,F)
            Instr::new(3, vec![Var(2), Const(0), Const(6)]),   // v4: p4 ← ⊕(p3,A,G)
            Instr::new(1, vec![Var(1), Var(2), Var(3)]),       // v5: p2 ← ⊕(p2,p3,p4)
        ];
        assert_eq!(q.instrs, expect);
        assert_eq!(q.outputs, vec![Var(0), Var(3), Var(1)]);
    }

    #[test]
    fn greedy_reproduces_q_greedy_costs_and_fixes_semantics() {
        // §6.6: NVar(Q_greedy) = 3, CCap = 7, IOcost(·, 8) = 9 — optimal
        // NVar and IOcost.
        let q = schedule_greedy(&p_eg(), 8);
        assert_eq!(q.eval(), p_eg().eval(), "\n{q}");
        assert_eq!(q.nvar(), 3);
        assert_eq!(ccap(&q), 7);
        assert_eq!(iocost(&q, 8), 9);
    }

    #[test]
    fn greedy_emits_the_paper_order() {
        // v1, v3, v4, v5, v2 with cached arguments first.
        let q = schedule_greedy(&p_eg(), 8);
        let expect: Vec<Instr> = vec![
            Instr::new(0, vec![Const(0), Const(1)]),         // v1: p1 ← A⊕B
            Instr::new(1, vec![Var(0), Const(4), Const(5)]), // v3: p2 ← ⊕(p1,E,F)
            Instr::new(2, vec![Var(1), Const(0), Const(6)]), // v4: p3 ← ⊕(p2,A,G)
            Instr::new(0, vec![Var(0), Var(1), Var(2)]),     // v5: p1 ← ⊕(p1,p2,p3)
            Instr::new(1, vec![Const(2), Const(3)]),         // v2: p2 ← C⊕D (repaired)
        ];
        assert_eq!(q.instrs, expect);
        assert_eq!(q.outputs, vec![Var(1), Var(2), Var(0)]);
    }

    #[test]
    fn goals_never_lose_their_pebbles() {
        // Schedule a program where every value is a goal: no pebble reuse
        // is possible and NVar must equal the number of instructions.
        let p = Slp::new(
            4,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Var(0), Const(2)]),
                Instr::new(2, vec![Var(1), Const(3)]),
            ],
            vec![Var(0), Var(1), Var(2)],
        )
        .unwrap();
        for q in [schedule_dfs(&p), schedule_greedy(&p, 4)] {
            assert_eq!(q.eval(), p.eval());
            assert_eq!(q.nvar(), 3);
        }
    }

    #[test]
    fn constant_goals_pass_through() {
        let p = Slp::new(
            3,
            vec![Instr::new(0, vec![Const(0), Const(1)])],
            vec![Var(0), Const(2)],
        )
        .unwrap();
        for q in [schedule_dfs(&p), schedule_greedy(&p, 4)] {
            assert_eq!(q.outputs[1], Const(2));
            assert_eq!(q.eval(), p.eval());
        }
    }

    #[test]
    fn dead_code_is_not_scheduled() {
        let p = Slp::new(
            3,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(1), Const(2)]), // dead
            ],
            vec![Var(0)],
        )
        .unwrap();
        for q in [schedule_dfs(&p), schedule_greedy(&p, 4)] {
            assert_eq!(q.instrs.len(), 1);
            assert_eq!(q.eval(), p.eval());
        }
    }

    #[test]
    fn scheduling_a_large_random_dag_preserves_semantics() {
        // Deterministic pseudo-random DAG, deep enough to exercise pebble
        // reuse heavily.
        let n_consts = 24;
        let mut instrs = Vec::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for v in 0..60u32 {
            let arity = 2 + (rng() % 3) as usize;
            let mut args = Vec::new();
            while args.len() < arity {
                let t = if v > 0 && rng() % 3 == 0 {
                    Term::Var((rng() % v as u64) as u32)
                } else {
                    Term::Const((rng() % n_consts as u64) as u32)
                };
                if !args.contains(&t) {
                    args.push(t);
                }
            }
            instrs.push(Instr::new(v, args));
        }
        let outputs: Vec<Term> = (50..60).map(Var).collect();
        let p = Slp::new(n_consts, instrs, outputs).unwrap();
        let dfs = schedule_dfs(&p);
        let greedy = schedule_greedy(&p, 16);
        assert_eq!(dfs.eval(), p.eval());
        assert_eq!(greedy.eval(), p.eval());
        assert!(dfs.nvar() <= p.nvar());
        assert!(greedy.nvar() <= p.nvar());
    }
}
