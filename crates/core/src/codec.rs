//! The [`RsCodec`]: systematic RS(n, p) erasure coding over optimized XOR
//! programs.

use crate::config::RsConfig;
use crate::error::EcError;
use crate::layout;
use crate::lru::LruCache;
use gf256::{encoding_matrix, GfMatrix};
use std::sync::Mutex;
use slp::Slp;
use slp_optimizer::optimize;
use std::sync::Arc;
use xor_runtime::{cpu_backend, lock_unpoisoned as lock, ComputeBackend, ExecPool, ExecProgram};

/// A compiled decode pipeline for one erasure pattern.
struct DecProgram {
    /// The optimized SLP and its compiled form; `None` when no data shard
    /// is lost (parity-only erasures need no inverse).
    compiled: Option<(Slp, ExecProgram)>,
    /// Indices (< n) of the data shards this program reconstructs.
    lost_data: Vec<usize>,
    /// The surviving shard indices whose packets feed the program, in
    /// input order. Survivor columns the recovery matrix never reads are
    /// dropped, so this is the *exact* read set of the program — for a
    /// locally-repairable code repairing a single loss it is one local
    /// group, not all n survivors.
    survivors: Vec<usize>,
}

/// Key of a cached partial (sub-matrix) XOR program.
///
/// The same pipeline that compiles the full parity matrix applies
/// unchanged to any sub-matrix of the coding matrix; these are the two
/// shapes production traffic asks for.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum PartialKey {
    /// Column `i` of the parity block: scales one data shard's *change*
    /// into all `p` parity shards (delta updates).
    Column(usize),
    /// A strict subset of parity rows (ascending, 0-based within the
    /// parity block): re-encodes only those parity shards (partial
    /// repair). The full-row-set program is the encode program itself
    /// and is never cached here.
    Rows(Vec<usize>),
}

/// A compiled partial program plus its optimized SLP (kept for metrics:
/// the delta-update win is *provable* by comparing XOR counts).
struct PartialProgram {
    slp: Slp,
    prog: ExecProgram,
    /// Parity-block rows (0-based) the program actually produces. Column
    /// programs skip parity rows whose coefficient at that column is
    /// zero — for a locality-grouped matrix a data shard only feeds its
    /// own group's local row plus the globals. Dense for row subsets.
    rows: Vec<usize>,
}

/// A systematic Reed–Solomon erasure codec computed entirely with XORs.
///
/// Construction compiles the optimized encode program once; decode
/// programs are compiled lazily per erasure pattern and kept in a
/// bounded LRU cache ([`RsConfig::decode_cache_cap`]). All methods take
/// `&self` and the codec is `Send + Sync`.
///
/// Execution goes through a [`ComputeBackend`] — by default the CPU
/// backend, which stripes across an [`ExecPool`] (the
/// [`RsConfig::parallelism`] knob): every worker owns a persistent
/// grow-on-demand arena, so concurrent callers never serialize on shared
/// scratch buffers and steady-state encode/decode allocates nothing. An
/// accelerator backend slots in via [`RsCodec::set_backend`] without any
/// codec changes.
pub struct RsCodec {
    cfg: RsConfig,
    /// The full `(n+p) × n` systematic coding matrix.
    matrix: GfMatrix,
    /// Locality groups of the coding matrix (shard indices per group,
    /// data members plus the group's local parity row). Empty for a
    /// plain RS matrix; populated by the LRC construction, where it
    /// steers survivor selection toward the cheap local-group rows.
    groups: Vec<Vec<usize>>,
    enc_slp: Slp,
    enc_prog: ExecProgram,
    /// The execution substrate (CPU pool by default, per config).
    backend: Arc<dyn ComputeBackend>,
    dec_cache: Mutex<LruCache<Vec<usize>, Arc<DecProgram>>>,
    /// Column/row-subset programs for delta updates and partial repair,
    /// bounded by [`RsConfig::partial_cache_cap`].
    partial_cache: Mutex<LruCache<PartialKey, Arc<PartialProgram>>>,
}

impl RsCodec {
    /// Create an RS(n, p) codec with the paper's default configuration.
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<RsCodec, EcError> {
        RsCodec::with_config(RsConfig::new(data_shards, parity_shards))
    }

    /// Create a codec from an explicit configuration.
    pub fn with_config(cfg: RsConfig) -> Result<RsCodec, EcError> {
        RsCodec::check_params(&cfg)?;
        let matrix = encoding_matrix(cfg.matrix, cfg.data_shards, cfg.parity_shards);
        RsCodec::with_matrix(cfg, matrix, Vec::new())
    }

    /// Validate `(n, p, blocksize)` before any matrix is built — matrix
    /// constructors assert on degenerate geometry, so this must run first.
    pub(crate) fn check_params(cfg: &RsConfig) -> Result<(), EcError> {
        let (n, p) = (cfg.data_shards, cfg.parity_shards);
        if n == 0 || p == 0 {
            return Err(EcError::InvalidParams(
                "need at least one data and one parity shard".into(),
            ));
        }
        if n + p > 255 {
            return Err(EcError::InvalidParams(format!(
                "n + p = {} exceeds the GF(2^8) limit of 255",
                n + p
            )));
        }
        if cfg.blocksize == 0 {
            return Err(EcError::InvalidParams("blocksize must be positive".into()));
        }
        Ok(())
    }

    /// Build a codec over an explicit systematic `(n+p) × n` coding
    /// matrix (the top `n` rows must be the identity). `groups` lists the
    /// locality groups of the matrix, if any — the LRC construction's
    /// entry point into the shared SLP machinery.
    pub(crate) fn with_matrix(
        cfg: RsConfig,
        matrix: GfMatrix,
        groups: Vec<Vec<usize>>,
    ) -> Result<RsCodec, EcError> {
        RsCodec::check_params(&cfg)?;
        let (n, p) = (cfg.data_shards, cfg.parity_shards);
        debug_assert!(matrix.top_is_identity(n), "coding matrix must be systematic");
        let parity_rows: Vec<usize> = (n..n + p).collect();
        let parity_bits = bitmatrix::BitMatrix::expand_gf_matrix(&matrix.select_rows(&parity_rows));
        let base = slp::binary_slp_from_bitmatrix(&parity_bits);
        let enc_slp = optimize(&base, cfg.opt);
        let enc_prog = ExecProgram::compile(&enc_slp, cfg.blocksize, cfg.kernel);
        // Auto cache capacity: every empty, single and double erasure
        // pattern fits (1 + t + C(t, 2) keys) — the patterns production
        // repair traffic actually cycles through.
        let t = n + p;
        let cache_cap = match cfg.decode_cache_cap {
            0 => 1 + t + t * (t - 1) / 2,
            cap => cap,
        };
        // Auto partial-program capacity: every per-data-shard column
        // program (the delta-update working set) and every single-row
        // repair program fit simultaneously.
        let partial_cap = match cfg.partial_cache_cap {
            0 => n + p,
            cap => cap,
        };
        Ok(RsCodec {
            cfg,
            matrix,
            groups,
            enc_slp,
            enc_prog,
            backend: cpu_backend(cfg.parallelism),
            dec_cache: Mutex::new(LruCache::new(cache_cap)),
            partial_cache: Mutex::new(LruCache::new(partial_cap)),
        })
    }

    /// Swap the execution substrate: every encode/decode/update/verify
    /// after this call runs on `backend`. This is the accelerator seam —
    /// a GPU backend implements [`ComputeBackend`] and slots in here
    /// without any codec changes. The default is the CPU backend built
    /// from [`RsConfig::parallelism`].
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.backend = backend;
    }

    /// The execution substrate this codec runs on.
    pub fn backend(&self) -> &Arc<dyn ComputeBackend> {
        &self.backend
    }

    /// Number of data shards `n`.
    pub fn data_shards(&self) -> usize {
        self.cfg.data_shards
    }

    /// Number of parity shards `p`.
    pub fn parity_shards(&self) -> usize {
        self.cfg.parity_shards
    }

    /// Total shards `n + p`.
    pub fn total_shards(&self) -> usize {
        self.cfg.data_shards + self.cfg.parity_shards
    }

    /// The configuration this codec was built with.
    pub fn config(&self) -> &RsConfig {
        &self.cfg
    }

    /// The systematic coding matrix (`(n+p) × n`).
    pub fn encode_matrix(&self) -> &GfMatrix {
        &self.matrix
    }

    /// Locality groups of the coding matrix: each entry lists the shard
    /// indices (data + local parity) of one repair group. Empty for plain
    /// RS; populated by the LRC construction.
    pub fn locality_groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The optimized encoding SLP (for inspection and metrics; §7.5).
    pub fn encode_slp(&self) -> &Slp {
        &self.enc_slp
    }

    /// Number of decode programs currently cached.
    pub fn decode_cache_len(&self) -> usize {
        lock(&self.dec_cache).len()
    }

    /// The decode-cache capacity in effect (the resolved value of
    /// [`RsConfig::decode_cache_cap`]).
    pub fn decode_cache_capacity(&self) -> usize {
        lock(&self.dec_cache).cap()
    }

    /// Number of partial (column / row-subset) programs currently cached.
    pub fn partial_cache_len(&self) -> usize {
        lock(&self.partial_cache).len()
    }

    /// The partial-program cache capacity in effect (the resolved value
    /// of [`RsConfig::partial_cache_cap`]).
    pub fn partial_cache_capacity(&self) -> usize {
        lock(&self.partial_cache).cap()
    }

    /// The optimized decoding SLP for an erasure pattern (for metrics;
    /// Figure 1). `lost` lists missing shard indices (data or parity).
    ///
    /// # Errors
    /// [`EcError::NoDataLost`] when the pattern erases parity only —
    /// decoding is then a no-op with no program to return (repair parity
    /// with [`RsCodec::encode_parity_partial`] instead).
    pub fn decode_slp(&self, lost: &[usize]) -> Result<Slp, EcError> {
        let dec = self.decode_program(lost)?;
        match &dec.compiled {
            Some((slp, _)) => Ok(slp.clone()),
            None => Err(EcError::NoDataLost),
        }
    }

    // ------------------------------------------------------------------
    // Encoding
    // ------------------------------------------------------------------

    /// The validation prologue shared by every parity-producing entry
    /// point: check shard counts against `(expected_data,
    /// expected_parity)` and return the common, packet-aligned shard
    /// length. Zero-length shards are valid everywhere and make the
    /// operation a no-op — callers early-return on `Ok(0)`.
    fn encode_prologue(
        &self,
        data: &[&[u8]],
        parity: &[&mut [u8]],
        expected_data: usize,
        expected_parity: usize,
    ) -> Result<usize, EcError> {
        if data.len() != expected_data {
            return Err(EcError::ShardCount { expected: expected_data, got: data.len() });
        }
        if parity.len() != expected_parity {
            return Err(EcError::ShardCount {
                expected: expected_parity,
                got: parity.len(),
            });
        }
        layout::common_shard_len(
            data.iter().copied().chain(parity.iter().map(|s| &**s)),
        )
    }

    /// Compute all parity shards from data shards, zero-copy.
    ///
    /// Every shard (input and output) must have the same length, a
    /// multiple of 8.
    pub fn encode_parity(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
    ) -> Result<(), EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        let len = self.encode_prologue(data, parity, n, p)?;
        if len == 0 {
            return Ok(());
        }

        let inputs: Vec<&[u8]> = data.iter().flat_map(|s| layout::packets(s)).collect();
        let mut outputs: Vec<&mut [u8]> = parity
            .iter_mut()
            .flat_map(|s| layout::packets_mut(s))
            .collect();
        self.backend.run(&self.enc_prog, &inputs, &mut outputs)?;
        Ok(())
    }

    /// The shard length [`RsCodec::encode`] and [`RsCodec::encode_into`]
    /// produce for `data_len` bytes of input: the smallest packet-aligned
    /// length whose `n` shards cover the data.
    pub fn shard_len(&self, data_len: usize) -> usize {
        layout::shard_len_for(data_len, self.cfg.data_shards)
    }

    /// Split `data` into the `n` padded data shards [`RsCodec::encode`]
    /// would produce, without computing parity. This is the one
    /// authoritative definition of the data→shard layout — callers that
    /// diff against stored shards (e.g. delta overwrites) use it so the
    /// split can never drift from the encode path.
    pub fn split_data(&self, data: &[u8]) -> Vec<Vec<u8>> {
        let len = self.shard_len(data.len());
        (0..self.cfg.data_shards)
            .map(|i| {
                let mut shard = Vec::new();
                fill_data_shard(&mut shard, data, i, len);
                shard
            })
            .collect()
    }

    /// Encode a byte buffer into `n + p` shards (convenience allocation
    /// path). The data is split across `n` shards, zero-padding the tail;
    /// use the original length with [`RsCodec::decode`] to strip padding.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, EcError> {
        let mut shards = vec![Vec::new(); self.total_shards()];
        self.encode_into(data, &mut shards)?;
        Ok(shards)
    }

    /// [`RsCodec::encode`] into caller-owned shard buffers: each of the
    /// `n + p` vectors is resized to [`RsCodec::shard_len`] and filled
    /// (data split + zero padding, then parity).
    ///
    /// This is the steady-state streaming entry point: buffer capacity is
    /// retained across calls, the packet-reference lists live in
    /// thread-local scratch ([`xor_runtime::with_ref_scratch`]), and a
    /// single-stripe execution plan runs inline on the caller's
    /// persistent arena — so re-encoding same-sized chunks into the same
    /// buffers performs **zero allocations** after the first call (with
    /// `parallelism = 1`; pooled execution hands stripes to workers,
    /// whose arenas are persistent too, but task submission allocates).
    pub fn encode_into(&self, data: &[u8], shards: &mut [Vec<u8>]) -> Result<(), EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if shards.len() != n + p {
            return Err(EcError::ShardCount { expected: n + p, got: shards.len() });
        }
        let len = self.shard_len(data.len());
        for (i, shard) in shards.iter_mut().take(n).enumerate() {
            fill_data_shard(shard, data, i, len);
        }
        for shard in shards.iter_mut().skip(n) {
            // Size only — no clear(): the XOR program overwrites every
            // parity byte, and re-zeroing p × len per chunk is wasted
            // bandwidth on the steady-state streaming path.
            shard.resize(len, 0);
        }
        if len == 0 {
            return Ok(());
        }
        let pl = len / layout::PACKETS_PER_SHARD;
        let (data_part, parity_part) = shards.split_at_mut(n);
        xor_runtime::with_ref_scratch(|inputs, outputs| {
            inputs.extend(data_part.iter().flat_map(|s| s.chunks_exact(pl)));
            outputs.extend(parity_part.iter_mut().flat_map(|s| s.chunks_exact_mut(pl)));
            self.backend.run(&self.enc_prog, inputs, outputs)
        })?;
        Ok(())
    }

    /// [`RsCodec::encode_parity`] with an explicit stripe-count ceiling:
    /// the packet range is split by the runtime partitioner into at most
    /// `threads` blocksize-aligned stripes (XOR is position-wise, so any
    /// split is exact) and executed on the shared global [`ExecPool`],
    /// regardless of this codec's own `parallelism` setting.
    ///
    /// Prefer [`RsConfig::parallelism`] for steady-state use; this entry
    /// point exists for callers that scale thread counts per call (e.g.
    /// the thread-scaling bench).
    pub fn encode_parity_mt(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        threads: usize,
    ) -> Result<(), EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        let len = self.encode_prologue(data, parity, n, p)?;
        if len == 0 {
            return Ok(());
        }

        let inputs: Vec<&[u8]> = data.iter().flat_map(|s| layout::packets(s)).collect();
        let mut outputs: Vec<&mut [u8]> = parity
            .iter_mut()
            .flat_map(|s| layout::packets_mut(s))
            .collect();
        self.enc_prog.run_striped(
            &inputs,
            &mut outputs,
            ExecPool::global(),
            threads.max(1),
        )?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Partial programs: delta updates and partial repair
    // ------------------------------------------------------------------

    /// Compile (or fetch from the partial-program cache) the XOR program
    /// for a sub-matrix of the parity block.
    ///
    /// The pipeline is exactly the full-encode pipeline — expand the
    /// GF(2^8) sub-matrix to bits, lift to an SLP, optimize, compile —
    /// applied to a column (delta update) or a row subset (partial
    /// repair) of the `p × n` parity matrix.
    fn partial_program(&self, key: PartialKey) -> Arc<PartialProgram> {
        if let Some(hit) = lock(&self.partial_cache).get(&key) {
            return hit;
        }
        let n = self.cfg.data_shards;
        let (sub, rows): (GfMatrix, Vec<usize>) = match &key {
            PartialKey::Column(i) => {
                // Keep only the parity rows this column feeds: a zero
                // coefficient contributes nothing, and an all-zero GF row
                // has no SLP form.
                let active: Vec<usize> = (n..n + self.cfg.parity_shards)
                    .filter(|&r| !self.matrix[(r, *i)].is_zero())
                    .collect();
                let rows = active.iter().map(|&r| r - n).collect();
                (self.matrix.select_rows(&active).select_cols(&[*i]), rows)
            }
            PartialKey::Rows(rows) => {
                let abs: Vec<usize> = rows.iter().map(|&r| n + r).collect();
                (self.matrix.select_rows(&abs), rows.clone())
            }
        };
        let bits = bitmatrix::BitMatrix::expand_gf_matrix(&sub);
        let slp = optimize(&slp::binary_slp_from_bitmatrix(&bits), self.cfg.opt);
        let prog = ExecProgram::compile(&slp, self.cfg.blocksize, self.cfg.kernel);
        let entry = Arc::new(PartialProgram { slp, prog, rows });
        lock(&self.partial_cache).insert(key, entry.clone());
        entry
    }

    /// Validate and normalize a parity-row subset: ascending, in-range,
    /// non-empty. Returns `None` when the subset is the *full* row set —
    /// the caller then uses the already-compiled encode program.
    fn normalize_rows(&self, rows: &[usize]) -> Result<Option<Vec<usize>>, EcError> {
        let p = self.cfg.parity_shards;
        if rows.is_empty() {
            return Err(EcError::InvalidParams(
                "parity row subset must not be empty".into(),
            ));
        }
        if !rows.windows(2).all(|w| w[0] < w[1]) {
            return Err(EcError::InvalidParams(
                "parity rows must be strictly increasing".into(),
            ));
        }
        if *rows.last().expect("non-empty") >= p {
            return Err(EcError::InvalidParams(format!(
                "parity row index out of range (parity shards: {p})"
            )));
        }
        if rows.len() == p {
            return Ok(None); // 0..p in order: the full encode program
        }
        Ok(Some(rows.to_vec()))
    }

    /// Delta parity update: after data shard `shard_index` changes from
    /// `old` to `new`, bring **all** `p` parity shards up to date in
    /// place — without touching the other `n − 1` data shards.
    ///
    /// Parity is linear in the data, so
    /// `parity_j' = parity_j ⊕ P[j][i] · (old_i ⊕ new_i)`: the update
    /// runs the cached *column* program of shard `i` over the data delta
    /// (one column's XORs instead of all `n` columns') and accumulates
    /// the result into `parity`. This is the read-modify-write fast path
    /// of production erasure-coded storage: a single-shard write costs
    /// `O(p)` shard reads/writes instead of a full-stripe re-encode.
    ///
    /// `old`, `new` and every parity shard must share one length, a
    /// multiple of 8. Zero-length shards are a no-op.
    pub fn update_parity(
        &self,
        shard_index: usize,
        old: &[u8],
        new: &[u8],
        parity: &mut [&mut [u8]],
    ) -> Result<(), EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if shard_index >= n {
            return Err(EcError::InvalidParams(format!(
                "data shard index {shard_index} out of range (data shards: {n})"
            )));
        }
        let len = self.encode_prologue(&[old, new], parity, 2, p)?;
        if len == 0 {
            return Ok(());
        }
        // delta = old ⊕ new, then delta-parity = column program (delta),
        // accumulated into `parity` in place — the shared runtime
        // discipline keeps a steady-state update allocation-free. The
        // program covers only the parity rows this column feeds; with a
        // locality-grouped matrix that is the shard's own local row plus
        // the globals, so the untouched rows are skipped here.
        let entry = self.partial_program(PartialKey::Column(shard_index));
        if entry.rows.len() == p {
            self.backend
                .run_delta(&entry.prog, layout::PACKETS_PER_SHARD, old, new, parity)?;
        } else if !entry.rows.is_empty() {
            let mut touched: Vec<&mut [u8]> = parity
                .iter_mut()
                .enumerate()
                .filter(|(j, _)| entry.rows.contains(j))
                .map(|(_, s)| &mut **s)
                .collect();
            self.backend.run_delta(
                &entry.prog,
                layout::PACKETS_PER_SHARD,
                old,
                new,
                &mut touched,
            )?;
        }
        Ok(())
    }

    /// Re-encode a *subset* of the parity shards from the full data.
    ///
    /// `rows` lists the parity rows to produce (0-based within the
    /// parity block, strictly increasing); `parity[k]` receives row
    /// `rows[k]`. Repairing one lost parity shard of an RS(n, p) code
    /// this way costs one row's XOR program, not the whole `p`-row
    /// encode. Passing all `p` rows is equivalent to
    /// [`RsCodec::encode_parity`] and reuses its program.
    pub fn encode_parity_partial(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        rows: &[usize],
    ) -> Result<(), EcError> {
        let n = self.cfg.data_shards;
        let key = match self.normalize_rows(rows)? {
            None => return self.encode_parity(data, parity),
            Some(key) => key,
        };
        let len = self.encode_prologue(data, parity, n, key.len())?;
        if len == 0 {
            return Ok(());
        }
        let entry = self.partial_program(PartialKey::Rows(key));
        let inputs: Vec<&[u8]> = data.iter().flat_map(|s| layout::packets(s)).collect();
        let mut outputs: Vec<&mut [u8]> = parity
            .iter_mut()
            .flat_map(|s| layout::packets_mut(s))
            .collect();
        self.backend.run(&entry.prog, &inputs, &mut outputs)?;
        Ok(())
    }

    /// The optimized SLP of the delta-update column program for one data
    /// shard (for metrics: its XOR count is what a single-shard write
    /// pays, against [`RsCodec::encode_slp`] for the full stripe).
    pub fn update_slp(&self, shard_index: usize) -> Result<Slp, EcError> {
        let n = self.cfg.data_shards;
        if shard_index >= n {
            return Err(EcError::InvalidParams(format!(
                "data shard index {shard_index} out of range (data shards: {n})"
            )));
        }
        Ok(self.partial_program(PartialKey::Column(shard_index)).slp.clone())
    }

    /// The optimized SLP of a parity-row-subset program (for metrics).
    /// The full row set returns the encode SLP itself.
    pub fn partial_encode_slp(&self, rows: &[usize]) -> Result<Slp, EcError> {
        match self.normalize_rows(rows)? {
            None => Ok(self.enc_slp.clone()),
            Some(key) => Ok(self.partial_program(PartialKey::Rows(key)).slp.clone()),
        }
    }

    // ------------------------------------------------------------------
    // Decoding
    // ------------------------------------------------------------------

    /// Compile (or fetch from cache) the decode program for an erasure
    /// pattern.
    fn decode_program(&self, lost: &[usize]) -> Result<Arc<DecProgram>, EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        let mut lost: Vec<usize> = lost.to_vec();
        lost.sort_unstable();
        lost.dedup();
        if lost.iter().any(|&i| i >= n + p) {
            return Err(EcError::InvalidParams(format!(
                "erased shard index out of range (total {})",
                n + p
            )));
        }
        if lost.len() > p {
            return Err(EcError::TooManyErasures { missing: lost.len(), parity: p });
        }
        if let Some(hit) = lock(&self.dec_cache).get(&lost) {
            return Ok(hit);
        }

        let candidates: Vec<usize> = (0..n + p).filter(|i| !lost.contains(i)).collect();
        let lost_data: Vec<usize> = lost.iter().copied().filter(|&i| i < n).collect();
        let (compiled, survivors) = if lost_data.is_empty() {
            (None, Vec::new())
        } else {
            // Greedy independent-row selection over the (possibly
            // non-MDS) coding matrix: any n independent survivor rows
            // decode. The candidate ordering steers *which* basis wins —
            // locality-first for LRC, natural order (≡ the classic
            // first-n choice) for a plain RS matrix.
            let ordered = self.survivor_order(&lost, candidates);
            let chosen = self.matrix.select_independent_rows(&ordered);
            if chosen.len() < n {
                return Err(EcError::SingularPattern { lost: lost.clone() });
            }
            let sub = self.matrix.select_rows(&chosen);
            let inv = sub.invert().expect("independent rows form an invertible square");
            // Rows of the inverse for the lost data blocks express them as
            // combinations of the gathered survivor blocks.
            let rec = inv.select_rows(&lost_data);
            // Drop survivor columns no recovery row reads: the program's
            // input list then names exactly the shards a repair must
            // fetch (a single loss in an LRC local group reads that
            // group, not all n survivors).
            let used: Vec<usize> = (0..n)
                .filter(|&c| (0..rec.rows()).any(|r| !rec[(r, c)].is_zero()))
                .collect();
            let survivors: Vec<usize> = used.iter().map(|&c| chosen[c]).collect();
            let rec = rec.select_cols(&used);
            let bits = bitmatrix::BitMatrix::expand_gf_matrix(&rec);
            let base = slp::binary_slp_from_bitmatrix(&bits);
            let slp = optimize(&base, self.cfg.opt);
            let prog = ExecProgram::compile(&slp, self.cfg.blocksize, self.cfg.kernel);
            (Some((slp, prog)), survivors)
        };
        let dec = Arc::new(DecProgram { compiled, lost_data, survivors });
        lock(&self.dec_cache).insert(lost, dec.clone());
        Ok(dec)
    }

    /// Order survivor candidates for row selection. Without locality
    /// groups the natural order is kept (for an MDS matrix the greedy
    /// scan then degenerates to the classic "first n survivors" choice).
    /// With groups, members of groups containing a lost shard come
    /// first, then remaining data rows, then the other local parity
    /// rows, then the globals — so a pattern a local group can repair
    /// compiles an r-input program and never touches a global row.
    fn survivor_order(&self, lost: &[usize], mut candidates: Vec<usize>) -> Vec<usize> {
        if self.groups.is_empty() {
            return candidates;
        }
        let n = self.cfg.data_shards;
        let affected: Vec<&Vec<usize>> = self
            .groups
            .iter()
            .filter(|g| g.iter().any(|i| lost.contains(i)))
            .collect();
        let in_affected = |i: usize| affected.iter().any(|g| g.contains(&i));
        let class = |i: usize| {
            if i < n {
                0 // data: free identity rows
            } else if self.groups.iter().any(|g| g.contains(&i)) {
                1 // local parity: touches one group
            } else {
                2 // global parity: touches everything
            }
        };
        candidates.sort_by_key(|&i| (usize::from(!in_affected(i)), class(i), i));
        candidates
    }

    /// The exact shard set a [`RsCodec::reconstruct_subset`] of `lost`
    /// reads: the decode program's survivor inputs plus, for each lost
    /// parity row, the surviving data shards its generator row touches.
    /// This is the repair *plan* — a networked repair fetches precisely
    /// these shards and nothing else, which is where a locally-repairable
    /// code's traffic win comes from.
    pub fn repair_sources(&self, lost: &[usize]) -> Result<Vec<usize>, EcError> {
        let n = self.cfg.data_shards;
        let mut lost: Vec<usize> = lost.to_vec();
        lost.sort_unstable();
        lost.dedup();
        let dec = self.decode_program(&lost)?;
        let mut sources: std::collections::BTreeSet<usize> =
            dec.survivors.iter().copied().collect();
        for &i in lost.iter().filter(|&&i| i >= n) {
            for j in 0..n {
                if !self.matrix[(i, j)].is_zero() && !lost.contains(&j) {
                    sources.insert(j);
                }
            }
        }
        Ok(sources.into_iter().collect())
    }

    /// Rebuild every missing shard in place (data via the decode program,
    /// parity by re-encoding).
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if shards.len() != n + p {
            return Err(EcError::ShardCount { expected: n + p, got: shards.len() });
        }
        let missing: Vec<usize> = (0..n + p).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > p {
            return Err(EcError::TooManyErasures { missing: missing.len(), parity: p });
        }
        self.reconstruct_subset(shards, &missing)
    }

    /// Rebuild exactly the shards in `targets`, reading only the shards
    /// the repair plan ([`RsCodec::repair_sources`]) names — other `None`
    /// entries are treated as *unavailable, not wanted* and are left
    /// untouched. This is the source-restricted repair path: a networked
    /// caller fetches the plan's shards, leaves the rest `None`, and
    /// pays the plan's bytes, not the full survivor set's.
    ///
    /// # Errors
    /// [`EcError::MissingSource`] when a shard the plan requires is
    /// `None` (the caller should fall back to fetching all survivors).
    pub fn reconstruct_subset(
        &self,
        shards: &mut [Option<Vec<u8>>],
        targets: &[usize],
    ) -> Result<(), EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if shards.len() != n + p {
            return Err(EcError::ShardCount { expected: n + p, got: shards.len() });
        }
        let mut targets: Vec<usize> = targets.to_vec();
        targets.sort_unstable();
        targets.dedup();
        if targets.is_empty() {
            return Ok(());
        }
        let dec = self.decode_program(&targets)?;
        if let Some(&absent) = dec.survivors.iter().find(|&&s| shards[s].is_none()) {
            return Err(EcError::MissingSource { shard: absent });
        }
        let len =
            layout::common_shard_len(shards.iter().flatten().map(Vec::as_slice))?;

        // Phase 1: reconstruct lost data shards from the program's
        // survivor inputs.
        match &dec.compiled {
            Some((_, prog)) if len > 0 => {
                let inputs: Vec<&[u8]> = dec
                    .survivors
                    .iter()
                    .flat_map(|&i| {
                        layout::packets(shards[i].as_deref().expect("survivor present"))
                    })
                    .collect();
                let mut rebuilt: Vec<Vec<u8>> = vec![vec![0u8; len]; dec.lost_data.len()];
                {
                    let mut outputs: Vec<&mut [u8]> = rebuilt
                        .iter_mut()
                        .flat_map(|s| layout::packets_mut(s))
                        .collect();
                    self.backend.run(prog, &inputs, &mut outputs)?;
                }
                for (&i, shard) in dec.lost_data.iter().zip(rebuilt) {
                    shards[i] = Some(shard);
                }
            }
            _ => {
                for &i in &dec.lost_data {
                    shards[i] = Some(vec![0u8; len]);
                }
            }
        }

        // Phase 2: re-encode only the *target* parity rows (their data
        // inputs are complete now) — repair work is proportional to what
        // was lost, not to p. Data shards outside the plan may still be
        // `None`; they are substituted with zeros, legal only because the
        // target rows' generator columns there are zero (checked).
        let target_rows: Vec<usize> =
            targets.iter().filter(|&&i| i >= n).map(|&i| i - n).collect();
        if !target_rows.is_empty() {
            for (j, shard) in shards.iter().enumerate().take(n) {
                if shard.is_none() {
                    if let Some(&r) = target_rows
                        .iter()
                        .find(|&&r| !self.matrix[(n + r, j)].is_zero())
                    {
                        debug_assert!(n + r < n + p);
                        return Err(EcError::MissingSource { shard: j });
                    }
                }
            }
            let zeros = vec![0u8; len];
            let data_refs: Vec<&[u8]> = shards[..n]
                .iter()
                .map(|s| s.as_deref().unwrap_or(&zeros))
                .collect();
            let mut rebuilt: Vec<Vec<u8>> = vec![vec![0u8; len]; target_rows.len()];
            {
                let mut refs: Vec<&mut [u8]> =
                    rebuilt.iter_mut().map(Vec::as_mut_slice).collect();
                self.encode_parity_partial(&data_refs, &mut refs, &target_rows)?;
            }
            for (&r, shard) in target_rows.iter().zip(rebuilt) {
                shards[n + r] = Some(shard);
            }
        }
        Ok(())
    }

    /// Recover the original byte buffer from surviving shards.
    ///
    /// `data_len` is the length passed to [`RsCodec::encode`] (padding is
    /// stripped). Only lost *data* shards are reconstructed; missing
    /// parity is ignored.
    pub fn decode(
        &self,
        shards: &[Option<Vec<u8>>],
        data_len: usize,
    ) -> Result<Vec<u8>, EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if shards.len() != n + p {
            return Err(EcError::ShardCount { expected: n + p, got: shards.len() });
        }
        let missing: Vec<usize> = (0..n + p).filter(|&i| shards[i].is_none()).collect();
        if missing.len() > p {
            return Err(EcError::TooManyErasures { missing: missing.len(), parity: p });
        }
        let len = layout::common_shard_len(shards.iter().flatten().map(Vec::as_slice))?;
        if layout::shard_len_for(data_len, n) > len {
            return Err(EcError::ShardLength(format!(
                "shards of {len} bytes cannot hold {data_len} bytes of data"
            )));
        }

        let dec = self.decode_program(&missing)?;
        let mut rebuilt: Vec<Vec<u8>> = vec![vec![0u8; len]; dec.lost_data.len()];
        if let Some((_, prog)) = &dec.compiled {
            if len > 0 {
                let inputs: Vec<&[u8]> = dec
                    .survivors
                    .iter()
                    .flat_map(|&i| {
                        layout::packets(shards[i].as_deref().expect("survivor present"))
                    })
                    .collect();
                let mut outputs: Vec<&mut [u8]> = rebuilt
                    .iter_mut()
                    .flat_map(|s| layout::packets_mut(s))
                    .collect();
                self.backend.run(prog, &inputs, &mut outputs)?;
            }
        }

        // Stitch data shards back together and strip the padding.
        let mut out = Vec::with_capacity(n * len);
        let mut rebuilt_iter = rebuilt.into_iter();
        for shard in &shards[..n] {
            match shard {
                Some(s) => out.extend_from_slice(s),
                None => out.extend_from_slice(
                    &rebuilt_iter.next().expect("one rebuilt shard per lost data"),
                ),
            }
        }
        out.truncate(data_len);
        Ok(out)
    }

    /// Verify that parity shards are consistent with the data shards.
    ///
    /// The comparison runs stripe by stripe: each chunk of `workers ×
    /// blocksize` packet bytes of expected parity is computed (striped
    /// across the pool, like encode) into a small reused scratch buffer
    /// — one chunk's worth, not `p` full shards — and compared
    /// immediately. The first mismatching chunk aborts the scan, so
    /// detecting corruption near the front of a large stripe costs a few
    /// blocks of work, not a full re-encode, while a clean scan keeps
    /// the pool parallelism of the full encode.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if shards.len() != n + p {
            return Err(EcError::ShardCount { expected: n + p, got: shards.len() });
        }
        let len = layout::common_shard_len(shards.iter().map(Vec::as_slice))?;
        if len == 0 {
            return Ok(true);
        }
        let pl = len / layout::PACKETS_PER_SHARD;
        let data_packets: Vec<&[u8]> =
            shards[..n].iter().flat_map(|s| layout::packets(s)).collect();
        let parity_packets: Vec<&[u8]> =
            shards[n..].iter().flat_map(|s| layout::packets(s)).collect();

        // Chunk width: one compiled block per backend lane, so each chunk
        // re-encodes at full engine parallelism while the scratch (and
        // the early-exit granularity) stays a bounded, reusable strip.
        let workers = self.backend.lanes();
        let step = self
            .enc_prog
            .blocksize()
            .saturating_mul(workers.max(1))
            .min(pl)
            .max(1);
        xor_runtime::with_byte_scratch(parity_packets.len() * step, |scratch| {
            let mut start = 0;
            while start < pl {
                let width = step.min(pl - start);
                let r = start..start + width;
                let inputs: Vec<&[u8]> =
                    data_packets.iter().map(|s| &s[r.clone()]).collect();
                let mut outputs: Vec<&mut [u8]> = scratch
                    .chunks_exact_mut(step)
                    .map(|c| &mut c[..width])
                    .collect();
                self.backend.run(&self.enc_prog, &inputs, &mut outputs)?;
                let mismatch = parity_packets
                    .iter()
                    .zip(scratch.chunks_exact(step))
                    .any(|(actual, expected)| actual[r.clone()] != expected[..width]);
                if mismatch {
                    return Ok(false);
                }
                start += width;
            }
            Ok(true)
        })
    }
}

/// Fill `shard` with slot `i`'s slice of `data`, zero-padded to `len`
/// (the layout shared by `encode_into` and `split_data`).
fn fill_data_shard(shard: &mut Vec<u8>, data: &[u8], i: usize, len: usize) {
    let lo = (i * len).min(data.len());
    let hi = ((i + 1) * len).min(data.len());
    shard.clear();
    shard.extend_from_slice(&data[lo..hi]);
    shard.resize(len, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compression, MatrixKind, OptConfig, Scheduling};

    fn sample_data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + i / 7) as u8).collect()
    }

    #[test]
    fn roundtrip_no_erasures() {
        let codec = RsCodec::new(4, 2).unwrap();
        let data = sample_data(4 * 64);
        let shards = codec.encode(&data).unwrap();
        assert_eq!(shards.len(), 6);
        assert!(codec.verify(&shards).unwrap());
        let received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
    }

    #[test]
    fn roundtrip_all_single_erasures() {
        let codec = RsCodec::new(5, 3).unwrap();
        let data = sample_data(5 * 40);
        let shards = codec.encode(&data).unwrap();
        for lost in 0..8 {
            let mut received: Vec<Option<Vec<u8>>> =
                shards.iter().cloned().map(Some).collect();
            received[lost] = None;
            assert_eq!(codec.decode(&received, data.len()).unwrap(), data, "lost {lost}");
        }
    }

    #[test]
    fn roundtrip_max_erasures_every_pattern() {
        // RS(4,2): all C(6,2)=15 double-erasure patterns.
        let codec = RsCodec::new(4, 2).unwrap();
        let data = sample_data(4 * 24);
        let shards = codec.encode(&data).unwrap();
        for a in 0..6 {
            for b in a + 1..6 {
                let mut received: Vec<Option<Vec<u8>>> =
                    shards.iter().cloned().map(Some).collect();
                received[a] = None;
                received[b] = None;
                assert_eq!(
                    codec.decode(&received, data.len()).unwrap(),
                    data,
                    "lost {a},{b}"
                );
            }
        }
    }

    #[test]
    fn paper_pattern_rs_10_4() {
        // The paper's P_dec pattern: data shards {2,4,5,6} lost.
        let codec = RsCodec::new(10, 4).unwrap();
        let data = sample_data(10 * 80 + 13); // padding exercised
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for i in [2, 4, 5, 6] {
            received[i] = None;
        }
        assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
        // and the decode SLP has exactly the paper's XOR count before
        // optimization; after Full-DFS it is much smaller.
        let slp = codec.decode_slp(&[2, 4, 5, 6]).unwrap();
        assert!(slp.xor_count() < 1368);
    }

    #[test]
    fn reconstruct_rebuilds_data_and_parity() {
        let codec = RsCodec::new(6, 3).unwrap();
        let data = sample_data(6 * 32);
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().map(Some).collect();
        received[1] = None; // data
        received[7] = None; // parity
        received[8] = None; // parity
        codec.reconstruct(&mut received).unwrap();
        for (i, s) in received.iter().enumerate() {
            assert_eq!(s.as_ref().unwrap(), &shards[i], "shard {i}");
        }
    }

    #[test]
    fn parity_only_erasures_skip_the_inverse() {
        let codec = RsCodec::new(4, 2).unwrap();
        let data = sample_data(4 * 16);
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().map(Some).collect();
        received[4] = None;
        received[5] = None;
        // decode ignores parity loss entirely
        assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
        // reconstruct rebuilds them
        codec.reconstruct(&mut received).unwrap();
        assert_eq!(received[4].as_ref().unwrap(), &shards[4]);
        assert_eq!(received[5].as_ref().unwrap(), &shards[5]);
    }

    #[test]
    fn too_many_erasures_rejected() {
        let codec = RsCodec::new(4, 2).unwrap();
        let data = sample_data(64);
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        received[0] = None;
        received[1] = None;
        received[2] = None;
        assert!(matches!(
            codec.decode(&received, data.len()),
            Err(EcError::TooManyErasures { missing: 3, parity: 2 })
        ));
    }

    #[test]
    fn shard_shape_errors() {
        let codec = RsCodec::new(3, 2).unwrap();
        assert!(matches!(
            codec.decode(&[None, None], 0),
            Err(EcError::ShardCount { expected: 5, got: 2 })
        ));
        let bad: Vec<Option<Vec<u8>>> = vec![
            Some(vec![0; 16]),
            Some(vec![0; 8]), // inconsistent
            Some(vec![0; 16]),
            Some(vec![0; 16]),
            Some(vec![0; 16]),
        ];
        assert!(matches!(codec.decode(&bad, 0), Err(EcError::ShardLength(_))));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(RsCodec::new(0, 2).is_err());
        assert!(RsCodec::new(2, 0).is_err());
        assert!(RsCodec::new(200, 100).is_err());
        assert!(RsCodec::with_config(RsConfig::new(4, 2).blocksize(0)).is_err());
    }

    #[test]
    fn shard_len_matches_encode_output() {
        let codec = RsCodec::new(10, 4).unwrap();
        for data_len in [0usize, 1, 79, 80, 81, 1000, 4096] {
            let data = sample_data(data_len);
            let shards = codec.encode(&data).unwrap();
            assert_eq!(shards[0].len(), codec.shard_len(data_len), "len {data_len}");
        }
    }

    #[test]
    fn encode_into_reuses_buffers_and_matches_encode() {
        let codec = RsCodec::new(5, 2).unwrap();
        // One set of buffers reused across different data and lengths:
        // stale contents and stale sizes must not leak through.
        let mut shards = vec![vec![0xFFu8; 123]; 7];
        for data_len in [5 * 40, 17, 0, 5 * 40 + 3] {
            let data = sample_data(data_len);
            codec.encode_into(&data, &mut shards).unwrap();
            assert_eq!(shards, codec.encode(&data).unwrap(), "len {data_len}");
        }
        // Wrong buffer count is rejected.
        let mut six = vec![Vec::new(); 6];
        assert!(matches!(
            codec.encode_into(&[1, 2, 3], &mut six),
            Err(EcError::ShardCount { expected: 7, got: 6 })
        ));
    }

    #[test]
    fn split_data_matches_encode_layout() {
        let codec = RsCodec::new(5, 2).unwrap();
        for data_len in [0usize, 1, 17, 5 * 40, 5 * 40 + 3] {
            let data = sample_data(data_len);
            let split = codec.split_data(&data);
            let encoded = codec.encode(&data).unwrap();
            assert_eq!(&split[..], &encoded[..5], "len {data_len}");
        }
    }

    #[test]
    fn empty_data_roundtrip() {
        let codec = RsCodec::new(4, 2).unwrap();
        let shards = codec.encode(&[]).unwrap();
        assert!(shards.iter().all(Vec::is_empty));
        let received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        assert_eq!(codec.decode(&received, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn every_config_roundtrips() {
        let data = sample_data(6 * 48);
        for matrix in [
            MatrixKind::IsalPower,
            MatrixKind::ReducedVandermonde,
            MatrixKind::Cauchy,
        ] {
            for opt in [
                OptConfig::BASE,
                OptConfig::COMPRESS,
                OptConfig::FUSE,
                OptConfig::FULL_DFS,
                OptConfig {
                    compression: Compression::RePair,
                    fuse: true,
                    schedule: Scheduling::Greedy { cache_blocks: 32 },
                },
            ] {
                let codec = RsCodec::with_config(
                    RsConfig::new(6, 2).matrix(matrix).opt(opt).blocksize(64),
                )
                .unwrap();
                let shards = codec.encode(&data).unwrap();
                let mut received: Vec<Option<Vec<u8>>> =
                    shards.into_iter().map(Some).collect();
                received[0] = None;
                received[6] = None;
                assert_eq!(
                    codec.decode(&received, data.len()).unwrap(),
                    data,
                    "{matrix:?} {opt:?}"
                );
            }
        }
    }

    #[test]
    fn configs_agree_on_parity_bytes() {
        // Optimization level must not change the produced parity.
        let data = sample_data(10 * 160);
        let mk = |opt| {
            RsCodec::with_config(RsConfig::new(10, 4).opt(opt).blocksize(256)).unwrap()
        };
        let reference = mk(OptConfig::BASE).encode(&data).unwrap();
        for opt in [OptConfig::COMPRESS, OptConfig::FUSE, OptConfig::FULL_DFS] {
            assert_eq!(mk(opt).encode(&data).unwrap(), reference, "{opt:?}");
        }
    }

    #[test]
    fn multithreaded_encode_matches_single() {
        let codec = RsCodec::new(8, 3).unwrap();
        let data = sample_data(8 * 1024 + 3);
        let single = codec.encode(&data).unwrap();

        let shard_len = single[0].len();
        let data_refs: Vec<&[u8]> = single[..8].iter().map(Vec::as_slice).collect();
        let mut parity = vec![vec![0u8; shard_len]; 3];
        {
            let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec.encode_parity_mt(&data_refs, &mut refs, 4).unwrap();
        }
        assert_eq!(&parity[..], &single[8..]);
    }

    #[test]
    fn short_shards_encode_mt_with_many_threads() {
        // Shards of one packet-byte each: the partitioner must fall back
        // to a single stripe (not zero work, not a per-byte split) and
        // still produce exact parity whatever thread count is requested.
        let codec = RsCodec::new(4, 2).unwrap();
        let data = sample_data(4 * 8); // 8-byte shards → 1-byte packets
        let single = codec.encode(&data).unwrap();
        let data_refs: Vec<&[u8]> = single[..4].iter().map(Vec::as_slice).collect();
        for threads in [1usize, 2, 7, 64] {
            let mut parity = vec![vec![0u8; single[0].len()]; 2];
            {
                let mut refs: Vec<&mut [u8]> =
                    parity.iter_mut().map(Vec::as_mut_slice).collect();
                codec.encode_parity_mt(&data_refs, &mut refs, threads).unwrap();
            }
            assert_eq!(&parity[..], &single[4..], "threads {threads}");
        }
    }

    #[test]
    fn parallelism_knob_does_not_change_bytes() {
        let data = sample_data(6 * 4096 + 11);
        let reference = RsCodec::with_config(RsConfig::new(6, 3).parallelism(1))
            .unwrap()
            .encode(&data)
            .unwrap();
        for par in [0usize, 2, 4] {
            let codec =
                RsCodec::with_config(RsConfig::new(6, 3).parallelism(par)).unwrap();
            assert_eq!(codec.encode(&data).unwrap(), reference, "parallelism {par}");
            let mut received: Vec<Option<Vec<u8>>> =
                reference.iter().cloned().map(Some).collect();
            for i in [1, 4, 7] {
                received[i] = None;
            }
            assert_eq!(
                codec.decode(&received, data.len()).unwrap(),
                data,
                "parallelism {par}"
            );
        }
    }

    #[test]
    fn decode_cache_evicts_least_recently_used() {
        let codec = RsCodec::with_config(RsConfig::new(4, 2).decode_cache_cap(2)).unwrap();
        assert_eq!(codec.decode_cache_capacity(), 2);
        let p0 = codec.decode_program(&[0]).unwrap();
        let _p1 = codec.decode_program(&[1]).unwrap();
        // Touch [0] so [1] is the LRU entry, then insert a third pattern.
        let p0_again = codec.decode_program(&[0]).unwrap();
        assert!(Arc::ptr_eq(&p0, &p0_again));
        let _p2 = codec.decode_program(&[2]).unwrap();
        // [1] was evicted → recompiled on next request (a fresh Arc);
        // [0] survived → same compiled program.
        let p1_fresh = codec.decode_program(&[1]).unwrap();
        assert!(!Arc::ptr_eq(&_p1, &p1_fresh));
        // ([0] may itself have been evicted by re-inserting [1]; only the
        // recompilation of [1] is the invariant under cap 2.)
        let data = sample_data(4 * 24);
        let shards = codec.encode(&data).unwrap();
        for lost in 0..6 {
            let mut rx: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
            rx[lost] = None;
            assert_eq!(codec.decode(&rx, data.len()).unwrap(), data, "lost {lost}");
            assert!(codec.decode_cache_len() <= 2, "cache exceeded its cap");
        }
    }

    #[test]
    fn decode_cache_is_reused() {
        let codec = RsCodec::new(4, 2).unwrap();
        let p1 = codec.decode_program(&[0]).unwrap();
        let p2 = codec.decode_program(&[0]).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        // different order, same pattern
        let p3 = codec.decode_program(&[1, 0]).unwrap();
        let p4 = codec.decode_program(&[0, 1]).unwrap();
        assert!(Arc::ptr_eq(&p3, &p4));
    }

    /// Full re-encode oracle for the delta-update identity.
    fn full_parity(codec: &RsCodec, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let len = data[0].len();
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut parity = vec![vec![0u8; len]; codec.parity_shards()];
        {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec.encode_parity(&refs, &mut prefs).unwrap();
        }
        parity
    }

    #[test]
    fn update_parity_matches_full_reencode_for_every_column() {
        let codec = RsCodec::new(5, 3).unwrap();
        let shard_len = 5 * 16;
        let data: Vec<Vec<u8>> =
            (0..5).map(|k| sample_data(shard_len + k).split_off(k)).collect();
        let mut parity = full_parity(&codec, &data);
        for i in 0..5 {
            let mut new_data = data.clone();
            new_data[i] = data[i].iter().map(|b| b.wrapping_mul(31).wrapping_add(7)).collect();
            {
                let mut prefs: Vec<&mut [u8]> =
                    parity.iter_mut().map(Vec::as_mut_slice).collect();
                codec
                    .update_parity(i, &data[i], &new_data[i], &mut prefs)
                    .unwrap();
            }
            assert_eq!(parity, full_parity(&codec, &new_data), "column {i}");
            // Updating back restores the original parity (involution).
            {
                let mut prefs: Vec<&mut [u8]> =
                    parity.iter_mut().map(Vec::as_mut_slice).collect();
                codec
                    .update_parity(i, &new_data[i], &data[i], &mut prefs)
                    .unwrap();
            }
            assert_eq!(parity, full_parity(&codec, &data), "column {i} undone");
        }
    }

    #[test]
    fn update_parity_validates_inputs() {
        let codec = RsCodec::new(4, 2).unwrap();
        let shard = vec![0u8; 16];
        let mut parity = vec![vec![0u8; 16]; 2];
        let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        // shard index out of range
        assert!(matches!(
            codec.update_parity(4, &shard, &shard, &mut prefs),
            Err(EcError::InvalidParams(_))
        ));
        // old/new length mismatch
        let short = vec![0u8; 8];
        assert!(matches!(
            codec.update_parity(0, &shard, &short, &mut prefs),
            Err(EcError::ShardLength(_))
        ));
        // unaligned length
        let odd = vec![0u8; 10];
        let mut odd_parity = vec![vec![0u8; 10]; 2];
        let mut oprefs: Vec<&mut [u8]> =
            odd_parity.iter_mut().map(Vec::as_mut_slice).collect();
        assert!(matches!(
            codec.update_parity(0, &odd, &odd, &mut oprefs),
            Err(EcError::ShardLength(_))
        ));
        // wrong parity count
        let mut one = [vec![0u8; 16]];
        let mut onerefs: Vec<&mut [u8]> = one.iter_mut().map(Vec::as_mut_slice).collect();
        assert!(matches!(
            codec.update_parity(0, &shard, &shard, &mut onerefs),
            Err(EcError::ShardCount { expected: 2, got: 1 })
        ));
        // zero-length shards are a no-op
        let empty: Vec<u8> = Vec::new();
        let mut zero = [Vec::new(), Vec::new()];
        let mut zrefs: Vec<&mut [u8]> = zero.iter_mut().map(Vec::as_mut_slice).collect();
        codec.update_parity(0, &empty, &empty, &mut zrefs).unwrap();
    }

    #[test]
    fn encode_parity_partial_matches_full_rows() {
        let codec = RsCodec::new(6, 3).unwrap();
        let data: Vec<Vec<u8>> = (0..6).map(|k| sample_data(48 + 8 * k)[k..48 + k].to_vec()).collect();
        let full = full_parity(&codec, &data);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        for rows in [vec![0], vec![1], vec![2], vec![0, 2], vec![1, 2], vec![0, 1, 2]] {
            let mut out = vec![vec![0u8; 48]; rows.len()];
            {
                let mut orefs: Vec<&mut [u8]> =
                    out.iter_mut().map(Vec::as_mut_slice).collect();
                codec.encode_parity_partial(&refs, &mut orefs, &rows).unwrap();
            }
            for (k, &r) in rows.iter().enumerate() {
                assert_eq!(out[k], full[r], "rows {rows:?} slot {k}");
            }
        }
    }

    #[test]
    fn encode_parity_partial_rejects_bad_rows() {
        let codec = RsCodec::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|_| vec![1u8; 16]).collect();
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut out = vec![vec![0u8; 16]; 1];
        let mut orefs: Vec<&mut [u8]> = out.iter_mut().map(Vec::as_mut_slice).collect();
        for rows in [vec![], vec![2], vec![1, 0], vec![0, 0]] {
            assert!(
                matches!(
                    codec.encode_parity_partial(&refs, &mut orefs, &rows),
                    Err(EcError::InvalidParams(_))
                ),
                "rows {rows:?}"
            );
        }
        // parity slot count must match the row count
        assert!(matches!(
            codec.encode_parity_partial(&refs, &mut orefs, &[0, 1]),
            Err(EcError::ShardCount { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn update_program_is_strictly_cheaper_than_full_encode() {
        // The acceptance criterion of the delta-update subsystem: a
        // single-shard write executes strictly fewer XOR instructions
        // than re-encoding the world.
        let codec = RsCodec::new(10, 4).unwrap();
        let full = codec.encode_slp().xor_count();
        for i in 0..10 {
            let upd = codec.update_slp(i).unwrap().xor_count();
            assert!(upd < full, "column {i}: {upd} XORs vs full {full}");
        }
        // Row-subset repair of one parity shard is cheaper than all four.
        for r in 0..4 {
            let one = codec.partial_encode_slp(&[r]).unwrap().xor_count();
            assert!(one < full, "row {r}: {one} XORs vs full {full}");
        }
    }

    #[test]
    fn partial_cache_is_reused_and_bounded() {
        let codec =
            RsCodec::with_config(RsConfig::new(6, 2).partial_cache_cap(3)).unwrap();
        assert_eq!(codec.partial_cache_capacity(), 3);
        let a = codec.partial_program(PartialKey::Column(0));
        let b = codec.partial_program(PartialKey::Column(0));
        assert!(Arc::ptr_eq(&a, &b), "cache hit must return the same program");
        // Fill past the cap with distinct columns: LRU evicts column 0.
        for i in 1..4 {
            let _ = codec.partial_program(PartialKey::Column(i));
        }
        assert_eq!(codec.partial_cache_len(), 3);
        assert!(!lock(&codec.partial_cache).contains(&PartialKey::Column(0)));
        let fresh = codec.partial_program(PartialKey::Column(0));
        assert!(!Arc::ptr_eq(&a, &fresh), "evicted program must recompile");
        // Row-subset keys share the same cache.
        let _ = codec.partial_program(PartialKey::Rows(vec![1]));
        assert!(codec.partial_cache_len() <= 3, "cache exceeded its cap");
    }

    #[test]
    fn default_partial_cache_capacity_fits_columns_and_single_rows() {
        let codec = RsCodec::new(10, 4).unwrap();
        assert_eq!(codec.partial_cache_capacity(), 14);
        assert_eq!(codec.partial_cache_len(), 0);
    }

    #[test]
    fn reconstruct_single_parity_uses_one_row_program() {
        let codec = RsCodec::new(6, 3).unwrap();
        let data = sample_data(6 * 32);
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().map(Some).collect();
        received[7] = None; // parity row 1 only
        codec.reconstruct(&mut received).unwrap();
        assert_eq!(received[7].as_ref().unwrap(), &shards[7]);
        // The repair compiled (and cached) exactly the one-row program —
        // not the full encode, and nothing else.
        assert_eq!(codec.partial_cache_len(), 1);
        assert!(lock(&codec.partial_cache).contains(&PartialKey::Rows(vec![1])));
        let prog = codec.partial_program(PartialKey::Rows(vec![1]));
        assert_eq!(prog.prog.n_outputs(), layout::PACKETS_PER_SHARD);
        assert!(prog.slp.xor_count() < codec.encode_slp().xor_count());
    }

    #[test]
    fn encode_parity_mt_zero_length_is_a_noop() {
        // encode_parity_mt shares encode_parity's prologue: zero-length
        // shards succeed identically on both paths.
        let codec = RsCodec::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = vec![Vec::new(); 4];
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut parity: Vec<Vec<u8>> = vec![Vec::new(); 2];
        let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        codec.encode_parity_mt(&refs, &mut prefs, 4).unwrap();
        let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        codec.encode_parity(&refs, &mut prefs).unwrap();
    }

    #[test]
    fn decode_slp_parity_only_is_typed() {
        let codec = RsCodec::new(4, 2).unwrap();
        assert_eq!(codec.decode_slp(&[4, 5]), Err(EcError::NoDataLost));
        // Caller errors stay distinguishable.
        assert!(matches!(
            codec.decode_slp(&[9]),
            Err(EcError::InvalidParams(_))
        ));
    }

    #[test]
    fn verify_early_exit_still_correct_across_lengths() {
        let codec = RsCodec::with_config(RsConfig::new(4, 2).blocksize(64)).unwrap();
        // Lengths around the blocksize: single stripe, many stripes, tails.
        for shard_len in [8usize, 64, 512, 520, 4096] {
            let data = sample_data(4 * shard_len);
            let mut shards = codec.encode(&data).unwrap();
            assert!(codec.verify(&shards).unwrap(), "len {shard_len}");
            // Corrupt the *last* byte of a parity shard: early exit must
            // not skip the final (possibly partial) stripe.
            let last = shards[5].len() - 1;
            shards[5][last] ^= 1;
            assert!(!codec.verify(&shards).unwrap(), "len {shard_len} tail");
            shards[5][last] ^= 1;
            // And the first byte of a data shard (first stripe).
            shards[0][0] ^= 0x80;
            assert!(!codec.verify(&shards).unwrap(), "len {shard_len} head");
        }
        // Zero-length shards verify trivially.
        let empty: Vec<Vec<u8>> = vec![Vec::new(); 6];
        assert!(codec.verify(&empty).unwrap());
    }

    #[test]
    fn paper_headline_slp_sizes() {
        // The deterministic anchor of the whole reproduction: the
        // unoptimized RS(10,4) programs have exactly the paper's sizes.
        let codec = RsCodec::with_config(
            RsConfig::new(10, 4).opt(OptConfig::BASE),
        )
        .unwrap();
        let enc = codec.encode_slp();
        assert_eq!(enc.xor_count(), 755, "#⊕(P_enc) from §7.5");
        assert_eq!(enc.mem_accesses(), 2265, "#M(P_enc) = 3·755");
        assert_eq!(enc.nvar(), 32, "NVar(P_enc)");
        let dec = codec.decode_slp(&[2, 4, 5, 6]).unwrap();
        assert_eq!(dec.xor_count(), 1368, "#⊕(P_dec) from §7.5");
        assert_eq!(dec.nvar(), 32, "NVar(P_dec)");
    }
}
