//! The [`RsCodec`]: systematic RS(n, p) erasure coding over optimized XOR
//! programs.

use crate::config::RsConfig;
use crate::error::EcError;
use crate::layout;
use crate::lru::LruCache;
use gf256::{encoding_matrix, GfMatrix};
use std::sync::Mutex;
use slp::Slp;
use slp_optimizer::optimize;
use std::sync::Arc;
use xor_runtime::{lock_unpoisoned as lock, ExecPool, ExecProgram, PoolChoice};

/// A compiled decode pipeline for one erasure pattern.
struct DecProgram {
    /// The optimized SLP and its compiled form; `None` when no data shard
    /// is lost (parity-only erasures need no inverse).
    compiled: Option<(Slp, ExecProgram)>,
    /// Indices (< n) of the data shards this program reconstructs.
    lost_data: Vec<usize>,
    /// The n surviving shard indices whose packets feed the program,
    /// in input order.
    survivors: Vec<usize>,
}

/// A systematic Reed–Solomon erasure codec computed entirely with XORs.
///
/// Construction compiles the optimized encode program once; decode
/// programs are compiled lazily per erasure pattern and kept in a
/// bounded LRU cache ([`RsConfig::decode_cache_cap`]). All methods take
/// `&self` and the codec is `Send + Sync`.
///
/// Execution is striped across an [`ExecPool`] (the
/// [`RsConfig::parallelism`] knob): every worker owns a persistent
/// grow-on-demand arena, so concurrent callers never serialize on shared
/// scratch buffers and steady-state encode/decode allocates nothing.
pub struct RsCodec {
    cfg: RsConfig,
    /// The full `(n+p) × n` systematic coding matrix.
    matrix: GfMatrix,
    enc_slp: Slp,
    enc_prog: ExecProgram,
    /// The execution pool (shared global or codec-owned, per config).
    pool: PoolChoice,
    dec_cache: Mutex<LruCache<Vec<usize>, Arc<DecProgram>>>,
}

impl RsCodec {
    /// Create an RS(n, p) codec with the paper's default configuration.
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<RsCodec, EcError> {
        RsCodec::with_config(RsConfig::new(data_shards, parity_shards))
    }

    /// Create a codec from an explicit configuration.
    pub fn with_config(cfg: RsConfig) -> Result<RsCodec, EcError> {
        let (n, p) = (cfg.data_shards, cfg.parity_shards);
        if n == 0 || p == 0 {
            return Err(EcError::InvalidParams(
                "need at least one data and one parity shard".into(),
            ));
        }
        if n + p > 255 {
            return Err(EcError::InvalidParams(format!(
                "n + p = {} exceeds the GF(2^8) limit of 255",
                n + p
            )));
        }
        if cfg.blocksize == 0 {
            return Err(EcError::InvalidParams("blocksize must be positive".into()));
        }
        let matrix = encoding_matrix(cfg.matrix, n, p);
        let parity_rows: Vec<usize> = (n..n + p).collect();
        let parity_bits = bitmatrix::BitMatrix::expand_gf_matrix(&matrix.select_rows(&parity_rows));
        let base = slp::binary_slp_from_bitmatrix(&parity_bits);
        let enc_slp = optimize(&base, cfg.opt);
        let enc_prog = ExecProgram::compile(&enc_slp, cfg.blocksize, cfg.kernel);
        // Auto cache capacity: every empty, single and double erasure
        // pattern fits (1 + t + C(t, 2) keys) — the patterns production
        // repair traffic actually cycles through.
        let t = n + p;
        let cache_cap = match cfg.decode_cache_cap {
            0 => 1 + t + t * (t - 1) / 2,
            cap => cap,
        };
        Ok(RsCodec {
            cfg,
            matrix,
            enc_slp,
            enc_prog,
            pool: PoolChoice::from_parallelism(cfg.parallelism),
            dec_cache: Mutex::new(LruCache::new(cache_cap)),
        })
    }

    /// Number of data shards `n`.
    pub fn data_shards(&self) -> usize {
        self.cfg.data_shards
    }

    /// Number of parity shards `p`.
    pub fn parity_shards(&self) -> usize {
        self.cfg.parity_shards
    }

    /// Total shards `n + p`.
    pub fn total_shards(&self) -> usize {
        self.cfg.data_shards + self.cfg.parity_shards
    }

    /// The configuration this codec was built with.
    pub fn config(&self) -> &RsConfig {
        &self.cfg
    }

    /// The systematic coding matrix (`(n+p) × n`).
    pub fn encode_matrix(&self) -> &GfMatrix {
        &self.matrix
    }

    /// The optimized encoding SLP (for inspection and metrics; §7.5).
    pub fn encode_slp(&self) -> &Slp {
        &self.enc_slp
    }

    /// Number of decode programs currently cached.
    pub fn decode_cache_len(&self) -> usize {
        lock(&self.dec_cache).len()
    }

    /// The decode-cache capacity in effect (the resolved value of
    /// [`RsConfig::decode_cache_cap`]).
    pub fn decode_cache_capacity(&self) -> usize {
        lock(&self.dec_cache).cap()
    }

    /// The optimized decoding SLP for an erasure pattern (for metrics;
    /// Figure 1). `lost` lists missing shard indices (data or parity);
    /// at least one data shard must be lost, otherwise decoding is a
    /// no-op with no program to return.
    pub fn decode_slp(&self, lost: &[usize]) -> Result<Slp, EcError> {
        let dec = self.decode_program(lost)?;
        match &dec.compiled {
            Some((slp, _)) => Ok(slp.clone()),
            None => Err(EcError::InvalidParams(
                "no data shards lost; decoding is a no-op".into(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Encoding
    // ------------------------------------------------------------------

    /// Compute all parity shards from data shards, zero-copy.
    ///
    /// Every shard (input and output) must have the same length, a
    /// multiple of 8.
    pub fn encode_parity(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
    ) -> Result<(), EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if data.len() != n {
            return Err(EcError::ShardCount { expected: n, got: data.len() });
        }
        if parity.len() != p {
            return Err(EcError::ShardCount { expected: p, got: parity.len() });
        }
        let len = layout::common_shard_len(
            data.iter().copied().chain(parity.iter().map(|s| &**s)),
        )?;
        if len == 0 {
            return Ok(());
        }

        let inputs: Vec<&[u8]> = data.iter().flat_map(|s| layout::packets(s)).collect();
        let mut outputs: Vec<&mut [u8]> = parity
            .iter_mut()
            .flat_map(|s| layout::packets_mut(s))
            .collect();
        self.enc_prog.run_striped(
            &inputs,
            &mut outputs,
            self.pool.pool(),
            self.pool.workers(),
        )?;
        Ok(())
    }

    /// Encode a byte buffer into `n + p` shards (convenience allocation
    /// path). The data is split across `n` shards, zero-padding the tail;
    /// use the original length with [`RsCodec::decode`] to strip padding.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        let shard_len = layout::shard_len_for(data.len(), n);
        let mut shards = vec![vec![0u8; shard_len]; n + p];
        for (i, shard) in shards.iter_mut().take(n).enumerate() {
            let lo = (i * shard_len).min(data.len());
            let hi = ((i + 1) * shard_len).min(data.len());
            shard[..hi - lo].copy_from_slice(&data[lo..hi]);
        }
        let (data_part, parity_part) = shards.split_at_mut(n);
        let data_refs: Vec<&[u8]> = data_part.iter().map(Vec::as_slice).collect();
        let mut parity_refs: Vec<&mut [u8]> =
            parity_part.iter_mut().map(Vec::as_mut_slice).collect();
        self.encode_parity(&data_refs, &mut parity_refs)?;
        Ok(shards)
    }

    /// [`RsCodec::encode_parity`] with an explicit stripe-count ceiling:
    /// the packet range is split by the runtime partitioner into at most
    /// `threads` blocksize-aligned stripes (XOR is position-wise, so any
    /// split is exact) and executed on the shared global [`ExecPool`],
    /// regardless of this codec's own `parallelism` setting.
    ///
    /// Prefer [`RsConfig::parallelism`] for steady-state use; this entry
    /// point exists for callers that scale thread counts per call (e.g.
    /// the thread-scaling bench).
    pub fn encode_parity_mt(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        threads: usize,
    ) -> Result<(), EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if data.len() != n {
            return Err(EcError::ShardCount { expected: n, got: data.len() });
        }
        if parity.len() != p {
            return Err(EcError::ShardCount { expected: p, got: parity.len() });
        }
        layout::common_shard_len(
            data.iter().copied().chain(parity.iter().map(|s| &**s)),
        )?;

        let inputs: Vec<&[u8]> = data.iter().flat_map(|s| layout::packets(s)).collect();
        let mut outputs: Vec<&mut [u8]> = parity
            .iter_mut()
            .flat_map(|s| layout::packets_mut(s))
            .collect();
        self.enc_prog.run_striped(
            &inputs,
            &mut outputs,
            ExecPool::global(),
            threads.max(1),
        )?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Decoding
    // ------------------------------------------------------------------

    /// Compile (or fetch from cache) the decode program for an erasure
    /// pattern.
    fn decode_program(&self, lost: &[usize]) -> Result<Arc<DecProgram>, EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        let mut lost: Vec<usize> = lost.to_vec();
        lost.sort_unstable();
        lost.dedup();
        if lost.iter().any(|&i| i >= n + p) {
            return Err(EcError::InvalidParams(format!(
                "erased shard index out of range (total {})",
                n + p
            )));
        }
        if lost.len() > p {
            return Err(EcError::TooManyErasures { missing: lost.len(), parity: p });
        }
        if let Some(hit) = lock(&self.dec_cache).get(&lost) {
            return Ok(hit);
        }

        let survivors: Vec<usize> = (0..n + p).filter(|i| !lost.contains(i)).take(n).collect();
        let lost_data: Vec<usize> = lost.iter().copied().filter(|&i| i < n).collect();
        let compiled = if lost_data.is_empty() {
            None
        } else {
            let sub = self.matrix.select_rows(&survivors);
            let inv = sub
                .invert()
                .ok_or_else(|| EcError::SingularPattern { lost: lost.clone() })?;
            // Rows of the inverse for the lost data blocks express them as
            // combinations of the gathered survivor blocks.
            let rec = inv.select_rows(&lost_data);
            let bits = bitmatrix::BitMatrix::expand_gf_matrix(&rec);
            let base = slp::binary_slp_from_bitmatrix(&bits);
            let slp = optimize(&base, self.cfg.opt);
            let prog = ExecProgram::compile(&slp, self.cfg.blocksize, self.cfg.kernel);
            Some((slp, prog))
        };
        let dec = Arc::new(DecProgram { compiled, lost_data, survivors });
        lock(&self.dec_cache).insert(lost, dec.clone());
        Ok(dec)
    }

    /// Rebuild every missing shard in place (data via the decode program,
    /// parity by re-encoding).
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if shards.len() != n + p {
            return Err(EcError::ShardCount { expected: n + p, got: shards.len() });
        }
        let missing: Vec<usize> = (0..n + p).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > p {
            return Err(EcError::TooManyErasures { missing: missing.len(), parity: p });
        }
        let len =
            layout::common_shard_len(shards.iter().flatten().map(Vec::as_slice))?;

        // Phase 1: reconstruct lost data shards from any n survivors.
        let dec = self.decode_program(&missing)?;
        match &dec.compiled {
            Some((_, prog)) if len > 0 => {
                let inputs: Vec<&[u8]> = dec
                    .survivors
                    .iter()
                    .flat_map(|&i| {
                        layout::packets(shards[i].as_deref().expect("survivor present"))
                    })
                    .collect();
                let mut rebuilt: Vec<Vec<u8>> = vec![vec![0u8; len]; dec.lost_data.len()];
                {
                    let mut outputs: Vec<&mut [u8]> = rebuilt
                        .iter_mut()
                        .flat_map(|s| layout::packets_mut(s))
                        .collect();
                    prog.run_striped(
                        &inputs,
                        &mut outputs,
                        self.pool.pool(),
                        self.pool.workers(),
                    )?;
                }
                for (&i, shard) in dec.lost_data.iter().zip(rebuilt) {
                    shards[i] = Some(shard);
                }
            }
            _ => {
                for &i in &dec.lost_data {
                    shards[i] = Some(vec![0u8; len]);
                }
            }
        }

        // Phase 2: re-encode missing parity shards (data is complete now).
        let missing_parity: Vec<usize> = missing.iter().copied().filter(|&i| i >= n).collect();
        if !missing_parity.is_empty() {
            let data_refs: Vec<&[u8]> = shards[..n]
                .iter()
                .map(|s| s.as_deref().expect("data complete after phase 1"))
                .collect();
            let mut parity: Vec<Vec<u8>> = vec![vec![0u8; len]; p];
            {
                let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
                self.encode_parity(&data_refs, &mut refs)?;
            }
            for (j, shard) in parity.into_iter().enumerate() {
                if shards[n + j].is_none() {
                    shards[n + j] = Some(shard);
                }
            }
        }
        Ok(())
    }

    /// Recover the original byte buffer from surviving shards.
    ///
    /// `data_len` is the length passed to [`RsCodec::encode`] (padding is
    /// stripped). Only lost *data* shards are reconstructed; missing
    /// parity is ignored.
    pub fn decode(
        &self,
        shards: &[Option<Vec<u8>>],
        data_len: usize,
    ) -> Result<Vec<u8>, EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if shards.len() != n + p {
            return Err(EcError::ShardCount { expected: n + p, got: shards.len() });
        }
        let missing: Vec<usize> = (0..n + p).filter(|&i| shards[i].is_none()).collect();
        if missing.len() > p {
            return Err(EcError::TooManyErasures { missing: missing.len(), parity: p });
        }
        let len = layout::common_shard_len(shards.iter().flatten().map(Vec::as_slice))?;
        if layout::shard_len_for(data_len, n) > len {
            return Err(EcError::ShardLength(format!(
                "shards of {len} bytes cannot hold {data_len} bytes of data"
            )));
        }

        let dec = self.decode_program(&missing)?;
        let mut rebuilt: Vec<Vec<u8>> = vec![vec![0u8; len]; dec.lost_data.len()];
        if let Some((_, prog)) = &dec.compiled {
            if len > 0 {
                let inputs: Vec<&[u8]> = dec
                    .survivors
                    .iter()
                    .flat_map(|&i| {
                        layout::packets(shards[i].as_deref().expect("survivor present"))
                    })
                    .collect();
                let mut outputs: Vec<&mut [u8]> = rebuilt
                    .iter_mut()
                    .flat_map(|s| layout::packets_mut(s))
                    .collect();
                prog.run_striped(
                    &inputs,
                    &mut outputs,
                    self.pool.pool(),
                    self.pool.workers(),
                )?;
            }
        }

        // Stitch data shards back together and strip the padding.
        let mut out = Vec::with_capacity(n * len);
        let mut rebuilt_iter = rebuilt.into_iter();
        for shard in &shards[..n] {
            match shard {
                Some(s) => out.extend_from_slice(s),
                None => out.extend_from_slice(
                    &rebuilt_iter.next().expect("one rebuilt shard per lost data"),
                ),
            }
        }
        out.truncate(data_len);
        Ok(out)
    }

    /// Verify that parity shards are consistent with the data shards.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, EcError> {
        let (n, p) = (self.cfg.data_shards, self.cfg.parity_shards);
        if shards.len() != n + p {
            return Err(EcError::ShardCount { expected: n + p, got: shards.len() });
        }
        let len = layout::common_shard_len(shards.iter().map(Vec::as_slice))?;
        let data_refs: Vec<&[u8]> = shards[..n].iter().map(Vec::as_slice).collect();
        let mut parity: Vec<Vec<u8>> = vec![vec![0u8; len]; p];
        {
            let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
            self.encode_parity(&data_refs, &mut refs)?;
        }
        Ok(parity.iter().zip(&shards[n..]).all(|(a, b)| a == b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compression, MatrixKind, OptConfig, Scheduling};

    fn sample_data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + i / 7) as u8).collect()
    }

    #[test]
    fn roundtrip_no_erasures() {
        let codec = RsCodec::new(4, 2).unwrap();
        let data = sample_data(4 * 64);
        let shards = codec.encode(&data).unwrap();
        assert_eq!(shards.len(), 6);
        assert!(codec.verify(&shards).unwrap());
        let received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
    }

    #[test]
    fn roundtrip_all_single_erasures() {
        let codec = RsCodec::new(5, 3).unwrap();
        let data = sample_data(5 * 40);
        let shards = codec.encode(&data).unwrap();
        for lost in 0..8 {
            let mut received: Vec<Option<Vec<u8>>> =
                shards.iter().cloned().map(Some).collect();
            received[lost] = None;
            assert_eq!(codec.decode(&received, data.len()).unwrap(), data, "lost {lost}");
        }
    }

    #[test]
    fn roundtrip_max_erasures_every_pattern() {
        // RS(4,2): all C(6,2)=15 double-erasure patterns.
        let codec = RsCodec::new(4, 2).unwrap();
        let data = sample_data(4 * 24);
        let shards = codec.encode(&data).unwrap();
        for a in 0..6 {
            for b in a + 1..6 {
                let mut received: Vec<Option<Vec<u8>>> =
                    shards.iter().cloned().map(Some).collect();
                received[a] = None;
                received[b] = None;
                assert_eq!(
                    codec.decode(&received, data.len()).unwrap(),
                    data,
                    "lost {a},{b}"
                );
            }
        }
    }

    #[test]
    fn paper_pattern_rs_10_4() {
        // The paper's P_dec pattern: data shards {2,4,5,6} lost.
        let codec = RsCodec::new(10, 4).unwrap();
        let data = sample_data(10 * 80 + 13); // padding exercised
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for i in [2, 4, 5, 6] {
            received[i] = None;
        }
        assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
        // and the decode SLP has exactly the paper's XOR count before
        // optimization; after Full-DFS it is much smaller.
        let slp = codec.decode_slp(&[2, 4, 5, 6]).unwrap();
        assert!(slp.xor_count() < 1368);
    }

    #[test]
    fn reconstruct_rebuilds_data_and_parity() {
        let codec = RsCodec::new(6, 3).unwrap();
        let data = sample_data(6 * 32);
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().map(Some).collect();
        received[1] = None; // data
        received[7] = None; // parity
        received[8] = None; // parity
        codec.reconstruct(&mut received).unwrap();
        for (i, s) in received.iter().enumerate() {
            assert_eq!(s.as_ref().unwrap(), &shards[i], "shard {i}");
        }
    }

    #[test]
    fn parity_only_erasures_skip_the_inverse() {
        let codec = RsCodec::new(4, 2).unwrap();
        let data = sample_data(4 * 16);
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().map(Some).collect();
        received[4] = None;
        received[5] = None;
        // decode ignores parity loss entirely
        assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
        // reconstruct rebuilds them
        codec.reconstruct(&mut received).unwrap();
        assert_eq!(received[4].as_ref().unwrap(), &shards[4]);
        assert_eq!(received[5].as_ref().unwrap(), &shards[5]);
    }

    #[test]
    fn too_many_erasures_rejected() {
        let codec = RsCodec::new(4, 2).unwrap();
        let data = sample_data(64);
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        received[0] = None;
        received[1] = None;
        received[2] = None;
        assert!(matches!(
            codec.decode(&received, data.len()),
            Err(EcError::TooManyErasures { missing: 3, parity: 2 })
        ));
    }

    #[test]
    fn shard_shape_errors() {
        let codec = RsCodec::new(3, 2).unwrap();
        assert!(matches!(
            codec.decode(&[None, None], 0),
            Err(EcError::ShardCount { expected: 5, got: 2 })
        ));
        let bad: Vec<Option<Vec<u8>>> = vec![
            Some(vec![0; 16]),
            Some(vec![0; 8]), // inconsistent
            Some(vec![0; 16]),
            Some(vec![0; 16]),
            Some(vec![0; 16]),
        ];
        assert!(matches!(codec.decode(&bad, 0), Err(EcError::ShardLength(_))));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(RsCodec::new(0, 2).is_err());
        assert!(RsCodec::new(2, 0).is_err());
        assert!(RsCodec::new(200, 100).is_err());
        assert!(RsCodec::with_config(RsConfig::new(4, 2).blocksize(0)).is_err());
    }

    #[test]
    fn empty_data_roundtrip() {
        let codec = RsCodec::new(4, 2).unwrap();
        let shards = codec.encode(&[]).unwrap();
        assert!(shards.iter().all(Vec::is_empty));
        let received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        assert_eq!(codec.decode(&received, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn every_config_roundtrips() {
        let data = sample_data(6 * 48);
        for matrix in [
            MatrixKind::IsalPower,
            MatrixKind::ReducedVandermonde,
            MatrixKind::Cauchy,
        ] {
            for opt in [
                OptConfig::BASE,
                OptConfig::COMPRESS,
                OptConfig::FUSE,
                OptConfig::FULL_DFS,
                OptConfig {
                    compression: Compression::RePair,
                    fuse: true,
                    schedule: Scheduling::Greedy { cache_blocks: 32 },
                },
            ] {
                let codec = RsCodec::with_config(
                    RsConfig::new(6, 2).matrix(matrix).opt(opt).blocksize(64),
                )
                .unwrap();
                let shards = codec.encode(&data).unwrap();
                let mut received: Vec<Option<Vec<u8>>> =
                    shards.into_iter().map(Some).collect();
                received[0] = None;
                received[6] = None;
                assert_eq!(
                    codec.decode(&received, data.len()).unwrap(),
                    data,
                    "{matrix:?} {opt:?}"
                );
            }
        }
    }

    #[test]
    fn configs_agree_on_parity_bytes() {
        // Optimization level must not change the produced parity.
        let data = sample_data(10 * 160);
        let mk = |opt| {
            RsCodec::with_config(RsConfig::new(10, 4).opt(opt).blocksize(256)).unwrap()
        };
        let reference = mk(OptConfig::BASE).encode(&data).unwrap();
        for opt in [OptConfig::COMPRESS, OptConfig::FUSE, OptConfig::FULL_DFS] {
            assert_eq!(mk(opt).encode(&data).unwrap(), reference, "{opt:?}");
        }
    }

    #[test]
    fn multithreaded_encode_matches_single() {
        let codec = RsCodec::new(8, 3).unwrap();
        let data = sample_data(8 * 1024 + 3);
        let single = codec.encode(&data).unwrap();

        let shard_len = single[0].len();
        let data_refs: Vec<&[u8]> = single[..8].iter().map(Vec::as_slice).collect();
        let mut parity = vec![vec![0u8; shard_len]; 3];
        {
            let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec.encode_parity_mt(&data_refs, &mut refs, 4).unwrap();
        }
        assert_eq!(&parity[..], &single[8..]);
    }

    #[test]
    fn short_shards_encode_mt_with_many_threads() {
        // Shards of one packet-byte each: the partitioner must fall back
        // to a single stripe (not zero work, not a per-byte split) and
        // still produce exact parity whatever thread count is requested.
        let codec = RsCodec::new(4, 2).unwrap();
        let data = sample_data(4 * 8); // 8-byte shards → 1-byte packets
        let single = codec.encode(&data).unwrap();
        let data_refs: Vec<&[u8]> = single[..4].iter().map(Vec::as_slice).collect();
        for threads in [1usize, 2, 7, 64] {
            let mut parity = vec![vec![0u8; single[0].len()]; 2];
            {
                let mut refs: Vec<&mut [u8]> =
                    parity.iter_mut().map(Vec::as_mut_slice).collect();
                codec.encode_parity_mt(&data_refs, &mut refs, threads).unwrap();
            }
            assert_eq!(&parity[..], &single[4..], "threads {threads}");
        }
    }

    #[test]
    fn parallelism_knob_does_not_change_bytes() {
        let data = sample_data(6 * 4096 + 11);
        let reference = RsCodec::with_config(RsConfig::new(6, 3).parallelism(1))
            .unwrap()
            .encode(&data)
            .unwrap();
        for par in [0usize, 2, 4] {
            let codec =
                RsCodec::with_config(RsConfig::new(6, 3).parallelism(par)).unwrap();
            assert_eq!(codec.encode(&data).unwrap(), reference, "parallelism {par}");
            let mut received: Vec<Option<Vec<u8>>> =
                reference.iter().cloned().map(Some).collect();
            for i in [1, 4, 7] {
                received[i] = None;
            }
            assert_eq!(
                codec.decode(&received, data.len()).unwrap(),
                data,
                "parallelism {par}"
            );
        }
    }

    #[test]
    fn decode_cache_evicts_least_recently_used() {
        let codec = RsCodec::with_config(RsConfig::new(4, 2).decode_cache_cap(2)).unwrap();
        assert_eq!(codec.decode_cache_capacity(), 2);
        let p0 = codec.decode_program(&[0]).unwrap();
        let _p1 = codec.decode_program(&[1]).unwrap();
        // Touch [0] so [1] is the LRU entry, then insert a third pattern.
        let p0_again = codec.decode_program(&[0]).unwrap();
        assert!(Arc::ptr_eq(&p0, &p0_again));
        let _p2 = codec.decode_program(&[2]).unwrap();
        // [1] was evicted → recompiled on next request (a fresh Arc);
        // [0] survived → same compiled program.
        let p1_fresh = codec.decode_program(&[1]).unwrap();
        assert!(!Arc::ptr_eq(&_p1, &p1_fresh));
        // ([0] may itself have been evicted by re-inserting [1]; only the
        // recompilation of [1] is the invariant under cap 2.)
        let data = sample_data(4 * 24);
        let shards = codec.encode(&data).unwrap();
        for lost in 0..6 {
            let mut rx: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
            rx[lost] = None;
            assert_eq!(codec.decode(&rx, data.len()).unwrap(), data, "lost {lost}");
            assert!(codec.decode_cache_len() <= 2, "cache exceeded its cap");
        }
    }

    #[test]
    fn decode_cache_is_reused() {
        let codec = RsCodec::new(4, 2).unwrap();
        let p1 = codec.decode_program(&[0]).unwrap();
        let p2 = codec.decode_program(&[0]).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        // different order, same pattern
        let p3 = codec.decode_program(&[1, 0]).unwrap();
        let p4 = codec.decode_program(&[0, 1]).unwrap();
        assert!(Arc::ptr_eq(&p3, &p4));
    }

    #[test]
    fn paper_headline_slp_sizes() {
        // The deterministic anchor of the whole reproduction: the
        // unoptimized RS(10,4) programs have exactly the paper's sizes.
        let codec = RsCodec::with_config(
            RsConfig::new(10, 4).opt(OptConfig::BASE),
        )
        .unwrap();
        let enc = codec.encode_slp();
        assert_eq!(enc.xor_count(), 755, "#⊕(P_enc) from §7.5");
        assert_eq!(enc.mem_accesses(), 2265, "#M(P_enc) = 3·755");
        assert_eq!(enc.nvar(), 32, "NVar(P_enc)");
        let dec = codec.decode_slp(&[2, 4, 5, 6]).unwrap();
        assert_eq!(dec.xor_count(), 1368, "#⊕(P_dec) from §7.5");
        assert_eq!(dec.nvar(), 32, "NVar(P_dec)");
    }
}
