//! Shard ↔ packet layout (the `w = 8` striping of XOR-based EC).
//!
//! A shard of `L` bytes is eight packets of `L/8` bytes. The expanded
//! bit-matrix column `8·i + b` addresses packet `b` of shard `i`, so the
//! executor consumes/produces flat packet lists.

use crate::error::EcError;

/// Number of packets per shard (`w`, the symbol width in bits).
pub const PACKETS_PER_SHARD: usize = 8;

/// Split one shard into its 8 packets.
///
/// # Panics
/// Panics if the length is not a multiple of 8 (callers validate first).
pub fn packets(shard: &[u8]) -> Vec<&[u8]> {
    assert_eq!(shard.len() % PACKETS_PER_SHARD, 0, "shard not packet-aligned");
    let pl = shard.len() / PACKETS_PER_SHARD;
    if pl == 0 {
        return vec![&shard[0..0]; PACKETS_PER_SHARD];
    }
    shard.chunks_exact(pl).collect()
}

/// Split one mutable shard into its 8 packets.
pub fn packets_mut(shard: &mut [u8]) -> Vec<&mut [u8]> {
    assert_eq!(shard.len() % PACKETS_PER_SHARD, 0, "shard not packet-aligned");
    let pl = shard.len() / PACKETS_PER_SHARD;
    if pl == 0 {
        // eight empty slices
        let mut out: Vec<&mut [u8]> = Vec::with_capacity(PACKETS_PER_SHARD);
        let mut rest = shard;
        for _ in 0..PACKETS_PER_SHARD {
            let (a, b) = rest.split_at_mut(0);
            out.push(a);
            rest = b;
        }
        return out;
    }
    shard.chunks_exact_mut(pl).collect()
}

/// Validate a set of equally sized, packet-aligned shards and return the
/// common shard length.
pub fn common_shard_len<'a>(
    mut shards: impl Iterator<Item = &'a [u8]>,
) -> Result<usize, EcError> {
    let Some(first) = shards.next() else {
        return Err(EcError::ShardLength("no shards given".into()));
    };
    let len = first.len();
    if len % PACKETS_PER_SHARD != 0 {
        return Err(EcError::ShardLength(format!(
            "shard length {len} is not a multiple of {PACKETS_PER_SHARD}"
        )));
    }
    for s in shards {
        if s.len() != len {
            return Err(EcError::ShardLength(format!(
                "shard lengths differ: {len} vs {}",
                s.len()
            )));
        }
    }
    Ok(len)
}

/// Shard length used by [`crate::RsCodec::encode`] for a given data length:
/// the smallest packet-aligned length with `n` shards covering the data.
pub fn shard_len_for(data_len: usize, n: usize) -> usize {
    data_len.div_ceil(n).div_ceil(PACKETS_PER_SHARD) * PACKETS_PER_SHARD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_split_evenly() {
        let shard: Vec<u8> = (0..64u8).collect();
        let ps = packets(&shard);
        assert_eq!(ps.len(), 8);
        assert_eq!(ps[0], &shard[0..8]);
        assert_eq!(ps[7], &shard[56..64]);
    }

    #[test]
    fn packets_mut_are_disjoint_and_cover() {
        let mut shard = vec![0u8; 32];
        {
            let mut ps = packets_mut(&mut shard);
            for (i, p) in ps.iter_mut().enumerate() {
                p.fill(i as u8);
            }
        }
        assert_eq!(&shard[0..4], &[0, 0, 0, 0]);
        assert_eq!(&shard[28..32], &[7, 7, 7, 7]);
    }

    #[test]
    fn zero_length_shards() {
        let shard: [u8; 0] = [];
        assert_eq!(packets(&shard).len(), 8);
    }

    #[test]
    fn common_len_checks() {
        let a = vec![0u8; 16];
        let b = vec![0u8; 16];
        assert_eq!(common_shard_len([a.as_slice(), b.as_slice()].into_iter()), Ok(16));
        let c = vec![0u8; 24];
        assert!(common_shard_len([a.as_slice(), c.as_slice()].into_iter()).is_err());
        let odd = vec![0u8; 10];
        assert!(common_shard_len([odd.as_slice()].into_iter()).is_err());
    }

    #[test]
    fn shard_len_rounding() {
        assert_eq!(shard_len_for(80, 10), 8);
        assert_eq!(shard_len_for(81, 10), 16);
        assert_eq!(shard_len_for(0, 10), 0);
        assert_eq!(shard_len_for(1, 10), 8);
    }
}
