//! Locally-repairable code (LRC) on top of the shared SLP pipeline.
//!
//! The construction is the standard cloud-storage LRC (Huang et al.,
//! Azure LRC): the `n` data shards are split into `l = n / r` groups of
//! `r`; each group gets one *local* parity shard that is the plain XOR of
//! its members, and `g = p - l` *global* parity shards carry
//! Cauchy-style GF(2^8) rows over all data. Because every row — local or
//! global — is just another generator row of a systematic matrix, the
//! whole thing rides the existing bitmatrix → SLP → optimizer → kernel
//! pipeline unchanged, and the decode-program machinery compiles
//! local-group repair programs for free: losing one shard of a group
//! yields a program whose survivor set is exactly the `r` other members
//! of that group, so a single-node repair reads `r` shards instead of
//! `n`.
//!
//! LRC is **not** MDS: some erasure patterns of weight ≤ `p` are
//! unrecoverable (e.g. a whole group plus its local parity when the
//! globals cannot cover the deficit). Those surface as
//! [`EcError::SingularPattern`] — a typed refusal, never a garbage
//! decode.

use crate::codec::RsCodec;
use crate::config::RsConfig;
use crate::error::EcError;
use gf256::{Gf, GfMatrix};

/// A locally-repairable code LRC(n, r, g): `n` data shards in groups of
/// `r`, one XOR local parity per group, `g` global parity shards.
///
/// Derefs to [`RsCodec`], so the full codec surface (`encode`, `decode`,
/// `reconstruct`, `update_parity`, `repair_sources`, …) is available
/// directly; the decode machinery is locality-aware through the matrix's
/// group annotations.
pub struct LrcCodec {
    inner: RsCodec,
    group_size: usize,
}

impl std::fmt::Debug for LrcCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LrcCodec")
            .field("data_shards", &self.inner.data_shards())
            .field("group_size", &self.group_size)
            .field("local_parity", &self.local_parity())
            .field("global_parity", &self.global_parity())
            .finish()
    }
}

impl LrcCodec {
    /// Create an LRC with `n` data shards in groups of `r` and `g`
    /// global parity shards (total parity `p = n/r + g`), using the
    /// paper's default engine configuration.
    pub fn new(data_shards: usize, group_size: usize, global_parity: usize) -> Result<LrcCodec, EcError> {
        let locals = if group_size > 0 { data_shards / group_size.max(1) } else { 0 };
        LrcCodec::with_config(
            RsConfig::new(data_shards, locals + global_parity),
            group_size,
        )
    }

    /// Create an LRC from an explicit configuration. `cfg.parity_shards`
    /// counts *all* parity — the `n / group_size` local rows plus the
    /// globals.
    pub fn with_config(cfg: RsConfig, group_size: usize) -> Result<LrcCodec, EcError> {
        RsCodec::check_params(&cfg)?;
        let (n, p) = (cfg.data_shards, cfg.parity_shards);
        let r = group_size;
        if r < 2 || r > n {
            return Err(EcError::InvalidParams(format!(
                "LRC group size must be in 2..=n, got r = {r} with n = {n}"
            )));
        }
        if n % r != 0 {
            return Err(EcError::InvalidParams(format!(
                "LRC group size {r} must divide the data shard count {n}"
            )));
        }
        let locals = n / r;
        if p <= locals {
            return Err(EcError::InvalidParams(format!(
                "LRC(n = {n}, r = {r}) has {locals} local parity rows; total \
                 parity {p} must exceed that to leave room for global rows"
            )));
        }
        let globals = p - locals;

        let mut m = GfMatrix::zero(n + p, n);
        for i in 0..n {
            m[(i, i)] = Gf(1);
        }
        // Local rows: coefficient 1 on the group's data columns, so the
        // local parity is a plain XOR and the single-loss repair program
        // degenerates to r array XORs.
        for gi in 0..locals {
            for j in gi * r..(gi + 1) * r {
                m[(n + gi, j)] = Gf(1);
            }
        }
        // Global rows: Cauchy 1/(x_t + y_j) with x_t = n + t, y_j = j.
        // All x and y values are distinct and below 255 (check_params
        // bounds n + p), so every entry is well-defined and non-zero.
        for t in 0..globals {
            for j in 0..n {
                m[(n + locals + t, j)] = (Gf((n + t) as u8) + Gf(j as u8)).inv();
            }
        }

        let groups: Vec<Vec<usize>> = (0..locals)
            .map(|gi| {
                let mut members: Vec<usize> = (gi * r..(gi + 1) * r).collect();
                members.push(n + gi);
                members
            })
            .collect();

        let inner = RsCodec::with_matrix(cfg, m, groups)?;
        Ok(LrcCodec { inner, group_size: r })
    }

    /// Size `r` of each locality group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of local parity shards (`n / r`).
    pub fn local_parity(&self) -> usize {
        self.inner.data_shards() / self.group_size
    }

    /// Number of global parity shards (`p - n/r`).
    pub fn global_parity(&self) -> usize {
        self.inner.parity_shards() - self.local_parity()
    }

    /// The underlying matrix codec.
    pub fn as_rs(&self) -> &RsCodec {
        &self.inner
    }
}

impl std::ops::Deref for LrcCodec {
    type Target = RsCodec;

    fn deref(&self) -> &RsCodec {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i as u32).wrapping_mul(2654435761) as u8).collect()
    }

    #[test]
    fn invalid_geometry_rejected() {
        // r must divide n.
        assert!(matches!(
            LrcCodec::with_config(RsConfig::new(10, 4), 3),
            Err(EcError::InvalidParams(_))
        ));
        // No room for globals: p == l.
        assert!(matches!(
            LrcCodec::with_config(RsConfig::new(10, 2), 5),
            Err(EcError::InvalidParams(_))
        ));
        // r = 1 is replication, not a group.
        assert!(matches!(
            LrcCodec::with_config(RsConfig::new(10, 12), 1),
            Err(EcError::InvalidParams(_))
        ));
        assert!(LrcCodec::new(10, 5, 2).is_ok());
    }

    #[test]
    fn local_parity_is_group_xor() {
        let codec = LrcCodec::new(10, 5, 2).unwrap();
        let data = sample(10 * 64);
        let shards = codec.encode(&data).unwrap();
        for gi in 0..codec.local_parity() {
            let mut expect = vec![0u8; shards[0].len()];
            for shard in &shards[gi * 5..(gi + 1) * 5] {
                for (e, &b) in expect.iter_mut().zip(shard) {
                    *e ^= b;
                }
            }
            assert_eq!(shards[10 + gi], expect, "local parity {gi} must be the group XOR");
        }
    }

    #[test]
    fn single_loss_repairs_from_local_group() {
        let codec = LrcCodec::new(10, 5, 2).unwrap();
        // Losing data shard 7 (group 1) must compile a program whose
        // survivor set is exactly the rest of group 1 — the repair reads
        // r shards, not n.
        let sources = codec.repair_sources(&[7]).unwrap();
        assert_eq!(sources, vec![5, 6, 8, 9, 10 + 1]);

        // And losing the local parity itself re-encodes from its group's
        // data columns only.
        let sources = codec.repair_sources(&[10]).unwrap();
        assert_eq!(sources, vec![0, 1, 2, 3, 4]);

        // A global row's repair still touches all data.
        let sources = codec.repair_sources(&[12]).unwrap();
        assert_eq!(sources, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reconstruct_subset_reads_only_the_plan() {
        let codec = LrcCodec::new(10, 5, 2).unwrap();
        let data = sample(10 * 128 + 17);
        let shards = codec.encode(&data).unwrap();

        // Provide only the plan's shards; everything else stays None.
        let plan = codec.repair_sources(&[2]).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = vec![None; codec.total_shards()];
        for &s in &plan {
            partial[s] = Some(shards[s].clone());
        }
        codec.reconstruct_subset(&mut partial, &[2]).unwrap();
        assert_eq!(partial[2].as_deref(), Some(shards[2].as_slice()));

        // Withholding a plan shard is a typed error, not a wrong answer.
        let mut partial: Vec<Option<Vec<u8>>> = vec![None; codec.total_shards()];
        for &s in &plan[1..] {
            partial[s] = Some(shards[s].clone());
        }
        assert_eq!(
            codec.reconstruct_subset(&mut partial, &[2]),
            Err(EcError::MissingSource { shard: plan[0] })
        );
    }

    #[test]
    fn multi_loss_recoverable_patterns_roundtrip() {
        let codec = LrcCodec::new(10, 5, 2).unwrap();
        let data = sample(10 * 96 + 5);
        let shards = codec.encode(&data).unwrap();
        // One loss per group plus both globals: locals cover the data,
        // globals are re-encoded.
        for lost in [
            vec![0usize, 5, 12, 13],
            vec![3, 9, 10, 11],
            vec![1, 2, 11, 13], // two in one group -> the globals pitch in
            vec![0, 1, 2],      // three in one group, covered by local + globals
        ] {
            let mut received: Vec<Option<Vec<u8>>> =
                shards.iter().cloned().map(Some).collect();
            for &i in &lost {
                received[i] = None;
            }
            codec.reconstruct(&mut received).unwrap();
            for (i, s) in received.iter().enumerate() {
                assert_eq!(s.as_deref(), Some(shards[i].as_slice()), "shard {i}, lost {lost:?}");
            }
            let mut received: Vec<Option<Vec<u8>>> =
                shards.iter().cloned().map(Some).collect();
            for &i in &lost {
                received[i] = None;
            }
            assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn unrecoverable_pattern_is_typed() {
        let codec = LrcCodec::new(10, 5, 2).unwrap();
        // Four data shards in one group: the group's local row plus two
        // globals give only three equations — non-MDS by construction.
        let data = sample(10 * 64);
        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for i in [0, 1, 2, 3] {
            received[i] = None;
        }
        assert!(matches!(
            codec.reconstruct(&mut received),
            Err(EcError::SingularPattern { .. })
        ));
    }

    #[test]
    fn update_parity_matches_full_reencode() {
        let codec = LrcCodec::new(6, 3, 1).unwrap();
        let data = sample(6 * 80);
        let mut shards = codec.encode(&data).unwrap();
        let shard_len = shards[0].len();

        let mut new_shard = sample(shard_len + 3);
        new_shard.truncate(shard_len);
        let old_shard = shards[4].clone();
        {
            let (_, parity_part) = shards.split_at_mut(6);
            let mut parity_refs: Vec<&mut [u8]> =
                parity_part.iter_mut().map(Vec::as_mut_slice).collect();
            codec.update_parity(4, &old_shard, &new_shard, &mut parity_refs).unwrap();
        }
        shards[4] = new_shard;

        let mut flat = Vec::new();
        for s in &shards[..6] {
            flat.extend_from_slice(s);
        }
        let full = codec.encode(&flat).unwrap();
        assert_eq!(shards, full, "delta update must equal full re-encode");
    }

    #[test]
    fn shard_alignment_matches_rs() {
        let codec = LrcCodec::new(4, 2, 1).unwrap();
        for len in [0usize, 1, 7, 8, 31, 4096] {
            assert_eq!(codec.shard_len(len), layout::shard_len_for(len, 4));
        }
    }
}
