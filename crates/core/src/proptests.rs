//! Property tests of the codec: roundtrips under random data, lengths and
//! erasure patterns.

use crate::{OptConfig, RsCodec, RsConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_random_erasures(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        lost_seed in proptest::collection::hash_set(0usize..14, 0..=4),
    ) {
        // Codec construction is expensive; share one per process.
        use std::sync::OnceLock;
        static CODEC: OnceLock<RsCodec> = OnceLock::new();
        let codec = CODEC.get_or_init(|| RsCodec::new(10, 4).unwrap());

        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for &i in &lost_seed {
            received[i] = None;
        }
        let restored = codec.decode(&received, data.len()).unwrap();
        prop_assert_eq!(restored, data);
    }

    #[test]
    fn reconstruct_restores_every_shard(
        data in proptest::collection::vec(any::<u8>(), 1..600),
        lost_seed in proptest::collection::hash_set(0usize..8, 0..=3),
    ) {
        use std::sync::OnceLock;
        static CODEC: OnceLock<RsCodec> = OnceLock::new();
        let codec = CODEC.get_or_init(|| {
            RsCodec::with_config(RsConfig::new(5, 3).blocksize(128)).unwrap()
        });

        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().map(Some).collect();
        for &i in &lost_seed {
            received[i] = None;
        }
        codec.reconstruct(&mut received).unwrap();
        for (i, s) in received.iter().enumerate() {
            prop_assert_eq!(s.as_ref().unwrap(), &shards[i], "shard {}", i);
        }
    }

    #[test]
    fn base_and_optimized_parity_agree(
        data in proptest::collection::vec(any::<u8>(), 1..800),
    ) {
        use std::sync::OnceLock;
        static BASE: OnceLock<RsCodec> = OnceLock::new();
        static FULL: OnceLock<RsCodec> = OnceLock::new();
        let base = BASE.get_or_init(|| {
            RsCodec::with_config(RsConfig::new(6, 3).opt(OptConfig::BASE).blocksize(64))
                .unwrap()
        });
        let full = FULL.get_or_init(|| {
            RsCodec::with_config(RsConfig::new(6, 3).opt(OptConfig::FULL_DFS).blocksize(64))
                .unwrap()
        });
        prop_assert_eq!(base.encode(&data).unwrap(), full.encode(&data).unwrap());
    }

    #[test]
    fn any_n_shards_suffice(
        data in proptest::collection::vec(any::<u8>(), 64..256),
        keep in proptest::sample::subsequence((0..9usize).collect::<Vec<_>>(), 6),
    ) {
        // RS(6,3): keep exactly 6 of 9 shards, drop the rest.
        use std::sync::OnceLock;
        static CODEC: OnceLock<RsCodec> = OnceLock::new();
        let codec = CODEC.get_or_init(|| RsCodec::new(6, 3).unwrap());
        let shards = codec.encode(&data).unwrap();
        let received: Vec<Option<Vec<u8>>> = (0..9)
            .map(|i| keep.contains(&i).then(|| shards[i].clone()))
            .collect();
        prop_assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
    }
}
