//! Property tests of the codec: roundtrips under random data, lengths and
//! erasure patterns, the delta-update identity — and the same invariants
//! for **every codec family in the registry** through the
//! [`ErasureCoder`] boundary.

use crate::{codec_for, CodecSpec, EcError, ErasureCoder, OptConfig, RsCodec, RsConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One codec per registered family, shared across cases (construction
/// compiles SLPs and is the expensive part).
fn registry_codecs() -> &'static [Box<dyn ErasureCoder>] {
    static CODECS: OnceLock<Vec<Box<dyn ErasureCoder>>> = OnceLock::new();
    CODECS.get_or_init(|| {
        [
            CodecSpec::rs(5, 3),
            CodecSpec::parse("evenodd", 4, 2).unwrap(),
            CodecSpec::parse("rdp", 4, 2).unwrap(),
            CodecSpec::lrc(6, 3, 3),
        ]
        .iter()
        .map(|s| codec_for(s).unwrap())
        .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_random_erasures(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        lost_seed in proptest::collection::hash_set(0usize..14, 0..=4),
    ) {
        // Codec construction is expensive; share one per process.
        use std::sync::OnceLock;
        static CODEC: OnceLock<RsCodec> = OnceLock::new();
        let codec = CODEC.get_or_init(|| RsCodec::new(10, 4).unwrap());

        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for &i in &lost_seed {
            received[i] = None;
        }
        let restored = codec.decode(&received, data.len()).unwrap();
        prop_assert_eq!(restored, data);
    }

    #[test]
    fn reconstruct_restores_every_shard(
        data in proptest::collection::vec(any::<u8>(), 1..600),
        lost_seed in proptest::collection::hash_set(0usize..8, 0..=3),
    ) {
        use std::sync::OnceLock;
        static CODEC: OnceLock<RsCodec> = OnceLock::new();
        let codec = CODEC.get_or_init(|| {
            RsCodec::with_config(RsConfig::new(5, 3).blocksize(128)).unwrap()
        });

        let shards = codec.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().map(Some).collect();
        for &i in &lost_seed {
            received[i] = None;
        }
        codec.reconstruct(&mut received).unwrap();
        for (i, s) in received.iter().enumerate() {
            prop_assert_eq!(s.as_ref().unwrap(), &shards[i], "shard {}", i);
        }
    }

    #[test]
    fn base_and_optimized_parity_agree(
        data in proptest::collection::vec(any::<u8>(), 1..800),
    ) {
        use std::sync::OnceLock;
        static BASE: OnceLock<RsCodec> = OnceLock::new();
        static FULL: OnceLock<RsCodec> = OnceLock::new();
        let base = BASE.get_or_init(|| {
            RsCodec::with_config(RsConfig::new(6, 3).opt(OptConfig::BASE).blocksize(64))
                .unwrap()
        });
        let full = FULL.get_or_init(|| {
            RsCodec::with_config(RsConfig::new(6, 3).opt(OptConfig::FULL_DFS).blocksize(64))
                .unwrap()
        });
        prop_assert_eq!(base.encode(&data).unwrap(), full.encode(&data).unwrap());
    }

    /// The delta-update identity: updating parity for one changed data
    /// shard lands on exactly the parity a full re-encode of the new
    /// stripe produces — across random code shapes, shard lengths
    /// (including zero), every available kernel, and both serial and
    /// auto parallelism. Unaligned lengths must error identically to the
    /// full-encode path.
    #[test]
    fn update_parity_equals_full_reencode(
        (n, p) in (1usize..7, 1usize..5),
        packet_len in 0usize..24,
        shard_seed in any::<usize>(),
        old_bytes in proptest::collection::vec(any::<u8>(), 0..200),
        new_bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let shard_len = packet_len * 8;
        let shard_index = shard_seed % n;
        let mk_shard = |seed: usize| -> Vec<u8> {
            (0..shard_len).map(|i| (i * 37 + seed * 101 + 13) as u8).collect()
        };
        let resize = |bytes: &[u8]| -> Vec<u8> {
            (0..shard_len).map(|i| *bytes.get(i).unwrap_or(&0x5A)).collect()
        };

        for kernel in xor_runtime::available_kernels() {
            for parallelism in [1usize, 0] {
                let codec = RsCodec::with_config(
                    RsConfig::new(n, p)
                        .kernel(kernel)
                        .parallelism(parallelism)
                        .blocksize(64),
                )
                .unwrap();

                let mut data: Vec<Vec<u8>> = (0..n).map(mk_shard).collect();
                data[shard_index] = resize(&old_bytes);
                let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
                let mut parity = vec![vec![0u8; shard_len]; p];
                {
                    let mut prefs: Vec<&mut [u8]> =
                        parity.iter_mut().map(Vec::as_mut_slice).collect();
                    codec.encode_parity(&refs, &mut prefs).unwrap();
                }

                let new_shard = resize(&new_bytes);
                {
                    let mut prefs: Vec<&mut [u8]> =
                        parity.iter_mut().map(Vec::as_mut_slice).collect();
                    codec
                        .update_parity(shard_index, &data[shard_index], &new_shard, &mut prefs)
                        .unwrap();
                }

                let mut new_data = data.clone();
                new_data[shard_index] = new_shard;
                let new_refs: Vec<&[u8]> = new_data.iter().map(Vec::as_slice).collect();
                let mut expected = vec![vec![0u8; shard_len]; p];
                {
                    let mut erefs: Vec<&mut [u8]> =
                        expected.iter_mut().map(Vec::as_mut_slice).collect();
                    codec.encode_parity(&new_refs, &mut erefs).unwrap();
                }
                prop_assert_eq!(
                    &parity, &expected,
                    "n={} p={} shard={} len={} kernel={:?} par={}",
                    n, p, shard_index, shard_len, kernel, parallelism
                );

                // Unaligned shard lengths are rejected, same as full encode.
                if shard_len > 0 {
                    let odd_old = vec![0u8; shard_len + 1];
                    let odd_new = vec![1u8; shard_len + 1];
                    let mut odd_parity = vec![vec![0u8; shard_len + 1]; p];
                    let mut oprefs: Vec<&mut [u8]> =
                        odd_parity.iter_mut().map(Vec::as_mut_slice).collect();
                    prop_assert!(matches!(
                        codec.update_parity(shard_index, &odd_old, &odd_new, &mut oprefs),
                        Err(EcError::ShardLength(_))
                    ));
                }
            }
        }
    }

    /// Partial re-encode of any parity-row subset matches the full
    /// encode's rows (the repair path of `reconstruct`).
    #[test]
    fn partial_rows_equal_full_encode_rows(
        data in proptest::collection::vec(any::<u8>(), 1..500),
        keep in proptest::sample::subsequence((0..4usize).collect::<Vec<_>>(), 2),
    ) {
        use std::sync::OnceLock;
        static CODEC: OnceLock<RsCodec> = OnceLock::new();
        let codec = CODEC.get_or_init(|| RsCodec::new(10, 4).unwrap());

        let shards = codec.encode(&data).unwrap();
        let len = shards[0].len();
        let refs: Vec<&[u8]> = shards[..10].iter().map(Vec::as_slice).collect();
        let mut out = vec![vec![0u8; len]; keep.len()];
        {
            let mut orefs: Vec<&mut [u8]> = out.iter_mut().map(Vec::as_mut_slice).collect();
            codec.encode_parity_partial(&refs, &mut orefs, &keep).unwrap();
        }
        for (k, &r) in keep.iter().enumerate() {
            prop_assert_eq!(&out[k], &shards[10 + r], "row {}", r);
        }
    }

    /// For every registered codec family: encode, kill any loss pattern
    /// the codec declares tolerable (it has a repair plan), and both
    /// `reconstruct` and `decode` land back on the original bytes —
    /// shard-exact, not merely data-equal. `repair_sources` is the
    /// recoverability oracle, so LRC's non-MDS patterns are skipped by
    /// the codec's own admission, not by test-side special cases.
    #[test]
    fn registry_reconstruct_restores_any_tolerable_set(
        codec_sel in 0usize..4,
        data in proptest::collection::vec(any::<u8>(), 1..1500),
        lost_seed in proptest::collection::hash_set(0usize..9, 0..=3),
    ) {
        let codec = &*registry_codecs()[codec_sel];
        let t = codec.total_shards();
        let mut lost: Vec<usize> = lost_seed.iter().map(|&i| i % t).collect();
        lost.sort_unstable();
        lost.dedup();
        if codec.repair_sources(&lost).is_err() {
            lost.clear(); // pattern this codec cannot tolerate
        }

        let shards = codec.encode(&data).unwrap();
        let mut rx: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        for &i in &lost {
            rx[i] = None;
        }
        prop_assert_eq!(codec.decode(&rx, data.len()).unwrap(), &data[..]);
        codec.reconstruct(&mut rx).unwrap();
        for (i, s) in rx.iter().enumerate() {
            prop_assert_eq!(s.as_ref().unwrap(), &shards[i], "shard {}", i);
        }
    }

    /// For every registered codec family: the delta path
    /// (`update_parity` over `old ⊕ new`) lands on exactly the parity a
    /// full re-encode of the mutated stripe produces.
    #[test]
    fn registry_update_parity_equals_full_reencode(
        codec_sel in 0usize..4,
        data in proptest::collection::vec(any::<u8>(), 1..1200),
        shard_seed in any::<usize>(),
        xor_mask in 1u8..=255,
    ) {
        let codec = &*registry_codecs()[codec_sel];
        let (n, p) = (codec.data_shards(), codec.parity_shards());
        let idx = shard_seed % n;

        let shards = codec.encode(&data).unwrap();
        let shard_len = shards[0].len();
        let old = shards[idx].clone();
        let mut new = old.clone();
        for b in &mut new {
            *b ^= xor_mask;
        }

        let mut parity: Vec<Vec<u8>> = shards[n..].to_vec();
        {
            let mut prefs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            codec.update_parity(idx, &old, &new, &mut prefs).unwrap();
        }

        let mut mutated: Vec<Vec<u8>> = shards[..n].to_vec();
        mutated[idx] = new;
        let refs: Vec<&[u8]> = mutated.iter().map(Vec::as_slice).collect();
        let all_rows: Vec<usize> = (0..p).collect();
        let mut expected = vec![vec![0u8; shard_len]; p];
        {
            let mut erefs: Vec<&mut [u8]> =
                expected.iter_mut().map(Vec::as_mut_slice).collect();
            codec.encode_parity_partial(&refs, &mut erefs, &all_rows).unwrap();
        }
        prop_assert_eq!(&parity, &expected, "codec {}", codec.spec().name());

        // And the codec agrees with itself: the updated stripe verifies.
        let mut stripe = mutated;
        stripe.extend(parity);
        prop_assert!(codec.verify(&stripe).unwrap());
    }

    #[test]
    fn any_n_shards_suffice(
        data in proptest::collection::vec(any::<u8>(), 64..256),
        keep in proptest::sample::subsequence((0..9usize).collect::<Vec<_>>(), 6),
    ) {
        // RS(6,3): keep exactly 6 of 9 shards, drop the rest.
        use std::sync::OnceLock;
        static CODEC: OnceLock<RsCodec> = OnceLock::new();
        let codec = CODEC.get_or_init(|| RsCodec::new(6, 3).unwrap());
        let shards = codec.encode(&data).unwrap();
        let received: Vec<Option<Vec<u8>>> = (0..9)
            .map(|i| keep.contains(&i).then(|| shards[i].clone()))
            .collect();
        prop_assert_eq!(codec.decode(&received, data.len()).unwrap(), data);
    }
}
