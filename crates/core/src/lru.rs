//! A small bounded least-recently-used map for compiled decode programs.
//!
//! Compiling a decode program runs the whole optimization pipeline, so
//! the cache matters — but the pattern space is `C(n+p, ≤p)`, which for
//! wide codes is far too large to hold unboundedly. This LRU keeps the
//! hot patterns (in practice: the handful of erasure patterns a cluster
//! is currently repairing) and recompiles cold ones on demand.
//!
//! Eviction scans for the oldest stamp, which is O(len); caps are small
//! (default: every single and double erasure), so a linked order list
//! would be more code for no measurable win.

use std::collections::HashMap;
use std::hash::Hash;

pub(crate) struct LruCache<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Create a cache holding at most `cap` entries (clamped to ≥ 1).
    pub fn new(cap: usize) -> LruCache<K, V> {
        LruCache {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Look up `k`, marking it most-recently used.
    pub fn get(&mut self, k: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(k).map(|(stamp, v)| {
            *stamp = tick;
            v.clone()
        })
    }

    /// Insert `k → v`, evicting the least-recently-used entry if full.
    pub fn insert(&mut self, k: K, v: V) {
        self.tick += 1;
        if !self.map.contains_key(&k) && self.map.len() >= self.cap {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(key, _)| key.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(k, (self.tick, v));
    }

    /// True iff `k` is cached, *without* touching recency (a peek, not a
    /// use — eviction tests and introspection must not perturb the order
    /// they are observing).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// The configured capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.cap(), 4);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 1 is now fresher than 2
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_not_evicts() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // update in place; nothing evicted
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn contains_does_not_refresh_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Peeking at 1 must NOT save it from eviction.
        assert!(c.contains(&1));
        c.insert(3, 30); // evicts 1 (oldest by *use*, not by peek)
        assert!(!c.contains(&1));
        assert!(c.contains(&2));
        assert!(c.contains(&3));
    }

    #[test]
    fn zero_cap_clamps_to_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&2), Some(20));
    }
}
