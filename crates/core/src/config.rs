//! Codec configuration.

use gf256::MatrixKind;
use slp_optimizer::OptConfig;
use xor_runtime::Kernel;

/// Full configuration of an [`crate::RsCodec`].
///
/// The defaults reproduce the paper's best setting on its Intel testbed:
/// ISA-L's power coding matrix, `Dfs(Fu(XorRePair(P)))` optimization,
/// 1 KiB blocks (§7.4 picks `B = 1K` on Intel, `B = 2K` on AMD), and the
/// fastest XOR kernel the CPU offers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RsConfig {
    /// Number of data shards `n`.
    pub data_shards: usize,
    /// Number of parity shards `p`.
    pub parity_shards: usize,
    /// Coding-matrix construction (§7.1).
    pub matrix: MatrixKind,
    /// SLP optimization pipeline (§4–§6).
    pub opt: OptConfig,
    /// Blocking parameter `B` in bytes (§6.1, §7.4).
    pub blocksize: usize,
    /// XOR kernel (§7.2's `xor1` vs `xor32`).
    pub kernel: Kernel,
}

impl RsConfig {
    /// The paper's default configuration for an RS(n, p) codec.
    pub fn new(data_shards: usize, parity_shards: usize) -> RsConfig {
        RsConfig {
            data_shards,
            parity_shards,
            matrix: MatrixKind::IsalPower,
            opt: OptConfig::default(),
            blocksize: 1024,
            kernel: Kernel::Auto,
        }
    }

    /// Builder-style matrix override.
    pub fn matrix(mut self, kind: MatrixKind) -> Self {
        self.matrix = kind;
        self
    }

    /// Builder-style optimization override.
    pub fn opt(mut self, opt: OptConfig) -> Self {
        self.opt = opt;
        self
    }

    /// Builder-style blocksize override.
    pub fn blocksize(mut self, blocksize: usize) -> Self {
        self.blocksize = blocksize;
        self
    }

    /// Builder-style kernel override.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = RsConfig::new(10, 4);
        assert_eq!(c.matrix, MatrixKind::IsalPower);
        assert_eq!(c.blocksize, 1024);
        assert_eq!(c.opt, OptConfig::FULL_DFS);
        assert_eq!(c.kernel, Kernel::Auto);
    }

    #[test]
    fn builder_chain() {
        let c = RsConfig::new(6, 3)
            .matrix(MatrixKind::Cauchy)
            .blocksize(2048)
            .kernel(Kernel::Scalar)
            .opt(OptConfig::BASE);
        assert_eq!(c.matrix, MatrixKind::Cauchy);
        assert_eq!(c.blocksize, 2048);
        assert_eq!(c.kernel, Kernel::Scalar);
        assert_eq!(c.opt, OptConfig::BASE);
    }
}
