//! Codec configuration.

use gf256::MatrixKind;
use slp_optimizer::OptConfig;
use xor_runtime::Kernel;

/// Full configuration of an [`crate::RsCodec`].
///
/// The engine knobs (kernel, blocksize, parallelism) default to the
/// machine's **tuned profile**: on first use `ec-tune` micro-benchmarks
/// kernel × blocksize × stripe-count on the actual CPU and caches the
/// winner per machine (§7's tables, made live). Without a profile
/// (`XORSLP_TUNE=off`), the defaults are the paper's Intel testbed
/// setting: ISA-L's power coding matrix, `Dfs(Fu(XorRePair(P)))`
/// optimization, 1 KiB blocks (§7.4 picks `B = 1K` on Intel, `B = 2K`
/// on AMD), and the fastest XOR kernel the CPU offers.
///
/// Precedence, lowest to highest — the profile never overrides anything
/// a human asked for:
///
/// 1. static paper defaults;
/// 2. the tuned profile ([`ec_tune::engine_defaults`]);
/// 3. environment: `XORSLP_KERNEL` (`scalar` | `wide64` | `avx2` |
///    `avx512` | `neon` | `auto`), `XORSLP_BLOCKSIZE` (bytes),
///    `XORSLP_PARALLELISM` (`0` = auto or a worker count) — CI uses
///    these to force the whole suite through each engine configuration;
/// 4. explicit builder calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RsConfig {
    /// Number of data shards `n`.
    pub data_shards: usize,
    /// Number of parity shards `p`.
    pub parity_shards: usize,
    /// Coding-matrix construction (§7.1).
    pub matrix: MatrixKind,
    /// SLP optimization pipeline (§4–§6).
    pub opt: OptConfig,
    /// Blocking parameter `B` in bytes (§6.1, §7.4).
    pub blocksize: usize,
    /// XOR kernel (§7.2's `xor1` vs `xor32`).
    pub kernel: Kernel,
    /// Worker threads for striped execution: `0` = auto (share the
    /// machine-sized global [`xor_runtime::ExecPool`]), `1` = a single
    /// dedicated worker (serial execution, still arena-reusing and
    /// mutex-free), `k > 1` = a dedicated `k`-worker pool.
    pub parallelism: usize,
    /// Capacity of the per-erasure-pattern decode-program LRU cache:
    /// `0` = auto (every empty/single/double erasure pattern fits).
    pub decode_cache_cap: usize,
    /// Capacity of the partial-program LRU cache (per-data-shard column
    /// programs for delta parity updates and parity-row-subset programs
    /// for partial repair): `0` = auto (every column program and every
    /// single-row program fits, `n + p` entries).
    pub partial_cache_cap: usize,
}

impl RsConfig {
    /// The default configuration for an RS(n, p) codec: the machine's
    /// tuned profile, refined by env overrides (see the type docs for
    /// the full precedence chain). The first call on a cold machine runs
    /// the `ec-tune` micro-benchmark once and caches it.
    pub fn new(data_shards: usize, parity_shards: usize) -> RsConfig {
        let tuned = ec_tune::engine_defaults();
        RsConfig {
            data_shards,
            parity_shards,
            matrix: MatrixKind::IsalPower,
            opt: OptConfig::default(),
            blocksize: xor_runtime::env_blocksize().unwrap_or(tuned.blocksize),
            kernel: Kernel::from_env().unwrap_or(tuned.kernel),
            parallelism: xor_runtime::env_parallelism().unwrap_or(tuned.parallelism),
            decode_cache_cap: 0,
            partial_cache_cap: 0,
        }
    }

    /// Builder-style matrix override.
    pub fn matrix(mut self, kind: MatrixKind) -> Self {
        self.matrix = kind;
        self
    }

    /// Builder-style optimization override.
    pub fn opt(mut self, opt: OptConfig) -> Self {
        self.opt = opt;
        self
    }

    /// Builder-style blocksize override.
    pub fn blocksize(mut self, blocksize: usize) -> Self {
        self.blocksize = blocksize;
        self
    }

    /// Builder-style kernel override.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder-style parallelism override (`0` = auto, see the field).
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder-style decode-cache capacity override (`0` = auto).
    pub fn decode_cache_cap(mut self, cap: usize) -> Self {
        self.decode_cache_cap = cap;
        self
    }

    /// Builder-style partial-program cache capacity override (`0` = auto).
    pub fn partial_cache_cap(mut self, cap: usize) -> Self {
        self.partial_cache_cap = cap;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_precedence_chain() {
        let c = RsConfig::new(10, 4);
        assert_eq!(c.matrix, MatrixKind::IsalPower);
        assert_eq!(c.opt, OptConfig::FULL_DFS);
        // Engine knobs mirror profile-then-env precedence exactly (env
        // vars are how CI forces every engine configuration through the
        // suite; the tuned profile fills whatever env leaves unset).
        let tuned = ec_tune::engine_defaults();
        assert_eq!(
            c.blocksize,
            xor_runtime::env_blocksize().unwrap_or(tuned.blocksize)
        );
        assert_eq!(c.kernel, Kernel::from_env().unwrap_or(tuned.kernel));
        assert_eq!(
            c.parallelism,
            xor_runtime::env_parallelism().unwrap_or(tuned.parallelism)
        );
        assert_eq!(c.decode_cache_cap, 0);
        assert_eq!(c.partial_cache_cap, 0);
    }

    #[test]
    fn paper_defaults_hold_when_tuning_is_off() {
        // The static bottom of the precedence chain is still the paper's
        // configuration.
        assert_eq!(ec_tune::EngineDefaults::PAPER.blocksize, 1024);
        assert_eq!(ec_tune::EngineDefaults::PAPER.kernel, Kernel::Auto);
        assert_eq!(ec_tune::EngineDefaults::PAPER.parallelism, 0);
    }

    #[test]
    fn builder_chain() {
        let c = RsConfig::new(6, 3)
            .matrix(MatrixKind::Cauchy)
            .blocksize(2048)
            .kernel(Kernel::Scalar)
            .opt(OptConfig::BASE)
            .parallelism(2)
            .decode_cache_cap(7)
            .partial_cache_cap(5);
        assert_eq!(c.matrix, MatrixKind::Cauchy);
        assert_eq!(c.blocksize, 2048);
        assert_eq!(c.kernel, Kernel::Scalar);
        assert_eq!(c.opt, OptConfig::BASE);
        assert_eq!(c.parallelism, 2);
        assert_eq!(c.decode_cache_cap, 7);
        assert_eq!(c.partial_cache_cap, 5);
    }
}
