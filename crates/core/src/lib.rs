//! `ec-core` — the paper's erasure-coding library: XOR-based Reed–Solomon
//! coding driven by optimized straight-line programs.
//!
//! # How it works
//!
//! Encoding RS(n, p) multiplies the data by a systematic coding matrix over
//! GF(2^8). This crate takes the XOR-based route (§1 of the paper):
//!
//! 1. the coding matrix is expanded to a bit-matrix over F2
//!    ([`bitmatrix`]);
//! 2. the bit-matrix product *is* a straight-line program of array XORs
//!    ([`slp`]);
//! 3. that program is compressed (XorRePair), fused (deforestation) and
//!    scheduled (pebble game) by [`slp_optimizer`];
//! 4. the optimized program is executed blockwise with SIMD XOR kernels by
//!    [`xor_runtime`].
//!
//! Decoding gathers any `n` surviving shards, inverts the corresponding
//! rows of the coding matrix, and runs the same pipeline on the inverse;
//! programs are cached per erasure pattern.
//!
//! # Quick start
//!
//! ```
//! use ec_core::RsCodec;
//!
//! let codec = RsCodec::new(10, 4).unwrap();
//! let data = vec![42u8; 10 * 80]; // any length works; shards are padded
//! let shards = codec.encode(&data).unwrap();
//!
//! // lose any 4 of the 14 shards
//! let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
//! for i in [0, 3, 11, 13] {
//!     received[i] = None;
//! }
//! let restored = codec.decode(&received, data.len()).unwrap();
//! assert_eq!(restored, data);
//! ```
//!
//! # Shard layout
//!
//! Each shard is striped into `w = 8` equal *packets*; bit `t` of packets
//! `0..8` of a shard forms one GF(2^8) symbol (the Blömer et al.
//! construction). Parity produced this way is self-consistent — encode →
//! erase → decode always restores the original bytes — but its raw bytes
//! are a bit-permutation of what a byte-oriented GF codec (e.g. ISA-L)
//! would store; this is inherent to XOR-based EC, not a quirk of this
//! implementation. A deliberately slow bit-sliced GF oracle in the test
//! suite pins the exact correspondence down.

mod codec;
mod coder;
mod config;
mod error;
mod layout;
mod lrc;
mod lru;

pub use codec::RsCodec;
pub use coder::{codec_for, codec_for_with, codec_names, CodecId, CodecSpec, ErasureCoder};
pub use config::RsConfig;
pub use error::EcError;
pub use lrc::LrcCodec;
pub use gf256::MatrixKind;
pub use slp_optimizer::{Compression, OptConfig, Scheduling};
pub use xor_runtime::Kernel;

#[cfg(test)]
mod reference;
#[cfg(test)]
mod proptests;
