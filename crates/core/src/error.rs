//! Error type of the codec.

use std::fmt;
use xor_runtime::ExecError;

/// Everything that can go wrong when constructing or using a codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EcError {
    /// Invalid `(n, p)` parameters.
    InvalidParams(String),
    /// Wrong number of shards passed to an operation.
    ShardCount { expected: usize, got: usize },
    /// Shards have inconsistent or invalid lengths.
    ShardLength(String),
    /// More shards are missing than the parity count can repair.
    TooManyErasures { missing: usize, parity: usize },
    /// The erasure pattern contains no data shards, so there is nothing
    /// to decode (parity-only loss is repaired by re-encoding, not by a
    /// decode program). A typed variant so callers can tell "nothing to
    /// do" apart from caller error.
    NoDataLost,
    /// The survivor submatrix is singular — the erasure pattern is not
    /// recoverable under this code (for RS, switch to
    /// `MatrixKind::Cauchy`; for a non-MDS code such as LRC, the pattern
    /// simply exceeds the construction's guarantees).
    SingularPattern { lost: Vec<usize> },
    /// A codec name or wire ID that no registered codec answers to, or a
    /// spec whose parameters the named codec cannot satisfy.
    UnknownCodec(String),
    /// A repair-plan source shard that [`crate::ErasureCoder::repair_sources`]
    /// requires was not provided to
    /// [`crate::ErasureCoder::reconstruct_subset`].
    MissingSource { shard: usize },
    /// Executor-level failure (bubbled up; indicates a bug if it ever
    /// escapes this crate).
    Exec(ExecError),
}

impl fmt::Display for EcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcError::InvalidParams(msg) => write!(f, "invalid codec parameters: {msg}"),
            EcError::ShardCount { expected, got } => {
                write!(f, "expected {expected} shards, got {got}")
            }
            EcError::ShardLength(msg) => write!(f, "bad shard length: {msg}"),
            EcError::TooManyErasures { missing, parity } => write!(
                f,
                "{missing} shards missing but only {parity} parity shards available"
            ),
            EcError::NoDataLost => write!(
                f,
                "no data shards lost; decoding is a no-op (re-encode to repair parity)"
            ),
            EcError::SingularPattern { lost } => write!(
                f,
                "coding matrix is singular for erasure pattern {lost:?}; \
                 use MatrixKind::Cauchy for a guaranteed-MDS matrix"
            ),
            EcError::UnknownCodec(msg) => write!(f, "unknown codec: {msg}"),
            EcError::MissingSource { shard } => write!(
                f,
                "repair-plan source shard {shard} was not provided"
            ),
            EcError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for EcError {}

impl From<ExecError> for EcError {
    fn from(e: ExecError) -> Self {
        EcError::Exec(e)
    }
}
