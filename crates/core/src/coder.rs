//! The pluggable-codec boundary: an object-safe [`ErasureCoder`] trait
//! over the full surface the upper layers (ec-stream, ec-store, CLIs)
//! use, a self-describing [`CodecSpec`] that travels in archive headers
//! and store manifests, and the [`codec_for`] registry that resolves a
//! spec into a boxed codec.
//!
//! The paper's point — any XOR-able generator matrix rides the same
//! SLP compile/optimize/execute pipeline — is what makes this boundary
//! cheap: every implementation below ([`RsCodec`], [`LrcCodec`],
//! [`ArrayCodec`]) shares the engine; the trait only abstracts geometry
//! and program selection.

use crate::codec::RsCodec;
use crate::config::RsConfig;
use crate::error::EcError;
use crate::lrc::LrcCodec;
use array_codes::{ArrayCodec, ArrayCodecError};

/// Wire identity of a registered codec family.
///
/// The `u16` values are **stable on-disk identifiers** (archive header
/// v2, store manifest v2) — never renumber them. `0` is reserved as
/// "absent" so a zero-filled v1 field can never alias a real codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CodecId {
    /// Systematic Reed–Solomon over GF(2^8) (the paper's codec).
    Rs,
    /// EVENODD two-parity array code.
    EvenOdd,
    /// RDP two-parity array code.
    Rdp,
    /// Locally-repairable code: per-group XOR parity + global RS rows.
    Lrc,
}

impl CodecId {
    /// The stable on-disk identifier.
    pub fn wire(self) -> u16 {
        match self {
            CodecId::Rs => 1,
            CodecId::EvenOdd => 2,
            CodecId::Rdp => 3,
            CodecId::Lrc => 4,
        }
    }

    /// Inverse of [`CodecId::wire`].
    pub fn from_wire(v: u16) -> Result<CodecId, EcError> {
        match v {
            1 => Ok(CodecId::Rs),
            2 => Ok(CodecId::EvenOdd),
            3 => Ok(CodecId::Rdp),
            4 => Ok(CodecId::Lrc),
            other => Err(EcError::UnknownCodec(format!("wire id {other}"))),
        }
    }

    /// The registry name (what `--codec` accepts).
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Rs => "rs",
            CodecId::EvenOdd => "evenodd",
            CodecId::Rdp => "rdp",
            CodecId::Lrc => "lrc",
        }
    }
}

/// Everything needed to reconstruct a codec from a self-describing
/// artifact: the family, the geometry, and the family's parameters.
///
/// Equality is exact — two specs describe interchangeable codecs iff
/// they are `==` — which is what geometry checks compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CodecSpec {
    /// Codec family.
    pub id: CodecId,
    /// Number of data shards `n`.
    pub data_shards: usize,
    /// Number of parity shards `p` (for LRC: locals + globals).
    pub parity_shards: usize,
    /// LRC locality-group size `r`; `0` for every other family.
    pub group_size: usize,
}

impl CodecSpec {
    /// Spec of the default RS(n, p) codec.
    pub fn rs(data_shards: usize, parity_shards: usize) -> CodecSpec {
        CodecSpec { id: CodecId::Rs, data_shards, parity_shards, group_size: 0 }
    }

    /// Spec of an LRC(n, r) with `parity_shards` total parity rows
    /// (`n/r` locals + the rest global).
    pub fn lrc(data_shards: usize, parity_shards: usize, group_size: usize) -> CodecSpec {
        CodecSpec { id: CodecId::Lrc, data_shards, parity_shards, group_size }
    }

    /// Parse a `--codec` name against a target geometry. Accepted names:
    /// `rs`, `evenodd`, `rdp`, `lrc` (group size `n/2`), `lrc:<r>`.
    pub fn parse(name: &str, data_shards: usize, parity_shards: usize) -> Result<CodecSpec, EcError> {
        let (n, p) = (data_shards, parity_shards);
        let spec = match name {
            "rs" => CodecSpec::rs(n, p),
            "evenodd" => CodecSpec { id: CodecId::EvenOdd, data_shards: n, parity_shards: p, group_size: 0 },
            "rdp" => CodecSpec { id: CodecId::Rdp, data_shards: n, parity_shards: p, group_size: 0 },
            "lrc" => {
                if n == 0 || n % 2 != 0 {
                    return Err(EcError::InvalidParams(format!(
                        "lrc without an explicit group size splits the data in \
                         half, which needs an even shard count (got n = {n}); \
                         use lrc:<r>"
                    )));
                }
                CodecSpec::lrc(n, p, n / 2)
            }
            other => {
                if let Some(r) = other.strip_prefix("lrc:") {
                    let r: usize = r.parse().map_err(|_| {
                        EcError::UnknownCodec(format!("bad lrc group size in `{other}`"))
                    })?;
                    CodecSpec::lrc(n, p, r)
                } else {
                    return Err(EcError::UnknownCodec(format!(
                        "`{other}` (known: rs, evenodd, rdp, lrc, lrc:<r>)"
                    )));
                }
            }
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Rebuild a spec from its on-disk form (wire id + group size +
    /// geometry), validating it describes a constructible codec.
    pub fn from_wire(
        wire_id: u16,
        group_size: u16,
        data_shards: usize,
        parity_shards: usize,
    ) -> Result<CodecSpec, EcError> {
        let spec = CodecSpec {
            id: CodecId::from_wire(wire_id)?,
            data_shards,
            parity_shards,
            group_size: group_size as usize,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Display / CLI name: `rs`, `evenodd`, `rdp`, or `lrc:<r>`.
    pub fn name(&self) -> String {
        match self.id {
            CodecId::Lrc => format!("lrc:{}", self.group_size),
            other => other.name().to_string(),
        }
    }

    /// Shard lengths of this codec are multiples of this alignment:
    /// 8 packets for the GF(2^8) codecs, `w = prime − 1` symbols for the
    /// array codes.
    pub fn shard_alignment(&self) -> Result<usize, EcError> {
        self.validate()?;
        Ok(match self.id {
            CodecId::Rs | CodecId::Lrc => crate::layout::PACKETS_PER_SHARD,
            CodecId::EvenOdd => {
                array_codes::next_prime(self.data_shards.max(3)) - 1
            }
            CodecId::Rdp => {
                array_codes::next_prime((self.data_shards + 1).max(3)) - 1
            }
        })
    }

    /// Check the spec describes a constructible codec without paying for
    /// SLP compilation (cheap enough for header validation).
    pub fn validate(&self) -> Result<(), EcError> {
        let (n, p) = (self.data_shards, self.parity_shards);
        if n == 0 || p == 0 {
            return Err(EcError::InvalidParams(
                "need at least one data and one parity shard".into(),
            ));
        }
        match self.id {
            CodecId::Rs | CodecId::Lrc => {
                if n + p > 255 {
                    return Err(EcError::InvalidParams(format!(
                        "n + p = {} exceeds the GF(2^8) limit of 255",
                        n + p
                    )));
                }
            }
            CodecId::EvenOdd | CodecId::Rdp => {
                if p != 2 {
                    return Err(EcError::InvalidParams(format!(
                        "{} is a two-parity array code, got p = {p}",
                        self.id.name()
                    )));
                }
            }
        }
        match self.id {
            CodecId::Lrc => {
                let r = self.group_size;
                if r < 2 || r > n || n % r != 0 || p <= n / r {
                    return Err(EcError::InvalidParams(format!(
                        "invalid LRC geometry: n = {n}, p = {p}, r = {r} \
                         (need r | n, 2 ≤ r ≤ n, p > n/r)"
                    )));
                }
            }
            _ => {
                if self.group_size != 0 {
                    return Err(EcError::InvalidParams(format!(
                        "codec {} takes no group size, got {}",
                        self.id.name(),
                        self.group_size
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The names [`CodecSpec::parse`] accepts (CLI help / matrix drivers).
pub fn codec_names() -> &'static [&'static str] {
    &["rs", "evenodd", "rdp", "lrc"]
}

/// Resolve a spec into a boxed codec with the default engine
/// configuration (env-tunable kernel/parallelism).
pub fn codec_for(spec: &CodecSpec) -> Result<Box<dyn ErasureCoder>, EcError> {
    codec_for_with(spec, RsConfig::new(spec.data_shards, spec.parity_shards))
}

/// Resolve a spec into a boxed codec, carrying the engine knobs
/// (optimization, blocksize, kernel, parallelism, cache caps) from
/// `cfg`; the geometry always comes from the spec.
pub fn codec_for_with(
    spec: &CodecSpec,
    cfg: RsConfig,
) -> Result<Box<dyn ErasureCoder>, EcError> {
    spec.validate()?;
    let mut cfg = cfg;
    cfg.data_shards = spec.data_shards;
    cfg.parity_shards = spec.parity_shards;
    Ok(match spec.id {
        CodecId::Rs => Box::new(RsCodec::with_config(cfg)?),
        CodecId::Lrc => Box::new(LrcCodec::with_config(cfg, spec.group_size)?),
        CodecId::EvenOdd => Box::new(
            ArrayCodec::evenodd(spec.data_shards).with_parallelism(cfg.parallelism),
        ),
        CodecId::Rdp => Box::new(
            ArrayCodec::rdp(spec.data_shards).with_parallelism(cfg.parallelism),
        ),
    })
}

/// The full codec surface the upper layers use, object-safe so archives
/// and clusters hold a `Box<dyn ErasureCoder>` resolved from the
/// artifact's own [`CodecSpec`].
///
/// Geometry contract shared by every implementation: `total_shards()`
/// shard buffers, shard lengths equal and a multiple of
/// [`ErasureCoder::shard_alignment`], data split row-major by
/// [`ErasureCoder::split_data`].
pub trait ErasureCoder: Send + Sync {
    /// The self-describing identity of this codec.
    fn spec(&self) -> CodecSpec;

    /// Number of data shards `n`.
    fn data_shards(&self) -> usize;

    /// Number of parity shards `p`.
    fn parity_shards(&self) -> usize;

    /// Total shards `n + p`.
    fn total_shards(&self) -> usize {
        self.data_shards() + self.parity_shards()
    }

    /// Whether the code is MDS: *any* `n` of the `n + p` shards decode.
    /// Readers that stop at the first `n` arrivals (hedged/first-n
    /// reads) may only do so under an MDS code; a non-MDS codec (LRC)
    /// must wait for a set it can actually decode. Defaults to `true` —
    /// RS and the array codes are MDS by construction.
    fn is_mds(&self) -> bool {
        true
    }

    /// Shard lengths must be multiples of this.
    fn shard_alignment(&self) -> usize;

    /// The shard length produced for `data_len` bytes of input.
    fn shard_len(&self, data_len: usize) -> usize;

    /// Split `data` into the `n` padded data shards (no parity).
    fn split_data(&self, data: &[u8]) -> Vec<Vec<u8>>;

    /// Encode into freshly allocated shards.
    fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, EcError>;

    /// Encode into caller-owned shard buffers (resized as needed).
    fn encode_into(&self, data: &[u8], shards: &mut [Vec<u8>]) -> Result<(), EcError>;

    /// Recover the original `data_len` bytes from surviving shards.
    fn decode(
        &self,
        shards: &[Option<Vec<u8>>],
        data_len: usize,
    ) -> Result<Vec<u8>, EcError>;

    /// Rebuild every missing (`None`) shard in place.
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError>;

    /// Rebuild exactly `targets`, reading only the shards
    /// [`ErasureCoder::repair_sources`] names; other `None` entries are
    /// unavailable-not-wanted. Errors with [`EcError::MissingSource`]
    /// when a required source is absent.
    fn reconstruct_subset(
        &self,
        shards: &mut [Option<Vec<u8>>],
        targets: &[usize],
    ) -> Result<(), EcError>;

    /// The surviving shard indices a repair of `lost` must read. For a
    /// locality-aware codec this is where single-loss repairs shrink to
    /// the local group.
    fn repair_sources(&self, lost: &[usize]) -> Result<Vec<usize>, EcError>;

    /// Delta parity update after one data shard changes from `old` to
    /// `new`; all `p` parity shards are updated in place.
    fn update_parity(
        &self,
        shard_index: usize,
        old: &[u8],
        new: &[u8],
        parity: &mut [&mut [u8]],
    ) -> Result<(), EcError>;

    /// Re-encode a strict subset of parity shards from complete data
    /// (`rows` 0-based within the parity block, strictly increasing).
    fn encode_parity_partial(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        rows: &[usize],
    ) -> Result<(), EcError>;

    /// Check parity consistency against the data shards.
    fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, EcError>;

    /// XOR count of the full encode program (metrics).
    fn encode_xor_count(&self) -> usize;

    /// XOR count of one data shard's delta-update program (metrics).
    fn update_xor_count(&self, shard_index: usize) -> Result<usize, EcError>;

    /// Number of decode programs currently cached (metrics; a repair
    /// path that claims to use a cached local program can prove it
    /// here).
    fn decode_cache_len(&self) -> usize;

    /// Number of partial (delta/row-subset) programs cached (metrics).
    fn partial_cache_len(&self) -> usize;
}

impl ErasureCoder for RsCodec {
    fn spec(&self) -> CodecSpec {
        CodecSpec::rs(self.data_shards(), self.parity_shards())
    }

    fn data_shards(&self) -> usize {
        RsCodec::data_shards(self)
    }

    fn parity_shards(&self) -> usize {
        RsCodec::parity_shards(self)
    }

    fn shard_alignment(&self) -> usize {
        crate::layout::PACKETS_PER_SHARD
    }

    fn shard_len(&self, data_len: usize) -> usize {
        RsCodec::shard_len(self, data_len)
    }

    fn split_data(&self, data: &[u8]) -> Vec<Vec<u8>> {
        RsCodec::split_data(self, data)
    }

    fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, EcError> {
        RsCodec::encode(self, data)
    }

    fn encode_into(&self, data: &[u8], shards: &mut [Vec<u8>]) -> Result<(), EcError> {
        RsCodec::encode_into(self, data, shards)
    }

    fn decode(
        &self,
        shards: &[Option<Vec<u8>>],
        data_len: usize,
    ) -> Result<Vec<u8>, EcError> {
        RsCodec::decode(self, shards, data_len)
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        RsCodec::reconstruct(self, shards)
    }

    fn reconstruct_subset(
        &self,
        shards: &mut [Option<Vec<u8>>],
        targets: &[usize],
    ) -> Result<(), EcError> {
        RsCodec::reconstruct_subset(self, shards, targets)
    }

    fn repair_sources(&self, lost: &[usize]) -> Result<Vec<usize>, EcError> {
        RsCodec::repair_sources(self, lost)
    }

    fn update_parity(
        &self,
        shard_index: usize,
        old: &[u8],
        new: &[u8],
        parity: &mut [&mut [u8]],
    ) -> Result<(), EcError> {
        RsCodec::update_parity(self, shard_index, old, new, parity)
    }

    fn encode_parity_partial(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        rows: &[usize],
    ) -> Result<(), EcError> {
        RsCodec::encode_parity_partial(self, data, parity, rows)
    }

    fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, EcError> {
        RsCodec::verify(self, shards)
    }

    fn encode_xor_count(&self) -> usize {
        self.encode_slp().xor_count()
    }

    fn update_xor_count(&self, shard_index: usize) -> Result<usize, EcError> {
        Ok(self.update_slp(shard_index)?.xor_count())
    }

    fn decode_cache_len(&self) -> usize {
        RsCodec::decode_cache_len(self)
    }

    fn partial_cache_len(&self) -> usize {
        RsCodec::partial_cache_len(self)
    }
}

impl ErasureCoder for LrcCodec {
    fn spec(&self) -> CodecSpec {
        CodecSpec::lrc(
            RsCodec::data_shards(self),
            RsCodec::parity_shards(self),
            self.group_size(),
        )
    }

    /// LRC trades MDS-ness for cheap local repair: some ≤ `p` loss
    /// patterns are unrecoverable, so "any `n` arrivals" is not a
    /// decodable set and first-n readers must not stop early.
    fn is_mds(&self) -> bool {
        false
    }

    fn data_shards(&self) -> usize {
        RsCodec::data_shards(self)
    }

    fn parity_shards(&self) -> usize {
        RsCodec::parity_shards(self)
    }

    fn shard_alignment(&self) -> usize {
        crate::layout::PACKETS_PER_SHARD
    }

    fn shard_len(&self, data_len: usize) -> usize {
        RsCodec::shard_len(self, data_len)
    }

    fn split_data(&self, data: &[u8]) -> Vec<Vec<u8>> {
        RsCodec::split_data(self, data)
    }

    fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, EcError> {
        RsCodec::encode(self, data)
    }

    fn encode_into(&self, data: &[u8], shards: &mut [Vec<u8>]) -> Result<(), EcError> {
        RsCodec::encode_into(self, data, shards)
    }

    fn decode(
        &self,
        shards: &[Option<Vec<u8>>],
        data_len: usize,
    ) -> Result<Vec<u8>, EcError> {
        RsCodec::decode(self, shards, data_len)
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        RsCodec::reconstruct(self, shards)
    }

    fn reconstruct_subset(
        &self,
        shards: &mut [Option<Vec<u8>>],
        targets: &[usize],
    ) -> Result<(), EcError> {
        RsCodec::reconstruct_subset(self, shards, targets)
    }

    fn repair_sources(&self, lost: &[usize]) -> Result<Vec<usize>, EcError> {
        RsCodec::repair_sources(self, lost)
    }

    fn update_parity(
        &self,
        shard_index: usize,
        old: &[u8],
        new: &[u8],
        parity: &mut [&mut [u8]],
    ) -> Result<(), EcError> {
        RsCodec::update_parity(self, shard_index, old, new, parity)
    }

    fn encode_parity_partial(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        rows: &[usize],
    ) -> Result<(), EcError> {
        RsCodec::encode_parity_partial(self, data, parity, rows)
    }

    fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, EcError> {
        RsCodec::verify(self, shards)
    }

    fn encode_xor_count(&self) -> usize {
        self.encode_slp().xor_count()
    }

    fn update_xor_count(&self, shard_index: usize) -> Result<usize, EcError> {
        Ok(self.update_slp(shard_index)?.xor_count())
    }

    fn decode_cache_len(&self) -> usize {
        RsCodec::decode_cache_len(self)
    }

    fn partial_cache_len(&self) -> usize {
        RsCodec::partial_cache_len(self)
    }
}

/// [`ArrayCodecError`] → [`EcError`], preserving the typed shape the
/// upper layers branch on.
fn map_array(e: ArrayCodecError) -> EcError {
    match e {
        ArrayCodecError::Shards(m) => EcError::ShardLength(m),
        ArrayCodecError::TooManyErasures { missing } => {
            EcError::TooManyErasures { missing, parity: 2 }
        }
        ArrayCodecError::Unsolvable { lost } => EcError::SingularPattern { lost },
        ArrayCodecError::MissingSource { shard } => EcError::MissingSource { shard },
    }
}

impl ErasureCoder for ArrayCodec {
    fn spec(&self) -> CodecSpec {
        CodecSpec {
            id: if self.is_evenodd() { CodecId::EvenOdd } else { CodecId::Rdp },
            data_shards: self.data_shards(),
            parity_shards: 2,
            group_size: 0,
        }
    }

    fn data_shards(&self) -> usize {
        ArrayCodec::data_shards(self)
    }

    fn parity_shards(&self) -> usize {
        ArrayCodec::parity_shards(self)
    }

    fn shard_alignment(&self) -> usize {
        self.symbols_per_shard()
    }

    fn shard_len(&self, data_len: usize) -> usize {
        ArrayCodec::shard_len(self, data_len)
    }

    fn split_data(&self, data: &[u8]) -> Vec<Vec<u8>> {
        ArrayCodec::split_data(self, data)
    }

    fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, EcError> {
        ArrayCodec::encode(self, data).map_err(map_array)
    }

    fn encode_into(&self, data: &[u8], shards: &mut [Vec<u8>]) -> Result<(), EcError> {
        ArrayCodec::encode_into(self, data, shards).map_err(map_array)
    }

    fn decode(
        &self,
        shards: &[Option<Vec<u8>>],
        data_len: usize,
    ) -> Result<Vec<u8>, EcError> {
        ArrayCodec::decode(self, shards, data_len).map_err(map_array)
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        ArrayCodec::reconstruct(self, shards).map_err(map_array)
    }

    fn reconstruct_subset(
        &self,
        shards: &mut [Option<Vec<u8>>],
        targets: &[usize],
    ) -> Result<(), EcError> {
        ArrayCodec::reconstruct_subset(self, shards, targets).map_err(map_array)
    }

    fn repair_sources(&self, lost: &[usize]) -> Result<Vec<usize>, EcError> {
        ArrayCodec::repair_sources(self, lost).map_err(map_array)
    }

    fn update_parity(
        &self,
        shard_index: usize,
        old: &[u8],
        new: &[u8],
        parity: &mut [&mut [u8]],
    ) -> Result<(), EcError> {
        ArrayCodec::update_parity(self, shard_index, old, new, parity).map_err(map_array)
    }

    fn encode_parity_partial(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        rows: &[usize],
    ) -> Result<(), EcError> {
        ArrayCodec::encode_parity_partial(self, data, parity, rows).map_err(map_array)
    }

    fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, EcError> {
        ArrayCodec::verify(self, shards).map_err(map_array)
    }

    fn encode_xor_count(&self) -> usize {
        self.encode_slp().xor_count()
    }

    fn update_xor_count(&self, shard_index: usize) -> Result<usize, EcError> {
        Ok(self.update_slp(shard_index).map_err(map_array)?.xor_count())
    }

    fn decode_cache_len(&self) -> usize {
        ArrayCodec::decode_cache_len(self)
    }

    fn partial_cache_len(&self) -> usize {
        ArrayCodec::partial_cache_len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for (name, n, p) in [("rs", 10, 4), ("evenodd", 5, 2), ("rdp", 4, 2), ("lrc:5", 10, 4)] {
            let spec = CodecSpec::parse(name, n, p).unwrap();
            assert_eq!(spec.name(), name, "name round-trip");
            assert_eq!(
                CodecSpec::from_wire(spec.id.wire(), spec.group_size as u16, n, p).unwrap(),
                spec,
                "wire round-trip"
            );
        }
        // Bare `lrc` defaults to groups of n/2.
        let spec = CodecSpec::parse("lrc", 10, 3).unwrap();
        assert_eq!(spec.group_size, 5);
        assert_eq!(spec.name(), "lrc:5");
    }

    #[test]
    fn unknown_and_invalid_specs_are_typed() {
        assert!(matches!(
            CodecSpec::parse("reed-solomon", 10, 4),
            Err(EcError::UnknownCodec(_))
        ));
        assert!(matches!(
            CodecSpec::parse("lrc:x", 10, 4),
            Err(EcError::UnknownCodec(_))
        ));
        assert!(matches!(
            CodecId::from_wire(0),
            Err(EcError::UnknownCodec(_))
        ));
        assert!(matches!(
            CodecId::from_wire(999),
            Err(EcError::UnknownCodec(_))
        ));
        // Structurally known but unconstructible.
        assert!(matches!(
            CodecSpec::parse("evenodd", 5, 3),
            Err(EcError::InvalidParams(_))
        ));
        assert!(matches!(
            CodecSpec::parse("lrc:3", 10, 4),
            Err(EcError::InvalidParams(_))
        ));
        assert!(matches!(
            CodecSpec::parse("lrc", 9, 4),
            Err(EcError::InvalidParams(_))
        ));
        assert!(matches!(
            CodecSpec::from_wire(1, 5, 10, 4),
            Err(EcError::InvalidParams(_))
        ));
    }

    #[test]
    fn registry_resolves_every_family() {
        for (name, n, p) in [("rs", 6, 3), ("evenodd", 5, 2), ("rdp", 4, 2), ("lrc:3", 6, 3)] {
            let spec = CodecSpec::parse(name, n, p).unwrap();
            let codec = codec_for(&spec).unwrap();
            assert_eq!(codec.data_shards(), n, "{name}");
            assert_eq!(codec.parity_shards(), p, "{name}");
            assert_eq!(codec.spec(), spec, "{name}: spec must round-trip");

            let data: Vec<u8> = (0..n * 64).map(|i| (i * 31 + 7) as u8).collect();
            let shards = codec.encode(&data).unwrap();
            assert_eq!(shards.len(), n + p);
            assert!(shards[0].len().is_multiple_of(codec.shard_alignment()));
            assert!(codec.verify(&shards).unwrap());
            let mut rx: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            rx[0] = None;
            rx[n] = None;
            assert_eq!(codec.decode(&rx, data.len()).unwrap(), data, "{name}");
            codec.reconstruct(&mut rx).unwrap();
            assert!(codec
                .verify(&rx.iter().map(|s| s.clone().unwrap()).collect::<Vec<_>>())
                .unwrap());
        }
    }

    #[test]
    fn codec_for_with_carries_engine_knobs() {
        let spec = CodecSpec::parse("rs", 4, 2).unwrap();
        // Geometry always comes from the spec, even if cfg disagrees.
        let cfg = RsConfig::new(9, 9).parallelism(1);
        let codec = codec_for_with(&spec, cfg).unwrap();
        assert_eq!(codec.data_shards(), 4);
        assert_eq!(codec.parity_shards(), 2);
    }
}
