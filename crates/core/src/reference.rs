//! A deliberately slow, bit-sliced GF(2^8) reference codec used only in
//! tests.
//!
//! In the striped layout, bit `t` of packets `0..8` of a shard is one
//! GF(2^8) symbol. This oracle extracts every symbol bit by bit, performs
//! the coding-matrix multiplication with table-driven field arithmetic
//! (`gf256`), and reassembles parity packets — no XOR programs, no
//! bit-matrices, no SIMD. Agreement with [`crate::RsCodec`] ties the whole
//! SLP pipeline to the field-arithmetic definition of Reed–Solomon.

use gf256::{Gf, GfMatrix};

/// Read bit `t` of a packet (LSB-first within each byte).
fn get_bit(packet: &[u8], t: usize) -> bool {
    packet[t / 8] >> (t % 8) & 1 == 1
}

/// Set bit `t` of a packet.
fn set_bit(packet: &mut [u8], t: usize, v: bool) {
    if v {
        packet[t / 8] |= 1 << (t % 8);
    } else {
        packet[t / 8] &= !(1 << (t % 8));
    }
}

/// Compute parity shards from data shards by symbol-wise GF arithmetic in
/// the bit-sliced domain.
///
/// `matrix` is the full systematic `(n+p) × n` coding matrix.
pub fn parity_bitsliced(matrix: &GfMatrix, data: &[&[u8]]) -> Vec<Vec<u8>> {
    let n = data.len();
    assert_eq!(matrix.cols(), n);
    let p = matrix.rows() - n;
    let shard_len = data[0].len();
    assert!(data.iter().all(|s| s.len() == shard_len));
    assert_eq!(shard_len % 8, 0);
    let packet_len = shard_len / 8;
    let n_symbols = packet_len * 8; // one symbol per bit position

    let data_packets: Vec<Vec<&[u8]>> = data
        .iter()
        .map(|s| s.chunks_exact(packet_len.max(1)).collect())
        .collect();

    let mut parity = vec![vec![0u8; shard_len]; p];
    if packet_len == 0 {
        return parity;
    }
    for t in 0..n_symbols {
        // Extract the n data symbols at bit position t.
        let symbols: Vec<Gf> = (0..n)
            .map(|i| {
                let mut byte = 0u8;
                for (b, packet) in data_packets[i].iter().enumerate() {
                    if get_bit(packet, t) {
                        byte |= 1 << b;
                    }
                }
                Gf(byte)
            })
            .collect();
        // Multiply by each parity row and scatter the result bits.
        for (r, out) in parity.iter_mut().enumerate() {
            let sym: Gf = matrix
                .row(n + r)
                .iter()
                .zip(&symbols)
                .fold(Gf::ZERO, |acc, (&c, &s)| acc + c * s);
            for b in 0..8 {
                let lo = b * packet_len;
                let packet = &mut out[lo..lo + packet_len];
                set_bit(packet, t, sym.0 >> b & 1 == 1);
            }
        }
    }
    parity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptConfig, RsCodec, RsConfig};

    fn sample(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(37) ^ seed).collect()
    }

    #[test]
    fn xor_codec_equals_bitsliced_gf_codec() {
        // The decisive cross-validation: the optimized XOR pipeline and
        // symbol-wise field arithmetic produce identical parity bytes.
        for (n, p) in [(3usize, 2usize), (4, 2), (10, 4)] {
            let codec = RsCodec::new(n, p).unwrap();
            let shard_len = 48;
            let data: Vec<Vec<u8>> =
                (0..n).map(|i| sample(shard_len, i as u8)).collect();
            let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();

            let expect = parity_bitsliced(codec.encode_matrix(), &data_refs);

            let mut parity = vec![vec![0u8; shard_len]; p];
            {
                let mut refs: Vec<&mut [u8]> =
                    parity.iter_mut().map(Vec::as_mut_slice).collect();
                codec.encode_parity(&data_refs, &mut refs).unwrap();
            }
            assert_eq!(parity, expect, "RS({n},{p})");
        }
    }

    #[test]
    fn oracle_agrees_across_optimization_levels() {
        let n = 6;
        let shard_len = 64;
        let data: Vec<Vec<u8>> = (0..n).map(|i| sample(shard_len, 100 + i as u8)).collect();
        let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        for opt in [OptConfig::BASE, OptConfig::FULL_DFS] {
            let codec =
                RsCodec::with_config(RsConfig::new(n, 3).opt(opt).blocksize(16)).unwrap();
            let expect = parity_bitsliced(codec.encode_matrix(), &data_refs);
            let mut parity = vec![vec![0u8; shard_len]; 3];
            {
                let mut refs: Vec<&mut [u8]> =
                    parity.iter_mut().map(Vec::as_mut_slice).collect();
                codec.encode_parity(&data_refs, &mut refs).unwrap();
            }
            assert_eq!(parity, expect, "{opt:?}");
        }
    }
}
