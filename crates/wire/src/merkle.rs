//! Binary Merkle trees over per-chunk leaf hashes — the damage
//! *localization* structure of the integrity subsystem.
//!
//! A shard's payload is cut into fixed-size chunks; each chunk's
//! [`leaf_hash`] becomes a leaf, interior nodes combine children with
//! [`node_hash`], and the root commits to every byte of the shard.
//! Comparing two roots answers "identical?" in 32 bytes; walking down
//! the mismatching interior nodes ([`MerkleTree::diff`], or level by
//! level over the wire via [`MerkleTree::level`]) localizes damage to
//! exact chunk indices in O(damaged · log chunks) comparisons instead
//! of a full re-read.
//!
//! Domain separation: leaves hash `0x00 ‖ data`, interior nodes
//! `0x01 ‖ left ‖ right`, and the empty tree is the constant
//! `sha256(0x02)` — so a leaf can never be reinterpreted as an interior
//! node (second-preimage shapeshifting) and an empty shard has a
//! well-defined root. A level with an odd node count promotes its last
//! node unchanged (no sibling duplication, which would let two
//! different leaf sets share a root).

use crate::sha256::{sha256, Sha256, SHA256_LEN};

/// A 32-byte SHA-256 Merkle hash (leaf, interior node, or root).
pub type Hash = [u8; SHA256_LEN];

/// Hash of a leaf chunk: `sha256(0x00 ‖ data)`.
pub fn leaf_hash(data: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finish()
}

/// Hash of an interior node: `sha256(0x01 ‖ left ‖ right)`.
pub fn node_hash(left: &Hash, right: &Hash) -> Hash {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finish()
}

/// Root of the zero-leaf tree: `sha256(0x02)`.
pub fn empty_root() -> Hash {
    sha256(&[0x02])
}

/// Leaf count of a payload of `len` bytes cut at `leaf_size`.
pub fn leaf_count(len: u64, leaf_size: u64) -> u64 {
    assert!(leaf_size > 0, "leaf size must be positive");
    len.div_ceil(leaf_size)
}

/// The leaf hashes of a payload cut into `leaf_size` chunks (the final
/// chunk may be short). An empty payload has no leaves.
pub fn payload_leaves(data: &[u8], leaf_size: usize) -> Vec<Hash> {
    assert!(leaf_size > 0, "leaf size must be positive");
    data.chunks(leaf_size).map(leaf_hash).collect()
}

/// The *object root*: a Merkle root over per-shard roots, each treated
/// as an already-hashed leaf. One definition shared by the archive
/// trailer and the store manifest, so the two integrity layers name the
/// same 32 bytes for the same object.
pub fn root_over_roots(roots: &[Hash]) -> Hash {
    MerkleTree::from_leaves(roots.to_vec()).root()
}

/// A materialized Merkle tree: every level, leaves first, root last.
///
/// Level `0` is the leaf level; level `height()` holds exactly the
/// root. The shape is a pure function of the leaf count, so two sides
/// that agree on `(payload_len, leaf_size)` agree on every node's
/// coordinates — which is what lets the `HASH_SUBTREE` opcode address
/// interior nodes as `(level, index)` with no tree bytes on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaves … `levels.last()` = `[root]`. The zero-leaf
    /// tree is represented as a single level holding [`empty_root`].
    levels: Vec<Vec<Hash>>,
    leaf_count: usize,
}

impl MerkleTree {
    /// Build the tree over `leaves` (already-hashed leaf values).
    pub fn from_leaves(leaves: Vec<Hash>) -> MerkleTree {
        let leaf_count = leaves.len();
        if leaves.is_empty() {
            return MerkleTree { levels: vec![vec![empty_root()]], leaf_count };
        }
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let below = levels.last().expect("non-empty");
            let mut level = Vec::with_capacity(below.len().div_ceil(2));
            for pair in below.chunks(2) {
                level.push(match pair {
                    [l, r] => node_hash(l, r),
                    // Odd tail: promote unchanged.
                    [l] => *l,
                    _ => unreachable!("chunks(2) yields 1 or 2 items"),
                });
            }
            levels.push(level);
        }
        MerkleTree { levels, leaf_count }
    }

    /// Build the tree over a payload cut at `leaf_size`.
    pub fn from_payload(data: &[u8], leaf_size: usize) -> MerkleTree {
        MerkleTree::from_leaves(payload_leaves(data, leaf_size))
    }

    /// The root hash.
    pub fn root(&self) -> Hash {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of levels above the leaves (0 for a 0- or 1-leaf tree).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// Number of leaves the tree was built over.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// The nodes at `level` (0 = leaves, `height()` = root), or `None`
    /// for an out-of-range level.
    pub fn level(&self, level: usize) -> Option<&[Hash]> {
        self.levels.get(level).map(Vec::as_slice)
    }

    /// Width of each level for a tree of `leaves` leaves, leaf level
    /// first — the addressing contract both ends of `HASH_SUBTREE`
    /// derive independently.
    pub fn level_widths(leaves: u64) -> Vec<u64> {
        let mut widths = vec![leaves.max(1)];
        while *widths.last().expect("non-empty") > 1 {
            let w = widths.last().expect("non-empty").div_ceil(2);
            widths.push(w);
        }
        widths
    }

    /// Inclusion proof for `leaf`: the sibling hashes from the leaf
    /// level up, `None` where an odd promotion had no sibling. `None`
    /// if the index is out of range.
    pub fn proof(&self, leaf: usize) -> Option<Vec<Option<Hash>>> {
        if leaf >= self.leaf_count {
            return None;
        }
        let mut proof = Vec::with_capacity(self.height());
        let mut index = leaf;
        for level in &self.levels[..self.height()] {
            let sibling = index ^ 1;
            proof.push(level.get(sibling).copied());
            index /= 2;
        }
        Some(proof)
    }

    /// Verify an inclusion proof produced by [`MerkleTree::proof`]
    /// against a trusted `root`.
    pub fn verify_proof(
        root: &Hash,
        leaf_index: usize,
        leaf: &Hash,
        proof: &[Option<Hash>],
    ) -> bool {
        let mut acc = *leaf;
        let mut index = leaf_index;
        for sibling in proof {
            acc = match sibling {
                Some(s) if index.is_multiple_of(2) => node_hash(&acc, s),
                Some(s) => node_hash(s, &acc),
                // Odd promotion: the node rises unchanged.
                None => acc,
            };
            index /= 2;
        }
        acc == *root
    }

    /// Leaf indices where `self` and `other` differ, found by descending
    /// only into mismatching subtrees. Both trees must have the same
    /// leaf count (the comparison is meaningless otherwise).
    pub fn diff(&self, other: &MerkleTree) -> Vec<usize> {
        assert_eq!(
            self.leaf_count, other.leaf_count,
            "diff requires trees over the same leaf count"
        );
        if self.root() == other.root() {
            return Vec::new();
        }
        if self.leaf_count == 0 {
            // Equal shape, unequal root over zero leaves cannot happen
            // (both roots are the empty constant) — guarded above.
            return Vec::new();
        }
        // Frontier of mismatching node indices, walked from the root's
        // children down to the leaves.
        let mut frontier = vec![0usize];
        for level in (0..self.height()).rev() {
            let a = &self.levels[level];
            let b = &other.levels[level];
            let mut next = Vec::with_capacity(frontier.len() * 2);
            for &parent in &frontier {
                for child in [parent * 2, parent * 2 + 1] {
                    if child < a.len() && a[child] != b[child] {
                        next.push(child);
                    }
                }
            }
            frontier = next;
        }
        frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Hash> {
        (0..n).map(|i| leaf_hash(&[i as u8, (i >> 8) as u8])).collect()
    }

    #[test]
    fn known_shapes() {
        assert_eq!(MerkleTree::from_leaves(vec![]).root(), empty_root());
        let one = leaves(1);
        assert_eq!(MerkleTree::from_leaves(one.clone()).root(), one[0]);
        let two = leaves(2);
        assert_eq!(
            MerkleTree::from_leaves(two.clone()).root(),
            node_hash(&two[0], &two[1])
        );
        // Three leaves: ((0,1), promoted 2).
        let three = leaves(3);
        assert_eq!(
            MerkleTree::from_leaves(three.clone()).root(),
            node_hash(&node_hash(&three[0], &three[1]), &three[2])
        );
    }

    #[test]
    fn level_widths_match_built_tree() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 255, 256, 257] {
            let tree = MerkleTree::from_leaves(leaves(n));
            let widths = MerkleTree::level_widths(n as u64);
            assert_eq!(widths.len(), tree.height() + 1, "n={n}");
            for (l, w) in widths.iter().enumerate() {
                assert_eq!(tree.level(l).unwrap().len() as u64, *w, "n={n} level={l}");
            }
        }
    }

    #[test]
    fn domain_separation() {
        // A leaf of 65 bytes must not collide with the interior node
        // over the same 64 hash bytes.
        let l = leaf_hash(b"left");
        let r = leaf_hash(b"right");
        let mut cat = vec![0u8];
        cat.extend_from_slice(&l);
        cat.extend_from_slice(&r);
        assert_ne!(node_hash(&l, &r), leaf_hash(&cat[1..]));
        assert_ne!(leaf_hash(b""), empty_root());
    }

    #[test]
    fn payload_trees_detect_any_flip() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 13 + 5) as u8).collect();
        let clean = MerkleTree::from_payload(&data, 256);
        for at in [0usize, 255, 256, 5000, 9999] {
            let mut bad = data.clone();
            bad[at] ^= 0x40;
            let tree = MerkleTree::from_payload(&bad, 256);
            assert_ne!(tree.root(), clean.root(), "flip at {at}");
            assert_eq!(clean.diff(&tree), vec![at / 256], "flip at {at}");
        }
    }

    #[test]
    fn diff_finds_multiple_damaged_leaves() {
        let base = leaves(257);
        let mut other = base.clone();
        for i in [0usize, 128, 200, 256] {
            other[i][0] ^= 0xFF;
        }
        let a = MerkleTree::from_leaves(base);
        let b = MerkleTree::from_leaves(other);
        assert_eq!(a.diff(&b), vec![0, 128, 200, 256]);
        assert_eq!(a.diff(&a), Vec::<usize>::new());
    }

    #[test]
    fn proofs_verify_and_bind_position() {
        let ls = leaves(11);
        let tree = MerkleTree::from_leaves(ls.clone());
        let root = tree.root();
        for (i, leaf) in ls.iter().enumerate() {
            let proof = tree.proof(i).unwrap();
            assert!(MerkleTree::verify_proof(&root, i, leaf, &proof), "leaf {i}");
            // A wrong in-range position must fail. (An out-of-range claim
            // like `10 ^ 1 == 11` is indistinguishable for the promoted
            // tail — its proof step is `None` — which is why callers
            // always bounds-check the index against the known leaf count
            // before verifying.)
            if i ^ 1 < ls.len() {
                assert!(!MerkleTree::verify_proof(&root, i ^ 1, leaf, &proof));
            }
            let mut wrong = *leaf;
            wrong[5] ^= 1;
            assert!(!MerkleTree::verify_proof(&root, i, &wrong, &proof));
        }
        assert!(tree.proof(11).is_none());
    }
}
