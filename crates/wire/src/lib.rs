//! `ec-wire` — the byte-level primitives shared by every durable or
//! networked surface of the stack.
//!
//! The streaming archive format (`ec-stream`, `docs/FORMAT.md`) and the
//! object-store wire protocol (`ec-store`, `docs/STORE.md`) both frame
//! their payloads with CRC-32 so that bit-rot and line noise are
//! *attributable*: a checksum lives next to the bytes it covers, and a
//! mismatch names the damaged shard or the hostile frame instead of
//! surfacing as garbage data. This crate is the single home of that
//! checksum so the two formats can never drift apart.
//!
//! CRC-32 is bit-rot evidence, not tamper evidence: any mutation that
//! XORs in a multiple of the generator polynomial passes the checksum.
//! The [`sha256`] and [`merkle`] modules are the cryptographic layer on
//! top — per-chunk SHA-256 leaf hashes rolled into Merkle roots, so a
//! root comparison proves whole-shard integrity in 32 bytes and a
//! subtree walk localizes damage to exact chunk indices. Both formats
//! store these trees (shard-file hash trailer, manifest shard roots),
//! again from this single home.

mod crc;
pub mod merkle;
mod sha256;

pub use crc::{crc32, crc_preserving_flip, Crc32};
pub use sha256::{hash_hex, sha256, Sha256, SHA256_LEN};
