//! `ec-wire` — the byte-level primitives shared by every durable or
//! networked surface of the stack.
//!
//! The streaming archive format (`ec-stream`, `docs/FORMAT.md`) and the
//! object-store wire protocol (`ec-store`, `docs/STORE.md`) both frame
//! their payloads with CRC-32 so that bit-rot and line noise are
//! *attributable*: a checksum lives next to the bytes it covers, and a
//! mismatch names the damaged shard or the hostile frame instead of
//! surfacing as garbage data. This crate is the single home of that
//! checksum so the two formats can never drift apart.

mod crc;

pub use crc::{crc32, Crc32};
