//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the integrity checksum
//! of the shard-file format (`docs/FORMAT.md`) and the object-store wire
//! protocol (`docs/STORE.md`).
//!
//! Implemented here (table-driven, table built at compile time) rather
//! than pulled in as a dependency: the workspace builds offline, and the
//! format specs pin the exact algorithm so shards and frames stay
//! readable by any implementation.

/// The reflected polynomial of CRC-32 (IEEE).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// A running CRC-32 digest for incremental (streaming) updates.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh digest.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feed bytes into the digest.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// XOR a 5-byte pattern into `data` at `offset` that leaves **every**
/// CRC-32 over any region containing it unchanged.
///
/// CRC-32 is linear over GF(2): XORing a multiple of the generator
/// polynomial into the message leaves the checksum as it was. The
/// pattern below is the generator itself (`x^32 + … + 1`,
/// `0x104C11DB7`) in this CRC's reflected bit order. This is the
/// checksum's documented blind spot — the tamper tests use it to build
/// CRC-valid corruption that only the SHA-256 Merkle layer can catch.
///
/// Panics if fewer than 5 bytes remain at `offset`.
pub fn crc_preserving_flip(data: &mut [u8], offset: usize) {
    const PATTERN: [u8; 5] = [0x41, 0x06, 0x71, 0xDB, 0x01];
    for (i, delta) in PATTERN.into_iter().enumerate() {
        data[offset + i] ^= delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 + 7) as u8).collect();
        let mut c = Crc32::new();
        for part in data.chunks(13) {
            c.update(part);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn crc_preserving_flip_preserves_any_containing_crc() {
        let base: Vec<u8> = (0..300u32).map(|i| (i * 7 + 3) as u8).collect();
        for offset in [0usize, 1, 7, 100, 295] {
            let mut data = base.clone();
            crc_preserving_flip(&mut data, offset);
            assert_ne!(data, base, "offset {offset}");
            assert_eq!(crc32(&data), crc32(&base), "offset {offset}");
            // Also unchanged over any sub-region containing the pattern.
            let lo = offset.saturating_sub(3);
            assert_eq!(crc32(&data[lo..]), crc32(&base[lo..]), "offset {offset}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data: Vec<u8> = (0..64u8).collect();
        let clean = crc32(&data);
        for i in [0usize, 13, 63] {
            data[i] ^= 0x10;
            assert_ne!(crc32(&data), clean, "flip at {i}");
            data[i] ^= 0x10;
        }
    }
}
