//! SHA-256 (FIPS 180-4), the cryptographic hash of the integrity
//! subsystem: Merkle leaf/node hashes in the shard-file hash trailer
//! (`docs/FORMAT.md`), the store manifest's per-shard roots
//! (`docs/STORE.md`) and the `HASH_SUBTREE` opcode all hash with it.
//!
//! Implemented here rather than pulled in as a dependency for the same
//! reason as the CRC: the workspace builds offline, and the durable
//! formats pin the exact algorithm. Where CRC-32 catches line noise and
//! bit rot, SHA-256 is collision-resistant: a mutation crafted to
//! preserve a CRC (any multiple of its generator polynomial) still
//! changes the SHA-256 digest, which is what upgrades the stack from
//! bit-rot-evidence to tamper-evidence.
//!
//! Validated against the NIST FIPS 180-4 example vectors (one-block,
//! two-block, and the million-`a` stress vector) in the tests below.

/// Digest size in bytes.
pub const SHA256_LEN: usize = 32;

/// The first 32 bits of the fractional parts of the cube roots of the
/// first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c,
    0x1f83d9ab, 0x5be0cd19,
];

/// A running SHA-256 digest for incremental (streaming) updates.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message bytes fed so far (the padding encodes this in bits;
    /// u64 bounds the message at 2^61 bytes, far beyond any shard).
    len: u64,
    /// Partial block awaiting 64 bytes.
    block: [u8; 64],
    fill: usize,
}

impl Sha256 {
    /// Start a fresh digest.
    pub fn new() -> Sha256 {
        Sha256 { state: H0, len: 0, block: [0; 64], fill: 0 }
    }

    /// Feed bytes into the digest.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.fill > 0 {
            let take = data.len().min(64 - self.fill);
            self.block[self.fill..self.fill + take].copy_from_slice(&data[..take]);
            self.fill += take;
            data = &data[take..];
            if self.fill < 64 {
                // `data` is exhausted into the still-partial block; falling
                // through would let the remainder bookkeeping below reset
                // `fill` and drop these bytes.
                return;
            }
            let block = self.block;
            self.compress(&block);
            self.fill = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            self.compress(block.try_into().expect("exact chunk"));
        }
        let rest = chunks.remainder();
        self.block[..rest.len()].copy_from_slice(rest);
        self.fill = rest.len();
    }

    /// The digest of everything fed so far.
    pub fn finish(mut self) -> [u8; SHA256_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the 64-bit big-endian
        // message bit length.
        self.update(&[0x80]);
        while self.fill != 56 {
            self.update(&[0]);
        }
        // Feed the length directly as the final 8 block bytes; `update`
        // would wrongly count them into `len`, but `bit_len` is already
        // captured.
        self.block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.block;
        self.compress(&block);
        let mut out = [0u8; SHA256_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One compression round over a 64-byte block (FIPS 180-4 §6.2.2).
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (t, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(
                block[t * 4..t * 4 + 4].try_into().expect("fixed slice"),
            );
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7)
                ^ w[t - 15].rotate_right(18)
                ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17)
                ^ w[t - 2].rotate_right(19)
                ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 =
                e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 =
                a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> [u8; SHA256_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// Lower-case hex of a digest, for CLI/report display.
pub fn hash_hex(digest: &[u8; SHA256_LEN]) -> String {
    let mut s = String::with_capacity(SHA256_LEN * 2);
    for b in digest {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: [u8; 32]) -> String {
        hash_hex(&digest)
    }

    // NIST FIPS 180-4 / CAVP example vectors.

    #[test]
    fn nist_empty_message() {
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_448_bit_message() {
        // Two-block example: 56 bytes of input.
        assert_eq!(
            hex(sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_896_bit_message() {
        assert_eq!(
            hex(sha256(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                  hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn nist_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 31 + 7) as u8).collect();
        // Split at awkward boundaries (never block-aligned).
        for step in [1usize, 13, 63, 64, 65, 1000] {
            let mut h = Sha256::new();
            for part in data.chunks(step) {
                h.update(part);
            }
            assert_eq!(h.finish(), sha256(&data), "step {step}");
        }
    }

    #[test]
    fn crc_preserving_mutation_changes_digest() {
        // XORing in a multiple of the CRC-32 generator polynomial leaves
        // the CRC unchanged (linearity) — the exact blind spot SHA-256
        // closes. 0x1DB710641 is poly << 1 in reflected bit order; as
        // bytes (LSB-first per byte) that is 41 06 71 DB 01.
        let mut data: Vec<u8> = (0..256u32).map(|i| (i * 7) as u8).collect();
        let before_crc = crate::crc32(&data);
        let before_sha = sha256(&data);
        for (i, delta) in [0x41, 0x06, 0x71, 0xDB, 0x01].into_iter().enumerate() {
            data[100 + i] ^= delta;
        }
        assert_eq!(crate::crc32(&data), before_crc, "mutation must evade CRC");
        assert_ne!(sha256(&data), before_sha, "SHA-256 must catch it");
    }
}
