//! Property tests of the Merkle layer: root stability, proof soundness
//! and single-flip localization across the awkward shapes (1, powers of
//! two, off-by-one around them, the 257 tail-promotion case).

use ec_wire::merkle::{leaf_hash, MerkleTree};
use proptest::prelude::*;

fn leaves(count: usize, seed: u64) -> Vec<[u8; 32]> {
    (0..count)
        .map(|i| {
            let mut bytes = [0u8; 16];
            bytes[..8].copy_from_slice(&seed.to_le_bytes());
            bytes[8..].copy_from_slice(&(i as u64).to_le_bytes());
            leaf_hash(&bytes)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The root is a pure function of the leaf sequence: rebuilding the
    /// tree from the same leaves yields the same root, and every chunk
    /// count in 1..=257 has a well-defined, self-consistent shape.
    #[test]
    fn root_is_stable_for_every_chunk_count(
        count in 1usize..=257,
        seed in any::<u64>(),
    ) {
        let ls = leaves(count, seed);
        let a = MerkleTree::from_leaves(ls.clone());
        let b = MerkleTree::from_leaves(ls);
        prop_assert_eq!(a.root(), b.root());
        prop_assert_eq!(a.leaf_count(), count);
        // The advertised shape matches the built tree at every level.
        let widths = MerkleTree::level_widths(count as u64);
        prop_assert_eq!(widths.len(), a.height() + 1);
        for (l, w) in widths.iter().enumerate() {
            prop_assert_eq!(a.level(l).unwrap().len() as u64, *w);
        }
    }

    /// Every leaf's inclusion proof verifies against the root, and
    /// stops verifying under a flipped leaf or a shifted position.
    #[test]
    fn inclusion_proofs_verify(
        count in 1usize..=257,
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let ls = leaves(count, seed);
        let tree = MerkleTree::from_leaves(ls.clone());
        let root = tree.root();
        let i = (pick % count as u64) as usize;
        let proof = tree.proof(i).unwrap();
        prop_assert!(MerkleTree::verify_proof(&root, i, &ls[i], &proof));
        let mut wrong = ls[i];
        wrong[0] ^= 1;
        prop_assert!(!MerkleTree::verify_proof(&root, i, &wrong, &proof));
        if count > 1 {
            let j = (i + 1) % count;
            prop_assert!(!MerkleTree::verify_proof(&root, j, &ls[i], &proof));
        }
    }

    /// Flipping exactly one leaf changes the root, and the subtree diff
    /// localizes the damage to exactly that leaf index.
    #[test]
    fn single_leaf_flip_localizes_exactly(
        count in 1usize..=257,
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let ls = leaves(count, seed);
        let i = (pick % count as u64) as usize;
        let mut flipped = ls.clone();
        flipped[i][7] ^= 0x80;
        let clean = MerkleTree::from_leaves(ls);
        let damaged = MerkleTree::from_leaves(flipped);
        prop_assert_ne!(clean.root(), damaged.root());
        prop_assert_eq!(clean.diff(&damaged), vec![i]);
    }
}
