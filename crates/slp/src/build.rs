//! Building unoptimized SLPs from bit-matrices.
//!
//! A parity bit-matrix row `r` with set columns `{j1, …, jk}` means
//! "output strip `r` is the XOR of input strips `j1 … jk`". Two textual
//! forms of the same program are used in the paper's evaluation:
//!
//! * the **binary-chain** form (`SLP⊕`): each row becomes a chain of
//!   two-argument XORs accumulating into one variable — this is the `Base`
//!   program measured in §7.2/§7.5 (for RS(10,4): `#⊕ = 755`, `NVar = 32`,
//!   `#M = 3·755 = 2265`);
//! * the **flat** form: each row is a single variadic instruction over
//!   constants — the normal form the RePair compressors start from.

use crate::ir::{Instr, Slp};
use crate::term::Term;
use bitmatrix::BitMatrix;

/// Flat form: one variadic instruction per matrix row.
///
/// Rows with a single set bit become plain copies; the builder keeps them as
/// arity-1 instructions so outputs stay positional.
///
/// # Panics
/// Panics if a row is all-zero (the row's value would be the empty set,
/// which no XOR program can produce).
pub fn flat_slp_from_bitmatrix(m: &BitMatrix) -> Slp {
    let mut instrs = Vec::with_capacity(m.rows());
    let mut outputs = Vec::with_capacity(m.rows());
    for r in 0..m.rows() {
        let args: Vec<Term> = m.ones_in_row(r).map(|c| Term::Const(c as u32)).collect();
        assert!(
            !args.is_empty(),
            "row {r} of the parity bit-matrix is all-zero"
        );
        let dst = instrs.len() as u32;
        instrs.push(Instr { dst, args });
        outputs.push(Term::Var(dst));
    }
    Slp::new(m.cols(), instrs, outputs).expect("builder produces well-formed SLPs")
}

/// Binary-chain form: row `r` becomes
/// `v_r ← c1 ⊕ c2; v_r ← v_r ⊕ c3; …` — the unoptimized `Base` program.
///
/// # Panics
/// Panics if a row is all-zero.
pub fn binary_slp_from_bitmatrix(m: &BitMatrix) -> Slp {
    let mut instrs = Vec::new();
    let mut outputs = Vec::with_capacity(m.rows());
    for r in 0..m.rows() {
        let cols: Vec<u32> = m.ones_in_row(r).map(|c| c as u32).collect();
        assert!(
            !cols.is_empty(),
            "row {r} of the parity bit-matrix is all-zero"
        );
        let dst = r as u32;
        match cols.as_slice() {
            [single] => instrs.push(Instr::new(dst, vec![Term::Const(*single)])),
            [first, second, rest @ ..] => {
                instrs.push(Instr::new(dst, vec![Term::Const(*first), Term::Const(*second)]));
                for &c in rest {
                    instrs.push(Instr::new(dst, vec![Term::Var(dst), Term::Const(c)]));
                }
            }
            [] => unreachable!(),
        }
        outputs.push(Term::Var(dst));
    }
    Slp::new(m.cols(), instrs, outputs).expect("builder produces well-formed SLPs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intro_matrix_becomes_intro_program() {
        // §2: the 3×7 matrix becomes
        //   ν1 ← a⊕b; ν2 ← c⊕d⊕e⊕f; ν3 ← c⊕d⊕e⊕g.
        let m = BitMatrix::parse(&["1100000", "0011110", "0011101"]);
        let p = flat_slp_from_bitmatrix(&m);
        assert_eq!(p.instrs.len(), 3);
        assert_eq!(p.xor_count(), 7);
        assert_eq!(p.n_consts, 7);
        let vals = p.eval();
        assert_eq!(vals[0], crate::ValueSet::from_indices(7, [0, 1]));
        assert_eq!(vals[1], crate::ValueSet::from_indices(7, [2, 3, 4, 5]));
        assert_eq!(vals[2], crate::ValueSet::from_indices(7, [2, 3, 4, 6]));
    }

    #[test]
    fn binary_and_flat_forms_are_equivalent() {
        let m = BitMatrix::parse(&["1100000", "0011110", "0011101"]);
        let flat = flat_slp_from_bitmatrix(&m);
        let binary = binary_slp_from_bitmatrix(&m);
        assert_eq!(flat.eval(), binary.eval());
        assert!(binary.is_binary());
        // Same XOR count, different memory-access count (§5).
        assert_eq!(binary.xor_count(), flat.xor_count());
        assert_eq!(binary.mem_accesses(), 3 * binary.xor_count());
        // one accumulator variable per row
        assert_eq!(binary.nvar(), 3);
    }

    #[test]
    fn single_bit_rows_become_copies() {
        let m = BitMatrix::parse(&["10", "11"]);
        let p = binary_slp_from_bitmatrix(&m);
        assert_eq!(p.instrs[0].args.len(), 1);
        assert_eq!(p.xor_count(), 1);
        let f = flat_slp_from_bitmatrix(&m);
        assert_eq!(f.eval(), p.eval());
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_row_rejected() {
        let m = BitMatrix::parse(&["10", "00"]);
        let _ = flat_slp_from_bitmatrix(&m);
    }
}
