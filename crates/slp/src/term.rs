//! Terms of an SLP: constants (program inputs) and variables (runtime
//! arrays).

use std::fmt;

/// A term of an SLP: either a variable or a constant, both identified by a
/// dense index.
///
/// The derived [`Ord`] implements the paper's total order `≺` of §4.3:
/// variables come before constants (`t ≺ c`), variables are ordered by
/// generation index (`t1 ≺ t2 ≺ …`), and constants "alphabetically" (by
/// index). The variant declaration order below is what makes the derive
/// produce exactly this order — do not reorder.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A runtime array, assigned by some instruction.
    Var(u32),
    /// A program input array.
    Const(u32),
}

impl Term {
    /// True for [`Term::Var`].
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// True for [`Term::Const`].
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The variable index, if any.
    #[inline]
    pub fn as_var(self) -> Option<u32> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant index, if any.
    #[inline]
    pub fn as_const(self) -> Option<u32> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }
}

/// Render a constant index the way the paper does: `a, b, …, z` for the
/// first 26, `c27, c28, …` beyond.
pub(crate) fn const_name(idx: u32) -> String {
    if idx < 26 {
        char::from(b'a' + idx as u8).to_string()
    } else {
        format!("c{idx}")
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "v{v}"),
            Term::Const(c) => write!(f, "{}", const_name(*c)),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_total_order() {
        // t ≺ c for every temporal t and constant c (§4.3).
        assert!(Term::Var(1000) < Term::Const(0));
        // generation order on variables
        assert!(Term::Var(0) < Term::Var(1));
        // "alphabetical" order on constants
        assert!(Term::Const(0) < Term::Const(25));
    }

    #[test]
    fn pair_lexicographic_order() {
        // The ⊏ order on pairs is the lexicographic extension of ≺.
        let ab = (Term::Const(0), Term::Const(1));
        let bc = (Term::Const(1), Term::Const(2));
        assert!(ab < bc); // (a,b) ⊏ (b,c), used in the §4.3 example
        let t1c = (Term::Var(0), Term::Const(2));
        assert!(t1c < ab); // pairs with temporals come first
    }

    #[test]
    fn display_names() {
        assert_eq!(Term::Const(0).to_string(), "a");
        assert_eq!(Term::Const(25).to_string(), "z");
        assert_eq!(Term::Const(26).to_string(), "c26");
        assert_eq!(Term::Var(3).to_string(), "v3");
    }
}
