//! The cost metrics of the paper: `#⊕` (§4.1), `#M` (§5.1) and `NVar`.

use crate::ir::Slp;

impl Slp {
    /// `#⊕(P)`: total number of XOR operations, `Σ (arity − 1)`.
    pub fn xor_count(&self) -> usize {
        self.instrs.iter().map(|i| i.xor_count()).sum()
    }

    /// `#M(P)`: total number of memory accesses under the fused-XOR cost
    /// model of §5.1, `Σ (arity + 1)` — load each argument, store the
    /// result.
    pub fn mem_accesses(&self) -> usize {
        self.instrs.iter().map(|i| i.mem_accesses()).sum()
    }

    /// Largest instruction arity (fused-XOR width the runtime must support).
    pub fn max_arity(&self) -> usize {
        self.instrs.iter().map(|i| i.args.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::ir::{Instr, Slp};
    use crate::term::Term::{Const, Var};

    #[test]
    fn xor_count_of_section_4_1_example() {
        // #⊕P = 4 for the §4.1 example.
        let p = Slp::new(
            4,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(1), Const(2), Const(3)]),
                Instr::new(2, vec![Var(0), Var(1)]),
            ],
            vec![Var(1), Var(2), Var(0)],
        )
        .unwrap();
        assert_eq!(p.xor_count(), 4);
        assert_eq!(p.nvar(), 3);
    }

    #[test]
    fn mem_access_example_from_section_5() {
        // §5: `program` (three binary XORs) performs 9N accesses while the
        // fused Xor4 performs 5N. Per block: 9 vs 5.
        let binary = Slp::new(
            4,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Var(0), Const(2)]),
                Instr::new(2, vec![Var(1), Const(3)]),
            ],
            vec![Var(2)],
        )
        .unwrap();
        assert_eq!(binary.mem_accesses(), 9);
        assert_eq!(binary.xor_count(), 3);

        let fused = Slp::new(
            4,
            vec![Instr::new(0, vec![Const(0), Const(1), Const(2), Const(3)])],
            vec![Var(0)],
        )
        .unwrap();
        assert_eq!(fused.mem_accesses(), 5);
        assert_eq!(fused.xor_count(), 3);
        assert_eq!(binary.eval(), fused.eval());
    }

    #[test]
    fn section_5_2_compress_vs_fuse_tradeoff() {
        // §5.2: #M(A)=30, #M(B)=12, #M(C)=14 — fusing an uncompressed SLP
        // costs more accesses than compress-then-fuse.
        let a = Slp::new(
            7,
            vec![
                Instr::new(
                    0,
                    vec![Const(0), Const(1), Const(2), Const(3), Const(4), Const(5)],
                ),
                Instr::new(
                    1,
                    vec![Const(0), Const(1), Const(2), Const(3), Const(4), Const(6)],
                ),
            ],
            vec![Var(0), Var(1)],
        )
        .unwrap();
        // Paper counts A in the *binary* SLP⊕ form: 10 XORs × 3 accesses.
        let a_binary = {
            // expand each 6-ary instruction into a chain of 5 binary XORs
            let mut instrs = Vec::new();
            for (row, consts) in [[0, 1, 2, 3, 4, 5], [0, 1, 2, 3, 4, 6]].iter().enumerate() {
                let dst = row as u32;
                instrs.push(Instr::new(dst, vec![Const(consts[0]), Const(consts[1])]));
                for &c in &consts[2..] {
                    instrs.push(Instr::new(dst, vec![Var(dst), Const(c)]));
                }
            }
            Slp::new(7, instrs, vec![Var(0), Var(1)]).unwrap()
        };
        assert_eq!(a_binary.mem_accesses(), 30);

        let b = Slp::new(
            7,
            vec![
                Instr::new(0, vec![Const(0), Const(1), Const(2), Const(3), Const(4)]),
                Instr::new(1, vec![Var(0), Const(5)]),
                Instr::new(2, vec![Var(0), Const(6)]),
            ],
            vec![Var(1), Var(2)],
        )
        .unwrap();
        assert_eq!(b.mem_accesses(), 12);

        assert_eq!(a.mem_accesses(), 14); // the fused form C
        assert_eq!(a.eval(), b.eval());
        assert_eq!(a_binary.eval(), b.eval());
    }
}
