//! Evaluation of SLPs: the abstract set semantics of §4.1 and a concrete
//! byte-array reference interpreter.

use crate::ir::Slp;
use crate::term::Term;
use crate::value::ValueSet;

/// Evaluate the program under the set semantics and return the output
/// values (`⟦P⟧`).
pub(crate) fn eval_outputs(slp: &Slp) -> Vec<ValueSet> {
    let mut vars: Vec<Option<ValueSet>> = vec![None; slp.n_vars()];
    for instr in &slp.instrs {
        let mut acc = ValueSet::empty(slp.n_consts);
        for &t in &instr.args {
            match t {
                Term::Const(c) => acc.toggle(c),
                Term::Var(v) => acc.symdiff_assign(
                    vars[v as usize]
                        .as_ref()
                        .expect("validated SLP cannot read undefined variable"),
                ),
            }
        }
        vars[instr.dst as usize] = Some(acc);
    }
    slp.outputs
        .iter()
        .map(|&t| match t {
            Term::Const(c) => ValueSet::singleton(slp.n_consts, c),
            Term::Var(v) => vars[v as usize]
                .clone()
                .expect("validated SLP cannot return undefined variable"),
        })
        .collect()
}

impl Slp {
    /// Run the program over concrete byte arrays, slowly and obviously
    /// correctly. Used as the oracle against which the optimized blocked
    /// executor is tested.
    ///
    /// # Panics
    /// Panics if `inputs.len() != n_consts` or input lengths differ.
    pub fn run_reference(&self, inputs: &[&[u8]]) -> Vec<Vec<u8>> {
        assert_eq!(
            inputs.len(),
            self.n_consts,
            "expected {} input arrays",
            self.n_consts
        );
        let len = inputs.first().map_or(0, |a| a.len());
        assert!(
            inputs.iter().all(|a| a.len() == len),
            "all input arrays must have equal length"
        );

        let mut vars: Vec<Option<Vec<u8>>> = vec![None; self.n_vars()];
        for instr in &self.instrs {
            let mut acc = vec![0u8; len];
            for &t in &instr.args {
                let src: &[u8] = match t {
                    Term::Const(c) => inputs[c as usize],
                    Term::Var(v) => vars[v as usize]
                        .as_deref()
                        .expect("validated SLP cannot read undefined variable"),
                };
                for (d, s) in acc.iter_mut().zip(src) {
                    *d ^= s;
                }
            }
            vars[instr.dst as usize] = Some(acc);
        }
        self.outputs
            .iter()
            .map(|&t| match t {
                Term::Const(c) => inputs[c as usize].to_vec(),
                Term::Var(v) => vars[v as usize]
                    .clone()
                    .expect("validated SLP cannot return undefined variable"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;
    use crate::term::Term::{Const, Var};

    fn section_4_1_example() -> Slp {
        Slp::new(
            4,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(1), Const(2), Const(3)]),
                Instr::new(2, vec![Var(0), Var(1)]),
            ],
            vec![Var(1), Var(2), Var(0)],
        )
        .unwrap()
    }

    #[test]
    fn paper_semantics_table() {
        // §4.1: v1 = {a,b}, v2 = {b,c,d}, v3 = {a,c,d};
        // ⟦P⟧ = ⟨{b,c,d}, {a,c,d}, {a,b}⟩.
        let p = section_4_1_example();
        let out = p.eval();
        assert_eq!(out[0], ValueSet::from_indices(4, [1, 2, 3]));
        assert_eq!(out[1], ValueSet::from_indices(4, [0, 2, 3]));
        assert_eq!(out[2], ValueSet::from_indices(4, [0, 1]));
    }

    #[test]
    fn reassignment_uses_latest_value() {
        // v0 ← a⊕b; v0 ← v0⊕c; ret(v0) evaluates to {a,b,c}.
        let p = Slp::new(
            3,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(0, vec![Var(0), Const(2)]),
            ],
            vec![Var(0)],
        )
        .unwrap();
        assert_eq!(p.eval(), vec![ValueSet::from_indices(3, [0, 1, 2])]);
    }

    #[test]
    fn duplicate_args_cancel() {
        // v0 ← a⊕a⊕b = {b} — cancellativity at the instruction level.
        let p = Slp::new(
            2,
            vec![Instr::new(0, vec![Const(0), Const(0), Const(1)])],
            vec![Var(0)],
        )
        .unwrap();
        assert_eq!(p.eval(), vec![ValueSet::singleton(2, 1)]);
    }

    #[test]
    fn reference_interpreter_matches_set_semantics() {
        let p = section_4_1_example();
        let inputs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i * 17 + 1, i ^ 0x5A, i]).collect();
        let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
        let got = p.run_reference(&refs);

        for (val, arr) in p.eval().iter().zip(&got) {
            let mut expect = vec![0u8; 3];
            for c in val.iter() {
                for (e, s) in expect.iter_mut().zip(&inputs[c as usize]) {
                    *e ^= s;
                }
            }
            assert_eq!(arr, &expect);
        }
    }

    #[test]
    #[should_panic(expected = "expected 4 input arrays")]
    fn reference_interpreter_checks_input_count() {
        let p = section_4_1_example();
        let a = [0u8; 4];
        let _ = p.run_reference(&[&a, &a]);
    }
}
