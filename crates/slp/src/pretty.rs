//! Pretty-printing in the paper's notation.

use crate::ir::Slp;
use std::fmt;

impl fmt::Display for Slp {
    /// Renders e.g.
    ///
    /// ```text
    /// v0 ← a ⊕ b;
    /// v1 ← ⊕(c, d, e);
    /// ret(v0, v1)
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for instr in &self.instrs {
            match instr.args.as_slice() {
                [single] => writeln!(f, "v{} ← {};", instr.dst, single)?,
                [a, b] => writeln!(f, "v{} ← {} ⊕ {};", instr.dst, a, b)?,
                many => {
                    write!(f, "v{} ← ⊕(", instr.dst)?;
                    for (k, t) in many.iter().enumerate() {
                        if k > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    writeln!(f, ");")?;
                }
            }
        }
        write!(f, "ret(")?;
        for (k, t) in self.outputs.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use crate::ir::{Instr, Slp};
    use crate::term::Term::{Const, Var};

    #[test]
    fn renders_paper_notation() {
        let p = Slp::new(
            5,
            vec![
                Instr::new(0, vec![Const(0), Const(1)]),
                Instr::new(1, vec![Const(2), Const(3), Const(4)]),
                Instr::new(2, vec![Var(1)]),
            ],
            vec![Var(0), Var(2)],
        )
        .unwrap();
        let text = p.to_string();
        assert_eq!(
            text,
            "v0 ← a ⊕ b;\nv1 ← ⊕(c, d, e);\nv2 ← v1;\nret(v0, v2)"
        );
    }
}
